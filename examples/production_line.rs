//! Max-plus analysis of a cyclic production line (discrete event
//! systems, paper §1.1 — the domain Howard's algorithm came from).
//!
//! Three workstations pass parts around a loop; `x_i(k)` is the time
//! station `i` finishes its k-th part and the system evolves as the
//! max-plus recurrence `x(k+1) = A ⊗ x(k)`. The max-plus eigenvalue of
//! `A` is the steady-state cycle time (one part per λ time units), and
//! the eigenvector gives the stations' steady phase offsets.
//!
//! Run with: `cargo run --example production_line`

use mcr::apps::max_plus::MaxPlusMatrix;

fn main() {
    // A[i][j] = processing + transport time from station j to station i
    // (None = no direct feed).
    let a = MaxPlusMatrix::from_rows(&[
        vec![None, Some(5), Some(3)],
        vec![Some(2), None, None],
        vec![None, Some(4), Some(1)],
    ]);

    assert!(a.is_irreducible(), "the line forms one loop");
    let (lambda, v) = a.eigenpair().expect("irreducible system");
    println!("steady-state cycle time λ = {} (~ {:.3})", lambda, lambda.to_f64());
    println!("station phase offsets (eigenvector):");
    for (i, vi) in v.iter().enumerate() {
        println!("  station {i}: {vi}");
    }

    // Simulate from a cold start and watch the growth rate converge to λ.
    let x0 = vec![Some(0i64); a.dim()];
    for &k in &[10usize, 40, 160] {
        let xk = a.simulate(&x0, k);
        let rate = xk[0].expect("reachable") as f64 / k as f64;
        println!("after {k:>4} parts: completion rate ≈ {rate:.4} time/part");
    }
    println!("(converges to λ = {:.4})", lambda.to_f64());
}
