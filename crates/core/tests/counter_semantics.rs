//! The documented meaning of each operation counter, checked per
//! algorithm family — these are the quantities the paper's §4.2–§4.4
//! comparisons rest on, so their semantics must not drift.

use mcr_core::{Algorithm, Counters};
use mcr_gen::sprand::{sprand, SprandConfig};
use mcr_graph::Graph;

fn solve_counters(alg: Algorithm, g: &Graph) -> Counters {
    alg.solve(g).expect("cyclic").counters
}

/// A strongly connected instance (single SCC) so per-component counts
/// equal whole-graph counts.
fn instance(seed: u64, n: usize, m: usize) -> Graph {
    sprand(&SprandConfig::new(n, m).seed(seed))
}

#[test]
fn karp_visits_exactly_n_times_m_arcs() {
    for seed in 0..5 {
        let g = instance(seed, 40, 120);
        let c = solve_counters(Algorithm::Karp, &g);
        assert_eq!(c.arcs_visited, (40 * 120) as u64, "seed {seed}");
    }
}

#[test]
fn karp2_visits_just_under_twice_karp() {
    for seed in 0..5 {
        let g = instance(seed, 40, 120);
        let karp = solve_counters(Algorithm::Karp, &g).arcs_visited;
        let karp2 = solve_counters(Algorithm::Karp2, &g).arcs_visited;
        // Pass 1 does n sweeps, pass 2 does n-1 more.
        assert_eq!(karp2, karp * 2 - g.num_arcs() as u64, "seed {seed}");
    }
}

#[test]
fn dg_never_visits_more_than_karp() {
    for seed in 0..8 {
        let g = instance(seed, 50, 110);
        let karp = solve_counters(Algorithm::Karp, &g).arcs_visited;
        let dg = solve_counters(Algorithm::Dg, &g).arcs_visited;
        assert!(dg <= karp, "seed {seed}: {dg} > {karp}");
    }
}

#[test]
fn ho_iterations_is_the_final_level() {
    for seed in 0..8 {
        let g = instance(seed, 50, 150);
        let c = solve_counters(Algorithm::Ho, &g);
        assert!(c.iterations >= 1);
        assert!(c.iterations <= 50, "seed {seed}: {}", c.iterations);
        // Arc visits = m per completed level.
        assert_eq!(c.arcs_visited, c.iterations * g.num_arcs() as u64);
    }
}

#[test]
fn parametric_iterations_count_pivots_and_stay_quadratic() {
    for seed in 0..8 {
        let g = instance(seed, 60, 180);
        for alg in [Algorithm::Ko, Algorithm::Yto] {
            let c = solve_counters(alg, &g);
            assert!(c.iterations >= 1, "{}", alg.name());
            assert!(
                c.iterations <= (60 * 60) as u64,
                "{} seed {seed}: {}",
                alg.name(),
                c.iterations
            );
            assert!(c.heap.delete_mins >= c.iterations, "{}", alg.name());
        }
    }
}

#[test]
fn yto_keeps_at_most_one_heap_entry_per_node() {
    for seed in 0..5 {
        let g = instance(seed, 80, 240);
        let c = solve_counters(Algorithm::Yto, &g);
        // Every insert is eventually removed or popped; entries are
        // per-node, so live entries never exceed n. A loose but
        // meaningful consequence: pops + removals ≤ inserts ≤ pops +
        // removals + n.
        let drained = c.heap.delete_mins + c.heap.removals;
        assert!(c.heap.inserts >= drained.saturating_sub(0));
        assert!(
            c.heap.inserts <= drained + 80,
            "seed {seed}: inserts {} vs drained {}",
            c.heap.inserts,
            drained
        );
    }
}

#[test]
fn lawler_oracle_calls_scale_with_log_range() {
    for (wmax, expect_max) in [(10i64, 22u64), (10_000, 40)] {
        let g = sprand(&SprandConfig::new(30, 90).seed(1).weight_range(1, wmax));
        let c = solve_counters(Algorithm::LawlerExact, &g);
        // log2(range · n(n−1)) plus the witness extraction call.
        assert!(
            c.oracle_calls <= expect_max,
            "wmax {wmax}: {} calls",
            c.oracle_calls
        );
        assert!(c.oracle_calls >= 5);
    }
}

#[test]
fn howard_examines_at_least_one_policy_cycle_per_iteration() {
    for seed in 0..5 {
        let g = instance(seed, 70, 210);
        for alg in [Algorithm::Howard, Algorithm::HowardExact] {
            let c = solve_counters(alg, &g);
            assert!(c.cycles_examined >= c.iterations, "{}", alg.name());
            // Each iteration scans all arcs once in the improvement pass.
            assert!(c.relaxations >= c.iterations * g.num_arcs() as u64);
        }
    }
}

#[test]
fn burns_rebuilds_slacks_every_iteration() {
    for seed in 0..5 {
        let g = instance(seed, 40, 120);
        for alg in [Algorithm::Burns, Algorithm::BurnsExact] {
            let c = solve_counters(alg, &g);
            // Non-incremental: m slack evaluations per iteration (the
            // f64 variant adds one certification Bellman–Ford).
            assert!(
                c.relaxations >= c.iterations * g.num_arcs() as u64,
                "{} seed {seed}",
                alg.name()
            );
        }
    }
}

#[test]
fn counters_accumulate_across_components() {
    // Two disjoint rings bridged one-way: counters must cover both.
    let mut b = mcr_graph::GraphBuilder::new();
    let v = b.add_nodes(6);
    for i in 0..3 {
        b.add_arc(v[i], v[(i + 1) % 3], 5);
        b.add_arc(v[3 + i], v[3 + (i + 1) % 3], 7);
    }
    b.add_arc(v[0], v[3], 1);
    let g = b.build();
    let c = solve_counters(Algorithm::HowardExact, &g);
    assert!(c.iterations >= 2, "one iteration per component at least");
}

#[test]
fn lambda_only_mode_matches_solve_and_skips_witness_work() {
    for seed in 0..8 {
        let g = instance(seed, 40, 100);
        for alg in [Algorithm::Karp, Algorithm::Karp2, Algorithm::Dg, Algorithm::Ho] {
            let full = alg.solve(&g).expect("cyclic");
            let (lam, c) = alg.solve_lambda_only(&g).expect("cyclic");
            assert_eq!(lam, full.lambda, "{} seed {seed}", alg.name());
            // λ-only performs no witness-extraction oracle call.
            assert_eq!(c.oracle_calls, 0, "{} seed {seed}", alg.name());
        }
    }
}
