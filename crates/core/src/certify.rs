//! Independent solution certification.
//!
//! [`certify`] re-walks a reported witness cycle against the input
//! graph and verifies, in exact [`Ratio64`] arithmetic, that the
//! cycle's mean or cost-to-time ratio equals the reported `lambda`. It
//! shares no code with the solvers' own cycle extraction — the walk,
//! the accumulation (`i128`, overflow-free) and the comparison are all
//! independent — so a bug in any one algorithm cannot certify its own
//! wrong answer.
//!
//! Note what this does and does not check: it proves `lambda` **is
//! achieved** by the returned cycle (so the value is an upper bound on
//! the true minimum, attained by a real cycle). It does not re-prove
//! global optimality, which would amount to re-solving the instance.

// Parsing/validation surfaces must stay panic-free whatever the
// input; CI runs clippy with -D warnings, so these lints are a gate.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]


use crate::rational::Ratio64;
use crate::solution::{cycle_totals, Solution};
use mcr_graph::Graph;
use std::fmt;

/// Why a [`Solution`] failed certification.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CertifyError {
    /// The witness references an arc id not present in the graph.
    ArcOutOfRange {
        /// The offending arc index.
        arc: usize,
        /// The graph's arc count.
        num_arcs: usize,
    },
    /// The witness is empty or its arcs do not chain head-to-tail into
    /// a closed cycle.
    MalformedCycle {
        /// Human-readable description of the defect.
        detail: String,
    },
    /// The witness is a valid cycle, but neither its mean nor its
    /// cost-to-time ratio equals the reported `lambda`.
    LambdaMismatch {
        /// The reported value.
        lambda: Ratio64,
        /// The cycle's exact mean, if it fits `Ratio64`.
        mean: Option<Ratio64>,
        /// The cycle's exact ratio, if defined (positive total transit)
        /// and it fits `Ratio64`.
        ratio: Option<Ratio64>,
    },
    /// The checked `i128` re-walk's running totals left the range a
    /// [`Ratio64`] can represent, so the cycle's objective value does
    /// not exist as an exact rational. Unlike the coarse "out of range"
    /// of [`CertifyError::LambdaMismatch`], this pinpoints *where* the
    /// accumulation first overflowed — which arc of a corrupted witness
    /// pushed it over — with the partial sums up to and including it.
    WalkOverflow {
        /// Position within the witness cycle (index into
        /// `solution.cycle`) of the first arc whose inclusion pushed a
        /// running total outside `i64` range.
        position: usize,
        /// The arc id at that position.
        arc: usize,
        /// Running weight total after adding that arc.
        weight_so_far: i128,
        /// Running transit total after adding that arc.
        transit_so_far: i128,
    },
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertifyError::ArcOutOfRange { arc, num_arcs } => {
                write!(f, "witness arc {arc} out of range (graph has {num_arcs} arcs)")
            }
            CertifyError::MalformedCycle { detail } => {
                write!(f, "witness is not a cycle: {detail}")
            }
            CertifyError::LambdaMismatch { lambda, mean, ratio } => {
                write!(f, "reported lambda {lambda} matches neither the witness mean (")?;
                match mean {
                    Some(m) => write!(f, "{m}")?,
                    None => f.write_str("out of range")?,
                }
                f.write_str(") nor its ratio (")?;
                match ratio {
                    Some(r) => write!(f, "{r}")?,
                    None => f.write_str("undefined")?,
                }
                f.write_str(")")
            }
            CertifyError::WalkOverflow {
                position,
                arc,
                weight_so_far,
                transit_so_far,
            } => {
                write!(
                    f,
                    "witness re-walk overflowed at position {position} (arc {arc}): \
                     partial weight {weight_so_far}, partial transit {transit_so_far} \
                     exceed the representable range"
                )
            }
        }
    }
}

impl std::error::Error for CertifyError {}

/// Verifies that `solution.cycle` is a well-formed cycle of `g` whose
/// exact mean **or** cost-to-time ratio equals `solution.lambda`.
///
/// Accepting either objective keeps the check independent of which
/// problem (MCMP or MCRP) produced the solution — the `Solution` type
/// does not record it. On unit-transit graphs the two coincide anyway.
///
/// ```
/// use mcr_graph::graph::from_arc_list;
/// use mcr_core::{certify, minimum_cycle_mean};
/// let g = from_arc_list(2, &[(0, 1, 1), (1, 0, 5)]);
/// let sol = minimum_cycle_mean(&g).expect("cyclic");
/// certify(&sol, &g).expect("solver output certifies");
/// ```
pub fn certify(solution: &Solution, g: &Graph) -> Result<(), CertifyError> {
    let num_arcs = g.num_arcs();
    for &a in &solution.cycle {
        if a.index() >= num_arcs {
            return Err(CertifyError::ArcOutOfRange {
                arc: a.index(),
                num_arcs,
            });
        }
    }
    if solution.cycle.is_empty() {
        return Err(CertifyError::MalformedCycle {
            detail: "empty cycle".into(),
        });
    }
    for (i, &a) in solution.cycle.iter().enumerate() {
        let next = solution.cycle[(i + 1) % solution.cycle.len()];
        if g.target(a) != g.source(next) {
            return Err(CertifyError::MalformedCycle {
                detail: format!(
                    "arc {} ends at node {} but the next arc {} starts at node {}",
                    a.index(),
                    g.target(a).index(),
                    next.index(),
                    g.source(next).index()
                ),
            });
        }
    }

    let (w, t) = cycle_totals(g, &solution.cycle);
    let mean = Ratio64::try_from_i128(w, solution.cycle.len() as i128);
    let ratio = if t > 0 { Ratio64::try_from_i128(w, t) } else { None };
    if mean == Some(solution.lambda) || ratio == Some(solution.lambda) {
        return Ok(());
    }
    // Neither objective matched. If neither even *exists* as a Ratio64,
    // redo the walk with running checks to report the exact arc whose
    // inclusion first pushed a total outside i64 range — the diagnostic
    // a corrupted witness needs (a plain "out of range" hides the arc).
    if mean.is_none() && ratio.is_none() {
        let mut weight = 0i128;
        let mut transit = 0i128;
        for (position, &a) in solution.cycle.iter().enumerate() {
            weight += g.weight(a) as i128;
            transit += g.transit(a) as i128;
            if weight < i64::MIN as i128
                || weight > i64::MAX as i128
                || transit < i64::MIN as i128
                || transit > i64::MAX as i128
            {
                return Err(CertifyError::WalkOverflow {
                    position,
                    arc: a.index(),
                    weight_so_far: weight,
                    transit_so_far: transit,
                });
            }
        }
    }
    Err(CertifyError::LambdaMismatch {
        lambda: solution.lambda,
        mean,
        ratio,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::Counters;
    use crate::solution::Guarantee;
    use crate::Algorithm;
    use mcr_graph::graph::from_arc_list;
    use mcr_graph::ArcId;

    fn sol(lambda: Ratio64, cycle: Vec<ArcId>) -> Solution {
        Solution {
            lambda,
            cycle,
            guarantee: Guarantee::Exact,
            solved_by: Algorithm::HowardExact,
            counters: Counters::new(),
        }
    }

    #[test]
    fn accepts_a_correct_mean_witness() {
        let g = from_arc_list(2, &[(0, 1, 1), (1, 0, 5)]);
        let s = sol(Ratio64::from(3), g.arc_ids().collect());
        certify(&s, &g).expect("mean 3 is correct");
    }

    #[test]
    fn rejects_a_wrong_lambda() {
        let g = from_arc_list(2, &[(0, 1, 1), (1, 0, 5)]);
        let s = sol(Ratio64::from(2), g.arc_ids().collect());
        let err = certify(&s, &g).expect_err("mean is 3, not 2");
        assert!(matches!(err, CertifyError::LambdaMismatch { .. }), "{err}");
    }

    #[test]
    fn rejects_out_of_range_and_broken_cycles() {
        let g = from_arc_list(2, &[(0, 1, 1), (1, 0, 5)]);
        let s = sol(Ratio64::from(3), vec![ArcId::new(7)]);
        assert!(matches!(
            certify(&s, &g),
            Err(CertifyError::ArcOutOfRange { arc: 7, num_arcs: 2 })
        ));
        let s = sol(Ratio64::from(3), vec![ArcId::new(0)]);
        assert!(matches!(
            certify(&s, &g),
            Err(CertifyError::MalformedCycle { .. })
        ));
        let s = sol(Ratio64::from(3), vec![]);
        assert!(matches!(
            certify(&s, &g),
            Err(CertifyError::MalformedCycle { .. })
        ));
    }

    #[test]
    fn walk_overflow_names_the_offending_arc_and_partial_sums() {
        // Three self-loops at one node, weighted so the running weight
        // total leaves i64 range exactly when the second arc is added:
        // MAX, then 2·MAX, then 3·MAX − 2 (none reduce mod 3, so no
        // exact mean or ratio exists either).
        let g = from_arc_list(
            1,
            &[(0, 0, i64::MAX), (0, 0, i64::MAX), (0, 0, i64::MAX - 2)],
        );
        let s = sol(Ratio64::from(1), g.arc_ids().collect());
        match certify(&s, &g).expect_err("totals overflow i64") {
            CertifyError::WalkOverflow {
                position,
                arc,
                weight_so_far,
                transit_so_far,
            } => {
                assert_eq!(position, 1, "second arc pushes the total past i64::MAX");
                assert_eq!(arc, 1);
                assert_eq!(weight_so_far, 2 * i64::MAX as i128);
                assert_eq!(transit_so_far, 2);
            }
            other => panic!("expected WalkOverflow, got {other}"),
        }
    }

    #[test]
    fn in_range_mismatch_still_reports_lambda_mismatch() {
        // Large but representable totals must keep the richer
        // LambdaMismatch diagnostic (both objective values exist).
        let g = from_arc_list(2, &[(0, 1, 1), (1, 0, 5)]);
        let s = sol(Ratio64::from(4), g.arc_ids().collect());
        match certify(&s, &g).expect_err("mean is 3, not 4") {
            CertifyError::LambdaMismatch { mean, .. } => {
                assert_eq!(mean, Some(Ratio64::from(3)));
            }
            other => panic!("expected LambdaMismatch, got {other}"),
        }
    }

    #[test]
    fn accepts_a_ratio_witness() {
        // Weight 6, transit 4 → ratio 3/2, mean 3.
        let mut b = mcr_graph::GraphBuilder::new();
        let u = b.add_node();
        let v = b.add_node();
        b.add_arc_with_transit(u, v, 1, 1);
        b.add_arc_with_transit(v, u, 5, 3);
        let g = b.build();
        let s = sol(Ratio64::new(6, 4), g.arc_ids().collect());
        certify(&s, &g).expect("ratio 3/2 is correct");
    }
}
