//! Serde roundtrips for the solver types (run with `--features serde`).
#![cfg(feature = "serde")]

use mcr_core::{Algorithm, Ratio64, Solution};
use mcr_gen::sprand::{sprand, SprandConfig};

#[test]
fn ratio64_roundtrips_and_validates() {
    for r in [
        Ratio64::new(7, 3),
        Ratio64::new(-22, 8),
        Ratio64::ZERO,
        Ratio64::from(i64::MAX / 2),
    ] {
        let json = serde_json::to_string(&r).expect("serialize");
        let back: Ratio64 = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, r);
    }
    // Unreduced input is normalized on the way in.
    let back: Ratio64 = serde_json::from_str("[4,6]").expect("deserialize");
    assert_eq!(back, Ratio64::new(2, 3));
    // Zero denominators are rejected, not panicking.
    assert!(serde_json::from_str::<Ratio64>("[1,0]").is_err());
}

#[test]
fn solution_roundtrips_with_counters_and_witness() {
    let g = sprand(&SprandConfig::new(30, 90).seed(5));
    let sol = Algorithm::Yto.solve(&g).expect("cyclic");
    let json = serde_json::to_string(&sol).expect("serialize");
    let back: Solution = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.lambda, sol.lambda);
    assert_eq!(back.cycle, sol.cycle);
    assert_eq!(back.counters, sol.counters);
    // The deserialized witness still verifies against the graph.
    assert_eq!(back.cycle_mean(&g), sol.lambda);
}

#[test]
fn graph_solution_pipeline_through_json() {
    // Serialize a graph, ship it, deserialize, solve: same optimum.
    let g = sprand(&SprandConfig::new(40, 120).seed(9));
    let expected = mcr_core::minimum_cycle_mean(&g).expect("cyclic").lambda;
    let json = serde_json::to_string(&g).expect("serialize graph");
    let g2: mcr_graph::Graph = serde_json::from_str(&json).expect("deserialize graph");
    assert_eq!(
        mcr_core::minimum_cycle_mean(&g2).expect("cyclic").lambda,
        expected
    );
}
