//! Criterion bench: intra-SCC chunked sweeps on a single giant strongly
//! connected component.
//!
//! `cargo bench -p mcr-bench --bench intra_scc`
//!
//! Two groups:
//!
//! * `sweep_kernels` — per-kernel microbench of every restructured hot
//!   loop (Karp and DG level fills, Howard Fig. 1 and exact policy
//!   sweeps, the Bellman–Ford oracle inside exact Lawler), sequential
//!   sweep vs the chunked schedule at one sweep thread. This isolates
//!   the cost of the two-phase chunk-ordered-commit restructure itself.
//! * `intra_scc` — the headline rows: Howard / Howard-exact /
//!   Lawler-exact on the giant SCC, sequential vs chunked at 1, 2, and
//!   4 sweep threads. On a single-SCC instance the per-SCC driver
//!   degenerates to one job, so chunked sweep threads are the *only*
//!   source of parallelism.
//!
//! Every row asserts bit-identity against the sequential solution
//! before timing, so the bench measures pure schedule cost/speedup.
//!
//! Note: speedup requires actual hardware parallelism. On a single-core
//! machine the multi-thread rows measure only the fork/join overhead of
//! the candidate phase; see `results/BENCH_intra_scc.json` for recorded
//! numbers and the machine caveat.
//!
//! Setting `MCR_BENCH_QUICK=1` shrinks the instances and sample counts
//! to CI-smoke size — the determinism asserts and the 4-sweep-thread
//! path still run in full, only the timings get coarser.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcr_core::{Algorithm, SolveOptions, SweepMode};
use mcr_gen::sprand::{sprand, SprandConfig};
use mcr_graph::{Graph, GraphBuilder};
use std::hint::black_box;

/// One giant strongly connected component: a SPRAND graph with a
/// Hamiltonian ring overlaid so every node reaches every other.
fn giant_scc_sprand(n: usize, m: usize, seed: u64) -> Graph {
    let part = sprand(&SprandConfig::new(n, m).seed(seed).weight_range(1, 10_000));
    let mut b = GraphBuilder::new();
    let ids = b.add_nodes(n);
    for a in part.arc_ids() {
        b.add_arc(
            ids[part.source(a).index()],
            ids[part.target(a).index()],
            part.weight(a),
        );
    }
    for i in 0..n {
        b.add_arc(ids[i], ids[(i + 1) % n], 5_000);
    }
    b.build()
}

/// CI smoke mode: tiny instances, coarse timings, full assertions.
fn quick() -> bool {
    std::env::var_os("MCR_BENCH_QUICK").is_some_and(|v| v != "0")
}

fn chunked(sweep_threads: usize) -> SolveOptions {
    // Quick mode shrinks the chunk below the instance size so the
    // multi-chunk, multi-thread path still genuinely runs.
    SolveOptions::new()
        .sweep(SweepMode::Chunked)
        .sweep_chunk(if quick() { 128 } else { 0 })
        .sweep_threads(sweep_threads)
}

/// Asserts `opts` reproduces the sequential optimum. Only λ is pinned
/// here: Howard's policy sweep commits improvements in a different
/// order under the chunked schedule, so its trajectory-dependent
/// counters (and in principle the witness) may differ while the answer
/// may not. Full bit-identity *across sweep-thread counts* is asserted
/// separately in `bench_intra_scc`.
fn assert_matches_sequential(g: &Graph, alg: Algorithm, opts: &SolveOptions) {
    let seq = alg.solve(g).expect("cyclic");
    let par = alg.solve_with_options(g, opts).expect("cyclic");
    assert_eq!(par.lambda, seq.lambda, "{}: λ drifted", alg.name());
}

fn bench_sweep_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_kernels");
    group.sample_size(if quick() { 5 } else { 10 });
    let g = if quick() {
        giant_scc_sprand(128, 512, 7)
    } else {
        giant_scc_sprand(512, 2048, 7)
    };
    for alg in [
        Algorithm::Karp,
        Algorithm::Dg,
        Algorithm::Howard,
        Algorithm::HowardExact,
        Algorithm::LawlerExact,
    ] {
        for (label, opts) in [
            ("sequential", SolveOptions::new()),
            ("chunked_t1", chunked(1)),
        ] {
            assert_matches_sequential(&g, alg, &opts);
            group.bench_with_input(
                BenchmarkId::new(alg.name(), label),
                &opts,
                |b, opts| b.iter(|| black_box(alg.solve_with_options(black_box(&g), opts))),
            );
        }
    }
    group.finish();
}

fn bench_intra_scc(c: &mut Criterion) {
    let mut group = c.benchmark_group("intra_scc");
    group.sample_size(if quick() { 5 } else { 10 });
    // One SCC of 2048 nodes / 10240 arcs: large enough that each sweep
    // spans several default-sized chunks.
    let g = if quick() {
        giant_scc_sprand(256, 1024, 11)
    } else {
        giant_scc_sprand(2048, 8192, 11)
    };
    for alg in [Algorithm::Howard, Algorithm::HowardExact, Algorithm::LawlerExact] {
        let seq = SolveOptions::new();
        group.bench_with_input(
            BenchmarkId::new(alg.name(), "sequential"),
            &seq,
            |b, opts| b.iter(|| black_box(alg.solve_with_options(black_box(&g), opts))),
        );
        // Chunked determinism across sweep-thread counts, then timing.
        let base = alg.solve_with_options(&g, &chunked(1)).expect("cyclic");
        for sweep_threads in [1usize, 2, 4] {
            let opts = chunked(sweep_threads);
            let par = alg.solve_with_options(&g, &opts).expect("cyclic");
            assert_eq!(par.lambda, base.lambda);
            assert_eq!(par.cycle, base.cycle);
            assert_eq!(par.counters, base.counters);
            group.bench_with_input(
                BenchmarkId::new(alg.name(), format!("chunked_t{sweep_threads}")),
                &opts,
                |b, opts| b.iter(|| black_box(alg.solve_with_options(black_box(&g), opts))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_kernels, bench_intra_scc);
criterion_main!(benches);
