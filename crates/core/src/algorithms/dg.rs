//! DG: the Dasdan–Gupta breadth-first improvement of Karp's algorithm.
//!
//! Karp's recurrence relaxes every arc at every level, even arcs whose
//! source has not been reached by any walk of the previous length. DG
//! works breadth-first instead: starting from the source it "visits the
//! successors of nodes rather than their predecessors", unfolding the
//! graph level by level and touching only arcs out of reached nodes.
//! Its running time equals the size of this unfolding — between `Θ(m)`
//! and `O(nm)` depending on structure. On dense random graphs the
//! unfolding fills up immediately and the saving is small (§4.4); on
//! sparse circuits it is large.

use super::karp::{karp_formula, INF};
use crate::budget::BudgetScope;
use crate::driver::SccOutcome;
use crate::error::SolveError;
use crate::instrument::Counters;
use crate::rational::Ratio64;
use crate::solution::Guarantee;
use mcr_graph::idx32;
use mcr_graph::{Graph, NodeId};

/// DG, λ only. Each unfolding level charges one budget iteration.
/// Takes the workspace for its sweep config and candidate scratch.
///
/// A level reads only the previous level's row, so as with Karp the
/// chunked sweep (phase A computes candidates for the frontier's
/// out-arcs against the frozen previous row, phase B commits in
/// frontier×adjacency order) reproduces the sequential table *and
/// counters* exactly, at any sweep-thread count.
pub(crate) fn lambda_scc(
    g: &Graph,
    counters: &mut Counters,
    ws: &mut crate::workspace::Workspace,
    scope: &mut BudgetScope,
) -> Result<Ratio64, SolveError> {
    let n = g.num_nodes();
    let sweep = ws.sweep;
    let chunked = sweep.is_chunked();
    let crate::workspace::SweepScratch {
        cand_i64,
        level_arcs,
        ..
    } = &mut ws.sw;
    let srcs = g.sources();
    let tgts = g.targets();
    let wts = g.weights();
    let mut d = vec![INF; (n + 1) * n];
    d[0] = 0;
    let mut frontier: Vec<u32> = vec![0];
    // touched[v] == k means v already joined level k's frontier.
    let mut touched = vec![u32::MAX; n];
    touched[0] = 0;
    scope.loop_metrics("core.dg.level");
    for k in 1..=idx32(n) {
        scope.tick_iteration_and_time()?;
        scope.chaos_check("core.dg.level")?;
        let mut reached = 0usize;
        let (prev_rows, cur_rows) = d.split_at_mut(k as usize * n);
        let prev = &prev_rows[(k as usize - 1) * n..];
        let cur = &mut cur_rows[..n];
        if chunked {
            // Gather this level's arcs in frontier×adjacency order —
            // the exact order the sequential pass scans them.
            level_arcs.clear();
            for &u in &frontier {
                debug_assert!(prev[u as usize] < INF, "frontier node without a walk");
                for (a, _target, _w, _t) in g.out_adj(NodeId::new(u as usize)) {
                    level_arcs.push(a);
                }
            }
            cand_i64.clear();
            cand_i64.resize(level_arcs.len(), 0);
            let chunks = sweep.num_chunks(level_arcs.len()) as u64;
            crate::obs::sweep_span("core.dg.level", chunks, || {
                let la = &level_arcs[..];
                crate::sweep::fill_candidates(cand_i64, sweep.chunk, sweep.threads, &|start,
                                                                                      out: &mut [i64]| {
                    for (j, c) in out.iter_mut().enumerate() {
                        let ai = la[start + j].index();
                        *c = prev[srcs[ai].index()] + wts[ai];
                    }
                });
                for (j, &a) in la.iter().enumerate() {
                    counters.arcs_visited += 1;
                    counters.relaxations += 1;
                    let v = tgts[a.index()].index();
                    let c = cand_i64[j];
                    if c < cur[v] {
                        cur[v] = c;
                        counters.distance_updates += 1;
                        if touched[v] != k {
                            touched[v] = k;
                            reached += 1;
                        }
                    }
                }
            });
        } else {
            for &u in &frontier {
                let du = prev[u as usize];
                debug_assert!(du < INF, "frontier node without a walk");
                for (_a, target, w, _t) in g.out_adj(NodeId::new(u as usize)) {
                    counters.arcs_visited += 1;
                    counters.relaxations += 1;
                    let v = target.index();
                    let cand = du + w;
                    if cand < cur[v] {
                        cur[v] = cand;
                        counters.distance_updates += 1;
                        if touched[v] != k {
                            touched[v] = k;
                            reached += 1;
                        }
                    }
                }
            }
        }
        // Rebuild the frontier in ascending node order so the next
        // level's adjacency sweep walks memory monotonically.
        frontier.clear();
        frontier.reserve(reached);
        for v in 0..idx32(n) {
            if touched[v as usize] == k {
                frontier.push(v);
            }
        }
    }
    Ok(karp_formula(&d, n))
}

/// DG on one strongly connected, cyclic component.
pub(crate) fn solve_scc(
    g: &Graph,
    counters: &mut Counters,
    ws: &mut crate::workspace::Workspace,
    scope: &mut BudgetScope,
) -> Result<SccOutcome, SolveError> {
    let lambda = lambda_scc(g, counters, ws, scope)?;
    let cycle = crate::critical::critical_cycle_ws(g, lambda, ws, scope)?;
    Ok(SccOutcome {
        lambda,
        cycle,
        guarantee: Guarantee::Exact,
        solved_by: crate::Algorithm::Dg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::Ratio64;
    use mcr_graph::graph::from_arc_list;

    fn dg_solve(g: &Graph, c: &mut Counters) -> SccOutcome {
        let mut scope = BudgetScope::unlimited(crate::Algorithm::Dg);
        solve_scc(g, c, &mut crate::workspace::Workspace::new(), &mut scope).expect("unlimited")
    }

    fn karp_solve(g: &Graph, c: &mut Counters) -> SccOutcome {
        let mut scope = BudgetScope::unlimited(crate::Algorithm::Karp);
        super::super::karp::solve_scc(g, c, &mut crate::workspace::Workspace::new(), &mut scope)
            .expect("unlimited")
    }

    fn lambda_of(g: &Graph) -> Ratio64 {
        let mut c = Counters::new();
        dg_solve(g, &mut c).lambda
    }

    #[test]
    fn matches_karp_on_random_graphs() {
        use mcr_gen::sprand::{sprand, SprandConfig};
        for seed in 0..25 {
            let g = sprand(&SprandConfig::new(12, 30).seed(seed).weight_range(-15, 15));
            let mut c = Counters::new();
            let karp = karp_solve(&g, &mut c).lambda;
            assert_eq!(lambda_of(&g), karp, "seed {seed}");
        }
    }

    #[test]
    fn visits_no_more_arcs_than_karp() {
        use mcr_gen::circuit::{circuit_graph, CircuitConfig};
        use mcr_graph::SccDecomposition;
        // Use the largest SCC of a circuit-like graph, where the
        // unfolding is narrow.
        let g = circuit_graph(&CircuitConfig::new(120).seed(2));
        let scc = SccDecomposition::new(&g);
        let big = (0..scc.num_components())
            .filter(|&c| scc.is_cyclic_component(&g, c))
            .max_by_key(|&c| scc.component(c).len())
            .expect("circuit has cycles");
        let (sub, _, _) = scc.component_subgraph(&g, big);
        let mut c_dg = Counters::new();
        let mut c_karp = Counters::new();
        let dg = dg_solve(&sub, &mut c_dg);
        let karp = karp_solve(&sub, &mut c_karp);
        assert_eq!(dg.lambda, karp.lambda);
        assert!(c_dg.arcs_visited <= c_karp.arcs_visited);
    }

    #[test]
    fn ring_unfolding_is_linear() {
        // On a pure ring the frontier is always a single node, so DG
        // visits exactly n arcs total (one per level).
        let g = from_arc_list(5, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1), (4, 0, 1)]);
        let mut c = Counters::new();
        let s = dg_solve(&g, &mut c);
        assert_eq!(s.lambda, Ratio64::from(1));
        assert_eq!(c.arcs_visited, (g.num_nodes()) as u64);
    }

    #[test]
    fn chunked_sweep_matches_sequential_exactly() {
        use crate::sweep::{SweepConfig, SweepMode};
        use mcr_gen::sprand::{sprand, SprandConfig};
        use mcr_graph::SccDecomposition;
        for seed in 0..5 {
            let g = sprand(&SprandConfig::new(24, 140).seed(seed).weight_range(-20, 20));
            let scc = SccDecomposition::new(&g);
            let Some(big) = (0..scc.num_components())
                .filter(|&c| scc.is_cyclic_component(&g, c))
                .max_by_key(|&c| scc.component(c).len())
            else {
                continue;
            };
            let (sub, _, _) = scc.component_subgraph(&g, big);
            let mut scope = BudgetScope::unlimited(crate::Algorithm::Dg);
            let mut ws = crate::workspace::Workspace::new();
            let mut c_seq = Counters::new();
            let seq = lambda_scc(&sub, &mut c_seq, &mut ws, &mut scope).expect("unlimited");
            for threads in [1, 2, 8] {
                let mut ws = crate::workspace::Workspace::new();
                ws.sweep = SweepConfig {
                    mode: SweepMode::Chunked,
                    chunk: 8,
                    threads,
                };
                let mut c_ch = Counters::new();
                let ch = lambda_scc(&sub, &mut c_ch, &mut ws, &mut scope).expect("unlimited");
                assert_eq!(seq, ch, "lambda differs: seed {seed} threads {threads}");
                assert_eq!(c_seq, c_ch, "counters differ: seed {seed} threads {threads}");
            }
        }
    }

    #[test]
    fn parallel_arcs_and_self_loops() {
        let g = from_arc_list(2, &[(0, 1, 3), (0, 1, 1), (1, 0, 1), (1, 1, 7)]);
        assert_eq!(lambda_of(&g), Ratio64::from(1));
    }
}
