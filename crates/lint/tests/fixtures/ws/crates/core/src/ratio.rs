pub fn l5_sites(v: &[u64]) -> u64 {
    let a = v.first().unwrap();
    let b = v[0];
    // lint: allow(panic) reason=fixture proves same-line-or-below suppression
    let c = v[1];
    let d = v.get(2).copied().unwrap_or(0);
    pulse("core.undeclared.site");
    pulse("core.good.site");
    a + b + c + d
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt_from_l5() {
        let x: Option<u64> = None;
        x.unwrap();
    }
}
