//! The optimum cost-to-time ratio problem (MCRP).
//!
//! The cycle *ratio* `w(C)/t(C)` generalizes the cycle mean (which is
//! the unit-transit special case). Several algorithms in the suite
//! handle general transit times natively — Howard, Burns, Lawler, and
//! the parametric pair KO/YTO — and this module exposes them. It also
//! implements the classic reduction in the other direction: expanding
//! each arc of transit time `t ≥ 1` into a chain of `t` unit-transit
//! arcs turns any MCM algorithm into an MCR algorithm (the
//! Hartmann–Orlin `O(Tm)` approach, item 13 of the paper's Table 1).
//!
//! # Preconditions
//!
//! A cycle ratio is only defined for cycles of positive total transit
//! time. All solvers here require every cycle of the input to have
//! `t(C) > 0` (zero-transit *arcs* are fine); a zero-transit cycle is a
//! causality violation in the modeled system and is reported by
//! [`has_zero_transit_cycle`].

use crate::algorithms::Algorithm;
use crate::budget::BudgetScope;
use crate::driver::{solve_per_scc, solve_per_scc_opts};
use crate::error::SolveError;
use crate::options::SolveOptions;
use crate::solution::Solution;
use crate::workspace::Workspace;
use mcr_graph::{ArcId, Graph, GraphBuilder, SccDecomposition};

/// Whether some cycle of `g` has zero total transit time (making cycle
/// ratios undefined).
///
/// ```
/// use mcr_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// let v = b.add_nodes(2);
/// b.add_arc_with_transit(v[0], v[1], 1, 0);
/// b.add_arc_with_transit(v[1], v[0], 1, 0);
/// assert!(mcr_core::ratio::has_zero_transit_cycle(&b.build()));
/// ```
pub fn has_zero_transit_cycle(g: &Graph) -> bool {
    // A zero-transit cycle lies entirely within zero-transit arcs.
    let mut b = GraphBuilder::with_capacity(g.num_nodes(), g.num_arcs());
    b.add_nodes(g.num_nodes());
    for a in g.arc_ids() {
        if g.transit(a) == 0 {
            b.add_arc(g.source(a), g.target(a), 0);
        }
    }
    mcr_graph::traverse::has_cycle(&b.build())
}

/// Minimum cycle ratio with Howard's exact policy iteration (the
/// default recommendation).
///
/// Returns `None` if `g` is acyclic or if a zero-transit cycle makes
/// the ratio undefined; use [`howard_ratio_exact_opts`] for the typed
/// error.
pub fn howard_ratio_exact(g: &Graph) -> Option<Solution> {
    howard_ratio_exact_opts(g, &SolveOptions::default()).ok()
}

/// [`howard_ratio_exact`] with explicit [`SolveOptions`] (thread count
/// for the per-SCC driver — results are bit-identical at every count —
/// plus the work [`Budget`](crate::Budget); the fallback chain does not
/// apply to the algorithm-specific ratio entry points).
pub fn howard_ratio_exact_opts(g: &Graph, opts: &SolveOptions) -> Result<Solution, SolveError> {
    crate::obs::solve_start(Algorithm::HowardExact.name(), g, opts.effective_threads());
    let deadline = opts.effective_deadline();
    let result = solve_per_scc_opts(g, opts, |_job, s, c, ws| {
        let mut scope = BudgetScope::new(&opts.budget, deadline, Algorithm::HowardExact)
            .with_cancel(opts.cancel.clone());
        crate::algorithms::howard::solve_scc_exact(s, c, ws, &mut scope)
    });
    match &result {
        Ok(sol) => crate::obs::solve_end_ok(&sol.lambda, sol.solved_by.name(), &sol.counters),
        Err(err) => crate::obs::solve_end_err(err.kind()),
    }
    result
}

/// Minimum cycle ratio with the paper's Figure-1 Howard (ε-terminated).
///
/// Returns `None` if `g` is acyclic, if `epsilon` is not positive and
/// finite, or if a zero-transit cycle makes the ratio undefined.
pub fn howard_ratio(g: &Graph, epsilon: f64) -> Option<Solution> {
    if !(epsilon > 0.0 && epsilon.is_finite()) {
        return None;
    }
    solve_per_scc(g, |_job, s, c, ws| {
        let mut scope = BudgetScope::unlimited(Algorithm::Howard);
        crate::algorithms::howard::solve_scc_fig1(s, c, epsilon, ws, &mut scope)
    })
    .ok()
}

/// Minimum cycle ratio with Burns' exact primal-dual algorithm (the
/// algorithm's original formulation — Burns developed it for
/// asynchronous circuit performance, a ratio problem).
///
/// Returns `None` if `g` is acyclic or if a zero-transit cycle makes
/// the ratio undefined.
pub fn burns_ratio(g: &Graph) -> Option<Solution> {
    solve_per_scc(g, |_job, s, c, _ws| {
        let mut scope = BudgetScope::unlimited(Algorithm::BurnsExact);
        crate::algorithms::burns::solve_scc(s, c, &mut scope)
    })
    .ok()
}

/// Minimum cycle ratio with the parametric shortest path algorithms.
/// `node_keyed` selects YTO's node-keyed heap (`true`) or KO's
/// arc-keyed heap (`false`).
pub fn parametric_ratio(g: &Graph, node_keyed: bool) -> Option<Solution> {
    use crate::algorithms::parametric::{solve_scc, HeapGranularity};
    let (granularity, alg) = if node_keyed {
        (HeapGranularity::PerNode, Algorithm::Yto)
    } else {
        (HeapGranularity::PerArc, Algorithm::Ko)
    };
    solve_per_scc(g, move |_job, s, c, _ws| {
        let mut scope = BudgetScope::unlimited(alg);
        solve_scc(s, c, granularity, &mut scope)
    })
    .ok()
}

/// Minimum cycle ratio with Megiddo's parametric search (Table 1 row
/// 12): exact, with oracle calls only at the master algorithm's own
/// decision points.
pub fn megiddo_ratio(g: &Graph) -> Option<Solution> {
    solve_per_scc(g, |_job, s, c, ws| {
        let mut scope = BudgetScope::unlimited(Algorithm::Megiddo);
        crate::algorithms::megiddo::solve_scc(s, c, ws, &mut scope)
    })
    .ok()
}

/// Minimum cycle ratio via the Ito–Parhi register-graph reduction
/// (Table 1 row 15, `O(Tm + T³)` with Karp inside). Re-exported from
/// [`crate::register_graph`].
pub use crate::register_graph::minimum_ratio_via_registers;

/// Minimum cycle ratio by ε-precision binary search (Lawler's method on
/// the ratio formulation).
///
/// Returns `None` if `g` is acyclic or if `epsilon` is not positive and
/// finite.
pub fn lawler_ratio(g: &Graph, epsilon: f64) -> Option<Solution> {
    if !(epsilon > 0.0 && epsilon.is_finite()) {
        return None;
    }
    solve_per_scc(g, |_job, s, c, ws| {
        let mut scope = BudgetScope::unlimited(Algorithm::Lawler);
        ratio_bisection(s, c, Some(epsilon), ws, &mut scope)
    })
    .ok()
}

/// Exact minimum cycle ratio by binary search plus a rational snap
/// (denominators are bounded by the component's total transit time).
pub fn lawler_ratio_exact(g: &Graph) -> Option<Solution> {
    lawler_ratio_exact_opts(g, &SolveOptions::default()).ok()
}

/// [`lawler_ratio_exact`] with explicit [`SolveOptions`] (threads and
/// budget; no fallback chain on the ratio entry points).
pub fn lawler_ratio_exact_opts(g: &Graph, opts: &SolveOptions) -> Result<Solution, SolveError> {
    crate::obs::solve_start(Algorithm::LawlerExact.name(), g, opts.effective_threads());
    let deadline = opts.effective_deadline();
    let result = solve_per_scc_opts(g, opts, |_job, s, c, ws| {
        let mut scope = BudgetScope::new(&opts.budget, deadline, Algorithm::LawlerExact)
            .with_cancel(opts.cancel.clone());
        ratio_bisection(s, c, None, ws, &mut scope)
    });
    match &result {
        Ok(sol) => crate::obs::solve_end_ok(&sol.lambda, sol.solved_by.name(), &sol.counters),
        Err(err) => crate::obs::solve_end_err(err.kind()),
    }
    result
}

/// Every bisection step charges an iteration and a λ-refinement, like
/// the mean-problem Lawler it mirrors.
pub(crate) fn ratio_bisection(
    g: &Graph,
    counters: &mut crate::instrument::Counters,
    epsilon: Option<f64>,
    ws: &mut Workspace,
    scope: &mut BudgetScope,
) -> Result<crate::driver::SccOutcome, SolveError> {
    use crate::bellman::{cycle_at_or_below_ws, has_cycle_below_ws};
    use crate::rational::Ratio64;
    use crate::solution::Guarantee;
    // |w(C)/t(C)| ≤ n·W since t(C) ≥ 1 for every cycle.
    let wabs = match g.arc_ids().map(|a| g.weight(a).abs()).max() {
        Some(w) => w,
        // The driver only dispatches cyclic components, so an arc-free
        // graph can only arrive through a direct call.
        None => return Err(SolveError::Acyclic),
    };
    let bound = wabs * g.num_nodes() as i64;
    let mut lo = Ratio64::from(-bound);
    let mut hi = Ratio64::from(bound);
    // Ratio denominators are bounded by the total transit time T.
    let total_t: i64 = g.arc_ids().map(|a| g.transit(a)).sum();
    let t_bound = total_t.max(1);
    let target = match epsilon {
        Some(_) => None,
        None => Some(Ratio64::new(1, t_bound.saturating_mul(t_bound - 1).max(1) + 1)),
    };
    scope.loop_metrics("core.ratio.bisect");
    loop {
        let width = hi - lo;
        let done = match epsilon {
            Some(e) => width.to_f64() <= e,
            None => target.is_some_and(|t| width < t),
        };
        if done {
            break;
        }
        if hi.denom() >= i64::MAX / 8 || lo.denom() >= i64::MAX / 8 {
            return Err(SolveError::NumericRange {
                context: "ratio bisection denominators exhausted the i64 range",
            });
        }
        counters.iterations += 1;
        scope.tick_iteration_and_time()?;
        scope.tick_refinement()?;
        scope.chaos_check("core.ratio.bisect")?;
        let mid = lo.midpoint(hi);
        if has_cycle_below_ws(g, mid, counters, ws, scope)? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let (lambda, guarantee) = match epsilon {
        Some(e) => (hi, Guarantee::Epsilon(e)),
        None => (Ratio64::simplest_in(lo, hi), Guarantee::Exact),
    };
    if !cycle_at_or_below_ws(g, lambda, counters, ws, scope)? {
        // The invariant λ* ≤ hi guarantees a witness.
        return Err(SolveError::NumericRange {
            context: "ratio bisection found no cycle at the upper bound",
        });
    }
    let cycle = ws.bf.cycle.clone();
    let w: i128 = cycle.iter().map(|&a| g.weight(a) as i128).sum();
    let t: i128 = cycle.iter().map(|&a| g.transit(a) as i128).sum();
    if t <= 0 {
        return Err(SolveError::ZeroTransitCycle);
    }
    let exact_ratio = Ratio64::try_from_i128(w, t).ok_or(SolveError::Overflow {
        context: "ratio bisection witness cycle ratio",
    })?;
    Ok(crate::driver::SccOutcome {
        lambda: exact_ratio,
        cycle,
        guarantee,
        solved_by: scope.algorithm(),
    })
}

/// Expands every arc of transit time `t ≥ 1` into a chain of `t`
/// unit-transit arcs (the first carries the weight, the rest weigh 0),
/// reducing MCRP to MCMP. Returns the expanded graph and, per expanded
/// arc, the original arc it came from paired with its segment index.
///
/// # Errors
///
/// Returns `Err` if any arc has transit time 0 (the reduction requires
/// strictly positive transits).
pub fn expand_transits(g: &Graph) -> Result<(Graph, Vec<(ArcId, i64)>), String> {
    let extra: i64 = g
        .arc_ids()
        .map(|a| {
            let t = g.transit(a);
            if t >= 1 {
                Ok(t - 1)
            } else {
                Err(format!("arc {a:?} has zero transit time"))
            }
        })
        .collect::<Result<Vec<i64>, String>>()?
        .iter()
        .sum();
    let mut b = GraphBuilder::with_capacity(
        g.num_nodes() + extra as usize,
        g.num_arcs() + extra as usize,
    );
    b.add_nodes(g.num_nodes());
    let mut origin = Vec::with_capacity(g.num_arcs() + extra as usize);
    for a in g.arc_ids() {
        let t = g.transit(a);
        let mut prev = g.source(a);
        for seg in 0..t {
            let next = if seg == t - 1 {
                g.target(a)
            } else {
                b.add_node()
            };
            let w = if seg == 0 { g.weight(a) } else { 0 };
            b.add_arc(prev, next, w);
            origin.push((a, seg));
            prev = next;
        }
    }
    Ok((b.build(), origin))
}

/// Minimum cycle ratio via the expansion reduction and an arbitrary MCM
/// [`Algorithm`] (the Hartmann–Orlin `O(Tm)` route when combined with a
/// linear-time-per-level MCM method).
///
/// # Errors
///
/// Returns `Err` if any arc has transit time 0.
pub fn ratio_via_expansion(g: &Graph, algorithm: Algorithm) -> Result<Option<Solution>, String> {
    let (expanded, origin) = expand_transits(g)?;
    let sol = match algorithm.solve(&expanded) {
        None => return Ok(None),
        Some(s) => s,
    };
    // Map the witness back: keep each original arc once (its segment 0),
    // preserving traversal order.
    let mut cycle: Vec<ArcId> = Vec::new();
    for &a in &sol.cycle {
        let Some(&(orig, seg)) = origin.get(a.index()) else {
            return Err("witness references an arc outside the expansion".to_string());
        };
        if seg == 0 {
            cycle.push(orig);
        }
    }
    // The expanded cycle may start mid-chain; rotate so consecutive arcs
    // connect in the original graph. Pairing each arc with its cyclic
    // predecessor (`skip(len - 1)` wraps the rotation) avoids indexing.
    if cycle.len() > 1 {
        let misfit = cycle
            .iter()
            .enumerate()
            .zip(cycle.iter().cycle().skip(cycle.len() - 1))
            .find(|&((_, &cur), &prev)| g.target(prev) != g.source(cur))
            .map(|((i, _), _)| i)
            .unwrap_or(0);
        cycle.rotate_left(misfit);
    }
    debug_assert!(crate::solution::check_cycle(g, &cycle).is_ok());
    Ok(Some(Solution {
        lambda: sol.lambda,
        cycle,
        guarantee: sol.guarantee,
        solved_by: sol.solved_by,
        counters: sol.counters,
    }))
}

/// Per-component transit statistics used by harnesses: `(components,
/// max total transit over cyclic components)`.
pub fn transit_profile(g: &Graph) -> (usize, i64) {
    let scc = SccDecomposition::new(g);
    let mut max_t = 0i64;
    let mut cyclic = 0usize;
    for c in 0..scc.num_components() {
        if !scc.is_cyclic_component(g, c) {
            continue;
        }
        cyclic += 1;
        let t: i64 = g
            .arc_ids()
            .filter(|&a| {
                scc.component_of(g.source(a)) == c && scc.component_of(g.target(a)) == c
            })
            .map(|a| g.transit(a))
            .sum();
        max_t = max_t.max(t);
    }
    (cyclic, max_t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::Ratio64;
    use crate::reference::brute_force_min_ratio;
    use mcr_gen::sprand::{sprand, SprandConfig};
    use mcr_gen::transit::with_random_transits;

    fn random_ratio_graph(seed: u64) -> Graph {
        let g = sprand(&SprandConfig::new(9, 22).seed(seed).weight_range(-20, 20));
        with_random_transits(&g, 1, 5, seed ^ 0xabcd)
    }

    #[test]
    fn all_ratio_solvers_agree_with_brute_force() {
        for seed in 0..30 {
            let g = random_ratio_graph(seed);
            let (expected, _) = brute_force_min_ratio(&g).expect("cyclic");
            assert_eq!(
                howard_ratio_exact(&g).unwrap().lambda,
                expected,
                "howard seed {seed}"
            );
            assert_eq!(burns_ratio(&g).unwrap().lambda, expected, "burns seed {seed}");
            assert_eq!(
                parametric_ratio(&g, true).unwrap().lambda,
                expected,
                "yto seed {seed}"
            );
            assert_eq!(
                parametric_ratio(&g, false).unwrap().lambda,
                expected,
                "ko seed {seed}"
            );
            assert_eq!(
                lawler_ratio_exact(&g).unwrap().lambda,
                expected,
                "lawler seed {seed}"
            );
            assert_eq!(
                ratio_via_expansion(&g, Algorithm::Karp)
                    .unwrap()
                    .unwrap()
                    .lambda,
                expected,
                "expansion seed {seed}"
            );
        }
    }

    #[test]
    fn approximate_ratio_solvers_are_close() {
        for seed in 0..10 {
            let g = random_ratio_graph(seed);
            let (expected, _) = brute_force_min_ratio(&g).expect("cyclic");
            let h = howard_ratio(&g, 1e-9).unwrap().lambda;
            assert_eq!(h, expected, "howard-fig1 seed {seed}");
            let l = lawler_ratio(&g, 1e-4).unwrap().lambda;
            assert!(l >= expected && l.to_f64() - expected.to_f64() <= 1e-4 + 1e-12);
        }
    }

    #[test]
    fn expansion_rejects_zero_transit() {
        let mut b = GraphBuilder::new();
        let v = b.add_nodes(2);
        b.add_arc_with_transit(v[0], v[1], 1, 0);
        b.add_arc_with_transit(v[1], v[0], 1, 2);
        let g = b.build();
        assert!(expand_transits(&g).is_err());
        assert!(ratio_via_expansion(&g, Algorithm::Karp).is_err());
        // But the native solvers handle it.
        assert_eq!(
            howard_ratio_exact(&g).unwrap().lambda,
            Ratio64::from(1)
        );
    }

    #[test]
    fn expansion_sizes() {
        let mut b = GraphBuilder::new();
        let v = b.add_nodes(2);
        b.add_arc_with_transit(v[0], v[1], 5, 3);
        b.add_arc_with_transit(v[1], v[0], 1, 1);
        let g = b.build();
        let (e, origin) = expand_transits(&g).expect("positive transits");
        assert_eq!(e.num_nodes(), 2 + 2);
        assert_eq!(e.num_arcs(), 4);
        assert_eq!(origin.len(), 4);
        assert!(e.has_unit_transits());
    }

    #[test]
    fn zero_transit_cycle_detection() {
        let mut b = GraphBuilder::new();
        let v = b.add_nodes(2);
        b.add_arc_with_transit(v[0], v[1], 1, 0);
        b.add_arc_with_transit(v[1], v[0], 1, 1);
        let ok = b.build();
        assert!(!has_zero_transit_cycle(&ok));
        let mut b = GraphBuilder::new();
        let v = b.add_nodes(2);
        b.add_arc_with_transit(v[0], v[1], 1, 0);
        b.add_arc_with_transit(v[1], v[0], 1, 0);
        assert!(has_zero_transit_cycle(&b.build()));
    }

    #[test]
    fn transit_profile_reports_cyclic_components() {
        let g = random_ratio_graph(3);
        let (cyclic, max_t) = transit_profile(&g);
        assert_eq!(cyclic, 1); // SPRAND graphs are strongly connected
        let total: i64 = g.arc_ids().map(|a| g.transit(a)).sum();
        assert_eq!(max_t, total);
    }

    use mcr_graph::GraphBuilder;
}
