//! Cross-validation of every route to the minimum cost-to-time ratio:
//! native solvers, the arc-expansion reduction, and the register-graph
//! reduction must agree exactly, with valid witnesses, on instances
//! spanning the transit-time spectrum (unit, mixed, zero-heavy).

use mcr_core::ratio::{
    burns_ratio, howard_ratio_exact, lawler_ratio_exact, megiddo_ratio,
    minimum_ratio_via_registers, parametric_ratio, ratio_via_expansion,
};
use mcr_core::register_graph::register_count;
use mcr_core::solution::check_cycle;
use mcr_core::{Algorithm, Ratio64, Solution};
use mcr_gen::sprand::{sprand, SprandConfig};
use mcr_graph::{Graph, GraphBuilder};

/// Instances with every arc carrying at least one register (all routes
/// apply, including expansion).
fn all_registered(seed: u64, n: usize, m: usize) -> Graph {
    use mcr_gen::transit::with_random_transits;
    let g = sprand(&SprandConfig::new(n, m).seed(seed).weight_range(-100, 100));
    with_random_transits(&g, 1, 6, seed.wrapping_mul(97))
}

/// Circuit-flavored: ring arcs registered, forward chords combinational.
fn circuit_flavored(seed: u64, n: usize, m: usize) -> Graph {
    let g = sprand(&SprandConfig::new(n, m).seed(seed).weight_range(-50, 50));
    let mut b = GraphBuilder::with_capacity(n, m);
    b.add_nodes(n);
    for a in g.arc_ids() {
        let t = if a.index() < n {
            1
        } else if g.source(a) < g.target(a) {
            0
        } else {
            2
        };
        b.add_arc_with_transit(g.source(a), g.target(a), g.weight(a), t);
    }
    b.build()
}

fn witness_ratio(g: &Graph, sol: &Solution) -> Ratio64 {
    let (w, _, t) = check_cycle(g, &sol.cycle).expect("valid witness");
    Ratio64::new(w, t)
}

fn check_routes(g: &Graph, label: &str, include_expansion: bool) {
    let reference = howard_ratio_exact(g).expect("cyclic");
    let expected = reference.lambda;
    assert_eq!(witness_ratio(g, &reference), expected, "{label}: howard witness");

    let mut routes: Vec<(&str, Solution)> = vec![
        ("burns", burns_ratio(g).expect("cyclic")),
        ("ko", parametric_ratio(g, false).expect("cyclic")),
        ("yto", parametric_ratio(g, true).expect("cyclic")),
        ("lawler", lawler_ratio_exact(g).expect("cyclic")),
        ("megiddo", megiddo_ratio(g).expect("cyclic")),
        (
            "registers+karp2",
            minimum_ratio_via_registers(g, Algorithm::Karp2).expect("cyclic"),
        ),
        (
            "registers+yto",
            minimum_ratio_via_registers(g, Algorithm::Yto).expect("cyclic"),
        ),
    ];
    if include_expansion {
        routes.push((
            "expand+dg",
            ratio_via_expansion(g, Algorithm::Dg)
                .expect("all transits positive")
                .expect("cyclic"),
        ));
    }
    for (name, sol) in routes {
        assert_eq!(sol.lambda, expected, "{label}: {name} lambda");
        assert_eq!(witness_ratio(g, &sol), expected, "{label}: {name} witness");
    }
}

#[test]
fn fully_registered_instances() {
    for seed in 0..8 {
        let g = all_registered(seed, 16, 48);
        check_routes(&g, &format!("registered-{seed}"), true);
    }
}

#[test]
fn circuit_flavored_instances() {
    for seed in 0..8 {
        let g = circuit_flavored(seed, 16, 44);
        // Zero-transit arcs: expansion route does not apply.
        check_routes(&g, &format!("circuit-{seed}"), false);
    }
}

#[test]
fn register_count_tracks_transits() {
    let g = all_registered(3, 12, 30);
    let t: i64 = g.arc_ids().map(|a| g.transit(a)).sum();
    assert_eq!(register_count(&g), t);
}

#[test]
fn larger_instances_stay_consistent() {
    // No brute force here — pure cross-validation at a size where the
    // routes exercise nontrivial internal structure.
    for seed in 0..3 {
        let g = all_registered(seed + 50, 120, 360);
        let a = howard_ratio_exact(&g).unwrap().lambda;
        let b = lawler_ratio_exact(&g).unwrap().lambda;
        let c = megiddo_ratio(&g).unwrap().lambda;
        let d = parametric_ratio(&g, true).unwrap().lambda;
        assert_eq!(a, b, "seed {seed}");
        assert_eq!(a, c, "seed {seed}");
        assert_eq!(a, d, "seed {seed}");
    }
}

#[test]
fn unit_transit_ratio_equals_mean_for_all_routes() {
    for seed in 0..5 {
        let g = sprand(&SprandConfig::new(14, 40).seed(seed));
        let mean = Algorithm::HowardExact.solve(&g).unwrap().lambda;
        check_routes(&g, &format!("unit-{seed}"), true);
        assert_eq!(howard_ratio_exact(&g).unwrap().lambda, mean);
    }
}
