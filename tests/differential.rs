//! Differential tests: every algorithm against the brute-force
//! reference and against each other, over several graph families.

use mcr::core::reference::{brute_force_min_mean, brute_force_min_ratio};
use mcr::core::{ratio, solution::check_cycle};
use mcr::gen::circuit::{circuit_graph, CircuitConfig};
use mcr::gen::sprand::{sprand, SprandConfig};
use mcr::gen::structured;
use mcr::gen::transit::with_random_transits;
use mcr::{Algorithm, Graph, Ratio64};

fn assert_all_exact_agree(g: &Graph, expected: Option<Ratio64>, label: &str) {
    for alg in Algorithm::ALL {
        let sol = alg.solve(g);
        match (&sol, expected) {
            (None, None) => {}
            (Some(sol), Some(expected)) => {
                let (w, len, _) = check_cycle(g, &sol.cycle)
                    .unwrap_or_else(|e| panic!("{label}/{}: bad witness: {e}", alg.name()));
                assert_eq!(
                    Ratio64::new(w, len as i64),
                    sol.lambda,
                    "{label}/{}: lambda is not the witness mean",
                    alg.name()
                );
                if alg.is_approximate() {
                    assert!(
                        sol.lambda >= expected,
                        "{label}/{}: below optimum",
                        alg.name()
                    );
                    let eps = Algorithm::default_epsilon(g);
                    assert!(
                        sol.lambda.to_f64() - expected.to_f64() <= 2.0 * eps + 1e-9,
                        "{label}/{}: {} vs {}",
                        alg.name(),
                        sol.lambda,
                        expected
                    );
                } else {
                    assert_eq!(sol.lambda, expected, "{label}/{}", alg.name());
                }
            }
            _ => panic!(
                "{label}/{}: cyclicity disagreement (got {:?}, expected {:?})",
                alg.name(),
                sol.as_ref().map(|s| s.lambda),
                expected
            ),
        }
    }
}

#[test]
fn sprand_family() {
    for seed in 0..30 {
        let g = sprand(&SprandConfig::new(12, 30).seed(seed).weight_range(-50, 50));
        let expected = brute_force_min_mean(&g).map(|(l, _)| l);
        assert_all_exact_agree(&g, expected, &format!("sprand-{seed}"));
    }
}

#[test]
fn sprand_positive_weights() {
    for seed in 0..15 {
        let g = sprand(&SprandConfig::new(14, 20).seed(seed)); // paper's [1,10000]
        let expected = brute_force_min_mean(&g).map(|(l, _)| l);
        assert_all_exact_agree(&g, expected, &format!("sprand-pos-{seed}"));
    }
}

#[test]
fn circuit_family_multi_scc() {
    for seed in 0..10 {
        let g = circuit_graph(&CircuitConfig::new(40).seed(seed));
        let expected = brute_force_min_mean(&g).map(|(l, _)| l);
        assert_all_exact_agree(&g, expected, &format!("circuit-{seed}"));
    }
}

#[test]
fn structured_families() {
    let cases: Vec<(Graph, &str)> = vec![
        (structured::ring(&[5]), "loop-1"),
        (structured::ring(&[-3, 7, 11, -2]), "ring-4"),
        (structured::complete(6, |u, v| (u as i64) * 3 - (v as i64)), "complete-6"),
        (structured::torus(3, 3, |r, c, d| (r + 2 * c + d) as i64), "torus-3x3"),
        (structured::two_rings_with_bridge(&[4, 4], &[1, 2, 3], 0), "two-rings"),
        (structured::shortcut_ladder(12), "ladder-12"),
        (structured::layered_dag(3, 3, |_, _, _| 1).0, "dag"),
    ];
    for (g, label) in cases {
        let expected = brute_force_min_mean(&g).map(|(l, _)| l);
        assert_all_exact_agree(&g, expected, label);
    }
}

#[test]
fn extreme_weights() {
    // Weights near the scaled-arithmetic comfort zone boundaries.
    let big = 1_000_000_007i64;
    let g = structured::ring(&[big, -big, big, big - 1]);
    let expected = brute_force_min_mean(&g).map(|(l, _)| l);
    assert_all_exact_agree(&g, expected, "big-weights");
}

#[test]
fn ratio_solvers_against_brute_force() {
    for seed in 0..20 {
        let g0 = sprand(&SprandConfig::new(10, 26).seed(seed).weight_range(-30, 30));
        let g = with_random_transits(&g0, 1, 6, seed.wrapping_mul(31));
        let (expected, _) = brute_force_min_ratio(&g).expect("cyclic");
        let solvers: Vec<(&str, Option<mcr::Solution>)> = vec![
            ("howard", ratio::howard_ratio_exact(&g)),
            ("burns", ratio::burns_ratio(&g)),
            ("ko", ratio::parametric_ratio(&g, false)),
            ("yto", ratio::parametric_ratio(&g, true)),
            ("lawler", ratio::lawler_ratio_exact(&g)),
            (
                "expand-ho",
                ratio::ratio_via_expansion(&g, Algorithm::Ho).expect("positive transits"),
            ),
            (
                "expand-karp2",
                ratio::ratio_via_expansion(&g, Algorithm::Karp2).expect("positive transits"),
            ),
        ];
        for (name, sol) in solvers {
            let sol = sol.expect("cyclic");
            assert_eq!(sol.lambda, expected, "{name} seed {seed}");
            let (w, _, t) = check_cycle(&g, &sol.cycle).expect("valid witness");
            assert_eq!(Ratio64::new(w, t), expected, "{name} witness seed {seed}");
        }
    }
}

#[test]
fn mean_equals_ratio_with_unit_transits() {
    for seed in 0..10 {
        let g = sprand(&SprandConfig::new(12, 36).seed(seed).weight_range(1, 100));
        let mean = mcr::minimum_cycle_mean(&g).unwrap().lambda;
        let ratio = mcr::minimum_cycle_ratio(&g).unwrap().lambda;
        assert_eq!(mean, ratio, "seed {seed}");
    }
}
