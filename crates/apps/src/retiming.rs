//! Synchronous circuit clock-period analysis.
//!
//! A sequential netlist is a digraph of combinational blocks connected
//! by wires carrying zero or more registers. Retiming may move
//! registers across blocks, but the register count of every *loop* is
//! invariant — so no retiming can clock the circuit faster than the
//! worst loop's delay-per-register, the **maximum cycle ratio**
//!
//! ```text
//! P_min = max_C  delay(C) / registers(C)
//! ```
//!
//! (Szymanski, "Computing optimal clock schedules", DAC 1992 — one of
//! the CAD applications the study names in §1.1.) This module exposes a
//! small netlist model, the bound itself, and the critical loops and
//! connections that constrain it.

use mcr_core::critical::critical_subgraph;
use mcr_core::{maximum_cycle_ratio, Ratio64};
use mcr_graph::{ArcId, Graph, GraphBuilder, NodeId};

/// A combinational block with a propagation delay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Human-readable instance name.
    pub name: String,
    /// Propagation delay in integer time units (e.g. picoseconds).
    pub delay: i64,
}

impl Block {
    /// Creates a named block.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative.
    pub fn new(name: impl Into<String>, delay: i64) -> Self {
        assert!(delay >= 0, "block delays must be nonnegative");
        Block {
            name: name.into(),
            delay,
        }
    }
}

/// Handle to a block in a [`Netlist`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BlockId(usize);

/// A sequential netlist: blocks plus register-carrying connections.
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    blocks: Vec<Block>,
    // (from, to, registers)
    connections: Vec<(usize, usize, i64)>,
}

/// The result of clock-period analysis.
#[derive(Clone, Debug)]
pub struct ClockAnalysis {
    /// The minimum feasible clock period over all retimings.
    pub min_period: Ratio64,
    /// Blocks on one performance-limiting loop, in traversal order.
    pub critical_loop: Vec<BlockId>,
    /// Every connection lying on some performance-limiting loop
    /// (targets for logic restructuring), as `(from, to)` block pairs.
    pub critical_connections: Vec<(BlockId, BlockId)>,
}

impl Netlist {
    /// An empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a block and returns its handle.
    pub fn add_block(&mut self, block: Block) -> BlockId {
        self.blocks.push(block);
        BlockId(self.blocks.len() - 1)
    }

    /// Connects two blocks with `registers` registers on the wire.
    ///
    /// # Panics
    ///
    /// Panics if a handle is stale or `registers` is negative.
    pub fn connect(&mut self, from: BlockId, to: BlockId, registers: i64) {
        assert!(from.0 < self.blocks.len() && to.0 < self.blocks.len());
        assert!(registers >= 0, "register counts must be nonnegative");
        self.connections.push((from.0, to.0, registers));
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The block behind a handle.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0]
    }

    /// Builds the timing graph: arc weight = source block delay, arc
    /// transit = register count. (Modeling the block delay on its
    /// outgoing arcs makes loop weight = total loop delay.)
    fn timing_graph(&self) -> Graph {
        let mut b = GraphBuilder::with_capacity(self.blocks.len(), self.connections.len());
        b.add_nodes(self.blocks.len());
        for &(from, to, regs) in &self.connections {
            b.add_arc_with_transit(
                NodeId::new(from),
                NodeId::new(to),
                self.blocks[from].delay,
                regs,
            );
        }
        b.build()
    }

    /// Whether the netlist contains a combinational loop (a cycle with
    /// zero registers), which makes it unclockable.
    pub fn has_combinational_loop(&self) -> bool {
        mcr_core::ratio::has_zero_transit_cycle(&self.timing_graph())
    }

    /// Computes the minimum feasible clock period and the critical
    /// structure. Returns `None` for an acyclic (purely feed-forward)
    /// netlist, whose period is limited only by combinational depth,
    /// not by any loop.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the netlist has a combinational loop.
    pub fn analyze(&self) -> Result<Option<ClockAnalysis>, String> {
        let g = self.timing_graph();
        if mcr_core::ratio::has_zero_transit_cycle(&g) {
            return Err("netlist contains a combinational loop".into());
        }
        let sol = match maximum_cycle_ratio(&g) {
            None => return Ok(None),
            Some(s) => s,
        };
        let critical_loop = sol
            .cycle
            .iter()
            .map(|&a| BlockId(g.source(a).index()))
            .collect();
        // Critical arcs of the negated (minimization) problem.
        let cs = critical_subgraph(&g.negated(), -sol.lambda)
            .map_err(|e| format!("internal: {e}"))?;
        let critical_connections = cs
            .arcs
            .iter()
            .map(|&a: &ArcId| (BlockId(g.source(a).index()), BlockId(g.target(a).index())))
            .collect();
        Ok(Some(ClockAnalysis {
            min_period: sol.lambda,
            critical_loop,
            critical_connections,
        }))
    }
}

impl Netlist {
    /// Computes a legal clock schedule for a target `period`: per-block
    /// rational *departure offsets* `r` such that every connection
    /// meets timing,
    ///
    /// ```text
    /// r(u) + delay(u) ≤ r(v) + period · registers(u → v)
    /// ```
    ///
    /// for each connection `u → v` (Szymanski's optimal clock
    /// schedules, DAC 1992). A schedule exists iff `period` is at least
    /// the loop bound from [`Netlist::analyze`]; feed-forward slack is
    /// always schedulable.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the netlist has a combinational loop or the
    /// period is below the minimum feasible one.
    pub fn clock_schedule(&self, period: Ratio64) -> Result<Vec<Ratio64>, String> {
        use mcr_core::bellman::{bellman_ford, CycleCheck};
        let g = self.timing_graph();
        if mcr_core::ratio::has_zero_transit_cycle(&g) {
            return Err("netlist contains a combinational loop".into());
        }
        // Constraint r(v) − r(u) ≥ delay(u) − P·regs: shortest-path
        // potentials of the arc costs P·regs − delay (scaled by the
        // period's denominator) provide r(v) = −dist(v).
        let p = period.numer() as i128;
        let q = period.denom() as i128;
        let costs: Vec<i128> = g
            .arc_ids()
            .map(|a| p * g.transit(a) as i128 - g.weight(a) as i128 * q)
            .collect();
        let mut counters = mcr_core::Counters::new();
        match bellman_ford(&g, &costs, true, &mut counters) {
            CycleCheck::Feasible(dist) => Ok(dist
                .into_iter()
                .map(|d| -Ratio64::from_i128(d, q))
                .collect()),
            CycleCheck::NegativeCycle(_) => Err(format!(
                "period {period} is below the minimum feasible clock period"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_loop_netlist() -> (Netlist, BlockId, BlockId, BlockId) {
        let mut nl = Netlist::new();
        let a = nl.add_block(Block::new("a", 10));
        let b = nl.add_block(Block::new("b", 20));
        let c = nl.add_block(Block::new("c", 5));
        nl.connect(a, b, 1);
        nl.connect(b, a, 1); // loop A: delay 30 / 2 regs = 15
        nl.connect(b, c, 0);
        nl.connect(c, b, 1); // loop B: delay 25 / 1 reg = 25
        (nl, a, b, c)
    }

    #[test]
    fn min_period_is_worst_loop() {
        let (nl, _, b, c) = two_loop_netlist();
        let analysis = nl.analyze().expect("no comb loop").expect("cyclic");
        assert_eq!(analysis.min_period, Ratio64::from(25));
        let mut loop_blocks = analysis.critical_loop.clone();
        loop_blocks.sort_by_key(|id| id.0);
        assert_eq!(loop_blocks, vec![b, c]);
    }

    #[test]
    fn critical_connections_cover_critical_loop() {
        let (nl, _, b, c) = two_loop_netlist();
        let analysis = nl.analyze().unwrap().unwrap();
        assert!(analysis.critical_connections.contains(&(b, c)));
        assert!(analysis.critical_connections.contains(&(c, b)));
    }

    #[test]
    fn feed_forward_netlist_has_no_loop_bound() {
        let mut nl = Netlist::new();
        let a = nl.add_block(Block::new("a", 10));
        let b = nl.add_block(Block::new("b", 20));
        nl.connect(a, b, 1);
        assert!(nl.analyze().expect("valid").is_none());
    }

    #[test]
    fn combinational_loop_is_an_error() {
        let mut nl = Netlist::new();
        let a = nl.add_block(Block::new("a", 1));
        let b = nl.add_block(Block::new("b", 1));
        nl.connect(a, b, 0);
        nl.connect(b, a, 0);
        assert!(nl.has_combinational_loop());
        assert!(nl.analyze().is_err());
    }

    #[test]
    fn zero_delay_blocks_are_fine() {
        let mut nl = Netlist::new();
        let a = nl.add_block(Block::new("wire", 0));
        nl.connect(a, a, 2);
        let analysis = nl.analyze().unwrap().unwrap();
        assert_eq!(analysis.min_period, Ratio64::ZERO);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_delay_panics() {
        Block::new("bad", -1);
    }

    fn schedule_is_legal(nl: &Netlist, period: Ratio64, r: &[Ratio64]) {
        // Re-check every constraint r(u) + d(u) ≤ r(v) + P·regs.
        for &(from, to, regs) in &nl.connections {
            let lhs = r[from] + Ratio64::from(nl.blocks[from].delay);
            let rhs = r[to] + period * Ratio64::from(regs);
            assert!(lhs <= rhs, "{from}->{to}: {lhs} > {rhs}");
        }
    }

    #[test]
    fn schedule_exists_exactly_at_the_bound() {
        let (nl, _, _, _) = two_loop_netlist();
        let pmin = nl.analyze().unwrap().unwrap().min_period;
        let r = nl.clock_schedule(pmin).expect("feasible at the bound");
        schedule_is_legal(&nl, pmin, &r);
        // Slightly slower clock also works.
        let relaxed = pmin + Ratio64::new(1, 2);
        let r2 = nl.clock_schedule(relaxed).expect("feasible above the bound");
        schedule_is_legal(&nl, relaxed, &r2);
        // Anything faster is infeasible.
        let err = nl.clock_schedule(pmin - Ratio64::new(1, 7));
        assert!(err.is_err());
    }

    #[test]
    fn feed_forward_always_schedulable() {
        let mut nl = Netlist::new();
        let a = nl.add_block(Block::new("a", 30));
        let b = nl.add_block(Block::new("b", 1));
        nl.connect(a, b, 1);
        // Even a period far below the block delay is schedulable by
        // skewing (no loop constrains it).
        let p = Ratio64::from(2);
        let r = nl.clock_schedule(p).expect("feed-forward");
        schedule_is_legal(&nl, p, &r);
    }

    #[test]
    fn combinational_loop_rejected_in_scheduling() {
        let mut nl = Netlist::new();
        let a = nl.add_block(Block::new("a", 1));
        nl.connect(a, a, 0);
        assert!(nl.clock_schedule(Ratio64::from(10)).is_err());
    }
}
