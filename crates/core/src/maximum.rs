//! Maximum cycle mean / ratio via negation.
//!
//! `max_C w(C)/t(C) = −min_C (−w)(C)/t(C)`, so every minimum solver
//! doubles as a maximum solver on the negated graph. The maximum cycle
//! mean is the quantity CAD applications usually need directly: the
//! minimum clock period of a synchronous circuit and the iteration bound
//! of a dataflow graph are *maximum* ratios.

use crate::algorithms::Algorithm;
use crate::solution::Solution;
use mcr_graph::Graph;

fn negate_solution(mut sol: Solution) -> Solution {
    sol.lambda = -sol.lambda;
    sol
}

/// Maximum cycle mean of `g` (exact, Howard), or `None` if acyclic.
///
/// ```
/// use mcr_graph::graph::from_arc_list;
/// let g = from_arc_list(2, &[(0, 1, 1), (1, 0, 1), (0, 0, 9)]);
/// let sol = mcr_core::maximum::maximum_cycle_mean(&g).expect("cyclic");
/// assert_eq!(sol.lambda, mcr_core::Ratio64::from(9));
/// ```
pub fn maximum_cycle_mean(g: &Graph) -> Option<Solution> {
    maximum_cycle_mean_with(g, Algorithm::HowardExact)
}

/// Maximum cycle mean with a chosen algorithm.
pub fn maximum_cycle_mean_with(g: &Graph, algorithm: Algorithm) -> Option<Solution> {
    algorithm.solve(&g.negated()).map(negate_solution)
}

/// [`maximum_cycle_mean_with`] with explicit [`crate::SolveOptions`]
/// (thread count for the per-SCC driver, precision for approximate
/// algorithms, budget and fallback chain). Errors mirror
/// [`Algorithm::solve_with_options`].
pub fn maximum_cycle_mean_opts(
    g: &Graph,
    algorithm: Algorithm,
    opts: &crate::SolveOptions,
) -> Result<Solution, crate::SolveError> {
    algorithm
        .solve_with_options(&g.negated(), opts)
        .map(negate_solution)
}

/// Maximum cost-to-time ratio of `g` (exact, Howard), or `None` if
/// acyclic or if a zero-transit cycle makes the ratio undefined.
pub fn maximum_cycle_ratio(g: &Graph) -> Option<Solution> {
    crate::ratio::howard_ratio_exact(&g.negated()).map(negate_solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::Ratio64;
    use crate::reference::{brute_force_min_mean, brute_force_min_ratio, for_each_simple_cycle};
    use mcr_gen::sprand::{sprand, SprandConfig};
    use mcr_gen::transit::with_random_transits;

    fn brute_max_mean(g: &Graph) -> Option<Ratio64> {
        let mut best: Option<Ratio64> = None;
        for_each_simple_cycle(g, |cycle| {
            let w: i64 = cycle.iter().map(|&a| g.weight(a)).sum();
            let mean = Ratio64::new(w, cycle.len() as i64);
            if best.is_none_or(|b| mean > b) {
                best = Some(mean);
            }
        });
        best
    }

    #[test]
    fn max_mean_matches_brute_force() {
        for seed in 0..20 {
            let g = sprand(&SprandConfig::new(9, 24).seed(seed).weight_range(-30, 30));
            let expected = brute_max_mean(&g).expect("cyclic");
            let sol = maximum_cycle_mean(&g).expect("cyclic");
            assert_eq!(sol.lambda, expected, "seed {seed}");
            // Witness cycle achieves the max.
            assert_eq!(sol.cycle_mean(&g), expected);
        }
    }

    #[test]
    fn duality_with_minimum() {
        for seed in 0..10 {
            let g = sprand(&SprandConfig::new(10, 25).seed(seed).weight_range(-9, 9));
            let max = maximum_cycle_mean(&g).unwrap().lambda;
            let min_neg = brute_force_min_mean(&g.negated()).unwrap().0;
            assert_eq!(max, -min_neg);
        }
    }

    #[test]
    fn max_ratio_with_transits() {
        for seed in 0..10 {
            let g0 = sprand(&SprandConfig::new(8, 20).seed(seed).weight_range(1, 50));
            let g = with_random_transits(&g0, 1, 4, seed);
            let sol = maximum_cycle_ratio(&g).expect("cyclic");
            // Cross-check against negated brute force.
            let expected = -brute_force_min_ratio(&g.negated()).unwrap().0;
            assert_eq!(sol.lambda, expected, "seed {seed}");
        }
    }

    #[test]
    fn every_algorithm_solves_the_max_problem() {
        let g = sprand(&SprandConfig::new(12, 30).seed(5).weight_range(1, 99));
        let expected = brute_max_mean(&g).expect("cyclic");
        for alg in [
            Algorithm::Burns,
            Algorithm::Ko,
            Algorithm::Yto,
            Algorithm::HowardExact,
            Algorithm::Karp,
            Algorithm::LawlerExact,
        ] {
            let sol = maximum_cycle_mean_with(&g, alg).expect("cyclic");
            assert_eq!(sol.lambda, expected, "{}", alg.name());
        }
    }

    use mcr_graph::Graph;
}
