//! `mcrd` — the batched solve daemon.
//!
//! ```text
//! mcrd [--listen ADDR] [--workers N] [--queue-depth N]
//!      [--cache-capacity N] [--journal-dir DIR]
//!      [--slice-iters N] [--retry-after-ms N]
//! ```
//!
//! Prints `mcrd listening on <addr>` (stdout, flushed) once the socket
//! is bound — with `--listen 127.0.0.1:0` that line is how scripts
//! learn the port. Runs until a `shutdown` request arrives, then dumps
//! its `mcr-metrics v1` counters to stdout and exits 0. Configuration
//! errors exit 1 with a message on stderr.

use mcr_serve::{serve, ServeConfig};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: mcrd [--listen ADDR] [--workers N] [--queue-depth N] \
                     [--cache-capacity N] [--journal-dir DIR] [--slice-iters N] \
                     [--retry-after-ms N]";

fn parse_config(args: &[String]) -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--listen" => cfg.addr = value("--listen")?,
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue-depth" => {
                cfg.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?;
            }
            "--cache-capacity" => {
                cfg.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("--cache-capacity: {e}"))?;
            }
            "--journal-dir" => cfg.journal_dir = Some(PathBuf::from(value("--journal-dir")?)),
            "--slice-iters" => {
                cfg.slice_iterations = value("--slice-iters")?
                    .parse()
                    .map_err(|e| format!("--slice-iters: {e}"))?;
            }
            "--retry-after-ms" => {
                cfg.retry_after_ms = value("--retry-after-ms")?
                    .parse()
                    .map_err(|e| format!("--retry-after-ms: {e}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if cfg.queue_depth == 0 {
        return Err("--queue-depth must be at least 1".to_string());
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_config(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("mcrd: {msg}");
            return ExitCode::from(1);
        }
    };
    let handle = match serve(cfg) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("mcrd: failed to start: {e}");
            return ExitCode::from(1);
        }
    };
    println!("mcrd listening on {}", handle.local_addr());
    let _ = std::io::stdout().flush();
    let final_metrics = handle.wait();
    print!("{final_metrics}");
    ExitCode::from(0)
}
