use std::collections::HashMap;

// lint: allow(nondet) reason=fixture proves the nondet tag suppresses
pub fn scratch_table() -> HashMap<u64, u64> { HashMap::new() }
