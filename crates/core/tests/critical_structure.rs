//! Structural guarantees of the critical subgraph: it contains *every*
//! minimum mean cycle (verified exhaustively against the cycle
//! enumerator), all its arcs are tight, and it is exactly the
//! performance-limiting core the paper describes in §2.

use mcr_core::bellman::{bellman_ford, scaled_costs, CycleCheck};
use mcr_core::critical::{critical_cycle, critical_subgraph};
use mcr_core::reference::{brute_force_min_mean, for_each_simple_cycle};
use mcr_core::{Counters, Ratio64};
use mcr_gen::sprand::{sprand, SprandConfig};
use mcr_graph::Graph;
use std::collections::HashSet;

fn instance(seed: u64) -> Graph {
    sprand(&SprandConfig::new(11, 30).seed(seed).weight_range(-20, 20))
}

#[test]
fn contains_every_minimum_mean_cycle() {
    for seed in 0..15 {
        let g = instance(seed);
        let (lambda, _) = brute_force_min_mean(&g).expect("cyclic");
        let cs = critical_subgraph(&g, lambda).expect("optimal lambda");
        let critical: HashSet<_> = cs.arcs.iter().copied().collect();
        for_each_simple_cycle(&g, |cycle| {
            let w: i64 = cycle.iter().map(|&a| g.weight(a)).sum();
            if Ratio64::new(w, cycle.len() as i64) == lambda {
                for a in cycle {
                    assert!(
                        critical.contains(a),
                        "seed {seed}: min-mean cycle arc {a:?} missing"
                    );
                }
            }
        });
    }
}

#[test]
fn every_critical_arc_is_tight() {
    for seed in 0..15 {
        let g = instance(seed);
        let (lambda, _) = brute_force_min_mean(&g).expect("cyclic");
        let cost = scaled_costs(&g, lambda);
        let mut c = Counters::new();
        let dist = match bellman_ford(&g, &cost, true, &mut c) {
            CycleCheck::Feasible(d) => d,
            CycleCheck::NegativeCycle(_) => panic!("lambda is optimal"),
        };
        let cs = critical_subgraph(&g, lambda).expect("optimal lambda");
        let critical: HashSet<_> = cs.arcs.iter().copied().collect();
        for a in g.arc_ids() {
            let tight =
                dist[g.source(a).index()] + cost[a.index()] == dist[g.target(a).index()];
            assert_eq!(critical.contains(&a), tight, "seed {seed} arc {a:?}");
        }
    }
}

#[test]
fn critical_cycle_is_inside_and_optimal() {
    for seed in 0..15 {
        let g = instance(seed);
        let (lambda, _) = brute_force_min_mean(&g).expect("cyclic");
        let cyc = critical_cycle(&g, lambda).expect("optimal lambda");
        let w: i64 = cyc.iter().map(|&a| g.weight(a)).sum();
        assert_eq!(Ratio64::new(w, cyc.len() as i64), lambda, "seed {seed}");
        let cs = critical_subgraph(&g, lambda).expect("optimal lambda");
        let critical: HashSet<_> = cs.arcs.iter().copied().collect();
        for a in cyc {
            assert!(critical.contains(&a), "seed {seed}");
        }
    }
}

#[test]
fn critical_nodes_are_endpoints_of_critical_arcs() {
    for seed in 0..10 {
        let g = instance(seed);
        let (lambda, _) = brute_force_min_mean(&g).expect("cyclic");
        let cs = critical_subgraph(&g, lambda).expect("optimal lambda");
        let mut expected = vec![false; g.num_nodes()];
        for &a in &cs.arcs {
            expected[g.source(a).index()] = true;
            expected[g.target(a).index()] = true;
        }
        assert_eq!(cs.node_is_critical, expected, "seed {seed}");
        let listed: Vec<usize> = cs.nodes().iter().map(|v| v.index()).collect();
        let from_flags: Vec<usize> = (0..g.num_nodes()).filter(|&v| expected[v]).collect();
        assert_eq!(listed, from_flags);
    }
}

#[test]
fn subgraph_shrinks_as_lambda_grows_toward_optimum() {
    // For λ < λ*, fewer (or equal) arcs are tight than at λ*... not in
    // general — but at λ far below every arc weight, nothing on a cycle
    // is tight. Check the boundary behaviors instead.
    let g = instance(42);
    let (lambda, _) = brute_force_min_mean(&g).expect("cyclic");
    // At the optimum: critical subgraph is cyclic (contains a min cycle).
    let at_opt = critical_subgraph(&g, lambda).expect("optimal");
    assert!(!at_opt.arcs.is_empty());
    // Below the optimum: still well-defined, but the tight subgraph is
    // acyclic (no cycle achieves the smaller mean).
    let below = critical_subgraph(&g, lambda - Ratio64::from(1)).expect("feasible");
    let arcs: Vec<_> = below.arcs.clone();
    assert!(
        mcr_graph::traverse::topological_order(&subgraph_of(&g, &arcs)).is_some(),
        "tight subgraph below lambda* must be acyclic"
    );
    // Above the optimum: error.
    assert!(critical_subgraph(&g, lambda + Ratio64::new(1, 1000)).is_err());
}

fn subgraph_of(g: &Graph, arcs: &[mcr_graph::ArcId]) -> Graph {
    let mut b = mcr_graph::GraphBuilder::new();
    b.add_nodes(g.num_nodes());
    for &a in arcs {
        b.add_arc(g.source(a), g.target(a), g.weight(a));
    }
    b.build()
}
