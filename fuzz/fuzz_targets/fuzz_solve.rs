#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    mcr_fuzz::fuzz_solve(data);
});
