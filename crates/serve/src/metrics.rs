//! Service counters, rendered as `mcr-metrics v1` JSONL.
//!
//! The daemon keeps a fixed set of atomic counters covering every
//! stage of the request path. The `metrics` op (and `mcrd`'s exit
//! dump) renders them in the same JSONL shape `mcr-obs` uses — a
//! `metrics.header` line followed by one `counter` line per metric —
//! so the existing trace tooling can consume either source. The crate
//! deliberately does *not* depend on `mcr-obs`: the service must stay
//! observable even when the solver-side observability feature is
//! compiled out, and the CI dependency walls keep `mcr-core` free of
//! `mcr-obs` in default builds.

use crate::json::ObjWriter;
use std::sync::atomic::{AtomicU64, Ordering};

/// Schema tag on every rendered line (matches `mcr_obs::METRICS_SCHEMA`).
pub const METRICS_SCHEMA: &str = "mcr-metrics v1";

macro_rules! metrics_struct {
    ($($(#[$doc:meta])* $field:ident => $name:literal,)+) => {
        /// The daemon-wide counter registry. All counters are
        /// monotonic; relaxed ordering is enough because readers only
        /// ever want a recent snapshot, not a synchronization edge.
        #[derive(Default)]
        pub struct Metrics {
            $($(#[$doc])* pub $field: AtomicU64,)+
        }

        impl Metrics {
            /// Counter names in render order.
            pub const NAMES: &'static [&'static str] = &[$($name,)+];

            /// Renders the registry as `mcr-metrics v1` JSONL.
            pub fn render(&self) -> String {
                let mut out = String::new();
                out.push_str(
                    &ObjWriter::new()
                        .str("schema", METRICS_SCHEMA)
                        .str("kind", "metrics.header")
                        .u64("counters", Self::NAMES.len() as u64)
                        .u64("timings", 0)
                        .finish(),
                );
                out.push('\n');
                $(
                    out.push_str(
                        &ObjWriter::new()
                            .str("schema", METRICS_SCHEMA)
                            .str("kind", "counter")
                            .str("name", $name)
                            .u64("value", self.$field.load(Ordering::Relaxed))
                            .finish(),
                    );
                    out.push('\n');
                )+
                out
            }

            /// Reads one counter by wire name (test/assertion helper).
            pub fn value(&self, name: &str) -> Option<u64> {
                match name {
                    $($name => Some(self.$field.load(Ordering::Relaxed)),)+
                    _ => None,
                }
            }
        }
    };
}

metrics_struct! {
    /// Solve requests admitted to the queue.
    accepted => "serve.requests.accepted",
    /// Solve requests shed at admission (queue full, journal down,
    /// injected admission fault).
    rejected => "serve.requests.rejected",
    /// Solve requests answered with status `ok`.
    completed => "serve.requests.completed",
    /// Solve requests that tripped their deadline (status `cancelled`).
    cancelled => "serve.requests.cancelled",
    /// Solve requests answered with any other non-`ok` status.
    failed => "serve.requests.failed",
    /// Graph cache hits (instance reused, parse + SCC skipped).
    cache_hit => "serve.cache.hit",
    /// Graph cache misses (inline text parsed, or unknown hash).
    cache_miss => "serve.cache.miss",
    /// DIMACS parses actually performed.
    graph_parse => "serve.graph.parse",
    /// SCC plans actually built ([`mcr_core::SccPlan::prepare`] runs).
    plan_build => "serve.plan.build",
    /// Journaled in-flight requests re-queued on restart.
    journal_recovered => "serve.journal.recovered",
    /// Journal entries skipped during recovery (corrupt line or
    /// injected replay fault).
    journal_skipped => "serve.journal.skipped",
    /// Checkpoint slices executed by the sliced-solve loop.
    solve_slices => "serve.solve.slices",
    /// Solves resumed from an on-disk checkpoint.
    solve_resumed => "serve.solve.resumed",
    /// Frame-level I/O errors on any connection (read or write side).
    frame_errors => "serve.frame.errors",
    /// Duplicate requests answered from the settled journal state
    /// (a client resend after a lost response; no re-solve happened).
    dedup_settled => "serve.dedup.settled",
    /// Duplicate requests held off because the original is in flight
    /// (answered overloaded-retryable with a backoff hint).
    dedup_inflight => "serve.dedup.inflight",
    /// Requests shed because the daemon is draining for shutdown.
    drained => "serve.requests.drained",
    /// Edit batches applied to cached instances (the `edit` op settled
    /// `ok`; each one also invalidated the instance's cached plans).
    edit_applied => "serve.edit.applied",
}

impl Metrics {
    /// Relaxed add, for the common `+= 1` call sites.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};

    #[test]
    fn renders_header_then_one_line_per_counter() {
        let m = Metrics::default();
        m.cache_hit.fetch_add(3, Ordering::Relaxed);
        let text = m.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + Metrics::NAMES.len());
        let header = json::parse(lines[0]).expect("header parses");
        assert_eq!(
            header.get("schema").and_then(Value::as_str),
            Some(METRICS_SCHEMA)
        );
        assert_eq!(
            header.get("kind").and_then(Value::as_str),
            Some("metrics.header")
        );
        let mut saw_hit = false;
        for line in &lines[1..] {
            let v = json::parse(line).expect("counter line parses");
            assert_eq!(v.get("kind").and_then(Value::as_str), Some("counter"));
            if v.get("name").and_then(Value::as_str) == Some("serve.cache.hit") {
                assert_eq!(v.get("value").and_then(Value::as_u64), Some(3));
                saw_hit = true;
            }
        }
        assert!(saw_hit);
    }

    #[test]
    fn value_lookup_matches_names() {
        let m = Metrics::default();
        for name in Metrics::NAMES {
            assert_eq!(m.value(name), Some(0), "{name}");
        }
        assert_eq!(m.value("serve.not.a.counter"), None);
    }
}
