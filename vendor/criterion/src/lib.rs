//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network and no registry cache, so the
//! workspace vendors a minimal wall-clock harness exposing the subset
//! of the criterion 0.5 API its benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, `bench_with_input`,
//! [`BenchmarkId::new`], and [`Bencher::iter`].
//!
//! Reporting is intentionally simple: each benchmark prints its median,
//! minimum, and mean per-iteration time over `sample_size` samples.
//! There is no statistical outlier analysis, warm-up tuning, or HTML
//! report — numbers are honest wall-clock medians, suitable for
//! relative comparisons on a quiet machine.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies a bench as `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        let name = function_name.into();
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the closure under measurement; [`Bencher::iter`] runs and
/// times the workload.
pub struct Bencher {
    samples: usize,
    /// Median/min/mean per-iteration nanoseconds, filled by `iter`.
    result: Option<(u128, u128, u128)>,
}

impl Bencher {
    /// Times `routine`, returning control once enough samples are
    /// collected. Each sample runs the routine enough times to exceed a
    /// small time floor so cheap routines are not dominated by clock
    /// granularity.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-sample iteration-count calibration.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            if start.elapsed() >= Duration::from_millis(2) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        let mut per_iter: Vec<u128> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters_per_sample {
                    std::hint::black_box(routine());
                }
                start.elapsed().as_nanos() / iters_per_sample as u128
            })
            .collect();
        per_iter.sort_unstable();
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let mean = per_iter.iter().sum::<u128>() / per_iter.len() as u128;
        self.result = Some((median, min, mean));
    }
}

fn human(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(full_name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((median, min, mean)) => println!(
            "bench {full_name:<50} median {:>12}   min {:>12}   mean {:>12}",
            human(median),
            human(min),
            human(mean),
        ),
        None => println!("bench {full_name:<50} (no measurement: iter was never called)"),
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timing samples per benchmark (floor of 5).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(5);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.samples,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    samples: usize,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = if self.samples == 0 { 10 } else { self.samples };
        BenchmarkGroup {
            name: name.into(),
            samples,
            _criterion: self,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let samples = if self.samples == 0 { 10 } else { self.samples };
        run_one(&id.to_string(), samples, &mut f);
        self
    }
}

/// Re-export for benches that import it from criterion rather than
/// `std::hint` (upstream provides both).
pub use std::hint::black_box;

/// Declares a function running each listed benchmark function against a
/// fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut b = Bencher {
            samples: 5,
            result: None,
        };
        b.iter(|| (0..100u64).sum::<u64>());
        let (median, min, mean) = b.result.expect("measured");
        assert!(min <= median && median <= mean * 2);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..10u64).product::<u64>()));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &k| {
            b.iter(|| k * 2)
        });
        group.finish();
    }
}
