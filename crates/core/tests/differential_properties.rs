//! Property-based differential testing of the whole algorithm suite:
//! on arbitrary small digraphs (self-loops, parallel arcs, acyclic
//! graphs, and single-node components included), every algorithm must
//! agree with the brute-force cycle enumerator, every returned witness
//! must survive independent certification, and arbitrary budgets may
//! change *whether* an answer comes back but never make a wrong or
//! uncertifiable one.

use mcr_core::reference::{brute_force_min_mean, brute_force_min_ratio};
use mcr_core::{certify, Algorithm, Budget, SolveError, SolveOptions};
use mcr_graph::{Graph, GraphBuilder, NodeId};
use proptest::prelude::*;

/// Small arbitrary digraphs with unit transits: up to 7 nodes and 16
/// arcs keeps the brute-force cycle enumeration instant while still
/// covering self-loops, parallel arcs, and acyclic shapes.
fn arbitrary_mean_graph() -> impl Strategy<Value = Graph> {
    (1usize..8).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, -20i64..=20), 0..16).prop_map(move |arcs| {
            let mut b = GraphBuilder::new();
            b.add_nodes(n);
            for (u, v, w) in arcs {
                b.add_arc(NodeId::new(u), NodeId::new(v), w);
            }
            b.build()
        })
    })
}

/// Like [`arbitrary_mean_graph`] but with transit times in `0..=3`, for
/// the cost-to-time ratio solvers.
fn arbitrary_ratio_graph() -> impl Strategy<Value = Graph> {
    (1usize..7).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, -15i64..=15, 0i64..=3), 0..14).prop_map(
            move |arcs| {
                let mut b = GraphBuilder::new();
                b.add_nodes(n);
                for (u, v, w, t) in arcs {
                    b.add_arc_with_transit(NodeId::new(u), NodeId::new(v), w, t);
                }
                b.build()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_algorithm_agrees_with_brute_force(g in arbitrary_mean_graph()) {
        let brute = brute_force_min_mean(&g);
        for alg in Algorithm::ALL {
            // On these instances cycle-mean gaps are at least 1/42, so
            // a 1e-7 epsilon forces the approximate variants onto the
            // optimum cycle too.
            let sol = if alg.is_approximate() {
                alg.solve_with_epsilon(&g, 1e-7)
            } else {
                alg.solve(&g)
            };
            match (&brute, sol) {
                (None, None) => {}
                (None, Some(s)) => {
                    return Err(format!(
                        "{}: answered {} on an acyclic graph", alg.name(), s.lambda
                    ));
                }
                (Some(_), None) => {
                    return Err(format!("{}: no answer on a cyclic graph", alg.name()));
                }
                (Some((lambda, _)), Some(s)) => {
                    prop_assert_eq!(s.lambda, *lambda, "{}", alg.name());
                    prop_assert!(certify(&s, &g).is_ok(), "{}: certification", alg.name());
                }
            }
        }
    }

    #[test]
    fn ratio_solvers_agree_with_brute_force(g in arbitrary_ratio_graph()) {
        // Ratio problems are undefined when some cycle has zero total
        // transit; the solvers reject those inputs, which is covered by
        // unit tests — here we compare answers on well-posed instances.
        if mcr_core::ratio::has_zero_transit_cycle(&g) {
            return Ok(());
        }
        let brute = brute_force_min_ratio(&g);
        let howard = mcr_core::ratio::howard_ratio_exact(&g);
        let lawler = mcr_core::ratio::lawler_ratio_exact(&g);
        match brute {
            None => {
                prop_assert!(howard.is_none(), "howard answered on acyclic input");
                prop_assert!(lawler.is_none(), "lawler answered on acyclic input");
            }
            Some((rho, _)) => {
                let h = howard.expect("howard answers cyclic input");
                let l = lawler.expect("lawler answers cyclic input");
                prop_assert_eq!(h.lambda, rho, "howard ratio");
                prop_assert_eq!(l.lambda, rho, "lawler ratio");
                prop_assert!(certify(&h, &g).is_ok(), "howard certification");
                prop_assert!(certify(&l, &g).is_ok(), "lawler certification");
            }
        }
    }

    #[test]
    fn budgets_never_produce_a_wrong_or_uncertifiable_answer(
        g in arbitrary_mean_graph(),
        iterations in 1u64..40,
        refinements in 1u64..6,
    ) {
        let brute = brute_force_min_mean(&g);
        let opts = SolveOptions {
            budget: Budget::default()
                .max_iterations(iterations)
                .max_lambda_refinements(refinements),
            ..SolveOptions::default()
        };
        for alg in Algorithm::TABLE2 {
            match alg.solve_with_options(&g, &opts) {
                Ok(sol) => {
                    // Whatever path answered (primary or fallback), the
                    // default chain is exact, so so is the result.
                    let (lambda, _) = brute.as_ref().expect("an answer implies a cycle");
                    prop_assert_eq!(sol.lambda, *lambda, "{}", alg.name());
                    prop_assert!(certify(&sol, &g).is_ok(), "{}", alg.name());
                }
                Err(SolveError::Acyclic) => prop_assert!(brute.is_none(), "{}", alg.name()),
                Err(SolveError::BudgetExhausted { .. }) => {}
                Err(other) => {
                    return Err(format!("{}: unexpected error {other}", alg.name()));
                }
            }
        }
    }

    #[test]
    fn lambda_only_mode_matches_the_full_solve(g in arbitrary_mean_graph()) {
        for alg in [Algorithm::Karp, Algorithm::Karp2, Algorithm::Dg, Algorithm::Ho] {
            let full = alg.solve(&g).map(|s| s.lambda);
            let lam = alg.solve_lambda_only(&g).map(|(l, _)| l);
            prop_assert_eq!(full, lam, "{}", alg.name());
        }
    }
}

#[test]
fn regression_single_node_self_loop_components() {
    // Shrunk proptest shapes worth pinning: isolated nodes, a lone
    // self-loop, and a self-loop tied with a 2-ring.
    let mut b = GraphBuilder::new();
    let v = b.add_nodes(4);
    b.add_arc(v[1], v[1], -7);
    b.add_arc(v[2], v[3], -8);
    b.add_arc(v[3], v[2], -6);
    let g = b.build();
    let (lambda, _) = brute_force_min_mean(&g).expect("cyclic");
    for alg in Algorithm::ALL {
        let sol = if alg.is_approximate() {
            alg.solve_with_epsilon(&g, 1e-7)
        } else {
            alg.solve(&g)
        }
        .expect("cyclic");
        assert_eq!(sol.lambda, lambda, "{}", alg.name());
        certify(&sol, &g).expect("certifies");
    }
}

#[test]
fn regression_parallel_arcs_pick_the_cheaper() {
    let mut b = GraphBuilder::new();
    let v = b.add_nodes(2);
    b.add_arc(v[0], v[1], 9);
    b.add_arc(v[0], v[1], 2);
    b.add_arc(v[1], v[0], 4);
    let g = b.build();
    for alg in Algorithm::ALL {
        let sol = if alg.is_approximate() {
            alg.solve_with_epsilon(&g, 1e-7)
        } else {
            alg.solve(&g)
        }
        .expect("cyclic");
        assert_eq!(sol.lambda, mcr_core::Ratio64::from(3), "{}", alg.name());
        certify(&sol, &g).expect("certifies");
    }
}
