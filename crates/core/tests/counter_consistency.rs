//! Counter-consistency contracts behind the unified metrics registry.
//!
//! The observability layer absorbs each solve's [`Counters`] once, at
//! solve end, under fixed metric names — which is only meaningful if
//! (a) the merged totals are thread-count invariant for deterministic
//! algorithms, and (b) both heap engines count the same abstract
//! operations, so `heap.decrease_key` / `heap.extract_min` mean the
//! same thing whichever engine produced them. These tests pin both
//! properties at the `Counters`/`HeapCounters` level, where they hold
//! with or without the `obs` feature compiled in.

use mcr_core::{Algorithm, SolveOptions, SweepMode};
use mcr_gen::circuit::{circuit_graph, CircuitConfig};
use mcr_graph::heap::{AddressableHeap, FibonacciHeap, HeapCounters, IndexedBinaryHeap};

/// The deterministic (exact, fixed-iteration-structure) algorithms
/// whose merged counters must be bit-identical at any thread count.
const DETERMINISTIC: [Algorithm; 3] = [Algorithm::Karp, Algorithm::Dg, Algorithm::Lawler];

#[test]
fn merged_counters_are_thread_count_invariant() {
    // Circuit graphs decompose into several SCCs, so the parallel
    // driver genuinely fans out and merges per-thread counters.
    for seed in 0..5u64 {
        let g = circuit_graph(&CircuitConfig::new(96).seed(seed));
        for alg in DETERMINISTIC {
            let (lam1, seq) = alg
                .solve_lambda_only_opts(&g, &SolveOptions::new().threads(1))
                .expect("circuit graphs are cyclic");
            for threads in [2usize, 8] {
                let (lam, par) = alg
                    .solve_lambda_only_opts(&g, &SolveOptions::new().threads(threads))
                    .expect("circuit graphs are cyclic");
                assert_eq!(lam, lam1, "{} seed={seed} threads={threads}", alg.name());
                assert_eq!(
                    par,
                    seq,
                    "{} seed={seed} threads={threads}: merged Counters drifted",
                    alg.name()
                );
            }
        }
    }
}

#[test]
fn chunked_sweeps_tick_identical_counters_at_any_sweep_thread_count() {
    // The chunked intra-SCC sweeps move candidate *computation* onto
    // worker threads but commit — and count — every abstract operation
    // in the sequential Phase B, so the full `Counters` struct is
    // bit-identical at 1, 2, and 8 sweep threads. For the level-table
    // kernels (Karp, DG) the chunked schedule performs the very same
    // operations as the sequential sweep, so those totals must also
    // equal the sequential-mode totals exactly.
    for seed in 0..5u64 {
        let g = circuit_graph(&CircuitConfig::new(96).seed(seed));
        for alg in [
            Algorithm::Karp,
            Algorithm::Dg,
            Algorithm::Lawler,
            Algorithm::HowardExact,
        ] {
            let (seq_lam, seq_cnt) = alg
                .solve_lambda_only_opts(&g, &SolveOptions::new())
                .expect("cyclic");
            let chunked = |t: usize| {
                SolveOptions::new()
                    .sweep(SweepMode::Chunked)
                    .sweep_chunk(16)
                    .sweep_threads(t)
            };
            let (base_lam, base_cnt) = alg
                .solve_lambda_only_opts(&g, &chunked(1))
                .expect("cyclic");
            assert_eq!(base_lam, seq_lam, "{} seed={seed}: chunked λ", alg.name());
            for threads in [2usize, 8] {
                let (lam, cnt) = alg
                    .solve_lambda_only_opts(&g, &chunked(threads))
                    .expect("cyclic");
                assert_eq!(lam, base_lam, "{} seed={seed} st={threads}", alg.name());
                assert_eq!(
                    cnt,
                    base_cnt,
                    "{} seed={seed} st={threads}: chunked Counters drifted",
                    alg.name()
                );
            }
            if matches!(alg, Algorithm::Karp | Algorithm::Dg) {
                assert_eq!(
                    base_cnt,
                    seq_cnt,
                    "{} seed={seed}: level-kernel chunked totals differ from sequential",
                    alg.name()
                );
            }
        }
    }
}

/// Drives one heap engine through a fixed operation script and returns
/// its counters. Keys are distinct so the pop order (and therefore the
/// script) is engine-independent.
fn run_script<H: AddressableHeap<i64>>() -> (Vec<(usize, i64)>, HeapCounters) {
    let mut h = H::with_capacity(64);
    for i in 0..32usize {
        // Distinct keys, deliberately out of insertion order.
        h.push(i, ((i as i64 * 37) % 101) * 2 + 1);
    }
    for i in (0..32usize).step_by(3) {
        h.decrease_key(i, -(i as i64));
    }
    let mut popped = Vec::new();
    for _ in 0..10 {
        popped.push(h.pop_min().expect("heap still has entries"));
    }
    for i in [31usize, 29, 23] {
        if h.contains(i) {
            h.remove(i);
        }
    }
    while let Some(entry) = h.pop_min() {
        popped.push(entry);
    }
    (popped, h.counters())
}

#[test]
fn heap_engines_count_the_same_abstract_operations() {
    let (fib_order, fib) = run_script::<FibonacciHeap<i64>>();
    let (bin_order, bin) = run_script::<IndexedBinaryHeap<i64>>();
    // Same script, same semantics: identical pop order...
    assert_eq!(fib_order, bin_order, "engines disagreed on the script");
    // ...and identical operation counts, field by field. This is what
    // lets the metrics registry publish `heap.insert`,
    // `heap.decrease_key`, `heap.extract_min`, and `heap.remove` under
    // one name set regardless of engine.
    assert_eq!(fib.inserts, bin.inserts);
    assert_eq!(fib.decrease_keys, bin.decrease_keys);
    assert_eq!(fib.delete_mins, bin.delete_mins);
    assert_eq!(fib.removals, bin.removals);
    assert_eq!(fib.inserts, 32);
    assert_eq!(fib.decrease_keys, 11);
    assert!(fib.removals <= 3);
}

#[test]
fn heap_counters_reach_the_solve_counters_of_heap_algorithms() {
    // KO and YTO are the heap-backed algorithms; their per-solve
    // Counters must carry non-zero heap fields (the registry's
    // `heap.*` metrics), and those too must be thread-count invariant.
    let g = circuit_graph(&CircuitConfig::new(96).seed(1));
    for alg in [Algorithm::Ko, Algorithm::Yto] {
        let (_, seq) = alg
            .solve_lambda_only_opts(&g, &SolveOptions::new().threads(1))
            .expect("cyclic");
        assert!(seq.heap.inserts > 0, "{}: no heap inserts recorded", alg.name());
        assert!(seq.heap.delete_mins > 0, "{}: no extract-mins recorded", alg.name());
        for threads in [2usize, 8] {
            let (_, par) = alg
                .solve_lambda_only_opts(&g, &SolveOptions::new().threads(threads))
                .expect("cyclic");
            assert_eq!(par.heap, seq.heap, "{} threads={threads}", alg.name());
        }
    }
}
