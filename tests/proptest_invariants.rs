//! Property-based tests of the mathematical invariants of cycle means
//! and of the solver suite.

use mcr::core::bellman::has_cycle_below;
use mcr::core::critical::critical_subgraph;
use mcr::core::solution::check_cycle;
use mcr::{Algorithm, Graph, GraphBuilder, NodeId, Ratio64};
use proptest::prelude::*;

/// Strategy: a random cyclic digraph as (node count, arc list).
fn cyclic_graph(max_n: usize, max_extra: usize, wmax: i64) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        let ring = proptest::collection::vec(-wmax..=wmax, n);
        let extra = proptest::collection::vec(
            (0..n, 0..n, -wmax..=wmax),
            0..max_extra,
        );
        (ring, extra).prop_map(move |(ring_w, extra)| {
            let mut b = GraphBuilder::new();
            let v = b.add_nodes(n);
            for (i, &w) in ring_w.iter().enumerate() {
                b.add_arc(v[i], v[(i + 1) % n], w);
            }
            for (s, t, w) in extra {
                b.add_arc(NodeId::new(s), NodeId::new(t), w);
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Translating every weight by c translates λ* by exactly c.
    #[test]
    fn lambda_translates_with_weights(g in cyclic_graph(12, 16, 40), c in -30i64..30) {
        let base = mcr::minimum_cycle_mean(&g).expect("cyclic").lambda;
        let shifted_weights: Vec<i64> = g.weights().iter().map(|w| w + c).collect();
        let shifted = g.with_weights(&shifted_weights);
        let got = mcr::minimum_cycle_mean(&shifted).expect("cyclic").lambda;
        prop_assert_eq!(got, base + Ratio64::from(c));
    }

    /// Scaling every weight by a positive k scales λ* by exactly k.
    #[test]
    fn lambda_scales_with_weights(g in cyclic_graph(12, 16, 40), k in 1i64..8) {
        let base = mcr::minimum_cycle_mean(&g).expect("cyclic").lambda;
        let scaled_weights: Vec<i64> = g.weights().iter().map(|w| w * k).collect();
        let scaled = g.with_weights(&scaled_weights);
        let got = mcr::minimum_cycle_mean(&scaled).expect("cyclic").lambda;
        prop_assert_eq!(got, base * Ratio64::from(k));
    }

    /// Max-mean / min-mean duality under negation.
    #[test]
    fn max_min_duality(g in cyclic_graph(12, 16, 40)) {
        let min = mcr::minimum_cycle_mean(&g).expect("cyclic").lambda;
        let max_neg = mcr::maximum_cycle_mean(&g.negated()).expect("cyclic").lambda;
        prop_assert_eq!(min, -max_neg);
    }

    /// The witness cycle is well-formed and achieves λ*; no cycle in the
    /// graph is strictly below λ* (checked by Bellman–Ford, not by the
    /// solver under test).
    #[test]
    fn witness_is_optimal(g in cyclic_graph(12, 16, 40)) {
        let sol = mcr::minimum_cycle_mean(&g).expect("cyclic");
        let (w, len, _) = check_cycle(&g, &sol.cycle).expect("valid witness");
        prop_assert_eq!(Ratio64::new(w, len as i64), sol.lambda);
        let mut c = mcr::Counters::new();
        prop_assert!(has_cycle_below(&g, sol.lambda, &mut c).is_none());
    }

    /// All exact algorithms return identical λ*.
    #[test]
    fn exact_algorithms_agree(g in cyclic_graph(10, 12, 25)) {
        let reference = Algorithm::Karp.solve(&g).expect("cyclic").lambda;
        for alg in [
            Algorithm::Burns,
            Algorithm::Ko,
            Algorithm::Yto,
            Algorithm::HowardExact,
            Algorithm::Ho,
            Algorithm::Karp2,
            Algorithm::Dg,
            Algorithm::LawlerExact,
        ] {
            prop_assert_eq!(alg.solve(&g).expect("cyclic").lambda, reference);
        }
    }

    /// The critical subgraph contains the witness cycle and every
    /// critical arc is tight.
    #[test]
    fn critical_subgraph_contains_witness(g in cyclic_graph(12, 16, 40)) {
        let sol = mcr::minimum_cycle_mean(&g).expect("cyclic");
        let cs = critical_subgraph(&g, sol.lambda).expect("optimal lambda");
        let critical: std::collections::HashSet<_> = cs.arcs.iter().copied().collect();
        for a in &sol.cycle {
            prop_assert!(critical.contains(a), "witness arc missing from critical subgraph");
        }
    }

    /// SCC decomposition: λ* of the whole graph equals the minimum over
    /// the per-component optima.
    #[test]
    fn scc_minimum_composition(g in cyclic_graph(12, 16, 40)) {
        use mcr::graph::SccDecomposition;
        let whole = mcr::minimum_cycle_mean(&g).expect("cyclic").lambda;
        let scc = SccDecomposition::new(&g);
        let mut best: Option<Ratio64> = None;
        for c in 0..scc.num_components() {
            if !scc.is_cyclic_component(&g, c) {
                continue;
            }
            let (sub, _, _) = scc.component_subgraph(&g, c);
            let lam = mcr::minimum_cycle_mean(&sub).expect("cyclic component").lambda;
            if best.map_or(true, |b| lam < b) {
                best = Some(lam);
            }
        }
        prop_assert_eq!(best.expect("some cyclic component"), whole);
    }

    /// Rational arithmetic: Ratio64 ordering matches f64 ordering for
    /// moderate values, and midpoint stays inside the interval.
    #[test]
    fn rational_midpoint_and_order(an in -1000i64..1000, ad in 1i64..100, bn in -1000i64..1000, bd in 1i64..100) {
        let a = Ratio64::new(an, ad);
        let b = Ratio64::new(bn, bd);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mid = lo.midpoint(hi);
        prop_assert!(lo <= mid && mid <= hi);
        prop_assert_eq!(a < b, a.to_f64() < b.to_f64() || (a.to_f64() == b.to_f64() && a != b && a < b));
    }

    /// simplest_in always returns a value inside the interval with the
    /// smallest denominator among rationals in it.
    #[test]
    fn simplest_in_is_inside(an in -500i64..500, ad in 1i64..60, width_n in 1i64..50, width_d in 51i64..200) {
        let lo = Ratio64::new(an, ad);
        let hi = lo + Ratio64::new(width_n, width_d);
        let s = Ratio64::simplest_in(lo, hi);
        prop_assert!(lo <= s && s <= hi);
        // No rational with a smaller denominator lies inside.
        for q in 1..s.denom() {
            let p_lo = (lo * Ratio64::from(q)).ceil();
            let p_hi = (hi * Ratio64::from(q)).floor();
            prop_assert!(p_lo > p_hi, "simpler rational {p_lo}/{q} exists in [{lo}, {hi}]");
        }
    }
}
