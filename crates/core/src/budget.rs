//! Resource budgets for the solver layer.
//!
//! A [`Budget`] bounds how much work a solve may do before giving up:
//! outer-loop iterations, λ-refinement steps, and wall-clock time. The
//! limits are *cooperative* — each algorithm charges its dominant loop
//! against a [`BudgetScope`] and returns
//! [`SolveError::BudgetExhausted`] when a limit is hit, so a bounded
//! solve never hangs and never aborts the process.
//!
//! Iteration and refinement budgets are charged **per SCC attempt**:
//! each (component, algorithm) pair gets the full allowance, which
//! keeps results independent of how the driver schedules components
//! across threads. The wall-clock deadline is **shared** across the
//! whole solve: it is computed once when `solve_with_options` starts
//! and every component races against the same instant.

// Parsing/validation surfaces must stay panic-free whatever the
// input; CI runs clippy with -D warnings, so these lints are a gate.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]


use crate::algorithms::Algorithm;
use crate::cancel::CancelToken;
use crate::error::{BudgetResource, SolveError};
use std::cell::Cell;
use std::time::{Duration, Instant};

/// How often [`BudgetScope::check_time`] aims to actually read the
/// clock. Far below any plausible wall budget (a 50 ms budget still
/// gets ~100 reads) yet long enough that the amortized per-check cost
/// is a counter decrement, not a syscall.
const TARGET_POLL_INTERVAL: Duration = Duration::from_micros(500);

/// Upper bound on the number of `check_time` calls between clock
/// reads, so a loop whose per-iteration cost suddenly grows cannot
/// coast past the deadline on a stale stride for long.
const MAX_POLL_STRIDE: u32 = 1 << 16;

/// Work limits for a solve. The default is unlimited in every
/// dimension, so existing callers see no behavior change.
///
/// ```
/// use mcr_core::Budget;
/// use std::time::Duration;
/// let b = Budget::default()
///     .max_iterations(10_000)
///     .wall_time(Duration::from_secs(5));
/// assert_eq!(b.max_iterations, Some(10_000));
/// assert!(!b.is_unlimited());
/// assert!(Budget::UNLIMITED.is_unlimited());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Cap on the dominant outer loop of the algorithm, per SCC
    /// attempt: Howard policy improvements, Burns phases, KO/YTO heap
    /// pivots, Karp/HO/DG table levels, bisection steps. `None` means
    /// unlimited.
    pub max_iterations: Option<u64>,
    /// Wall-clock limit for the whole solve (shared across all SCCs
    /// and all fallback attempts). `None` means unlimited.
    pub wall_time: Option<Duration>,
    /// Cap on λ-refinement steps of the search-based algorithms
    /// (Lawler/OA1 bisection halvings, Megiddo oracle resolutions),
    /// per SCC attempt. `None` means unlimited.
    pub max_lambda_refinements: Option<u64>,
}

impl Budget {
    /// No limits at all (same as `Budget::default()`).
    pub const UNLIMITED: Budget = Budget {
        max_iterations: None,
        wall_time: None,
        max_lambda_refinements: None,
    };

    /// Sets the per-SCC-attempt iteration cap.
    pub fn max_iterations(mut self, n: u64) -> Self {
        self.max_iterations = Some(n);
        self
    }

    /// Sets the shared wall-clock limit.
    pub fn wall_time(mut self, d: Duration) -> Self {
        self.wall_time = Some(d);
        self
    }

    /// Sets the per-SCC-attempt λ-refinement cap.
    pub fn max_lambda_refinements(mut self, n: u64) -> Self {
        self.max_lambda_refinements = Some(n);
        self
    }

    /// Whether no limit is set in any dimension.
    pub fn is_unlimited(&self) -> bool {
        *self == Budget::UNLIMITED
    }

    /// The absolute deadline implied by `wall_time`, anchored at "now".
    /// Computed once per solve so that all SCC jobs and fallback
    /// attempts race against the same instant.
    pub fn deadline(&self) -> Option<Instant> {
        self.wall_time.map(|d| Instant::now() + d)
    }
}

/// How tripping a wall-clock deadline is reported: as an exhausted
/// budget or as a cancellation. See [`Deadline`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeadlineKind {
    /// The deadline came from [`Budget::wall_time`]; tripping it is
    /// [`SolveError::BudgetExhausted`] with
    /// [`BudgetResource::WallTime`] (CLI exit 2).
    Budget,
    /// The deadline is a caller cancellation deadline
    /// ([`crate::SolveOptions::deadline`], the CLI's `--timeout`);
    /// tripping it is [`SolveError::Cancelled`] (CLI exit 4), which
    /// fails the whole solve closed — the fallback chain does not
    /// continue past it.
    Cancel,
}

/// One monotonic wall-clock deadline plus how tripping it is typed.
///
/// Historically the CLI's `--timeout` armed a detached watchdog thread
/// while `Budget::wall_time` was polled in-loop — two independent
/// clocks that could disagree near the boundary, making exit 2 vs
/// exit 4 a race. Now both are folded into **one** deadline before the
/// solve starts ([`crate::SolveOptions::effective_deadline`]): the
/// earlier instant wins, its [`DeadlineKind`] is fixed at that moment,
/// and every poll point in the solve races against the same instant —
/// so which error a tripped deadline produces is deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Deadline {
    /// The absolute monotonic instant after which the solve must stop.
    pub at: Instant,
    /// How tripping is reported.
    pub kind: DeadlineKind,
}

impl Deadline {
    /// A [`Budget::wall_time`]-style deadline (trips as exhaustion).
    pub fn budget(at: Instant) -> Self {
        Deadline {
            at,
            kind: DeadlineKind::Budget,
        }
    }

    /// A cancellation deadline (trips as [`SolveError::Cancelled`]).
    pub fn cancel(at: Instant) -> Self {
        Deadline {
            at,
            kind: DeadlineKind::Cancel,
        }
    }

    /// The deadline that fires first. On an exact tie the
    /// [`DeadlineKind::Cancel`] one wins: cancellation is the caller's
    /// explicit request, and a fixed rule keeps the boundary
    /// deterministic.
    pub fn earliest(a: Option<Deadline>, b: Option<Deadline>) -> Option<Deadline> {
        match (a, b) {
            (Some(x), Some(y)) => Some(if x.at < y.at {
                x
            } else if y.at < x.at {
                y
            } else if x.kind == DeadlineKind::Cancel {
                x
            } else {
                y
            }),
            (x, None) => x,
            (None, y) => y,
        }
    }
}

/// The runtime countdown for one (SCC, algorithm) attempt.
///
/// Constructed by the driver from a [`Budget`] plus the solve-wide
/// deadline; handed down into each algorithm's hot loops, which call
/// [`tick_iteration`](BudgetScope::tick_iteration) /
/// [`tick_refinement`](BudgetScope::tick_refinement) /
/// [`check_time`](BudgetScope::check_time) at their natural charge
/// points.
#[derive(Clone, Debug)]
pub struct BudgetScope {
    algorithm: Algorithm,
    iters_left: Option<u64>,
    iters_spent: u64,
    refines_left: Option<u64>,
    refines_spent: u64,
    deadline: Option<Deadline>,
    cancel: Option<CancelToken>,
    /// `check_time` calls between clock reads; adapted so clock reads
    /// land roughly every [`TARGET_POLL_INTERVAL`] of wall time.
    poll_stride: Cell<u32>,
    /// Countdown to the next clock read.
    polls_until_clock: Cell<u32>,
    /// When the clock was last read, for stride adaptation.
    last_clock: Cell<Option<Instant>>,
    /// Loop site currently charging this scope (see
    /// [`loop_metrics`](BudgetScope::loop_metrics)); flushed to the
    /// metrics registry on the next mark or on drop. `Cell`s so the
    /// `&self` helpers (Bellman rounds) can mark too.
    obs_site: Cell<Option<&'static str>>,
    /// `iters_spent` at the moment the current site was marked.
    obs_iters_mark: Cell<u64>,
    /// `refines_spent` at the moment the current site was marked.
    obs_refines_mark: Cell<u64>,
}

impl BudgetScope {
    /// A fresh countdown for one SCC attempt of `algorithm`. The
    /// deadline is the solve-wide one resolved up front by
    /// [`crate::SolveOptions::effective_deadline`], so every attempt of
    /// every component races against the same instant.
    pub fn new(budget: &Budget, deadline: Option<Deadline>, algorithm: Algorithm) -> Self {
        BudgetScope {
            algorithm,
            iters_left: budget.max_iterations,
            iters_spent: 0,
            refines_left: budget.max_lambda_refinements,
            refines_spent: 0,
            deadline,
            cancel: None,
            poll_stride: Cell::new(1),
            polls_until_clock: Cell::new(0),
            last_clock: Cell::new(None),
            obs_site: Cell::new(None),
            obs_iters_mark: Cell::new(0),
            obs_refines_mark: Cell::new(0),
        }
    }

    /// Attaches a cooperative cancellation token: subsequent
    /// [`check_time`](BudgetScope::check_time) calls return
    /// [`SolveError::Cancelled`] once the token is cancelled.
    pub fn with_cancel(mut self, cancel: Option<CancelToken>) -> Self {
        self.cancel = cancel;
        self
    }

    /// A scope that never trips — for the legacy `Option`-returning
    /// entry points and internal helpers that pre-date budgets.
    pub fn unlimited(algorithm: Algorithm) -> Self {
        BudgetScope::new(&Budget::UNLIMITED, None, algorithm)
    }

    /// The algorithm this scope is charging (used to attribute
    /// [`SolveError::BudgetExhausted`]).
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Re-attributes subsequent charges (the fallback driver reuses
    /// the deadline but resets the countdowns per attempt, so it
    /// constructs fresh scopes instead; this is for wrappers that
    /// dispatch to a helper algorithm internally).
    pub fn set_algorithm(&mut self, algorithm: Algorithm) {
        self.algorithm = algorithm;
    }

    /// Outer-loop iterations charged against this scope so far.
    pub fn iters_spent(&self) -> u64 {
        self.iters_spent
    }

    /// λ-refinement steps charged against this scope so far.
    pub fn refines_spent(&self) -> u64 {
        self.refines_spent
    }

    /// Marks the budgeted loop named `site` (a chaos-site name like
    /// `"core.karp.level"`) as the current charge attribution for this
    /// scope. With the `obs` feature on and a recorder installed, the
    /// charges accumulated between this mark and the next one (or the
    /// scope's drop) are recorded as `loop.<site>.iterations` /
    /// `loop.<site>.refinements`, plus a `loop.<site>.visits` count —
    /// delta-based, so helpers sharing the scope never double-count.
    /// Without the feature this is one `Cell` store. Lint rule MCRL006
    /// requires this mark in every algorithm loop that ticks a scope.
    #[inline]
    pub fn loop_metrics(&self, site: &'static str) {
        self.flush_loop_metrics();
        self.obs_site.set(Some(site));
        self.obs_iters_mark.set(self.iters_spent);
        self.obs_refines_mark.set(self.refines_spent);
    }

    /// Marks `site` for the duration of the returned guard, then
    /// restores the caller's pending mark — for nested kernels (the
    /// chunked Bellman–Ford oracle inside a Lawler bisection) that want
    /// their own `loop.<site>.visits` entry without stealing the
    /// charges the *outer* loop accumulates after the kernel returns.
    ///
    /// Unlike [`loop_metrics`](BudgetScope::loop_metrics) the outer
    /// site is not flushed on entry: its delta window keeps spanning
    /// the nested call. The nested kernel must therefore not tick the
    /// scope itself (the sweeps only poll `check_time`), or its charges
    /// would be attributed to both sites.
    #[inline]
    pub(crate) fn nested_loop_metrics(&self, site: &'static str) -> NestedLoopMetrics<'_> {
        let saved = (
            self.obs_site.get(),
            self.obs_iters_mark.get(),
            self.obs_refines_mark.get(),
        );
        self.obs_site.set(Some(site));
        self.obs_iters_mark.set(self.iters_spent);
        self.obs_refines_mark.set(self.refines_spent);
        NestedLoopMetrics { scope: self, saved }
    }

    /// Reports the charges since the last [`loop_metrics`]
    /// (BudgetScope::loop_metrics) mark to the registry and clears the
    /// mark. Saturating subtraction, since a clone of a marked scope
    /// restarts its own charge counters.
    fn flush_loop_metrics(&self) {
        if let Some(site) = self.obs_site.take() {
            crate::obs::loop_flush(
                site,
                self.iters_spent.saturating_sub(self.obs_iters_mark.get()),
                self.refines_spent.saturating_sub(self.obs_refines_mark.get()),
            );
        }
    }

    /// Charges one outer-loop iteration; errs when the cap is reached.
    #[inline]
    pub fn tick_iteration(&mut self) -> Result<(), SolveError> {
        self.iters_spent += 1;
        if let Some(left) = &mut self.iters_left {
            if *left == 0 {
                return Err(self.exhausted(BudgetResource::Iterations, self.iters_spent));
            }
            *left -= 1;
        }
        Ok(())
    }

    /// Charges one λ-refinement step; errs when the cap is reached.
    #[inline]
    pub fn tick_refinement(&mut self) -> Result<(), SolveError> {
        self.refines_spent += 1;
        if let Some(left) = &mut self.refines_left {
            if *left == 0 {
                return Err(self.exhausted(BudgetResource::LambdaRefinements, self.refines_spent));
            }
            *left -= 1;
        }
        Ok(())
    }

    /// Errs when the solve was cancelled or the shared deadline has
    /// passed. Cheap when neither a token nor a deadline is set, and
    /// *amortized* cheap with a deadline: the clock is only read every
    /// poll-stride-th call, with the stride adapted so reads land
    /// roughly twice per millisecond of wall time whatever the
    /// per-iteration cost of the calling loop.
    #[inline]
    pub fn check_time(&self) -> Result<(), SolveError> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                crate::obs::cancel_observed(self.algorithm.name());
                return Err(SolveError::Cancelled);
            }
        }
        let Some(deadline) = self.deadline else {
            return Ok(());
        };
        let left = self.polls_until_clock.get();
        if left > 0 {
            self.polls_until_clock.set(left - 1);
            return Ok(());
        }
        self.poll_clock(deadline)
    }

    /// Slow path of [`check_time`](BudgetScope::check_time): reads the
    /// clock, checks the deadline, and re-tunes the poll stride toward
    /// one clock read per [`TARGET_POLL_INTERVAL`].
    #[cold]
    fn poll_clock(&self, deadline: Deadline) -> Result<(), SolveError> {
        let now = Instant::now();
        let stride = self.poll_stride.get();
        let stride = match self.last_clock.get() {
            // Checks are coming in much faster than the target cadence:
            // widen the stride. Slower: narrow it so a deadline is
            // never overshot by more than ~one target interval.
            Some(prev) => {
                let elapsed = now.saturating_duration_since(prev);
                if elapsed * 4 < TARGET_POLL_INTERVAL {
                    stride.saturating_mul(2).min(MAX_POLL_STRIDE)
                } else if elapsed > TARGET_POLL_INTERVAL {
                    (stride / 2).max(1)
                } else {
                    stride
                }
            }
            None => stride,
        };
        self.poll_stride.set(stride);
        self.polls_until_clock.set(stride - 1);
        self.last_clock.set(Some(now));
        if now >= deadline.at {
            match deadline.kind {
                DeadlineKind::Budget => {
                    Err(self.exhausted(BudgetResource::WallTime, self.iters_spent))
                }
                DeadlineKind::Cancel => {
                    crate::obs::cancel_observed(self.algorithm.name());
                    Err(SolveError::Cancelled)
                }
            }
        } else {
            Ok(())
        }
    }

    /// Failpoint hook for the chaos test harness: consults the active
    /// [`mcr_chaos::FaultSchedule`] (if any) for `site` and maps a
    /// fired fault onto this scope's typed [`SolveError`] —
    /// `BudgetExhaust` becomes [`SolveError::BudgetExhausted`]
    /// attributed to this scope's algorithm, `Overflow` becomes
    /// [`SolveError::Overflow`], and `NumericRange` / `Transient`
    /// become [`SolveError::NumericRange`] (all recoverable, so the
    /// fallback chain engages exactly as for an organic failure).
    /// `Delay` faults are applied in place by the registry.
    #[cfg(feature = "chaos")]
    pub fn chaos_check(&self, site: &'static str) -> Result<(), SolveError> {
        use mcr_chaos::FaultKind;
        match mcr_chaos::hit(site) {
            None => Ok(()),
            Some(FaultKind::Delay { .. }) => {
                crate::obs::fault_injected(site, "delay");
                Ok(())
            }
            Some(FaultKind::BudgetExhaust) => {
                crate::obs::fault_injected(site, "budget-exhaust");
                Err(self.exhausted(BudgetResource::Iterations, self.iters_spent))
            }
            Some(FaultKind::Overflow) => {
                crate::obs::fault_injected(site, "overflow");
                Err(SolveError::Overflow { context: site })
            }
            Some(FaultKind::NumericRange) => {
                crate::obs::fault_injected(site, "numeric-range");
                Err(SolveError::NumericRange { context: site })
            }
            Some(FaultKind::Transient) => {
                crate::obs::fault_injected(site, "transient");
                Err(SolveError::NumericRange { context: site })
            }
        }
    }

    /// Compiled-out failpoint hook: always `Ok`, inlined to nothing.
    #[cfg(not(feature = "chaos"))]
    #[inline(always)]
    pub fn chaos_check(&self, _site: &'static str) -> Result<(), SolveError> {
        Ok(())
    }

    /// Combined per-round charge used by loops that should respect
    /// both the iteration cap and the deadline.
    #[inline]
    pub fn tick_iteration_and_time(&mut self) -> Result<(), SolveError> {
        self.tick_iteration()?;
        self.check_time()
    }

    fn exhausted(&self, resource: BudgetResource, spent: u64) -> SolveError {
        SolveError::BudgetExhausted {
            algorithm: self.algorithm,
            resource,
            spent,
        }
    }
}

impl Drop for BudgetScope {
    /// Flushes a pending [`loop_metrics`](BudgetScope::loop_metrics)
    /// mark, so loops that exit through `?` (budget exhaustion,
    /// cancellation, chaos faults) still report their charges.
    fn drop(&mut self) {
        self.flush_loop_metrics();
    }
}

/// Guard of [`BudgetScope::nested_loop_metrics`]: flushes the nested
/// site on drop (also on `?` exits) and restores the outer mark.
pub(crate) struct NestedLoopMetrics<'a> {
    scope: &'a BudgetScope,
    saved: (Option<&'static str>, u64, u64),
}

impl Drop for NestedLoopMetrics<'_> {
    fn drop(&mut self) {
        self.scope.flush_loop_metrics();
        self.scope.obs_site.set(self.saved.0);
        self.scope.obs_iters_mark.set(self.saved.1);
        self.scope.obs_refines_mark.set(self.saved.2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let mut s = BudgetScope::unlimited(Algorithm::HowardExact);
        for _ in 0..10_000 {
            s.tick_iteration().expect("unlimited");
            s.tick_refinement().expect("unlimited");
            s.check_time().expect("unlimited");
        }
    }

    #[test]
    fn iteration_cap_trips_after_exactly_n_charges() {
        let b = Budget::default().max_iterations(3);
        let mut s = BudgetScope::new(&b, None, Algorithm::Karp);
        assert!(s.tick_iteration().is_ok());
        assert!(s.tick_iteration().is_ok());
        assert!(s.tick_iteration().is_ok());
        let err = s.tick_iteration().expect_err("cap of 3");
        assert_eq!(
            err,
            SolveError::BudgetExhausted {
                algorithm: Algorithm::Karp,
                resource: BudgetResource::Iterations,
                spent: 4,
            }
        );
    }

    #[test]
    fn refinement_cap_is_independent_of_iterations() {
        let b = Budget::default().max_lambda_refinements(1);
        let mut s = BudgetScope::new(&b, None, Algorithm::LawlerExact);
        for _ in 0..100 {
            s.tick_iteration().expect("iterations unlimited");
        }
        assert!(s.tick_refinement().is_ok());
        let err = s.tick_refinement().expect_err("cap of 1");
        assert!(matches!(
            err,
            SolveError::BudgetExhausted {
                resource: BudgetResource::LambdaRefinements,
                ..
            }
        ));
    }

    #[test]
    fn expired_deadline_trips_check_time() {
        let deadline = Some(Deadline::budget(Instant::now() - Duration::from_millis(1)));
        let s = BudgetScope::new(&Budget::UNLIMITED, deadline, Algorithm::Megiddo);
        let err = s.check_time().expect_err("deadline in the past");
        assert!(matches!(
            err,
            SolveError::BudgetExhausted {
                resource: BudgetResource::WallTime,
                ..
            }
        ));
    }

    #[test]
    fn expired_cancel_deadline_trips_as_cancelled() {
        let deadline = Some(Deadline::cancel(Instant::now() - Duration::from_millis(1)));
        let s = BudgetScope::new(&Budget::UNLIMITED, deadline, Algorithm::Megiddo);
        assert_eq!(
            s.check_time().expect_err("deadline in the past"),
            SolveError::Cancelled
        );
    }

    #[test]
    fn earliest_deadline_wins_and_ties_break_to_cancel() {
        let now = Instant::now();
        let soon = Deadline::budget(now + Duration::from_millis(1));
        let late = Deadline::cancel(now + Duration::from_secs(10));
        assert_eq!(Deadline::earliest(Some(soon), Some(late)), Some(soon));
        assert_eq!(Deadline::earliest(Some(late), Some(soon)), Some(soon));
        assert_eq!(Deadline::earliest(Some(soon), None), Some(soon));
        assert_eq!(Deadline::earliest(None, Some(late)), Some(late));
        assert_eq!(Deadline::earliest(None, None), None);
        // An exact tie resolves to the cancellation deadline, in either
        // argument order — the boundary-determinism contract.
        let tie_b = Deadline::budget(now);
        let tie_c = Deadline::cancel(now);
        assert_eq!(Deadline::earliest(Some(tie_b), Some(tie_c)), Some(tie_c));
        assert_eq!(Deadline::earliest(Some(tie_c), Some(tie_b)), Some(tie_c));
    }

    #[test]
    fn cancelled_token_trips_check_time() {
        let token = crate::CancelToken::new();
        let s = BudgetScope::unlimited(Algorithm::HowardExact).with_cancel(Some(token.clone()));
        s.check_time().expect("not cancelled yet");
        token.cancel();
        assert_eq!(s.check_time().expect_err("cancelled"), SolveError::Cancelled);
        // Cancellation dominates: it is reported even with a live deadline.
        let b = Budget::default().wall_time(Duration::from_secs(3600));
        let s = BudgetScope::new(&b, b.deadline().map(Deadline::budget), Algorithm::Karp)
            .with_cancel(Some(token));
        assert_eq!(s.check_time().expect_err("cancelled"), SolveError::Cancelled);
    }

    #[test]
    fn adaptive_polling_still_detects_an_expired_deadline() {
        // Warm the stride up with fast calls, then expire the deadline:
        // the stride bounds the number of stale Oks to one stride window.
        let deadline = Deadline::budget(Instant::now() + Duration::from_millis(20));
        let s = BudgetScope::new(&Budget::UNLIMITED, Some(deadline), Algorithm::Megiddo);
        let start = Instant::now();
        loop {
            if s.check_time().is_err() {
                break;
            }
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "deadline never detected"
            );
        }
        // Well within one adaptation interval of the 20ms deadline.
        assert!(start.elapsed() < Duration::from_millis(200));
    }

    #[test]
    fn poll_stride_widens_under_fast_calls() {
        let deadline = Deadline::budget(Instant::now() + Duration::from_secs(3600));
        let s = BudgetScope::new(&Budget::UNLIMITED, Some(deadline), Algorithm::Karp);
        for _ in 0..10_000 {
            s.check_time().expect("deadline far away");
        }
        assert!(
            s.poll_stride.get() > 1,
            "10k immediate checks must widen the stride beyond 1"
        );
        assert!(s.poll_stride.get() <= MAX_POLL_STRIDE);
    }

    #[test]
    fn budget_deadline_round_trips() {
        assert!(Budget::UNLIMITED.deadline().is_none());
        let b = Budget::default().wall_time(Duration::from_secs(3600));
        let d = b.deadline().expect("wall_time set");
        assert!(d > Instant::now());
    }
}
