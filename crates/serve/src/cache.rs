//! The daemon's LRU graph cache.
//!
//! Parsing a DIMACS instance and running Tarjan's SCC extraction are
//! the two per-request costs that do not depend on the requested
//! algorithm or precision. The cache keys instances by the FNV-1a
//! hash of their exact DIMACS text, so a client can send a graph once
//! and then re-solve it under different algorithms, epsilons, or
//! objectives by `graph_hash` alone — the daemon pays neither parse
//! nor SCC extraction again (the `serve.graph.parse` and
//! `serve.plan.build` counters prove it).
//!
//! Each entry lazily holds one [`SccPlan`] *per orientation*: maximize
//! requests solve the negated graph, and a plan's frozen jobs carry
//! the weights of the orientation they were extracted from (see
//! [`mcr_core::spec::solve_spec`]'s plan-orientation contract), so the
//! two orientations can never share a plan.

//!
//! The `edit` op mutates a cached instance *in place*: the hash then
//! names the evolving graph, not a digest of its original text.
//! [`GraphCache::commit_edit`] is the single mutation point, and it
//! drops both orientation plans along with the graph swap — a plan's
//! frozen jobs carry the arc ids and weights of the graph they were
//! extracted from, so a surviving plan after a `DeleteArc` would hand
//! the solver stale subgraphs (the `serve.plan.build` counter jumping
//! after an edit is the pinned evidence that this invalidation runs).

use crate::chaos;
use mcr_core::{DynamicSolver, SccPlan};
use mcr_graph::Graph;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// FNV-1a, 64-bit: the wire format's content hash. Stable across
/// platforms and trivially re-implementable by non-Rust clients.
pub fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

struct Entry {
    graph: Arc<Graph>,
    /// Plan for the minimize orientation (prepared from `graph`).
    plan: Option<SccPlan>,
    /// Plan for the maximize orientation (prepared from
    /// `graph.negated()`).
    negated_plan: Option<SccPlan>,
    /// The instance's persistent incremental solver, keyed by the
    /// question it answers (spec + epsilon + threads) so a later edit
    /// under a different question rebuilds instead of reusing a solver
    /// configured for another algorithm.
    dynamic: Option<(String, DynamicSolver)>,
}

/// What a lookup hands to the worker: the instance in the caller's
/// orientation plus the plan for the orientation the solver will run
/// on. `plan_built` reports whether this call had to build the plan
/// (first use of this orientation) so the server can meter it.
pub struct Resolved {
    /// The cached instance, caller orientation.
    pub graph: Arc<Graph>,
    /// SCC plan for the requested orientation.
    pub plan: SccPlan,
    /// Whether [`SccPlan::prepare`] ran during this lookup.
    pub plan_built: bool,
}

/// LRU cache from content hash to parsed instance. Capacity 0 disables
/// caching (every lookup misses and nothing is stored). Not internally
/// synchronized — the server wraps it in its own mutex.
pub struct GraphCache {
    capacity: usize,
    entries: HashMap<u64, Entry>,
    /// Recency order, oldest at the front. Invariant: same key set as
    /// `entries`, each key once.
    order: VecDeque<u64>,
}

impl GraphCache {
    /// An empty cache holding at most `capacity` instances.
    pub fn new(capacity: usize) -> GraphCache {
        GraphCache {
            capacity,
            entries: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Number of cached instances.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn touch(&mut self, hash: u64) {
        if let Some(pos) = self.order.iter().position(|&h| h == hash) {
            self.order.remove(pos);
        }
        self.order.push_back(hash);
    }

    /// Looks up `hash`, building the orientation's plan on first use.
    /// A hit refreshes the entry's recency. The `serve.cache.lookup`
    /// failpoint degrades a would-be hit into a miss, which the server
    /// then handles exactly like a cold instance — the fault is
    /// contained to extra work, never a wrong answer.
    pub fn get(&mut self, hash: u64, maximize: bool) -> Option<Resolved> {
        if !self.entries.contains_key(&hash) {
            return None;
        }
        if chaos::fail_hit("serve.cache.lookup") {
            return None;
        }
        self.touch(hash);
        let entry = self.entries.get_mut(&hash)?;
        let slot = if maximize {
            &mut entry.negated_plan
        } else {
            &mut entry.plan
        };
        let plan_built = slot.is_none();
        if plan_built {
            let plan = if maximize {
                SccPlan::prepare(&entry.graph.negated())
            } else {
                SccPlan::prepare(&entry.graph)
            };
            *slot = Some(plan);
        }
        let plan = slot.clone()?;
        Some(Resolved {
            graph: Arc::clone(&entry.graph),
            plan,
            plan_built,
        })
    }

    /// The cached instance itself, without building a plan (the `edit`
    /// path builds no plan — its solver re-extracts components after
    /// every batch). A hit refreshes recency; the `serve.cache.lookup`
    /// failpoint degrades it into a miss like [`GraphCache::get`].
    pub fn peek_graph(&mut self, hash: u64) -> Option<Arc<Graph>> {
        if !self.entries.contains_key(&hash) {
            return None;
        }
        if chaos::fail_hit("serve.cache.lookup") {
            return None;
        }
        self.touch(hash);
        self.entries.get(&hash).map(|e| Arc::clone(&e.graph))
    }

    /// Takes the instance's persistent [`DynamicSolver`] when one
    /// exists *for the same question* (`key` encodes spec + epsilon +
    /// threads). Ownership moves to the caller so the solve runs
    /// outside the cache lock; [`GraphCache::commit_edit`] returns it.
    pub fn take_dynamic(&mut self, hash: u64, key: &str) -> Option<DynamicSolver> {
        let entry = self.entries.get_mut(&hash)?;
        match entry.dynamic.take() {
            Some((k, solver)) if k == key => Some(solver),
            // A solver for a different question is useless here; drop
            // it rather than answer the wrong spec from its cache.
            _ => None,
        }
    }

    /// Commits an edited instance: swaps in the mutated graph, stores
    /// the solver for the next batch, and — the part a `DeleteArc`
    /// makes load-bearing — invalidates both orientation plans, whose
    /// frozen jobs still describe the pre-edit graph. No-op when the
    /// hash is not cached (capacity 0, or evicted mid-edit).
    pub fn commit_edit(&mut self, hash: u64, key: &str, graph: Arc<Graph>, solver: DynamicSolver) {
        let Some(entry) = self.entries.get_mut(&hash) else {
            return;
        };
        entry.graph = graph;
        entry.plan = None;
        entry.negated_plan = None;
        entry.dynamic = Some((key.to_string(), solver));
        self.touch(hash);
    }

    /// Inserts a freshly parsed instance, evicting the least recently
    /// used entries beyond capacity. No-op when capacity is 0.
    pub fn insert(&mut self, hash: u64, graph: Arc<Graph>) {
        if self.capacity == 0 {
            return;
        }
        self.entries.insert(
            hash,
            Entry {
                graph,
                plan: None,
                negated_plan: None,
                dynamic: None,
            },
        );
        self.touch(hash);
        while self.entries.len() > self.capacity {
            match self.order.pop_front() {
                Some(oldest) => {
                    self.entries.remove(&oldest);
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_graph::io::read_dimacs;

    const TRIANGLE: &str = "p mcr 3 3\na 1 2 1\na 2 3 2\na 3 1 3\n";

    fn graph(text: &str) -> Arc<Graph> {
        Arc::new(read_dimacs(&mut text.as_bytes()).expect("valid"))
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hit_reuses_the_plan_miss_reports_build() {
        let mut c = GraphCache::new(4);
        let h = fnv1a(TRIANGLE);
        assert!(c.get(h, false).is_none());
        c.insert(h, graph(TRIANGLE));
        let first = c.get(h, false).expect("hit");
        assert!(first.plan_built);
        let second = c.get(h, false).expect("hit");
        assert!(!second.plan_built, "plan is reused");
        assert_eq!(first.plan, second.plan, "same shared plan");
    }

    #[test]
    fn orientations_get_distinct_plans() {
        let mut c = GraphCache::new(4);
        let h = fnv1a(TRIANGLE);
        c.insert(h, graph(TRIANGLE));
        let min = c.get(h, false).expect("hit");
        let max = c.get(h, true).expect("hit");
        assert!(max.plan_built, "maximize builds its own plan");
        assert!(min.plan != max.plan, "orientations never share a plan");
        assert_eq!(min.plan.num_jobs(), max.plan.num_jobs());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut c = GraphCache::new(2);
        let texts = [
            TRIANGLE,
            "p mcr 2 2\na 1 2 5\na 2 1 1\n",
            "p mcr 1 1\na 1 1 7\n",
        ];
        let hashes: Vec<u64> = texts.iter().map(|t| fnv1a(t)).collect();
        c.insert(hashes[0], graph(texts[0]));
        c.insert(hashes[1], graph(texts[1]));
        // Touch [0] so [1] is the LRU victim.
        assert!(c.get(hashes[0], false).is_some());
        c.insert(hashes[2], graph(texts[2]));
        assert_eq!(c.len(), 2);
        assert!(c.get(hashes[1], false).is_none(), "victim evicted");
        assert!(c.get(hashes[0], false).is_some());
        assert!(c.get(hashes[2], false).is_some());
    }

    #[test]
    fn commit_edit_invalidates_both_orientation_plans() {
        use mcr_core::{SolveOptions, SolveSpec};
        let mut c = GraphCache::new(4);
        let h = fnv1a(TRIANGLE);
        c.insert(h, graph(TRIANGLE));
        // Build both orientation plans, then edit: the next lookups
        // must rebuild rather than reuse pre-edit jobs.
        assert!(c.get(h, false).expect("hit").plan_built);
        assert!(c.get(h, true).expect("hit").plan_built);
        let g = c.peek_graph(h).expect("cached");
        let solver = DynamicSolver::new(
            &g,
            SolveSpec::mean(mcr_core::Algorithm::HowardExact),
            SolveOptions::new(),
        );
        let mutated = graph("p mcr 3 2\na 1 2 1\na 2 3 2\n");
        c.commit_edit(h, "key", Arc::clone(&mutated), solver);
        let min = c.get(h, false).expect("hit");
        assert!(min.plan_built, "minimize plan was invalidated");
        assert_eq!(min.graph.num_arcs(), 2, "lookup sees the mutated graph");
        assert!(c.get(h, true).expect("hit").plan_built);
        // The solver round-trips only under the same question key.
        assert!(c.take_dynamic(h, "other").is_none());
        assert!(c.take_dynamic(h, "key").is_none(), "mismatch dropped it");
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let mut c = GraphCache::new(0);
        let h = fnv1a(TRIANGLE);
        c.insert(h, graph(TRIANGLE));
        assert!(c.is_empty());
        assert!(c.get(h, false).is_none());
    }
}
