//! Soak tests: concurrent clients hammering one daemon.
//!
//! The clean test proves the service invariants under concurrency —
//! every request gets exactly one response, successful responses are
//! bit-identical to direct [`mcr_core::spec::solve_spec`] answers, and
//! the admission counters balance. The chaos test (``--features
//! chaos``) reruns a single-client soak under seeded fault schedules
//! (3 seeds × 2 worker counts) that inject transient faults and delays
//! into the serve-layer sites; the daemon must keep answering every
//! request with a typed status and never panic or wedge.

use mcr_core::spec::solve_spec;
use mcr_core::SolveOptions;
use mcr_gen::requests::{request_log, RequestLogConfig};
use mcr_serve::json::{self, Value};
use mcr_serve::protocol::{self, Op};
use mcr_serve::{serve, ServeConfig};
use std::collections::BTreeMap;

/// Statuses a response may legally carry.
#[cfg(feature = "chaos")]
const KNOWN_STATUSES: [&str; 6] = [
    "ok",
    "input-error",
    "budget-exhausted",
    "certify-failed",
    "cancelled",
    "overloaded",
];

fn log_lines(count: usize, seed: u64) -> Vec<String> {
    request_log(&RequestLogConfig::new(count).seed(seed))
        .lines()
        .map(String::from)
        .collect()
}

/// Re-solves a request line directly and returns `(lambda, solved_by)`
/// — what a one-shot CLI run of the same request would print.
fn direct_answer(request_line: &str) -> Option<(String, String)> {
    let req = protocol::parse_request(request_line.as_bytes()).ok()?;
    let Op::Solve(job) = req.op else { return None };
    let g = mcr_graph::io::read_dimacs(&mut job.graph_text.as_deref()?.as_bytes()).ok()?;
    let mut opts = SolveOptions::new().threads(job.threads);
    opts.epsilon = job.epsilon;
    if let Some(b) = job.budget {
        opts = opts.budget(b);
    }
    if let Some(f) = job.fallback {
        opts.fallback = f;
    }
    let sol = solve_spec(&g, &job.spec, &opts).ok()??;
    Some((sol.lambda.to_string(), sol.solved_by.name().to_string()))
}

/// Asserts every `ok` response in `responses` is bit-identical to a
/// direct solve of the request with the same id.
fn assert_bit_identical(lines: &[String], responses: &str) {
    let by_id: BTreeMap<u64, &str> = lines
        .iter()
        .enumerate()
        .map(|(i, l)| ((i + 1) as u64, l.as_str()))
        .collect();
    for resp in responses.lines() {
        let v = json::parse(resp).expect("response is JSON");
        if v.get("status").and_then(Value::as_str) != Some("ok") {
            continue;
        }
        let id = v.get("id").and_then(Value::as_u64).expect("id");
        let (lambda, solved_by) =
            direct_answer(by_id[&id]).expect("direct solve of an ok request succeeds");
        assert_eq!(
            v.get("lambda").and_then(Value::as_str),
            Some(lambda.as_str()),
            "id {id}: daemon λ differs from one-shot solve"
        );
        assert_eq!(
            v.get("solved_by").and_then(Value::as_str),
            Some(solved_by.as_str())
        );
    }
}

#[test]
fn concurrent_clients_get_exact_and_complete_answers() {
    // Under a chaos build, hold the (empty) global schedule so a
    // concurrently running chaos test cannot inject faults into this
    // test's daemon; an empty schedule never fires.
    #[cfg(feature = "chaos")]
    let _quiesce = mcr_chaos::FaultSchedule::new(0).install();
    let handle = serve(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let addr = handle.local_addr().to_string();
    let clients: Vec<_> = (0..3u64)
        .map(|k| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let lines = log_lines(10, 100 + k);
                let mut out = Vec::new();
                let report = mcr_serve::client::replay(&addr, &lines, false, &mut out)
                    .expect("replay succeeds");
                (lines, report, String::from_utf8(out).expect("utf8"))
            })
        })
        .collect();
    for client in clients {
        let (lines, report, responses) = client.join().expect("client thread");
        assert_eq!(report.sent, 10);
        assert_eq!(report.received, 10, "exactly one response per request");
        let by_status: BTreeMap<&str, usize> = report
            .by_status
            .iter()
            .map(|(s, n)| (s.as_str(), *n))
            .collect();
        // The generator's deterministic tail: one expired deadline, one
        // starved budget; everything else must solve.
        assert_eq!(by_status.get("ok"), Some(&8), "{by_status:?}");
        assert_eq!(by_status.get("cancelled"), Some(&1));
        assert_eq!(by_status.get("budget-exhausted"), Some(&1));
        assert_bit_identical(&lines, &responses);
    }
    assert_eq!(handle.metric("serve.requests.accepted"), Some(30));
    assert_eq!(handle.metric("serve.requests.rejected"), Some(0));
    let settled = handle.metric("serve.requests.completed").unwrap_or(0)
        + handle.metric("serve.requests.cancelled").unwrap_or(0)
        + handle.metric("serve.requests.failed").unwrap_or(0);
    assert_eq!(settled, 30, "every admitted request settles");
    handle.shutdown();
}

/// One chaos soak round: a seeded fault schedule over the serve-layer
/// sites, one client, full replay. Returns the serve sites observed.
#[cfg(feature = "chaos")]
fn chaos_round(seed: u64, workers: usize, dir: &std::path::Path) -> Vec<String> {
    use mcr_chaos::{FaultKind, FaultSchedule};
    // Plant a settled journal entry plus junk so the replay path (and
    // its injection site) runs on startup.
    std::fs::create_dir_all(dir).expect("journal dir");
    std::fs::write(
        dir.join(mcr_serve::journal::JOURNAL_FILE),
        "{\"kind\":\"accept\",\"id\":999,\"req\":\"{}\"}\n\
         {\"kind\":\"done\",\"id\":999,\"status\":\"ok\"}\n\
         not json — torn write\n",
    )
    .expect("plant journal");
    // Delays on the framing and client sites (interleaving-safe, can
    // never lose a response); transient faults with seed-derived
    // trigger points everywhere a typed degraded response exists.
    let guard = FaultSchedule::new(seed)
        .inject_at("serve.frame.read", FaultKind::Delay { millis: 2 }, seed % 4, 3)
        .inject_at("serve.frame.write", FaultKind::Delay { millis: 2 }, seed % 3, 2)
        .inject_always("serve.client.frame", FaultKind::Delay { millis: 1 })
        .inject("serve.queue.admit", FaultKind::Transient)
        .inject_at("serve.worker.solve", FaultKind::Transient, seed % 5, 1)
        .inject("serve.cache.lookup", FaultKind::Transient)
        .inject("serve.journal.append", FaultKind::Transient)
        .inject("serve.journal.replay", FaultKind::Transient)
        .install();
    let handle = serve(ServeConfig {
        workers,
        journal_dir: Some(dir.to_path_buf()),
        ..ServeConfig::default()
    })
    .expect("daemon starts under chaos");
    let lines = log_lines(10, seed);
    let mut out = Vec::new();
    let report = mcr_serve::client::replay(&handle.local_addr().to_string(), &lines, false, &mut out)
        .expect("replay completes under chaos");
    assert_eq!(report.sent, 10, "seed {seed} workers {workers}");
    assert_eq!(
        report.received, 10,
        "seed {seed} workers {workers}: every request must get a typed response"
    );
    for (status, _) in &report.by_status {
        assert!(
            KNOWN_STATUSES.contains(&status.as_str()),
            "seed {seed}: unknown status {status:?}"
        );
    }
    // Admission is a partition: shed or accepted, nothing dropped.
    // Each client retry after an `overloaded` shed is one extra
    // admission decision, so the books balance at sends, not requests.
    let accepted = handle.metric("serve.requests.accepted").unwrap_or(0);
    let rejected = handle.metric("serve.requests.rejected").unwrap_or(0);
    assert_eq!(
        accepted + rejected,
        10 + report.retries as u64,
        "seed {seed} workers {workers}: admission must account for every send"
    );
    let settled = handle.metric("serve.requests.completed").unwrap_or(0)
        + handle.metric("serve.requests.cancelled").unwrap_or(0)
        + handle.metric("serve.requests.failed").unwrap_or(0);
    // An injected replay-skip can resurrect the planted (already done)
    // entry as a ghost recovery; it settles like any other request.
    assert_eq!(
        settled,
        accepted + handle.metric("serve.journal.recovered").unwrap_or(0),
        "seed {seed} workers {workers}"
    );
    assert!(
        mcr_chaos::faults_fired() > 0,
        "seed {seed}: the schedule never fired — the soak proved nothing"
    );
    let observed: Vec<String> = mcr_chaos::hit_sites()
        .into_iter()
        .filter(|s| s.starts_with("serve."))
        .collect();
    let declared = mcr_chaos::declared_sites();
    for site in &observed {
        assert!(declared.contains(&site.as_str()), "undeclared site {site}");
    }
    handle.shutdown();
    drop(guard);
    observed
}

/// One fleet chaos round: two in-process shards behind the fleet
/// client, with seeded wire-level faults (torn frames, mid-frame
/// disconnects, short writes, stalled reads). Every request must
/// settle exactly once at the client with its deterministic status —
/// failover plus `"dedup":true` re-sends absorb the faults. Returns
/// the serve sites observed.
#[cfg(feature = "chaos")]
fn fleet_round(seed: u64, workers: usize, base: &std::path::Path) -> Vec<String> {
    use mcr_chaos::{FaultKind, FaultSchedule};
    use mcr_serve::client::{fleet_replay, FleetConfig};
    use mcr_serve::shard::ShardMap;
    let guard = FaultSchedule::new(seed)
        .inject("serve.net.torn_write", FaultKind::Transient)
        .inject("serve.net.short_write", FaultKind::Transient)
        .inject("serve.net.disconnect", FaultKind::Transient)
        .inject_always("serve.net.read_stall", FaultKind::Delay { millis: 1 })
        .install();
    let handles: Vec<_> = (0..2)
        .map(|i| {
            serve(ServeConfig {
                workers,
                journal_dir: Some(base.join(format!("shard{i}"))),
                ..ServeConfig::default()
            })
            .expect("shard starts under chaos")
        })
        .collect();
    let spec = handles
        .iter()
        .map(|h| h.local_addr().to_string())
        .collect::<Vec<_>>()
        .join(",");
    let mut cfg = FleetConfig::new(ShardMap::parse(&spec).expect("two shards"));
    // Fail over fast: a stalled read should cost ms, not the default
    // 30 s, and a single torn frame must not trip a breaker open.
    cfg.response_timeout = std::time::Duration::from_millis(2_000);
    let lines = log_lines(10, seed);
    let mut out = Vec::new();
    let report = fleet_replay(&cfg, &lines, &mut out).expect("fleet replay under chaos");
    assert_eq!(report.sent, 10, "fleet seed {seed} workers {workers}");
    assert_eq!(
        report.settled, 10,
        "fleet seed {seed} workers {workers}: every request settles exactly once"
    );
    // Only wire faults are injected, so solves stay deterministic: the
    // generator's tail statuses must survive failover and dedup intact.
    let by_status: BTreeMap<&str, usize> = report
        .by_status
        .iter()
        .map(|(s, n)| (s.as_str(), *n))
        .collect();
    assert_eq!(
        by_status.get("ok"),
        Some(&8),
        "fleet seed {seed} workers {workers}: {by_status:?}"
    );
    assert_eq!(by_status.get("cancelled"), Some(&1));
    assert_eq!(by_status.get("budget-exhausted"), Some(&1));
    assert!(
        mcr_chaos::faults_fired() > 0,
        "fleet seed {seed}: the schedule never fired"
    );
    let observed: Vec<String> = mcr_chaos::hit_sites()
        .into_iter()
        .filter(|s| s.starts_with("serve."))
        .collect();
    for handle in handles {
        handle.shutdown();
    }
    drop(guard);
    observed
}

#[cfg(feature = "chaos")]
#[test]
fn seeded_chaos_soak_never_drops_or_panics() {
    // MCR_CHAOS_SEED narrows the matrix to one seed for bisection.
    let seeds: Vec<u64> = match std::env::var("MCR_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("MCR_CHAOS_SEED must be a u64")],
        Err(_) => vec![11, 42, 20240806],
    };
    let base = std::env::temp_dir().join(format!("mcr-serve-soak-{}", std::process::id()));
    let mut covered: std::collections::BTreeSet<String> = Default::default();
    for &seed in &seeds {
        for workers in [1usize, 4] {
            let dir = base.join(format!("s{seed}-w{workers}"));
            covered.extend(chaos_round(seed, workers, &dir));
            let fleet_dir = base.join(format!("fleet-s{seed}-w{workers}"));
            covered.extend(fleet_round(seed, workers, &fleet_dir));
        }
    }
    // Across the matrix every serve-layer site must have been exercised.
    for site in mcr_chaos::declared_sites() {
        if site.starts_with("serve.") {
            assert!(covered.contains(site), "site {site} never hit in the soak");
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}
