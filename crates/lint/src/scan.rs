//! A minimal Rust source scanner: the token-level model the contract
//! rules are written against.
//!
//! This is deliberately **not** a full parser. The offline build
//! environment has no `syn` (see the workspace manifest's vendoring
//! note), and the five workspace contracts only need:
//!
//! * source text with comments and literals blanked out (so rules never
//!   match inside a comment, doc example, or string),
//! * a token stream that distinguishes identifiers, integer literals,
//!   **float literals**, string literals, and (multi-char) punctuation,
//! * the line spans of `#[cfg(test)]` items (test code is exempt from
//!   the production contracts),
//! * the `// lint: allow(<rule>) reason=...` comment table.
//!
//! Everything here is line-oriented: a diagnostic's position is the
//! 1-based line of the offending token, which is what CI and editors
//! consume.

/// One lexical token of the cleaned source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Int,
    Float,
    /// A string literal (contents elided during cleaning).
    Str,
    /// Punctuation; multi-char operators arrive as one token (`==`,
    /// `!=`, `<=`, `>=`, `&&`, `||`, `->`, `=>`, `::`, `..`, `..=`).
    Punct,
}

/// A string literal with its contents preserved (the cleaned text
/// blanks it; chaos-site checking needs the value).
#[derive(Clone, Debug)]
pub struct StrLit {
    pub value: String,
    pub line: u32,
}

/// An inline allowlist entry: `// lint: allow(<rule>) reason=<text>`.
#[derive(Clone, Debug)]
pub struct Allow {
    /// The rule tag inside `allow(...)`, e.g. `panic`.
    pub tag: String,
    /// 1-based line the comment sits on.
    pub line: u32,
    pub reason_ok: bool,
}

/// A comment that contains `lint:` but does not parse as an allowlist
/// entry (reported as MCRL000 so typos cannot silently disable a rule).
#[derive(Clone, Debug)]
pub struct MalformedAllow {
    pub line: u32,
    pub detail: &'static str,
}

/// The scanned model of one source file.
pub struct Scanned {
    pub tokens: Vec<Token>,
    pub strings: Vec<StrLit>,
    pub allows: Vec<Allow>,
    pub malformed_allows: Vec<MalformedAllow>,
    /// Inclusive 1-based line ranges belonging to `#[cfg(test)]` items.
    pub test_spans: Vec<(u32, u32)>,
}

impl Scanned {
    /// Whether `line` lies inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// Whether a diagnostic of `tag` on `line` is suppressed by an
    /// allowlist comment on the same line or the line directly above.
    pub fn is_allowed(&self, tag: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.tag == tag && a.reason_ok && (a.line == line || a.line + 1 == line))
    }
}

/// Scans `src`, producing the token stream and side tables.
pub fn scan(src: &str) -> Scanned {
    let (clean, strings, comments) = clean(src);
    let tokens = tokenize(&clean);
    let (allows, malformed_allows) = parse_allows(&comments);
    let test_spans = find_test_spans(&tokens);
    Scanned {
        tokens,
        strings,
        allows,
        malformed_allows,
        test_spans,
    }
}

/// Pass 1: blank comments and literal contents (newlines preserved, so
/// line numbers survive), collecting string literal values and comment
/// texts on the way out.
#[allow(clippy::type_complexity)]
fn clean(src: &str) -> (String, Vec<StrLit>, Vec<(u32, String)>) {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut strings = Vec::new();
    let mut comments: Vec<(u32, String)> = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;
    let push_blank = |out: &mut Vec<u8>, c: u8| {
        out.push(if c == b'\n' { b'\n' } else { b' ' });
    };
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            out.push(c);
            i += 1;
        } else if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            // Line comment (incl. doc comments).
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                out.push(b' ');
                i += 1;
            }
            comments.push((line, String::from_utf8_lossy(&b[start..i]).into_owned()));
        } else if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            // Block comment, nested.
            let mut depth = 1;
            out.extend_from_slice(b"  ");
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    push_blank(&mut out, b[i]);
                    i += 1;
                }
            }
        } else if c == b'"' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'"') {
            // Plain (or byte) string literal.
            let lit_line = line;
            if c == b'b' {
                out.push(b' ');
                i += 1;
            }
            out.push(b'"');
            i += 1;
            let start = i;
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    if b[i + 1] == b'\n' {
                        line += 1;
                    }
                    push_blank(&mut out, b[i]);
                    push_blank(&mut out, b[i + 1]);
                    i += 2;
                } else if b[i] == b'"' {
                    break;
                } else {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    push_blank(&mut out, b[i]);
                    i += 1;
                }
            }
            strings.push(StrLit {
                value: String::from_utf8_lossy(&b[start..i.min(b.len())]).into_owned(),
                line: lit_line,
            });
            if i < b.len() {
                out.push(b'"');
                i += 1;
            }
        } else if is_raw_string_start(b, i) {
            // r"..."  r#"..."#  br#"..."# — blank to the matching close.
            let lit_line = line;
            let mut j = i;
            if b[j] == b'b' {
                j += 1;
            }
            j += 1; // past 'r'
            let mut hashes = 0;
            while j < b.len() && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            // j is at the opening quote, which is kept so the
            // tokenizer still sees one `Str` token per recorded literal.
            for &byte in &b[i..j] {
                push_blank(&mut out, byte);
            }
            out.push(b'"');
            let start = j + 1;
            let mut k = start;
            let closer = {
                let mut v = vec![b'"'];
                v.extend(std::iter::repeat_n(b'#', hashes));
                v
            };
            while k < b.len() && !b[k..].starts_with(&closer) {
                if b[k] == b'\n' {
                    line += 1;
                }
                k += 1;
            }
            strings.push(StrLit {
                value: String::from_utf8_lossy(&b[start..k.min(b.len())]).into_owned(),
                line: lit_line,
            });
            for &byte in &b[start..k.min(b.len())] {
                push_blank(&mut out, byte);
            }
            if k < b.len() {
                out.push(b'"');
                for &byte in &b[(k + 1)..(k + closer.len()).min(b.len())] {
                    push_blank(&mut out, byte);
                }
            }
            i = (k + closer.len()).min(b.len());
        } else if c == b'\'' {
            // Char literal vs lifetime.
            if i + 1 < b.len() && b[i + 1] == b'\\' {
                // Escaped char literal: blank to the closing quote.
                out.push(b' ');
                i += 1;
                while i < b.len() && b[i] != b'\'' {
                    push_blank(&mut out, b[i]);
                    i += 1;
                }
                if i < b.len() {
                    out.push(b' ');
                    i += 1;
                }
            } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                // 'x' char literal.
                out.extend_from_slice(b"   ");
                i += 3;
            } else {
                // Lifetime: keep as-is (harmless to the rules).
                out.push(c);
                i += 1;
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    (
        String::from_utf8_lossy(&out).into_owned(),
        strings,
        comments,
    )
}

fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let j = if b[i] == b'b' { i + 1 } else { i };
    if j >= b.len() || b[j] != b'r' {
        return false;
    }
    // Not part of an identifier like `for` / `br`-prefixed names.
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut k = j + 1;
    while k < b.len() && b[k] == b'#' {
        k += 1;
    }
    k < b.len() && b[k] == b'"'
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Pass 2: tokenize the cleaned text.
fn tokenize(clean: &str) -> Vec<Token> {
    const TWO_CHAR: [&str; 14] = [
        "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "::", "..", "+=", "-=", "*=", "/=",
    ];
    let b = clean.as_bytes();
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
        } else if c.is_ascii_whitespace() {
            i += 1;
        } else if c == b'"' {
            // Blanked string literal: emit a Str token, skip to close.
            let mut j = i + 1;
            while j < b.len() && b[j] != b'"' {
                if b[j] == b'\n' {
                    line += 1;
                }
                j += 1;
            }
            toks.push(Token {
                kind: TokKind::Str,
                text: String::new(),
                line,
            });
            i = (j + 1).min(b.len());
        } else if is_ident_char(c) && !c.is_ascii_digit() {
            let start = i;
            while i < b.len() && is_ident_char(b[i]) {
                i += 1;
            }
            toks.push(Token {
                kind: TokKind::Ident,
                text: clean[start..i].to_string(),
                line,
            });
        } else if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            if c == b'0' && i + 1 < b.len() && (b[i + 1] | 0x20) == b'x' {
                i += 2;
                while i < b.len() && (b[i].is_ascii_hexdigit() || b[i] == b'_') {
                    i += 1;
                }
            } else {
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                    i += 1;
                }
                // Fractional part: a '.' followed by a digit (so `0..n`
                // and `1.max(2)` stay integers).
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                        i += 1;
                    }
                }
                // Exponent.
                if i < b.len() && (b[i] | 0x20) == b'e' {
                    let mut j = i + 1;
                    if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                        j += 1;
                    }
                    if j < b.len() && b[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                            i += 1;
                        }
                    }
                }
            }
            // Type suffix (u32, i64, f64, usize, ...).
            let suffix_start = i;
            while i < b.len() && is_ident_char(b[i]) {
                i += 1;
            }
            let suffix = &clean[suffix_start..i];
            if suffix.starts_with('f') {
                is_float = true;
            }
            toks.push(Token {
                kind: if is_float { TokKind::Float } else { TokKind::Int },
                text: clean[start..i].to_string(),
                line,
            });
        } else {
            let two = if i + 1 < b.len() { &clean[i..i + 2] } else { "" };
            if TWO_CHAR.contains(&two) {
                // `..=` extends `..`.
                if two == ".." && i + 2 < b.len() && b[i + 2] == b'=' {
                    toks.push(Token {
                        kind: TokKind::Punct,
                        text: "..=".to_string(),
                        line,
                    });
                    i += 3;
                } else {
                    toks.push(Token {
                        kind: TokKind::Punct,
                        text: two.to_string(),
                        line,
                    });
                    i += 2;
                }
            } else {
                toks.push(Token {
                    kind: TokKind::Punct,
                    text: clean[i..i + 1].to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Pass 3: the allowlist table from line comments.
fn parse_allows(comments: &[(u32, String)]) -> (Vec<Allow>, Vec<MalformedAllow>) {
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    for (line, text) in comments {
        let Some(pos) = text.find("lint:") else {
            continue;
        };
        let rest = text[pos + "lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            malformed.push(MalformedAllow {
                line: *line,
                detail: "expected `allow(<rule>)` after `lint:`",
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            malformed.push(MalformedAllow {
                line: *line,
                detail: "unclosed `allow(`",
            });
            continue;
        };
        let tag = rest[..close].trim().to_string();
        if !crate::rules::KNOWN_ALLOW_TAGS.contains(&tag.as_str()) {
            malformed.push(MalformedAllow {
                line: *line,
                detail: "unknown rule tag in `allow(...)`",
            });
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let reason_ok = after
            .strip_prefix("reason=")
            .is_some_and(|r| !r.trim().is_empty());
        if !reason_ok {
            malformed.push(MalformedAllow {
                line: *line,
                detail: "missing or empty `reason=` (a justification is mandatory)",
            });
            continue;
        }
        allows.push(Allow {
            tag,
            line: *line,
            reason_ok,
        });
    }
    (allows, malformed)
}

/// Pass 4: line spans of `#[cfg(test)]` items (`mod` bodies and `fn`
/// bodies; other item kinds are skipped to the end of their line).
fn find_test_spans(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#"
            && i + 3 < toks.len()
            && toks[i + 1].text == "["
            && toks[i + 2].text == "cfg"
            && toks[i + 3].text == "("
        {
            // Collect the attribute's tokens up to the matching `]`.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut attr: Vec<&Token> = Vec::new();
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                attr.push(&toks[j]);
                j += 1;
            }
            if attr_is_test(&attr) {
                // Skip any further attributes, then find the item.
                let mut k = j + 1;
                while k < toks.len() && toks[k].text == "#" {
                    let mut d = 0usize;
                    k += 1;
                    while k < toks.len() {
                        match toks[k].text.as_str() {
                            "[" => d += 1,
                            "]" => {
                                d -= 1;
                                if d == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                // Find the item's body braces (mod/fn/impl); `use`
                // items end at `;`.
                let start_line = toks[i].line;
                let mut end_line = start_line;
                let mut m = k;
                while m < toks.len() {
                    match toks[m].text.as_str() {
                        ";" => {
                            end_line = toks[m].line;
                            break;
                        }
                        "{" => {
                            let mut d = 0usize;
                            while m < toks.len() {
                                match toks[m].text.as_str() {
                                    "{" => d += 1,
                                    "}" => {
                                        d -= 1;
                                        if d == 0 {
                                            end_line = toks[m].line;
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                m += 1;
                            }
                            break;
                        }
                        _ => {}
                    }
                    m += 1;
                }
                spans.push((start_line, end_line));
                i = m + 1;
                continue;
            }
        }
        i += 1;
    }
    spans
}

/// Whether a `cfg(...)` attribute token list selects test builds:
/// contains an identifier `test` not directly governed by `not(`.
fn attr_is_test(attr: &[&Token]) -> bool {
    for (idx, t) in attr.iter().enumerate() {
        if t.kind == TokKind::Ident && t.text == "test" {
            let negated = idx >= 2
                && attr[idx - 1].text == "("
                && attr[idx - 2].kind == TokKind::Ident
                && attr[idx - 2].text == "not";
            if !negated {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let s = scan("let x = \"a == 0.0\"; // x == 1.0\nlet y = 2;");
        assert!(s.tokens.iter().all(|t| t.text != "1.0" && t.text != "0.0"));
        assert_eq!(s.strings.len(), 1);
        assert_eq!(s.strings[0].value, "a == 0.0");
    }

    #[test]
    fn float_vs_range_vs_method() {
        let s = scan("a[0..n]; b = 1.5; c = 1.max(2); d = 2e-9;");
        let floats: Vec<_> = s
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Float)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(floats, ["1.5", "2e-9"]);
    }

    #[test]
    fn cfg_test_mod_span() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let s = scan(src);
        assert_eq!(s.test_spans, vec![(2, 5)]);
        assert!(s.is_test_line(4));
        assert!(!s.is_test_line(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let s = scan("#[cfg(not(test))]\nmod gate { fn a() {} }\n");
        assert!(s.test_spans.is_empty());
    }

    #[test]
    fn allow_comments_parse_and_malformed_are_reported() {
        let src = "// lint: allow(panic) reason=bounded by construction\n\
                   // lint: allow(panic)\n\
                   // lint: allow(bogus) reason=x\n";
        let s = scan(src);
        assert_eq!(s.allows.len(), 1);
        assert_eq!(s.allows[0].tag, "panic");
        assert_eq!(s.malformed_allows.len(), 2);
        assert!(s.is_allowed("panic", 1));
        assert!(s.is_allowed("panic", 2)); // line directly below
        assert!(!s.is_allowed("panic", 3));
    }

    #[test]
    fn raw_strings_and_char_literals() {
        let s = scan("let p = r#\"== 1.0\"#; let c = '='; let lt: &'static str = \"y\";");
        assert!(s.tokens.iter().all(|t| t.text != "=="));
        assert_eq!(s.strings[0].value, "== 1.0");
    }
}
