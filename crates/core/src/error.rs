//! The typed error model for the solver layer.
//!
//! Every public entry point of this crate is *total*: instead of
//! panicking on degenerate inputs (zero-transit cycles, adversarial
//! weights that overflow `i64`, budgets that run out before an
//! iterative method converges) it returns a [`SolveError`]. The driver
//! distinguishes *recoverable* errors — another algorithm might still
//! succeed, so the fallback chain keeps going — from *non-recoverable*
//! ones, which are properties of the input itself and abort the solve
//! immediately (see [`SolveError::is_recoverable`]).

// Parsing/validation surfaces must stay panic-free whatever the
// input; CI runs clippy with -D warnings, so these lints are a gate.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]


use crate::algorithms::Algorithm;
use std::fmt;

/// Which budgeted resource ran out (see [`crate::Budget`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BudgetResource {
    /// [`crate::Budget::max_iterations`]: outer-loop passes of the
    /// algorithm (policy improvements, pivots, table levels, bisection
    /// steps).
    Iterations,
    /// [`crate::Budget::wall_time`]: the shared wall-clock deadline.
    WallTime,
    /// [`crate::Budget::max_lambda_refinements`]: λ-refinement steps of
    /// the search-based algorithms (Lawler, OA1, Megiddo's oracle
    /// resolutions, the ratio bisection).
    LambdaRefinements,
}

impl fmt::Display for BudgetResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BudgetResource::Iterations => "iterations",
            BudgetResource::WallTime => "wall time",
            BudgetResource::LambdaRefinements => "lambda refinements",
        })
    }
}

/// Why a solve did not produce a [`crate::Solution`].
///
/// Returned by [`Algorithm::solve_with_options`] and every `_opts`
/// entry point. The convenience wrappers ([`Algorithm::solve`],
/// [`crate::minimum_cycle_mean`], …) flatten this to `Option` for the
/// common acyclic case.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SolveError {
    /// The input graph has no cycle, so no cycle mean or ratio exists.
    Acyclic,
    /// A [`crate::Budget`] resource was exhausted before `algorithm`
    /// converged (after `spent` charges against that resource) and no
    /// fallback answered either.
    BudgetExhausted {
        /// The algorithm that ran out (the last of the fallback chain
        /// to be attempted).
        algorithm: Algorithm,
        /// Which resource ran out.
        resource: BudgetResource,
        /// Charges consumed against that resource when it ran out.
        spent: u64,
    },
    /// Integer arithmetic overflowed while accumulating cycle weights
    /// or transit times.
    Overflow {
        /// Where the overflow happened.
        context: &'static str,
    },
    /// A ratio problem was posed on a graph with a cycle of zero total
    /// transit time; its ratio is undefined.
    ZeroTransitCycle,
    /// An approximate algorithm was configured with an epsilon that is
    /// not positive and finite.
    InvalidEpsilon {
        /// The offending value.
        epsilon: f64,
    },
    /// An internal numeric range was exhausted (binary-search
    /// denominators outgrowing `i64`, scaling phases collapsing);
    /// another algorithm may still solve the instance exactly.
    NumericRange {
        /// Which search ran out of range.
        context: &'static str,
    },
    /// The solve was cancelled through a [`crate::CancelToken`]
    /// (directly, or by the CLI's `--timeout` watchdog). Cancellation
    /// is deliberate and solve-wide, so the fallback chain does *not*
    /// continue past it: the solve fails closed immediately.
    Cancelled,
}

impl SolveError {
    /// Whether a *different algorithm* might still solve the instance:
    /// budget exhaustion, overflow, and numeric-range failures are
    /// properties of the attempted method, so the fallback chain
    /// continues past them. [`SolveError::Acyclic`],
    /// [`SolveError::ZeroTransitCycle`] and
    /// [`SolveError::InvalidEpsilon`] are properties of the input or
    /// configuration, and [`SolveError::Cancelled`] is an explicit
    /// caller request; all of those abort immediately.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            SolveError::BudgetExhausted { .. }
                | SolveError::Overflow { .. }
                | SolveError::NumericRange { .. }
        )
    }

    /// A short stable kebab-case tag for the variant, used as the
    /// `error` field of `mcr-trace v1` events and by machine-readable
    /// CLI output. Part of the trace schema: renaming one is a schema
    /// version bump.
    pub fn kind(&self) -> &'static str {
        match self {
            SolveError::Acyclic => "acyclic",
            SolveError::BudgetExhausted { .. } => "budget-exhausted",
            SolveError::Overflow { .. } => "overflow",
            SolveError::ZeroTransitCycle => "zero-transit-cycle",
            SolveError::InvalidEpsilon { .. } => "invalid-epsilon",
            SolveError::NumericRange { .. } => "numeric-range",
            SolveError::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Acyclic => f.write_str("the graph is acyclic: no cycle mean or ratio exists"),
            SolveError::BudgetExhausted {
                algorithm,
                resource,
                spent,
            } => write!(
                f,
                "budget exhausted: {algorithm} ran out of {resource} after {spent} charge(s)"
            ),
            SolveError::Overflow { context } => {
                write!(f, "integer overflow in {context}")
            }
            SolveError::ZeroTransitCycle => f.write_str(
                "some cycle has zero total transit time: its cost-to-time ratio is undefined",
            ),
            SolveError::InvalidEpsilon { epsilon } => {
                write!(f, "epsilon must be positive and finite, got {epsilon}")
            }
            SolveError::NumericRange { context } => {
                write!(f, "numeric range exhausted in {context}")
            }
            SolveError::Cancelled => f.write_str("the solve was cancelled"),
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recoverability_partition() {
        let recoverable = [
            SolveError::BudgetExhausted {
                algorithm: Algorithm::HowardExact,
                resource: BudgetResource::Iterations,
                spent: 1,
            },
            SolveError::Overflow { context: "test" },
            SolveError::NumericRange { context: "test" },
        ];
        let fatal = [
            SolveError::Acyclic,
            SolveError::ZeroTransitCycle,
            SolveError::InvalidEpsilon { epsilon: -1.0 },
            SolveError::Cancelled,
        ];
        for e in recoverable {
            assert!(e.is_recoverable(), "{e}");
        }
        for e in fatal {
            assert!(!e.is_recoverable(), "{e}");
        }
    }

    #[test]
    fn display_mentions_the_essentials() {
        let e = SolveError::BudgetExhausted {
            algorithm: Algorithm::Karp,
            resource: BudgetResource::WallTime,
            spent: 42,
        };
        let s = e.to_string();
        assert!(s.contains("Karp") && s.contains("wall time") && s.contains("42"), "{s}");
        assert!(SolveError::Acyclic.to_string().contains("acyclic"));
    }
}
