//! Parametric shortest path algorithms: KO (Karp–Orlin) and YTO
//! (Young–Tarjan–Orlin).
//!
//! Both exploit the fact that λ* is the largest λ for which `G_λ` (arc
//! costs `w − λ·t`) has no negative cycle. Starting from λ = −∞ they
//! maintain a tree of shortest paths from an artificial source and
//! increase λ continuously; each tree-path distance is a linear function
//! `a(v) − λ·k(v)` of λ (`a` = path weight, `k` = path transit), so the
//! next λ at which some non-tree arc becomes tight is a rational *event*
//!
//! ```text
//! λ_e = (a(u) + w(e) − a(v)) / (k(u) + t(e) − k(v))
//! ```
//!
//! The minimum event over all arcs triggers a pivot that swaps one tree
//! arc; when a pivot would create a cycle, that cycle has cost exactly
//! zero in `G_λ`, so λ* has been reached and the cycle is a minimum
//! mean (ratio) cycle.
//!
//! The two algorithms differ only in how events are queued — the very
//! difference the paper measures in §4.2:
//!
//! * **KO** keeps one Fibonacci-heap entry *per arc*. After a pivot
//!   moves subtree `T`, every arc with exactly one endpoint in `T` is
//!   deleted and reinserted — many insertions.
//! * **YTO** keeps one entry *per node* (the minimum event over its
//!   incoming arcs). After a pivot only affected node keys are
//!   recomputed and updated in place — far fewer heap operations,
//!   "especially in the number of insertions".

use crate::budget::BudgetScope;
use crate::driver::SccOutcome;
use crate::error::SolveError;
use crate::instrument::Counters;
use crate::rational::Ratio64;
use crate::solution::Guarantee;
use mcr_graph::idx32;
use mcr_graph::heap::{AddressableHeap, FibonacciHeap};
use mcr_graph::{ArcId, Graph, NodeId};

const ROOT: u32 = u32::MAX;

/// Which event-queue granularity to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum HeapGranularity {
    /// One heap entry per arc (KO).
    PerArc,
    /// One heap entry per node (YTO).
    PerNode,
}

struct Tree<'g> {
    g: &'g Graph,
    parent_arc: Vec<Option<ArcId>>,
    parent_node: Vec<u32>,
    children: Vec<Vec<u32>>,
    /// Tree-path weight from the artificial root.
    a: Vec<i64>,
    /// Tree-path transit from the artificial root.
    k: Vec<i64>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl<'g> Tree<'g> {
    /// Builds the shortest path tree for λ → −∞: paths are compared by
    /// `(transit, weight)` lexicographically. With strictly positive
    /// transit times the artificial star (a = 0, k = 0) is already
    /// optimal; zero-transit arcs require a lexicographic Bellman–Ford.
    fn new(g: &'g Graph) -> Result<Self, SolveError> {
        let n = g.num_nodes();
        let mut tree = Tree {
            g,
            parent_arc: vec![None; n],
            parent_node: vec![ROOT; n],
            children: vec![Vec::new(); n],
            a: vec![0; n],
            k: vec![0; n],
            stamp: vec![0; n],
            epoch: 0,
        };
        if g.arc_ids().any(|e| g.transit(e) == 0) {
            tree.lexicographic_init()?;
        }
        Ok(tree)
    }

    fn lexicographic_init(&mut self) -> Result<(), SolveError> {
        let g = self.g;
        let n = g.num_nodes();
        let mut changed = true;
        let mut rounds = 0;
        while changed {
            changed = false;
            rounds += 1;
            if rounds > n + 1 {
                // The lexicographic relaxation diverges exactly when
                // some cycle has zero total transit (ratio undefined).
                return Err(SolveError::ZeroTransitCycle);
            }
            for e in g.arc_ids() {
                let u = g.source(e).index();
                let v = g.target(e).index();
                let cand = (self.k[u] + g.transit(e), self.a[u] + g.weight(e));
                if cand < (self.k[v], self.a[v]) {
                    self.k[v] = cand.0;
                    self.a[v] = cand.1;
                    self.parent_arc[v] = Some(e);
                    self.parent_node[v] = idx32(u);
                    changed = true;
                }
            }
        }
        for v in 0..n {
            if self.parent_arc[v].is_some() {
                self.children[self.parent_node[v] as usize].push(idx32(v));
            }
        }
        Ok(())
    }

    /// The event value of arc `e`, if increasing λ can ever make it
    /// preferable to the current tree path of its target.
    fn event(&self, e: ArcId) -> Option<Ratio64> {
        self.event_parts(
            self.g.source(e).index(),
            self.g.target(e).index(),
            self.g.weight(e),
            self.g.transit(e),
        )
    }

    /// [`Tree::event`] with the arc's endpoints/weight/transit already
    /// at hand (the hot path reads them from the aligned adjacency).
    #[inline]
    fn event_parts(&self, u: usize, v: usize, w: i64, t: i64) -> Option<Ratio64> {
        let den = self.k[u] + t - self.k[v];
        if den <= 0 {
            return None;
        }
        Some(Ratio64::new(self.a[u] + w - self.a[v], den))
    }

    /// Whether `anc` is `node` itself or one of its tree ancestors.
    fn is_ancestor(&self, anc: usize, mut node: usize) -> bool {
        loop {
            if node == anc {
                return true;
            }
            match self.parent_node[node] {
                ROOT => return false,
                p => node = p as usize,
            }
        }
    }

    /// Tree path from `anc` down to `node` (inclusive), as arcs.
    fn path_arcs(&self, anc: usize, node: usize) -> Vec<ArcId> {
        let mut arcs = Vec::new();
        let mut v = node;
        while v != anc {
            let a = self.parent_arc[v].expect("path within the tree");
            arcs.push(a);
            v = self.parent_node[v] as usize;
        }
        arcs.reverse();
        arcs
    }

    /// Collects the subtree rooted at `v` (including `v`), stamping
    /// membership for O(1) queries until the next pivot.
    fn collect_subtree(&mut self, v: usize) -> Vec<u32> {
        self.epoch += 1;
        let mut sub = vec![idx32(v)];
        self.stamp[v] = self.epoch;
        let mut head = 0;
        while head < sub.len() {
            let x = sub[head] as usize;
            head += 1;
            for &c in &self.children[x] {
                self.stamp[c as usize] = self.epoch;
                sub.push(c);
            }
        }
        sub
    }

    #[inline]
    fn in_subtree(&self, v: usize) -> bool {
        self.stamp[v] == self.epoch
    }

    /// Re-hangs `v` under `u` via arc `e` and shifts the subtree's
    /// linear coefficients. Returns the stamped subtree.
    fn pivot(&mut self, e: ArcId) -> Vec<u32> {
        let u = self.g.source(e).index();
        let v = self.g.target(e).index();
        let delta_a = self.a[u] + self.g.weight(e) - self.a[v];
        let delta_k = self.k[u] + self.g.transit(e) - self.k[v];
        debug_assert!(delta_k > 0, "pivot on an invalid crossing");
        // Detach from the old parent.
        match self.parent_node[v] {
            ROOT => {}
            p => {
                let list = &mut self.children[p as usize];
                let pos = list
                    .iter()
                    .position(|&c| c == idx32(v))
                    .expect("child list consistent");
                list.swap_remove(pos);
            }
        }
        self.parent_node[v] = idx32(u);
        self.parent_arc[v] = Some(e);
        self.children[u].push(idx32(v));
        let sub = self.collect_subtree(v);
        for &x in &sub {
            self.a[x as usize] += delta_a;
            self.k[x as usize] += delta_k;
        }
        sub
    }
}

/// Runs the parametric algorithm on one strongly connected, cyclic
/// component with the chosen heap granularity and LEDA's Fibonacci heap
/// (the study's configuration).
pub(crate) fn solve_scc(
    g: &Graph,
    counters: &mut Counters,
    granularity: HeapGranularity,
    scope: &mut BudgetScope,
) -> Result<SccOutcome, SolveError> {
    solve_scc_with::<FibonacciHeap<Ratio64>>(g, counters, granularity, scope)
}

/// Heap-generic engine, for the Fibonacci-vs-binary ablation bench.
/// Every pivot charges one budget iteration.
pub(crate) fn solve_scc_with<H: AddressableHeap<Ratio64>>(
    g: &Graph,
    counters: &mut Counters,
    granularity: HeapGranularity,
    scope: &mut BudgetScope,
) -> Result<SccOutcome, SolveError> {
    let n = g.num_nodes();
    let m = g.num_arcs();
    let mut tree = Tree::new(g)?;

    match granularity {
        HeapGranularity::PerArc => {
            let mut heap: H = H::with_capacity(m);
            for e in g.arc_ids() {
                if let Some(ev) = tree.event(e) {
                    heap.push(e.index(), ev);
                }
            }
            scope.loop_metrics("core.ko-yto.pivot");
            let outcome = loop {
                let (ei, lam) = heap.pop_min().ok_or(SolveError::NumericRange {
                    context: "KO event queue drained before a cycle event",
                })?;
                let e = ArcId::new(ei);
                counters.iterations += 1;
                scope.tick_iteration_and_time()?;
                scope.chaos_check("core.ko-yto.pivot")?;
                let u = g.source(e).index();
                let v = g.target(e).index();
                if tree.is_ancestor(v, u) {
                    let mut cycle = tree.path_arcs(v, u);
                    cycle.push(e);
                    break (lam, cycle);
                }
                let sub = tree.pivot(e);
                // Refresh every arc with exactly one endpoint in the
                // moved subtree (events with both endpoints inside are
                // unchanged: both linear coefficients shift equally).
                for &x in &sub {
                    let xv = NodeId::new(x as usize);
                    for (f, y, w, t) in g.out_adj(xv) {
                        if !tree.in_subtree(y.index()) {
                            refresh_arc(&tree, &mut heap, f, x as usize, y.index(), w, t);
                        }
                    }
                    for (f, z, w, t) in g.in_adj(xv) {
                        if !tree.in_subtree(z.index()) {
                            refresh_arc(&tree, &mut heap, f, z.index(), x as usize, w, t);
                        }
                    }
                }
            };
            counters.heap += heap.counters();
            finish(g, outcome, crate::Algorithm::Ko)
        }
        HeapGranularity::PerNode => {
            let mut heap: H = H::with_capacity(n);
            let mut best_arc: Vec<Option<ArcId>> = vec![None; n];
            for v in 0..n {
                recompute_node(&tree, &mut heap, &mut best_arc, v);
            }
            scope.loop_metrics("core.ko-yto.pivot");
            let outcome = loop {
                let (vi, lam) = heap.pop_min().ok_or(SolveError::NumericRange {
                    context: "YTO event queue drained before a cycle event",
                })?;
                let e = best_arc[vi].expect("queued node has a best arc");
                counters.iterations += 1;
                scope.tick_iteration_and_time()?;
                scope.chaos_check("core.ko-yto.pivot")?;
                let u = g.source(e).index();
                if tree.is_ancestor(vi, u) {
                    let mut cycle = tree.path_arcs(vi, u);
                    cycle.push(e);
                    break (lam, cycle);
                }
                let sub = tree.pivot(e);
                // Nodes whose key may change: everything in the subtree
                // (their tree path moved) plus targets of arcs leaving
                // the subtree (their candidate events moved).
                for &x in &sub {
                    recompute_node(&tree, &mut heap, &mut best_arc, x as usize);
                }
                for &x in &sub {
                    for (_f, y, _w, _t) in g.out_adj(NodeId::new(x as usize)) {
                        if !tree.in_subtree(y.index()) {
                            recompute_node(&tree, &mut heap, &mut best_arc, y.index());
                        }
                    }
                }
            };
            counters.heap += heap.counters();
            finish(g, outcome, crate::Algorithm::Yto)
        }
    }
}

fn refresh_arc<H: AddressableHeap<Ratio64>>(
    tree: &Tree<'_>,
    heap: &mut H,
    f: ArcId,
    u: usize,
    v: usize,
    w: i64,
    t: i64,
) {
    heap.remove(f.index());
    if let Some(ev) = tree.event_parts(u, v, w, t) {
        heap.push(f.index(), ev);
    }
}

fn recompute_node<H: AddressableHeap<Ratio64>>(
    tree: &Tree<'_>,
    heap: &mut H,
    best_arc: &mut [Option<ArcId>],
    v: usize,
) {
    let g = tree.g;
    let mut best: Option<(Ratio64, ArcId)> = None;
    for (f, u, w, t) in g.in_adj(NodeId::new(v)) {
        if let Some(ev) = tree.event_parts(u.index(), v, w, t) {
            if best.is_none_or(|(b, _)| ev < b) {
                best = Some((ev, f));
            }
        }
    }
    match best {
        Some((ev, f)) => {
            best_arc[v] = Some(f);
            heap.update_key(v, ev);
        }
        None => {
            best_arc[v] = None;
            heap.remove(v);
        }
    }
}

fn finish(
    g: &Graph,
    (lam, cycle): (Ratio64, Vec<ArcId>),
    solved_by: crate::Algorithm,
) -> Result<SccOutcome, SolveError> {
    debug_assert!(crate::solution::check_cycle(g, &cycle).is_ok());
    debug_assert_eq!(
        {
            let w: i64 = cycle.iter().map(|&a| g.weight(a)).sum();
            let t: i64 = cycle.iter().map(|&a| g.transit(a)).sum();
            Ratio64::new(w, t)
        },
        lam,
        "pivot cycle ratio must equal the event value"
    );
    Ok(SccOutcome {
        lambda: lam,
        cycle,
        guarantee: Guarantee::Exact,
        solved_by,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_graph::graph::from_arc_list;

    fn ko(g: &Graph) -> (Ratio64, Counters) {
        let mut c = Counters::new();
        let mut scope = BudgetScope::unlimited(crate::Algorithm::Ko);
        let s = solve_scc(g, &mut c, HeapGranularity::PerArc, &mut scope).expect("unlimited");
        (s.lambda, c)
    }

    fn yto(g: &Graph) -> (Ratio64, Counters) {
        let mut c = Counters::new();
        let mut scope = BudgetScope::unlimited(crate::Algorithm::Yto);
        let s = solve_scc(g, &mut c, HeapGranularity::PerNode, &mut scope).expect("unlimited");
        (s.lambda, c)
    }

    #[test]
    fn single_ring() {
        let g = from_arc_list(4, &[(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4)]);
        assert_eq!(ko(&g).0, Ratio64::new(10, 4));
        assert_eq!(yto(&g).0, Ratio64::new(10, 4));
    }

    #[test]
    fn self_loop() {
        let g = from_arc_list(1, &[(0, 0, 3), (0, 0, 9)]);
        assert_eq!(ko(&g).0, Ratio64::from(3));
        assert_eq!(yto(&g).0, Ratio64::from(3));
    }

    #[test]
    fn both_match_brute_force() {
        use mcr_gen::sprand::{sprand, SprandConfig};
        for seed in 0..60 {
            let g = sprand(&SprandConfig::new(10, 26).seed(seed).weight_range(-30, 30));
            let (expected, _) = crate::reference::brute_force_min_mean(&g).expect("cyclic");
            assert_eq!(ko(&g).0, expected, "KO seed {seed}");
            assert_eq!(yto(&g).0, expected, "YTO seed {seed}");
        }
    }

    #[test]
    fn same_pivot_counts_but_fewer_yto_inserts() {
        use mcr_gen::sprand::{sprand, SprandConfig};
        let g = sprand(&SprandConfig::new(80, 320).seed(3));
        let (l1, c1) = ko(&g);
        let (l2, c2) = yto(&g);
        assert_eq!(l1, l2);
        // §4.2/§4.3: same number of iterations, fewer YTO insertions.
        assert_eq!(c1.iterations, c2.iterations);
        assert!(
            c2.heap.inserts < c1.heap.inserts,
            "YTO {} vs KO {}",
            c2.heap.inserts,
            c1.heap.inserts
        );
    }

    #[test]
    fn ratio_with_general_transits() {
        let mut b = mcr_graph::GraphBuilder::new();
        let v = b.add_nodes(3);
        b.add_arc_with_transit(v[0], v[1], 3, 2);
        b.add_arc_with_transit(v[1], v[2], 5, 1);
        b.add_arc_with_transit(v[2], v[0], 2, 3); // cycle ratio 10/6 = 5/3
        b.add_arc_with_transit(v[1], v[0], 9, 1); // cycle ratio 12/3 = 4
        let g = b.build();
        assert_eq!(ko(&g).0, Ratio64::new(5, 3));
        assert_eq!(yto(&g).0, Ratio64::new(5, 3));
    }

    #[test]
    fn ratio_with_zero_transit_arcs() {
        let mut b = mcr_graph::GraphBuilder::new();
        let v = b.add_nodes(3);
        b.add_arc_with_transit(v[0], v[1], -4, 0); // zero-transit shortcut
        b.add_arc_with_transit(v[1], v[2], 1, 2);
        b.add_arc_with_transit(v[2], v[0], 1, 1); // cycle ratio -2/3
        b.add_arc_with_transit(v[0], v[0], 10, 4); // self-loop ratio 5/2
        let g = b.build();
        assert_eq!(ko(&g).0, Ratio64::new(-2, 3));
        assert_eq!(yto(&g).0, Ratio64::new(-2, 3));
    }

    #[test]
    fn binary_heap_engine_matches_fibonacci() {
        use mcr_gen::sprand::{sprand, SprandConfig};
        use mcr_graph::heap::IndexedBinaryHeap;
        for seed in 0..20 {
            let g = sprand(&SprandConfig::new(30, 90).seed(seed).weight_range(-50, 50));
            for granularity in [HeapGranularity::PerArc, HeapGranularity::PerNode] {
                let mut c1 = Counters::new();
                let mut c2 = Counters::new();
                let mut s1 = BudgetScope::unlimited(crate::Algorithm::Ko);
                let mut s2 = BudgetScope::unlimited(crate::Algorithm::Ko);
                let fib = solve_scc(&g, &mut c1, granularity, &mut s1).expect("unlimited");
                let bin = solve_scc_with::<IndexedBinaryHeap<Ratio64>>(
                    &g,
                    &mut c2,
                    granularity,
                    &mut s2,
                )
                .expect("unlimited");
                assert_eq!(fib.lambda, bin.lambda, "seed {seed} {granularity:?}");
                // Tie-breaking may differ between heaps, but both
                // engines must do real work and agree on the optimum.
                assert!(c1.iterations > 0 && c2.iterations > 0);
            }
        }
    }

    #[test]
    fn pathological_ladder_still_exact() {
        let g = mcr_gen::structured::shortcut_ladder(30);
        let (expected, _) = crate::reference::brute_force_min_mean(&g).expect("cyclic");
        assert_eq!(ko(&g).0, expected);
        assert_eq!(yto(&g).0, expected);
    }
}
