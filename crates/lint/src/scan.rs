//! The rule-facing token model, built as a view over the lossless
//! lexer in [`crate::lexer`].
//!
//! The contract rules (MCRL000–009) were written against a
//! line-oriented token stream with comments and literal contents
//! elided; the newer symbol-graph rules (MCRL010–014) need the brace
//! tree and symbol index layered on the same stream. This module keeps
//! the original `Scanned` surface — same token kinds, same blanking
//! behavior, same allowlist and `#[cfg(test)]` tables — so every
//! existing rule and fixture expectation holds byte-for-byte, while the
//! underlying lexer is shared with the deeper analysis layers.
//!
//! Everything here is line-oriented: a diagnostic's position is the
//! 1-based line of the offending token, which is what CI and editors
//! consume.

use crate::lexer::{self, LexKind};

/// One lexical token of the cleaned source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Int,
    Float,
    /// A string literal (contents elided; the value lives in
    /// [`Scanned::strings`] at the same ordinal).
    Str,
    /// Punctuation; multi-char operators arrive as one token (`==`,
    /// `!=`, `<=`, `>=`, `&&`, `||`, `->`, `=>`, `::`, `..`, `..=`).
    Punct,
}

/// A string literal with its contents preserved (the token stream
/// blanks it; chaos-site and wire-schema checking need the value).
#[derive(Clone, Debug)]
pub struct StrLit {
    pub value: String,
    pub line: u32,
}

/// An inline allowlist entry: `// lint: allow(<rule>) reason=<text>`.
#[derive(Clone, Debug)]
pub struct Allow {
    /// The rule tag inside `allow(...)`, e.g. `panic`.
    pub tag: String,
    /// 1-based line the comment sits on.
    pub line: u32,
    pub reason_ok: bool,
}

/// A comment that contains `lint:` but does not parse as an allowlist
/// entry (reported as MCRL000 so typos cannot silently disable a rule).
#[derive(Clone, Debug)]
pub struct MalformedAllow {
    pub line: u32,
    pub detail: &'static str,
}

/// The scanned model of one source file.
pub struct Scanned {
    pub tokens: Vec<Token>,
    pub strings: Vec<StrLit>,
    pub allows: Vec<Allow>,
    pub malformed_allows: Vec<MalformedAllow>,
    /// Inclusive 1-based line ranges belonging to `#[cfg(test)]` items.
    pub test_spans: Vec<(u32, u32)>,
}

impl Scanned {
    /// Whether `line` lies inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// Whether a diagnostic of `tag` on `line` is suppressed by an
    /// allowlist comment on the same line or the line directly above.
    pub fn is_allowed(&self, tag: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.tag == tag && a.reason_ok && (a.line == line || a.line + 1 == line))
    }
}

/// Scans `src`, producing the token stream and side tables.
pub fn scan(src: &str) -> Scanned {
    let lexed = lexer::lex(src);
    let mut tokens = Vec::with_capacity(lexed.len());
    let mut strings = Vec::new();
    let mut comments: Vec<(u32, String)> = Vec::new();
    for t in lexed {
        match t.kind {
            LexKind::Ident => tokens.push(Token {
                kind: TokKind::Ident,
                text: t.text,
                line: t.line,
            }),
            LexKind::Int => tokens.push(Token {
                kind: TokKind::Int,
                text: t.text,
                line: t.line,
            }),
            LexKind::Float => tokens.push(Token {
                kind: TokKind::Float,
                text: t.text,
                line: t.line,
            }),
            LexKind::Str { value } => {
                // One `Str` token per recorded literal, contents elided;
                // chaos-site matching correlates the n-th `Str` token
                // with the n-th `strings` entry.
                tokens.push(Token {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: t.line,
                });
                strings.push(StrLit {
                    value,
                    line: t.line,
                });
            }
            LexKind::Lifetime => {
                // The rules predate lifetime tokens and expect the
                // historical encoding: a lone `'` punct followed by the
                // name as an identifier.
                tokens.push(Token {
                    kind: TokKind::Punct,
                    text: "'".to_string(),
                    line: t.line,
                });
                let name = t.text.trim_start_matches('\'');
                if !name.is_empty() {
                    tokens.push(Token {
                        kind: TokKind::Ident,
                        text: name.to_string(),
                        line: t.line,
                    });
                }
            }
            LexKind::Char => {
                // Char literals are invisible to the rules. A byte-char
                // `b'x'` historically surfaced its prefix as an ident.
                if t.text.starts_with('b') {
                    tokens.push(Token {
                        kind: TokKind::Ident,
                        text: "b".to_string(),
                        line: t.line,
                    });
                }
            }
            LexKind::LineComment => comments.push((t.line, t.text)),
            LexKind::BlockComment | LexKind::Whitespace => {}
            LexKind::Punct => tokens.push(Token {
                kind: TokKind::Punct,
                text: t.text,
                line: t.line,
            }),
        }
    }
    let (allows, malformed_allows) = parse_allows(&comments);
    let test_spans = find_test_spans(&tokens);
    Scanned {
        tokens,
        strings,
        allows,
        malformed_allows,
        test_spans,
    }
}

/// The allowlist table from line comments.
fn parse_allows(comments: &[(u32, String)]) -> (Vec<Allow>, Vec<MalformedAllow>) {
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    for (line, text) in comments {
        let Some(pos) = text.find("lint:") else {
            continue;
        };
        let rest = text[pos + "lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            malformed.push(MalformedAllow {
                line: *line,
                detail: "expected `allow(<rule>)` after `lint:`",
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            malformed.push(MalformedAllow {
                line: *line,
                detail: "unclosed `allow(`",
            });
            continue;
        };
        let tag = rest[..close].trim().to_string();
        if !crate::rules::KNOWN_ALLOW_TAGS.contains(&tag.as_str()) {
            malformed.push(MalformedAllow {
                line: *line,
                detail: "unknown rule tag in `allow(...)`",
            });
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let reason_ok = after
            .strip_prefix("reason=")
            .is_some_and(|r| !r.trim().is_empty());
        if !reason_ok {
            malformed.push(MalformedAllow {
                line: *line,
                detail: "missing or empty `reason=` (a justification is mandatory)",
            });
            continue;
        }
        allows.push(Allow {
            tag,
            line: *line,
            reason_ok,
        });
    }
    (allows, malformed)
}

/// Line spans of `#[cfg(test)]` items (`mod` bodies and `fn` bodies;
/// other item kinds are skipped to the end of their line).
fn find_test_spans(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#"
            && i + 3 < toks.len()
            && toks[i + 1].text == "["
            && toks[i + 2].text == "cfg"
            && toks[i + 3].text == "("
        {
            // Collect the attribute's tokens up to the matching `]`.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut attr: Vec<&Token> = Vec::new();
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                attr.push(&toks[j]);
                j += 1;
            }
            if attr_is_test(&attr) {
                // Skip any further attributes, then find the item.
                let mut k = j + 1;
                while k < toks.len() && toks[k].text == "#" {
                    let mut d = 0usize;
                    k += 1;
                    while k < toks.len() {
                        match toks[k].text.as_str() {
                            "[" => d += 1,
                            "]" => {
                                d -= 1;
                                if d == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                // Find the item's body braces (mod/fn/impl); `use`
                // items end at `;`.
                let start_line = toks[i].line;
                let mut end_line = start_line;
                let mut m = k;
                while m < toks.len() {
                    match toks[m].text.as_str() {
                        ";" => {
                            end_line = toks[m].line;
                            break;
                        }
                        "{" => {
                            let mut d = 0usize;
                            while m < toks.len() {
                                match toks[m].text.as_str() {
                                    "{" => d += 1,
                                    "}" => {
                                        d -= 1;
                                        if d == 0 {
                                            end_line = toks[m].line;
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                m += 1;
                            }
                            break;
                        }
                        _ => {}
                    }
                    m += 1;
                }
                spans.push((start_line, end_line));
                i = m + 1;
                continue;
            }
        }
        i += 1;
    }
    spans
}

/// Whether a `cfg(...)` attribute token list selects test builds:
/// contains an identifier `test` not directly governed by `not(`.
fn attr_is_test(attr: &[&Token]) -> bool {
    for (idx, t) in attr.iter().enumerate() {
        if t.kind == TokKind::Ident && t.text == "test" {
            let negated = idx >= 2
                && attr[idx - 1].text == "("
                && attr[idx - 2].kind == TokKind::Ident
                && attr[idx - 2].text == "not";
            if !negated {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let s = scan("let x = \"a == 0.0\"; // x == 1.0\nlet y = 2;");
        assert!(s.tokens.iter().all(|t| t.text != "1.0" && t.text != "0.0"));
        assert_eq!(s.strings.len(), 1);
        assert_eq!(s.strings[0].value, "a == 0.0");
    }

    #[test]
    fn float_vs_range_vs_method() {
        let s = scan("a[0..n]; b = 1.5; c = 1.max(2); d = 2e-9;");
        let floats: Vec<_> = s
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Float)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(floats, ["1.5", "2e-9"]);
    }

    #[test]
    fn cfg_test_mod_span() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let s = scan(src);
        assert_eq!(s.test_spans, vec![(2, 5)]);
        assert!(s.is_test_line(4));
        assert!(!s.is_test_line(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let s = scan("#[cfg(not(test))]\nmod gate { fn a() {} }\n");
        assert!(s.test_spans.is_empty());
    }

    #[test]
    fn allow_comments_parse_and_malformed_are_reported() {
        let src = "// lint: allow(panic) reason=bounded by construction\n\
                   // lint: allow(panic)\n\
                   // lint: allow(bogus) reason=x\n";
        let s = scan(src);
        assert_eq!(s.allows.len(), 1);
        assert_eq!(s.allows[0].tag, "panic");
        assert_eq!(s.malformed_allows.len(), 2);
        assert!(s.is_allowed("panic", 1));
        assert!(s.is_allowed("panic", 2)); // line directly below
        assert!(!s.is_allowed("panic", 3));
    }

    #[test]
    fn raw_strings_and_char_literals() {
        let s = scan("let p = r#\"== 1.0\"#; let c = '='; let lt: &'static str = \"y\";");
        assert!(s.tokens.iter().all(|t| t.text != "=="));
        assert_eq!(s.strings[0].value, "== 1.0");
    }

    #[test]
    fn lifetimes_keep_the_historical_encoding() {
        let s = scan("fn f<'a>(x: &'a str) {}");
        let texts: Vec<&str> = s.tokens.iter().map(|t| t.text.as_str()).collect();
        let quote = texts.iter().position(|&t| t == "'").expect("quote punct");
        assert_eq!(texts[quote + 1], "a");
    }
}
