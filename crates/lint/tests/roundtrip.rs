//! Losslessness guard: the lexer's token stream must reassemble to the
//! original source byte-for-byte, for every `.rs` file in the real
//! workspace (including this crate's own sources and the fixture
//! workspace). Everything the higher engine layers report — line
//! numbers, allow-comment anchoring, string side tables — rests on the
//! lexer never dropping or reshaping a byte.

use std::fs;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

fn rust_files_under(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            rust_files_under(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

#[test]
fn every_workspace_source_file_round_trips_byte_for_byte() {
    let mut files = Vec::new();
    rust_files_under(&workspace_root().join("crates"), &mut files);
    assert!(
        files.len() > 20,
        "workspace walk looks broken: only {} .rs files found",
        files.len()
    );
    for path in files {
        let src = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let rebuilt = mcr_lint::lexer::reassemble(&mcr_lint::lexer::lex(&src));
        assert_eq!(
            rebuilt,
            src,
            "lexer round-trip is lossy for {}",
            path.display()
        );
    }
}
