//! Critical subgraph extraction.
//!
//! After λ* is known, the *critical subgraph* of `G_{λ*}` — the arcs
//! satisfying `d(v) − d(u) = w(u,v) − λ*·t(u,v)` for shortest-path
//! potentials `d` — "contains all the arcs and nodes that determine the
//! performance of the system modeled by G" (§2). All minimum mean
//! (ratio) cycles live inside it, so it also serves as the universal
//! witness-cycle extractor for algorithms whose internal state does not
//! directly yield a cycle (Karp, Karp2, DG).

use crate::bellman::{bellman_ford, cycle_check_ws, scaled_costs, CycleCheck};
use crate::budget::BudgetScope;
use crate::error::SolveError;
use crate::instrument::Counters;
use crate::rational::Ratio64;
use crate::workspace::Workspace;
use mcr_graph::idx32;
use mcr_graph::{ArcId, Graph, NodeId};

/// The critical subgraph of `G_{λ}`.
#[derive(Clone, Debug)]
pub struct CriticalSubgraph {
    /// Critical (tight) arcs.
    pub arcs: Vec<ArcId>,
    /// Per-node flag: adjacent to at least one critical arc.
    pub node_is_critical: Vec<bool>,
}

impl CriticalSubgraph {
    /// The critical nodes.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.node_is_critical
            .iter()
            .enumerate()
            .filter(|(_, &c)| c)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }
}

/// Computes the critical subgraph of `G_λ`.
///
/// # Errors
///
/// Returns `Err` if `lambda` exceeds the optimum (then `G_λ` has a
/// negative cycle and no shortest-path potentials exist).
///
/// ```
/// use mcr_core::{critical::critical_subgraph, Ratio64};
/// use mcr_graph::graph::from_arc_list;
/// // Two 2-cycles: means 2 and 5. At λ* = 2 only the first is critical.
/// let g = from_arc_list(3, &[(0, 1, 1), (1, 0, 3), (1, 2, 5), (2, 1, 5)]);
/// let cs = critical_subgraph(&g, Ratio64::from(2)).unwrap();
/// assert_eq!(cs.arcs.len(), 2);
/// assert_eq!(cs.nodes().len(), 2);
/// ```
pub fn critical_subgraph(g: &Graph, lambda: Ratio64) -> Result<CriticalSubgraph, String> {
    let cost = scaled_costs(g, lambda);
    let mut counters = Counters::new();
    let dist = match bellman_ford(g, &cost, true, &mut counters) {
        CycleCheck::Feasible(d) => d,
        CycleCheck::NegativeCycle(_) => {
            return Err(format!("lambda {lambda} exceeds the optimum"));
        }
    };
    let mut arcs = Vec::new();
    let mut node_is_critical = vec![false; g.num_nodes()];
    for a in g.arc_ids() {
        let u = g.source(a).index();
        let v = g.target(a).index();
        if dist[u] + cost[a.index()] == dist[v] {
            arcs.push(a);
            node_is_critical[u] = true;
            node_is_critical[v] = true;
        }
    }
    Ok(CriticalSubgraph {
        arcs,
        node_is_critical,
    })
}

/// Extracts one minimum mean (ratio) cycle, given the exact optimum
/// `lambda`: finds a cycle inside the critical subgraph by iterative
/// DFS over tight arcs.
///
/// # Errors
///
/// Returns [`SolveError::NumericRange`] if `lambda` is not the exact
/// optimum of `g` (either `G_λ` has a negative cycle, or the critical
/// subgraph is acyclic). Intended for internal use by exact solvers.
pub fn critical_cycle(g: &Graph, lambda: Ratio64) -> Result<Vec<ArcId>, SolveError> {
    let scope = BudgetScope::unlimited(crate::algorithms::Algorithm::HowardExact);
    critical_cycle_ws(g, lambda, &mut Workspace::new(), &scope)
}

/// [`critical_cycle`] over reusable workspace buffers: the Bellman–Ford
/// potentials, the tight-arc adjacency (flat CSR), and the DFS stacks
/// all live in `ws`, so witness extraction allocates only the returned
/// cycle. The wall-clock deadline of `scope` applies to the embedded
/// Bellman–Ford pass.
pub(crate) fn critical_cycle_ws(
    g: &Graph,
    lambda: Ratio64,
    ws: &mut Workspace,
    scope: &BudgetScope,
) -> Result<Vec<ArcId>, SolveError> {
    // Witness extraction is not part of the solver's instrumented work
    // (matching the allocating version, which used a private counter).
    let mut counters = Counters::new();
    if cycle_check_ws(g, lambda, true, &mut counters, ws, scope)? {
        // A λ above the optimum means the calling solver converged to a
        // wrong value (typically numeric trouble); let the fallback
        // chain try a different method rather than aborting.
        return Err(SolveError::NumericRange {
            context: "critical cycle extraction: lambda exceeds the optimum",
        });
    }
    let n = g.num_nodes();
    let Workspace {
        rev, bf, dfs, marks, ..
    } = ws;
    // Tight-arc CSR keyed by source node. Counting sort emits arcs in
    // ascending id order per source — the push order of the
    // `Vec<Vec<ArcId>>` it replaces, so the DFS visits arcs identically.
    rev.build(n, |emit| {
        for a in g.arc_ids() {
            let u = g.source(a).index();
            let v = g.target(a).index();
            if bf.dist[u] + bf.cost[a.index()] == bf.dist[v] {
                emit(idx32(u), idx32(a.index()));
            }
        }
    });
    // Iterative three-color DFS looking for a back arc; white = neither
    // stamp of the current epoch pair.
    let (gray, black) = marks.next_pair(n);
    if dfs.pos.len() < n {
        dfs.pos.resize(n, 0);
    }
    dfs.arc_stack.clear();
    for root in 0..n {
        if marks.mark[root] == gray || marks.mark[root] == black {
            continue;
        }
        // (node, next out-arc index)
        dfs.stack.clear();
        dfs.stack.push((idx32(root), 0));
        marks.mark[root] = gray;
        dfs.pos[root] = 0;
        while let Some(&mut (v, ref mut idx)) = dfs.stack.last_mut() {
            let v = v as usize;
            let out = rev.list(v);
            if (*idx as usize) < out.len() {
                let a = ArcId::new(out[*idx as usize] as usize);
                *idx += 1;
                let w = g.target(a).index();
                if marks.mark[w] == gray {
                    // Found a cycle: arcs from w's position on the path
                    // through a.
                    let mut cycle: Vec<ArcId> = dfs.arc_stack[dfs.pos[w] as usize..]
                        .iter()
                        .map(|&x| ArcId::new(x as usize))
                        .collect();
                    cycle.push(a);
                    debug_assert!(
                        crate::solution::check_cycle(g, &cycle).is_ok(),
                        "critical cycle malformed"
                    );
                    return Ok(cycle);
                } else if marks.mark[w] != black {
                    marks.mark[w] = gray;
                    dfs.pos[w] = idx32(dfs.arc_stack.len()) + 1;
                    dfs.arc_stack.push(idx32(a.index()));
                    dfs.stack.push((idx32(w), 0));
                }
            } else {
                marks.mark[v] = black;
                dfs.stack.pop();
                dfs.arc_stack.pop();
            }
        }
    }
    // Feasible but no tight cycle: λ lies strictly below the optimum.
    Err(SolveError::NumericRange {
        context: "critical cycle extraction: critical subgraph is acyclic",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::check_cycle;
    use mcr_graph::graph::from_arc_list;

    #[test]
    fn critical_cycle_of_single_ring() {
        let g = from_arc_list(3, &[(0, 1, 1), (1, 2, 2), (2, 0, 3)]);
        let cyc = critical_cycle(&g, Ratio64::from(2)).expect("optimal lambda");
        let (w, len, _) = check_cycle(&g, &cyc).expect("valid");
        assert_eq!(Ratio64::new(w, len as i64), Ratio64::from(2));
        assert_eq!(len, 3);
    }

    #[test]
    fn critical_cycle_picks_minimum() {
        // Self-loop of weight 1 beats the 2-cycle of mean 5.
        let g = from_arc_list(2, &[(0, 1, 5), (1, 0, 5), (0, 0, 1)]);
        let cyc = critical_cycle(&g, Ratio64::from(1)).expect("optimal lambda");
        assert_eq!(cyc.len(), 1);
        assert_eq!(g.weight(cyc[0]), 1);
    }

    #[test]
    fn subgraph_excludes_non_tight() {
        let g = from_arc_list(3, &[(0, 1, 1), (1, 0, 1), (1, 2, 100), (2, 1, 100)]);
        let cs = critical_subgraph(&g, Ratio64::from(1)).expect("optimal lambda");
        assert_eq!(cs.arcs.len(), 2);
        assert!(cs.node_is_critical[0]);
        assert!(cs.node_is_critical[1]);
        assert!(!cs.node_is_critical[2]);
    }

    #[test]
    fn above_optimum_is_error() {
        let g = from_arc_list(2, &[(0, 1, 4), (1, 0, 4)]);
        assert!(critical_subgraph(&g, Ratio64::from(5)).is_err());
        assert!(critical_subgraph(&g, Ratio64::from(4)).is_ok());
    }

    #[test]
    fn non_optimal_lambda_is_an_error_not_a_panic() {
        let g = from_arc_list(2, &[(0, 1, 4), (1, 0, 4)]);
        // λ = 3 < λ* = 4: feasible but nothing is tight on a cycle.
        let err = critical_cycle(&g, Ratio64::from(3)).expect_err("below optimum");
        assert!(matches!(err, SolveError::NumericRange { .. }), "{err}");
        // λ = 5 > λ* = 4: negative cycle in G_λ.
        let err = critical_cycle(&g, Ratio64::from(5)).expect_err("above optimum");
        assert!(matches!(err, SolveError::NumericRange { .. }), "{err}");
    }

    #[test]
    fn fractional_lambda_with_transits() {
        let mut b = mcr_graph::GraphBuilder::new();
        let v = b.add_nodes(2);
        b.add_arc_with_transit(v[0], v[1], 4, 1);
        b.add_arc_with_transit(v[1], v[0], 6, 3);
        let g = b.build();
        let cyc = critical_cycle(&g, Ratio64::new(5, 2)).expect("optimal lambda");
        let (w, _, t) = check_cycle(&g, &cyc).expect("valid");
        assert_eq!(Ratio64::new(w, t), Ratio64::new(5, 2));
    }
}
