//! Minimal JSON reader/writer for the wire protocol.
//!
//! The workspace is offline and `vendor/serde_json` is an honest stub
//! (it always errors), so the service speaks JSON through this ~200
//! line module instead: a recursive-descent parser into [`Value`] and
//! an escaping writer. It covers exactly what `mcr-req v1` /
//! `mcr-resp v1` need — objects, arrays, strings with `\uXXXX`
//! escapes, integers/floats, booleans, null — and rejects everything
//! else with a position-carrying error.

// Wire parsing must never panic on hostile bytes; CI runs clippy with
// -D warnings, so these lints are a gate.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Object keys keep only the last duplicate, in
/// sorted order (BTreeMap) — fine for a protocol that never relies on
/// key order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All JSON numbers; integers that fit i64 are exact.
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }
}

/// Parse failure with a byte offset into the input.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    pub at: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after document"));
    }
    Ok(v)
}

fn err(at: usize, message: &str) -> JsonError {
    JsonError {
        at,
        message: message.to_string(),
    }
}

const MAX_DEPTH: usize = 64;

fn skip_ws(b: &[u8], pos: &mut usize) {
    while let Some(c) = b.get(*pos) {
        if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, JsonError> {
    if depth > MAX_DEPTH {
        return Err(err(*pos, "nesting too deep"));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos, depth + 1)? {
                    Value::Str(s) => s,
                    _ => return Err(err(*pos, "object key must be a string")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected `:` after object key"));
                }
                *pos += 1;
                let val = parse_value(b, pos, depth + 1)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}` in object")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(arr));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]` in array")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, JsonError> {
    if b.get(*pos..*pos + lit.len()) == Some(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while b
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(b.get(start..*pos).unwrap_or(b""))
        .map_err(|_| err(start, "invalid number"))?;
    let n: f64 = text.parse().map_err(|_| err(start, "invalid number"))?;
    if !n.is_finite() {
        return Err(err(start, "number out of range"));
    }
    Ok(Value::Num(n))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        // Surrogates are not paired here; the protocol
                        // never emits them. Replace to stay lossless-ish.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => return Err(err(*pos, "raw control character in string")),
            Some(_) => {
                // Copy one UTF-8 scalar (multi-byte sequences intact).
                let s = std::str::from_utf8(b.get(*pos..).unwrap_or(b""))
                    .map_err(|_| err(*pos, "invalid utf-8 in string"))?;
                match s.chars().next() {
                    Some(c) => {
                        out.push(c);
                        *pos += c.len_utf8();
                    }
                    None => return Err(err(*pos, "unterminated string")),
                }
            }
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal (no quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Incremental JSON object writer: `Writer::obj().str("k", "v")...`.
/// Key order is emission order, so response layouts are stable.
#[derive(Default)]
pub struct ObjWriter {
    buf: String,
    first: bool,
}

impl ObjWriter {
    pub fn new() -> ObjWriter {
        ObjWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
    }

    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    pub fn i64(mut self, k: &str, v: i64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        if v.is_finite() {
            self.buf.push_str(&format!("{v}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    pub fn null(mut self, k: &str) -> Self {
        self.key(k);
        self.buf.push_str("null");
        self
    }

    /// Raw pre-encoded JSON (arrays, nested objects).
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    pub fn opt_str(self, k: &str, v: Option<&str>) -> Self {
        match v {
            Some(v) => self.str(k, v),
            None => self.null(k),
        }
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_protocol_shapes() {
        let text = r#"{"schema":"mcr-req v1","id":3,"op":"solve","graph":"p mcr 2 2\na 1 2 4 1\n","maximize":false,"epsilon":1.5e-6,"deadline_ms":null,"cycle":[0,2]}"#;
        let v = parse(text).expect("parses");
        assert_eq!(v.get("schema").and_then(Value::as_str), Some("mcr-req v1"));
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(3));
        assert_eq!(
            v.get("graph").and_then(Value::as_str),
            Some("p mcr 2 2\na 1 2 4 1\n")
        );
        assert_eq!(v.get("maximize").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("deadline_ms"), Some(&Value::Null));
        assert_eq!(
            v.get("cycle"),
            Some(&Value::Arr(vec![Value::Num(0.0), Value::Num(2.0)]))
        );
    }

    #[test]
    fn writer_output_parses_back() {
        let s = ObjWriter::new()
            .str("schema", "mcr-resp v1")
            .u64("id", 7)
            .str("lambda", "5/2")
            .f64("lambda_f64", 2.5)
            .bool("ok", true)
            .null("error")
            .raw("cycle", "[1,2,3]")
            .finish();
        let v = parse(&s).expect("writer output is valid json");
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("lambda_f64").and_then(Value::as_f64), Some(2.5));
        assert_eq!(v.get("error"), Some(&Value::Null));
    }

    #[test]
    fn escapes_survive_round_trip() {
        let nasty = "line1\nline2\t\"quoted\" \\slash\u{1}";
        let s = ObjWriter::new().str("k", nasty).finish();
        let v = parse(&s).expect("parses");
        assert_eq!(v.get("k").and_then(Value::as_str), Some(nasty));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1,2",
            "\"unterminated",
            "{\"a\":1} trailing",
            "nul",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }
}
