//! EXP-MCR — the optimum cost-to-time ratio solvers.
//!
//! The title's second problem: compares every MCR-capable solver
//! (Howard, Burns, KO, YTO, Lawler-exact, and the transit-expansion
//! reduction) on SPRAND graphs decorated with random transit times,
//! verifying exact agreement and reporting times. The expansion route
//! corresponds to the pseudo-polynomial `O(Tm)` algorithms of the
//! paper's Table 1 (rows 13, 15–17), whose cost grows with the total
//! transit time `T`.
//!
//! `cargo run -p mcr-bench --release --bin ratio_compare [--full]`

use mcr_bench::{fmt_ms, print_table, HarnessConfig};
use mcr_core::{ratio, Algorithm, Solution};
use mcr_gen::transit::with_random_transits;
use mcr_graph::Graph;
use std::time::{Duration, Instant};

fn timed(f: impl FnOnce() -> Option<Solution>) -> (Duration, Solution) {
    let start = Instant::now();
    let sol = f().expect("cyclic");
    (start.elapsed(), sol)
}

fn main() {
    let mut cfg = HarnessConfig::from_args();
    // The exact-snap bisection needs ~60 Bellman–Ford oracle calls per
    // component; cap the sweep at n = 2048 so the full run stays in
    // minutes (the agreement result is size-independent).
    cfg.grid.retain(|&(n, _)| n <= 2048);
    #[allow(clippy::type_complexity)]
    let solvers: Vec<(&str, fn(&Graph) -> Option<Solution>)> = vec![
        ("Howard", |g| ratio::howard_ratio_exact(g)),
        ("Burns", |g| ratio::burns_ratio(g)),
        ("KO", |g| ratio::parametric_ratio(g, false)),
        ("YTO", |g| ratio::parametric_ratio(g, true)),
        ("Lawler-exact", |g| ratio::lawler_ratio_exact(g)),
        ("expand+Karp2", |g| {
            ratio::ratio_via_expansion(g, Algorithm::Karp2).expect("positive transits")
        }),
    ];

    let mut header: Vec<String> = vec!["n".into(), "m".into(), "T".into(), "rho*".into()];
    header.extend(solvers.iter().map(|(n, _)| format!("{n} ms")));
    let mut rows = Vec::new();

    for &(n, m) in &cfg.grid {
        // Expansion multiplies the instance by the mean transit; skip
        // the biggest rows for it in full mode only by memory policy.
        let mut times = vec![Duration::ZERO; solvers.len()];
        let mut rho = String::new();
        let mut total_t = 0i64;
        for seed in 0..cfg.seeds {
            let g0 = cfg.instance(n, m, seed);
            let g = with_random_transits(&g0, 1, 10, seed ^ 0x5eed);
            total_t += g.arc_ids().map(|a| g.transit(a)).sum::<i64>();
            let mut expected = None;
            for (i, (name, solver)) in solvers.iter().enumerate() {
                let (t, sol) = timed(|| solver(&g));
                times[i] += t;
                match expected {
                    None => {
                        expected = Some(sol.lambda);
                        if seed == 0 {
                            rho = sol.lambda.to_string();
                        }
                    }
                    Some(e) => assert_eq!(sol.lambda, e, "{name} disagrees at n={n} m={m}"),
                }
            }
        }
        let mut row = vec![
            n.to_string(),
            m.to_string(),
            (total_t / cfg.seeds as i64).to_string(),
            rho,
        ];
        for t in &times {
            row.push(fmt_ms(*t / cfg.seeds as u32));
        }
        rows.push(row);
        eprintln!("done n={n} m={m}");
    }

    println!(
        "EXP-MCR: minimum cost-to-time ratio solvers, transit times U[1,10], {} seeds",
        cfg.seeds
    );
    print_table(&header, &rows);
    println!("\nExpected shape: all solvers agree exactly; Howard fastest; the");
    println!("expansion route pays the O(T/m) blowup of its pseudo-polynomial bound.");
}
