//! End-to-end tests of the `mcr` command-line tool, driving the real
//! binary through pipes.

use std::io::Write;
use std::process::{Command, Stdio};

fn mcr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mcr"))
}

fn run_with_stdin(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = mcr()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mcr");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

const TRIANGLE: &str = "p mcr 3 4\na 1 2 2\na 2 3 4\na 3 1 3\na 2 1 10\n";

#[test]
fn solve_reads_stdin_and_reports_exact_lambda() {
    let (stdout, _, ok) = run_with_stdin(&["solve"], TRIANGLE);
    assert!(ok);
    assert!(stdout.contains("lambda = 3"), "{stdout}");
    assert!(stdout.contains("guarantee: exact"));
    assert!(stdout.contains("witness cycle (3 arcs)"));
}

#[test]
fn solve_with_each_algorithm_flag() {
    for name in [
        "burns",
        "burns-exact",
        "ko",
        "yto",
        "howard",
        "howard-exact",
        "ho",
        "karp",
        "karp2",
        "dg",
        "lawler",
        "lawler-exact",
        "oa1",
    ] {
        let (stdout, stderr, ok) = run_with_stdin(&["solve", "--algorithm", name], TRIANGLE);
        assert!(ok, "{name}: {stderr}");
        assert!(stdout.contains("lambda = 3"), "{name}: {stdout}");
    }
}

#[test]
fn solve_max_negates_properly() {
    let (stdout, _, ok) = run_with_stdin(&["solve", "--max"], TRIANGLE);
    assert!(ok);
    // Max mean cycle: 1->2->1 with (2+10)/2 = 6.
    assert!(stdout.contains("lambda = 6"), "{stdout}");
    assert!(stdout.contains("maximum cycle mean"));
}

#[test]
fn solve_ratio_uses_transit_times() {
    let input = "p mcr 2 2\na 1 2 4 1\na 2 1 6 3\n";
    let (stdout, _, ok) = run_with_stdin(&["solve", "--ratio"], input);
    assert!(ok);
    assert!(stdout.contains("lambda = 5/2"), "{stdout}");
}

#[test]
fn solve_rejects_zero_transit_cycles_in_ratio_mode() {
    let input = "p mcr 2 2\na 1 2 4 0\na 2 1 6 0\n";
    let (_, stderr, ok) = run_with_stdin(&["solve", "--ratio"], input);
    assert!(!ok);
    assert!(stderr.contains("zero total transit time"), "{stderr}");
}

#[test]
fn solve_critical_and_counters_flags() {
    let (stdout, _, ok) =
        run_with_stdin(&["solve", "--critical", "--counters"], TRIANGLE);
    assert!(ok);
    assert!(stdout.contains("critical arcs"));
    assert!(stdout.contains("counters:"));
}

#[test]
fn unknown_algorithm_is_a_clean_error() {
    let (_, stderr, ok) = run_with_stdin(&["solve", "--algorithm", "dijkstra"], TRIANGLE);
    assert!(!ok);
    assert!(stderr.contains("unknown algorithm"));
}

#[test]
fn malformed_input_is_a_clean_error() {
    let (_, stderr, ok) = run_with_stdin(&["solve"], "p mcr nonsense\n");
    assert!(!ok);
    assert!(stderr.contains("parse error"), "{stderr}");
}

#[test]
fn gen_sprand_pipes_into_solve() {
    let out = mcr()
        .args(["gen", "sprand", "30", "90", "--seed", "5"])
        .output()
        .expect("gen");
    assert!(out.status.success());
    let dimacs = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(dimacs.starts_with("p mcr 30 90"));
    let (stdout, _, ok) = run_with_stdin(&["solve", "-"], &dimacs);
    assert!(ok);
    assert!(stdout.contains("lambda = "));
}

#[test]
fn gen_circuit_and_dot_output() {
    let out = mcr()
        .args(["gen", "circuit", "40", "--seed", "2"])
        .output()
        .expect("gen");
    assert!(out.status.success());
    let dimacs = String::from_utf8_lossy(&out.stdout).into_owned();
    let (dot, _, ok) = run_with_stdin(&["dot"], &dimacs);
    assert!(ok);
    assert!(dot.starts_with("digraph"));
    assert!(dot.contains("->"));
}

#[test]
fn gen_with_transit_range_produces_ratio_instances() {
    let out = mcr()
        .args(["gen", "sprand", "10", "20", "--tmin", "1", "--tmax", "5"])
        .output()
        .expect("gen");
    assert!(out.status.success());
    let dimacs = String::from_utf8_lossy(&out.stdout).into_owned();
    // 5-field arc lines include transit times.
    let arc_line = dimacs.lines().find(|l| l.starts_with('a')).expect("arcs");
    assert_eq!(arc_line.split_whitespace().count(), 5, "{arc_line}");
}

#[test]
fn acyclic_graph_reports_no_cycle() {
    let input = "p mcr 2 1\na 1 2 5\n";
    let (stdout, _, ok) = run_with_stdin(&["solve"], input);
    assert!(ok);
    assert!(stdout.contains("acyclic"));
}

#[test]
fn bench_runs_every_algorithm() {
    let (stdout, stderr, ok) = run_with_stdin(&["bench"], TRIANGLE);
    assert!(ok, "{stderr}");
    for name in ["Howard", "Karp", "YTO", "Lawler", "Megiddo"] {
        assert!(stdout.contains(name), "missing {name}: {stdout}");
    }
}

#[test]
fn no_subcommand_prints_usage() {
    let (_, stderr, ok) = run_with_stdin(&[], "");
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

#[test]
fn gen_requests_emits_a_deterministic_request_log() {
    let a = mcr()
        .args(["gen", "requests", "6", "--seed", "3"])
        .output()
        .expect("gen requests");
    assert!(a.status.success());
    let b = mcr()
        .args(["gen", "requests", "6", "--seed", "3"])
        .output()
        .expect("gen requests");
    assert_eq!(a.stdout, b.stdout, "same seed, same log");
    let log = String::from_utf8_lossy(&a.stdout).into_owned();
    assert_eq!(log.lines().count(), 6);
    for line in log.lines() {
        assert!(line.contains("\"schema\":\"mcr-req v1\""), "{line}");
    }
}

/// Starts an in-process daemon and returns (handle, addr string).
fn daemon() -> (mcr_serve::ServerHandle, String) {
    let handle = mcr_serve::serve(mcr_serve::ServeConfig::default()).expect("daemon");
    let addr = handle.local_addr().to_string();
    (handle, addr)
}

#[test]
fn client_replays_a_request_log_against_a_live_daemon() {
    let (handle, addr) = daemon();
    let log = mcr()
        .args(["gen", "requests", "6", "--seed", "5"])
        .output()
        .expect("gen requests");
    let path = std::env::temp_dir().join(format!("mcr-cli-replay-{}.jsonl", std::process::id()));
    std::fs::write(&path, &log.stdout).expect("write log");
    let out = mcr()
        .args(["client", "--addr", &addr, "--replay", path.to_str().expect("utf8 path")])
        .output()
        .expect("client");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert_eq!(stdout.lines().count(), 6, "one response line per request");
    for line in stdout.lines() {
        assert!(line.contains("\"schema\":\"mcr-resp v1\""), "{line}");
    }
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(stderr.contains("sent=6 received=6"), "{stderr}");
    // The generator's deterministic failure tail surfaces as data.
    assert!(stderr.contains("cancelled=1"), "{stderr}");
    assert!(stderr.contains("budget-exhausted=1"), "{stderr}");
    let _ = std::fs::remove_file(&path);
    handle.shutdown();
}

#[test]
fn client_no_wait_sends_without_collecting_responses() {
    let (handle, addr) = daemon();
    let log = mcr()
        .args(["gen", "requests", "4", "--seed", "8"])
        .output()
        .expect("gen requests");
    let path = std::env::temp_dir().join(format!("mcr-cli-nowait-{}.jsonl", std::process::id()));
    std::fs::write(&path, &log.stdout).expect("write log");
    let out = mcr()
        .args(["client", "--addr", &addr, "--replay", path.to_str().expect("utf8 path"), "--no-wait"])
        .output()
        .expect("client");
    assert!(out.status.success());
    assert!(out.stdout.is_empty(), "--no-wait prints no responses");
    assert!(String::from_utf8_lossy(&out.stderr).contains("sent=4 received=0"));
    let _ = std::fs::remove_file(&path);
    handle.shutdown();
}

#[test]
fn client_single_ops_ping_and_shutdown() {
    let (handle, addr) = daemon();
    let out = mcr()
        .args(["client", "--addr", &addr, "--op", "ping"])
        .output()
        .expect("client ping");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"pong\":true"));
    let out = mcr()
        .args(["client", "--addr", &addr, "--op", "metrics"])
        .output()
        .expect("client metrics");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("mcr-metrics v1"));
    let out = mcr()
        .args(["client", "--addr", &addr, "--op", "shutdown"])
        .output()
        .expect("client shutdown");
    assert!(out.status.success());
    let dump = handle.wait();
    assert!(dump.contains("serve.requests.accepted"));
}

#[test]
fn client_without_addr_or_mode_is_a_usage_error() {
    let out = mcr().args(["client"]).output().expect("client");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: mcr client"));
}
