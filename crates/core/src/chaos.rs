//! Failpoint sites for the solver layer (`chaos` feature).
//!
//! With the feature off (the default) every helper here is an empty
//! `#[inline(always)]` function and the crate contains no injection
//! code at all. With `--features chaos` the helpers report to the
//! [`mcr_chaos`] registry, so a seeded [`mcr_chaos::FaultSchedule`]
//! can deterministically fail any layer of a solve.
//!
//! # Site naming
//!
//! Sites are dot-separated, coarse-to-fine:
//!
//! | site                        | layer                                  |
//! |-----------------------------|----------------------------------------|
//! | `core.<algorithm>.<loop>`   | an algorithm's main loop (see below)   |
//! | `core.bellman.round`        | the shared Bellman–Ford oracle         |
//! | `core.driver.job`           | per-SCC job dispatch (unit site)       |
//! | `core.fallback.attempt`     | each fallback-chain attempt            |
//! | `core.workspace.reset`      | workspace poison-recovery (unit site)  |
//! | `core.dynamic.apply`        | incremental edit-batch application     |
//! | `core.dynamic.rebuild`      | incremental CSR rebuild (unit site)    |
//! | `core.dynamic.certify`      | incremental witness re-certification   |
//!
//! Algorithm loop sites: `core.burns.phase`, `core.burns.exact.phase`,
//! `core.ko-yto.pivot`, `core.howard.fig1.improve`,
//! `core.howard.exact.improve`, `core.ho.level`, `core.karp.level`,
//! `core.karp2.level`, `core.dg.level`, `core.lawler.bisect`,
//! `core.lawler.exact.bisect`, `core.megiddo.resolve`, `core.oa1.refine`,
//! `core.ratio.bisect`. Error-capable sites are reached through
//! [`crate::BudgetScope::chaos_check`], which maps the injected
//! [`mcr_chaos::FaultKind`] onto the layer's typed
//! [`crate::SolveError`]; unit sites only count hits and honor
//! [`mcr_chaos::FaultKind::Delay`].
//!
//! The authoritative list of site names lives in
//! `crates/chaos/sites.txt` ([`mcr_chaos::declared_sites`]); the chaos
//! suite asserts every fired site is declared there, and `mcr-lint`
//! rule MCRL002 statically checks every call site against it.

#[cfg(feature = "chaos")]
pub use mcr_chaos::{
    active, declared_sites, faults_fired, hit_sites, hits, total_hits, ChaosGuard, FaultKind,
    FaultSchedule,
};

/// Unit failpoint: counts the hit and applies delay faults; error kinds
/// scheduled on a unit site are ignored (the site has no error path).
#[cfg(feature = "chaos")]
#[inline]
pub(crate) fn pulse(site: &'static str) {
    if let Some(kind) = mcr_chaos::hit(site) {
        // With `obs` also enabled, even faults on unit sites (which
        // have no error path) become trace events.
        crate::obs::fault_injected(
            site,
            match kind {
                mcr_chaos::FaultKind::Delay { .. } => "delay",
                mcr_chaos::FaultKind::BudgetExhaust => "budget-exhaust",
                mcr_chaos::FaultKind::Overflow => "overflow",
                mcr_chaos::FaultKind::NumericRange => "numeric-range",
                mcr_chaos::FaultKind::Transient => "transient",
            },
        );
    }
}

/// Compiled-out unit failpoint: nothing at all.
#[cfg(not(feature = "chaos"))]
#[inline(always)]
pub(crate) fn pulse(_site: &'static str) {}

/// Boolean failpoint: `true` when a fault fires at `site`, for code
/// with its own degradation path rather than a typed error (the
/// incremental solver falls back to a full solve). Any scheduled fault
/// kind trips it; the fault is reported like [`pulse`] does.
#[cfg(feature = "chaos")]
#[inline]
pub(crate) fn fail_hit(site: &'static str) -> bool {
    if let Some(kind) = mcr_chaos::hit(site) {
        crate::obs::fault_injected(
            site,
            match kind {
                mcr_chaos::FaultKind::Delay { .. } => "delay",
                mcr_chaos::FaultKind::BudgetExhaust => "budget-exhaust",
                mcr_chaos::FaultKind::Overflow => "overflow",
                mcr_chaos::FaultKind::NumericRange => "numeric-range",
                mcr_chaos::FaultKind::Transient => "transient",
            },
        );
        return true;
    }
    false
}

/// Compiled-out boolean failpoint: never fires.
#[cfg(not(feature = "chaos"))]
#[inline(always)]
pub(crate) fn fail_hit(_site: &'static str) -> bool {
    false
}
