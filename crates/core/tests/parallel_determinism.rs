//! Parallel-driver determinism: solving with any worker-thread count
//! must return a `Solution` bit-identical to the sequential one — same
//! λ, same witness cycle, same guarantee, same merged counter totals.
//!
//! The driver guarantees this by construction (fixed job order, strict
//! `<` reduction, commutative saturating counter merge); these tests
//! exercise the guarantee end-to-end through every public algorithm on
//! multi-SCC inputs, where the work queue actually fans out.

use mcr_core::{Algorithm, Ratio64, Solution, SolveOptions, SweepMode};
use mcr_gen::sprand::{sprand, SprandConfig};
use mcr_graph::graph::from_arc_list;
use mcr_graph::io::read_dimacs;
use mcr_graph::{Graph, GraphBuilder};

const THREAD_COUNTS: [usize; 2] = [2, 8];

fn assert_same_solution(seq: &Solution, par: &Solution, label: &str) {
    assert_eq!(par.lambda, seq.lambda, "{label}: lambda");
    assert_eq!(par.cycle, seq.cycle, "{label}: witness cycle");
    assert_eq!(par.guarantee, seq.guarantee, "{label}: guarantee");
    assert_eq!(par.counters, seq.counters, "{label}: counters");
}

/// Runs every algorithm sequentially and at each parallel thread count
/// and asserts the full solutions (and λ-only results) coincide.
fn assert_thread_count_invariant(g: &Graph, label: &str) {
    for alg in Algorithm::ALL {
        let seq = alg.solve(g).expect("input graphs are cyclic");
        let (seq_lam, seq_cnt) = alg.solve_lambda_only(g).expect("cyclic");
        for threads in THREAD_COUNTS {
            let opts = SolveOptions::new().threads(threads);
            let tag = format!("{label}/{}/threads={threads}", alg.name());
            let par = alg.solve_with_options(g, &opts).expect("cyclic");
            assert_same_solution(&seq, &par, &tag);
            let (par_lam, par_cnt) = alg.solve_lambda_only_opts(g, &opts).expect("cyclic");
            assert_eq!(par_lam, seq_lam, "{tag}: lambda-only value");
            assert_eq!(par_cnt, seq_cnt, "{tag}: lambda-only counters");
        }
    }
}

#[test]
fn multi_scc_benchmark_instance() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../benchmarks/multi_scc.dimacs"
    );
    let text = std::fs::read_to_string(path).expect("benchmark instance present");
    let g = read_dimacs(&mut text.as_bytes()).expect("valid DIMACS");
    // Sanity: the instance really has several components with the
    // documented optimum.
    let sol = mcr_core::minimum_cycle_mean(&g).expect("cyclic");
    assert_eq!(sol.lambda, Ratio64::from(2));
    assert_thread_count_invariant(&g, "multi_scc.dimacs");
}

#[test]
fn every_benchmark_instance() {
    // The invariant must hold on all of benchmarks/, including the
    // single-SCC instances where the parallel path degenerates to the
    // sequential one. Unit-transit instances go through every MCM
    // algorithm; transit-bearing instances (biquad) are cost-to-time
    // *ratio* problems, so they go through the ratio entry points.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../benchmarks");
    let mut checked = 0;
    for entry in std::fs::read_dir(dir).expect("benchmarks/ present") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("dimacs") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("readable instance");
        let g = read_dimacs(&mut text.as_bytes()).expect("valid DIMACS");
        if g.arc_ids().all(|a| g.transit(a) == 1) {
            assert_thread_count_invariant(&g, &name);
        } else {
            let seq_h = mcr_core::ratio::howard_ratio_exact(&g).expect("cyclic");
            let seq_l = mcr_core::ratio::lawler_ratio_exact(&g).expect("cyclic");
            for threads in THREAD_COUNTS {
                let opts = SolveOptions::new().threads(threads);
                let par_h = mcr_core::ratio::howard_ratio_exact_opts(&g, &opts).expect("cyclic");
                assert_same_solution(&seq_h, &par_h, &format!("{name}/howard-ratio"));
                let par_l = mcr_core::ratio::lawler_ratio_exact_opts(&g, &opts).expect("cyclic");
                assert_same_solution(&seq_l, &par_l, &format!("{name}/lawler-ratio"));
            }
        }
        checked += 1;
    }
    assert!(checked >= 4, "expected the full benchmark suite, got {checked}");
}

/// Disjoint union of several SPRAND graphs plus one-way bridges between
/// consecutive blocks: each block stays its own strongly connected
/// component, so the driver sees `blocks` independent jobs.
fn multi_scc_sprand(blocks: usize, n: usize, m: usize, seed: u64) -> Graph {
    let mut b = GraphBuilder::new();
    let mut first_node = Vec::new();
    for k in 0..blocks {
        let part = sprand(
            &SprandConfig::new(n, m)
                .seed(seed * 101 + k as u64)
                .weight_range(-50, 50),
        );
        let ids = b.add_nodes(part.num_nodes());
        first_node.push(ids[0]);
        for a in part.arc_ids() {
            b.add_arc(
                ids[part.source(a).index()],
                ids[part.target(a).index()],
                part.weight(a),
            );
        }
    }
    for w in first_node.windows(2) {
        b.add_arc(w[0], w[1], 1); // one-way: never merges components
    }
    b.build()
}

#[test]
fn random_multi_scc_sprand_graphs() {
    for seed in 0..4 {
        let g = multi_scc_sprand(4, 8, 20, seed);
        assert_thread_count_invariant(&g, &format!("sprand-union seed {seed}"));
    }
}

#[test]
fn tied_components_pick_the_same_witness() {
    // Three two-cycles all with mean 3 — the reduction must break the
    // tie toward the same (first) component at every thread count.
    let g = from_arc_list(
        6,
        &[(0, 1, 3), (1, 0, 3), (2, 3, 2), (3, 2, 4), (4, 5, 1), (5, 4, 5)],
    );
    for alg in Algorithm::ALL {
        let seq = alg.solve(&g).expect("cyclic");
        assert_eq!(seq.lambda, Ratio64::from(3), "{}", alg.name());
        for threads in THREAD_COUNTS {
            let par = alg
                .solve_with_options(&g, &SolveOptions::new().threads(threads))
                .expect("cyclic");
            assert_same_solution(&seq, &par, &format!("tie/{}", alg.name()));
        }
    }
}

/// One strongly connected component: a SPRAND graph with a Hamiltonian
/// ring overlaid so every node reaches every other. This is the shape
/// where the per-SCC driver degenerates to one job and all requested
/// parallelism must flow into the intra-SCC chunked sweeps.
fn giant_scc_sprand(n: usize, m: usize, seed: u64) -> Graph {
    let part = sprand(&SprandConfig::new(n, m).seed(seed).weight_range(-30, 30));
    let mut b = GraphBuilder::new();
    let ids = b.add_nodes(n);
    for a in part.arc_ids() {
        b.add_arc(
            ids[part.source(a).index()],
            ids[part.target(a).index()],
            part.weight(a),
        );
    }
    for i in 0..n {
        b.add_arc(ids[i], ids[(i + 1) % n], 25);
    }
    b.build()
}

/// Chunked-sweep options with a chunk small enough that even the test
/// graphs span many chunks.
fn chunked(sweep_threads: usize) -> SolveOptions {
    SolveOptions::new()
        .sweep(SweepMode::Chunked)
        .sweep_chunk(16)
        .sweep_threads(sweep_threads)
}

const SWEEP_THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn chunked_sweeps_are_sweep_thread_invariant_on_a_giant_scc() {
    // The determinism contract of the chunked mode: the sweep-thread
    // count selects only *who computes* each candidate chunk, never the
    // commit order, so the full solution — λ, witness, guarantee, and
    // every abstract-op counter — is bit-identical at 1, 2, and 8
    // sweep threads. The optimum value itself must also agree with the
    // sequential sweep (the schedules differ, the answer may not).
    let g = giant_scc_sprand(24, 120, 7);
    for alg in Algorithm::ALL {
        let seq = alg.solve(&g).expect("cyclic");
        let base = alg.solve_with_options(&g, &chunked(1)).expect("cyclic");
        assert_eq!(base.lambda, seq.lambda, "{}: chunked λ", alg.name());
        for threads in SWEEP_THREAD_COUNTS {
            let par = alg.solve_with_options(&g, &chunked(threads)).expect("cyclic");
            assert_same_solution(
                &base,
                &par,
                &format!("chunked/{}/sweep_threads={threads}", alg.name()),
            );
        }
    }
}

#[test]
fn level_kernels_chunked_equals_sequential_exactly() {
    // Karp and DG fill level tables where level k reads only level k−1,
    // so the chunked schedule is not merely equivalent — it performs the
    // *same* abstract operations as the sequential sweep. Full solutions
    // (counters included) must coincide across both modes.
    for seed in 0..3 {
        let g = giant_scc_sprand(20, 90, seed);
        for alg in [Algorithm::Karp, Algorithm::Dg] {
            let seq = alg.solve(&g).expect("cyclic");
            for threads in SWEEP_THREAD_COUNTS {
                let ch = alg.solve_with_options(&g, &chunked(threads)).expect("cyclic");
                assert_same_solution(
                    &seq,
                    &ch,
                    &format!("level/{}/seed={seed}/sweep_threads={threads}", alg.name()),
                );
            }
        }
    }
}

#[test]
fn chunked_sweeps_compose_with_the_parallel_driver() {
    // Driver workers × sweep threads: every combination must agree with
    // the chunked single-thread baseline bit-for-bit. The instance is
    // large enough (> 256 arcs) to cross the driver's work-stealing
    // threshold, so both layers of parallelism are genuinely exercised.
    let g = multi_scc_sprand(4, 16, 70, 13);
    for alg in [
        Algorithm::HowardExact,
        Algorithm::Karp,
        Algorithm::Dg,
        Algorithm::LawlerExact,
    ] {
        let base = alg.solve_with_options(&g, &chunked(1)).expect("cyclic");
        for threads in THREAD_COUNTS {
            for sweep_threads in SWEEP_THREAD_COUNTS {
                let opts = chunked(sweep_threads).threads(threads);
                let par = alg.solve_with_options(&g, &opts).expect("cyclic");
                assert_same_solution(
                    &base,
                    &par,
                    &format!(
                        "compose/{}/threads={threads}/sweep_threads={sweep_threads}",
                        alg.name()
                    ),
                );
            }
        }
    }
}

#[test]
fn maximum_and_opts_entry_points_are_thread_invariant() {
    let g = multi_scc_sprand(3, 6, 14, 9);
    let seq_min = mcr_core::minimum_cycle_mean(&g).expect("cyclic");
    let seq_max = mcr_core::maximum::maximum_cycle_mean(&g).expect("cyclic");
    for threads in THREAD_COUNTS {
        let opts = SolveOptions::new().threads(threads);
        let par_min = mcr_core::minimum_cycle_mean_opts(&g, &opts).expect("cyclic");
        assert_same_solution(&seq_min, &par_min, "minimum_cycle_mean_opts");
        let par_max =
            mcr_core::maximum::maximum_cycle_mean_opts(&g, Algorithm::HowardExact, &opts)
                .expect("cyclic");
        assert_same_solution(&seq_max, &par_max, "maximum_cycle_mean_opts");
    }
}
