pub enum SolveStatus { Ok, Failed }

impl SolveStatus {
    pub const ALL: [SolveStatus; 2] = [SolveStatus::Ok, SolveStatus::Failed];

    pub fn code(self) -> u8 {
        match self {
            SolveStatus::Ok => 0,
            SolveStatus::Failed => 1,
        }
    }

    pub fn from_code(code: u8) -> Option<SolveStatus> {
        SolveStatus::ALL.into_iter().find(|s| s.code() == code)
    }

    pub fn wire_name(self) -> &'static str {
        match self {
            SolveStatus::Ok => "ok",
            _ => "failed",
        }
    }

    pub fn is_retryable(self) -> bool {
        match self {
            SolveStatus::Ok => false,
            SolveStatus::Failed => true,
        }
    }
}
