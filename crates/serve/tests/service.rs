//! In-process service tests: one daemon per test, raw protocol frames
//! over a real TCP socket.
//!
//! The load-bearing assertions: daemon responses are *bit-identical*
//! to direct [`mcr_core::spec::solve_spec`] calls, the cache provably
//! skips parse + SCC extraction (metrics counters, not vibes), and
//! every failure mode comes back as a typed status from the CLI's exit
//! taxonomy.

use mcr_core::spec::solve_spec;
use mcr_core::{SolveOptions, SolveSpec};
use mcr_gen::requests::{request_log, RequestLogConfig};
use mcr_gen::sprand::{sprand, SprandConfig};
use mcr_serve::frame::{read_frame, write_frame};
use mcr_serve::json::{self, Value};
use mcr_serve::protocol;
use mcr_serve::{serve, ServeConfig, ServerHandle};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;

fn start(cfg: ServeConfig) -> ServerHandle {
    serve(cfg).expect("daemon starts")
}

fn quiet() -> ServeConfig {
    ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    }
}

/// One worker makes queue consumption strictly ordered, which the
/// cache-counter tests need: with two workers, two requests carrying
/// the same graph can both miss the cache and both parse.
fn serial() -> ServeConfig {
    ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    }
}

/// Sends every request over one connection and returns the responses
/// keyed by id (responses may interleave).
fn roundtrip(handle: &ServerHandle, requests: &[String]) -> BTreeMap<u64, Value> {
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    for r in requests {
        write_frame(&mut writer, r.as_bytes()).expect("send");
    }
    let mut reader = BufReader::new(stream);
    let mut out = BTreeMap::new();
    for _ in 0..requests.len() {
        let payload = read_frame(&mut reader)
            .expect("read")
            .expect("response frame");
        let v = json::parse(std::str::from_utf8(&payload).expect("utf8")).expect("json");
        let id = v.get("id").and_then(Value::as_u64).expect("id");
        out.insert(id, v);
    }
    out
}

fn graph_text(n: usize, seed: u64) -> String {
    let g = sprand(&SprandConfig::new(n, 2 * n).seed(seed).weight_range(1, 100));
    let mut buf = Vec::new();
    mcr_graph::io::write_dimacs(&mut buf, &g).expect("write");
    String::from_utf8(buf).expect("utf8")
}

fn solve_req(id: u64, graph: &str, extra: &str) -> String {
    format!(
        "{{\"schema\":\"mcr-req v1\",\"id\":{id},\"op\":\"solve\",\"graph\":\"{}\"{extra}}}",
        json::escape(graph)
    )
}

fn status_of(v: &Value) -> (&str, u64) {
    (
        v.get("status").and_then(Value::as_str).expect("status"),
        v.get("code").and_then(Value::as_u64).expect("code"),
    )
}

#[test]
fn ping_metrics_and_shutdown_ops_answer_typed() {
    let handle = start(quiet());
    let addr = handle.local_addr();
    let resp = roundtrip(
        &handle,
        &[
            "{\"schema\":\"mcr-req v1\",\"id\":1,\"op\":\"ping\"}".to_string(),
            "{\"schema\":\"mcr-req v1\",\"id\":2,\"op\":\"metrics\"}".to_string(),
        ],
    );
    assert_eq!(resp[&1].get("pong").and_then(Value::as_bool), Some(true));
    let dump = resp[&2]
        .get("metrics")
        .and_then(Value::as_str)
        .expect("metrics dump");
    assert!(dump.contains("serve.requests.accepted"), "{dump}");
    assert!(dump.contains("mcr-metrics v1"));
    // A shutdown op stops the daemon; wait() then returns.
    let resp = roundtrip(
        &handle,
        &["{\"schema\":\"mcr-req v1\",\"id\":3,\"op\":\"shutdown\"}".to_string()],
    );
    assert_eq!(
        resp[&3].get("shutting_down").and_then(Value::as_bool),
        Some(true)
    );
    let dump = handle.wait();
    assert!(dump.contains("serve.requests.accepted"));
    let _ = addr; // the listener thread is gone; the port is released
}

#[test]
fn solve_is_bit_identical_to_direct_solve_spec() {
    let text = graph_text(12, 3);
    let g = mcr_graph::io::read_dimacs(&mut text.as_bytes()).expect("parse");
    let handle = start(quiet());
    let resp = roundtrip(
        &handle,
        &[
            solve_req(1, &text, ",\"algorithm\":\"howard-exact\""),
            solve_req(2, &text, ",\"algorithm\":\"karp\""),
            solve_req(3, &text, ",\"algorithm\":\"lawler-exact\""),
            solve_req(4, &text, ",\"algorithm\":\"howard-exact\",\"maximize\":true"),
        ],
    );
    for (id, alg, maximize) in [
        (1u64, "howard-exact", false),
        (2, "karp", false),
        (3, "lawler-exact", false),
        (4, "howard-exact", true),
    ] {
        let v = &resp[&id];
        assert_eq!(status_of(v), ("ok", 0), "request {id}");
        let mut spec = SolveSpec::mean(mcr_core::Algorithm::by_name(alg).expect("alg"));
        if maximize {
            spec = spec.maximize();
        }
        let direct = solve_spec(&g, &spec, &SolveOptions::new())
            .expect("solves")
            .expect("cyclic");
        assert_eq!(
            v.get("lambda").and_then(Value::as_str),
            Some(direct.lambda.to_string().as_str()),
            "request {id}: daemon λ must be bit-identical to the CLI path"
        );
        assert_eq!(
            v.get("solved_by").and_then(Value::as_str),
            Some(direct.solved_by.name())
        );
    }
    handle.shutdown();
}

#[test]
fn cache_hits_skip_parse_and_scc_extraction() {
    let text = graph_text(10, 11);
    let hash = protocol::format_hash(mcr_serve::cache::fnv1a(&text));
    let handle = start(serial());
    // Same instance four ways: inline, inline again with another
    // algorithm and epsilon, and twice by hash alone.
    let resp = roundtrip(
        &handle,
        &[
            solve_req(1, &text, ",\"algorithm\":\"howard-exact\""),
            solve_req(2, &text, ",\"algorithm\":\"lawler\",\"epsilon\":1e-7"),
            format!(
                "{{\"schema\":\"mcr-req v1\",\"id\":3,\"op\":\"solve\",\
                 \"graph_hash\":\"{hash}\",\"algorithm\":\"karp\"}}"
            ),
            format!(
                "{{\"schema\":\"mcr-req v1\",\"id\":4,\"op\":\"solve\",\
                 \"graph_hash\":\"{hash}\",\"algorithm\":\"howard\",\"epsilon\":0.5}}"
            ),
        ],
    );
    for id in 1..=4u64 {
        assert_eq!(status_of(&resp[&id]).0, "ok", "request {id}");
        assert_eq!(
            resp[&id].get("graph_hash").and_then(Value::as_str),
            Some(hash.as_str())
        );
    }
    // The proof: one parse, one SCC plan build, three cache hits.
    assert_eq!(handle.metric("serve.graph.parse"), Some(1));
    assert_eq!(handle.metric("serve.plan.build"), Some(1));
    assert_eq!(handle.metric("serve.cache.hit"), Some(3));
    assert_eq!(handle.metric("serve.cache.miss"), Some(1));
    handle.shutdown();
}

#[test]
fn edit_op_mutates_the_cached_instance_and_invalidates_its_plans() {
    use mcr_core::{DynamicSolver, Edit};
    // The latent-stale-plan pin: a solve caches an SccPlan whose frozen
    // jobs carry pre-edit arc ids and weights. After an edit containing
    // a DeleteArc, a by-hash solve MUST rebuild the plan (plan_build
    // jumps) and answer for the mutated graph — and must not re-parse
    // (graph_parse stays put; the hash is a handle, not a digest).
    let text = graph_text(10, 17);
    let g = mcr_graph::io::read_dimacs(&mut text.as_bytes()).expect("parse");
    let hash = protocol::format_hash(mcr_serve::cache::fnv1a(&text));
    let edits = [
        Edit::Reweight { arc: 0, weight: 1 },
        Edit::DeleteArc { arc: 5 },
    ];
    let handle = start(serial());
    // Step 1: seed the cache and build the minimize plan.
    let resp = roundtrip(&handle, &[solve_req(1, &text, "")]);
    assert_eq!(status_of(&resp[&1]), ("ok", 0));
    assert_eq!(handle.metric("serve.plan.build"), Some(1));
    // Step 2: edit by hash alone — answered from the DynamicSolver.
    let edit_req = format!(
        "{{\"schema\":\"mcr-req v1\",\"id\":2,\"op\":\"edit\",\"graph_hash\":\"{hash}\",\
         \"edits\":[{{\"op\":\"reweight\",\"arc\":0,\"weight\":1}},\
         {{\"op\":\"delete\",\"arc\":5}}]}}"
    );
    let resp = roundtrip(&handle, &[edit_req]);
    assert_eq!(status_of(&resp[&2]), ("ok", 0));
    let mode = resp[&2].get("mode").and_then(Value::as_str).expect("mode");
    assert!(mode == "incremental" || mode == "full", "{mode}");
    // The same edits applied locally give the reference instance.
    let mut reference = DynamicSolver::new(
        &g,
        SolveSpec::mean(mcr_core::Algorithm::HowardExact),
        SolveOptions::new(),
    );
    reference.apply(&edits).expect("reference edit applies");
    let mutated = reference.current_graph();
    let direct = solve_spec(
        &mutated,
        &SolveSpec::mean(mcr_core::Algorithm::HowardExact),
        &SolveOptions::new(),
    )
    .expect("solves")
    .expect("still cyclic");
    assert_eq!(
        resp[&2].get("lambda").and_then(Value::as_str),
        Some(direct.lambda.to_string().as_str()),
        "edit answer must be bit-identical to a from-scratch solve of the mutated graph"
    );
    // Step 3: solve by hash — cache hit, NO re-parse, but the plan must
    // be rebuilt for the mutated graph (the stale-plan fix).
    let resp = roundtrip(
        &handle,
        &[format!(
            "{{\"schema\":\"mcr-req v1\",\"id\":3,\"op\":\"solve\",\"graph_hash\":\"{hash}\"}}"
        )],
    );
    assert_eq!(status_of(&resp[&3]), ("ok", 0));
    assert_eq!(
        resp[&3].get("lambda").and_then(Value::as_str),
        Some(direct.lambda.to_string().as_str()),
        "by-hash solve must see the mutated graph, not the pre-edit one"
    );
    // Step 4: a second batch reuses the persistent solver.
    let resp = roundtrip(
        &handle,
        &[format!(
            "{{\"schema\":\"mcr-req v1\",\"id\":4,\"op\":\"edit\",\"graph_hash\":\"{hash}\",\
             \"edits\":[{{\"op\":\"reweight\",\"arc\":1,\"weight\":50}}]}}"
        )],
    );
    assert_eq!(status_of(&resp[&4]), ("ok", 0));
    assert_eq!(handle.metric("serve.graph.parse"), Some(1), "never re-parsed");
    assert_eq!(
        handle.metric("serve.plan.build"),
        Some(2),
        "the post-edit solve rebuilt the plan instead of reusing a stale one"
    );
    assert_eq!(handle.metric("serve.edit.applied"), Some(2));
    assert_eq!(handle.metric("serve.cache.hit"), Some(3));
    assert_eq!(handle.metric("serve.cache.miss"), Some(1));
    handle.shutdown();
}

#[test]
fn cold_start_edit_with_inline_graph_seeds_the_cache_and_answers() {
    use mcr_core::{DynamicSolver, Edit};
    // Regression pin for a self-deadlock: on the cold-start edit path
    // (unknown hash, graph sent inline) the handler re-locked the cache
    // to insert the parsed graph while the `match` scrutinee still held
    // the peek guard. No prior solve here — the daemon's very first
    // request is an edit carrying the graph inline.
    let text = graph_text(8, 41);
    let g = mcr_graph::io::read_dimacs(&mut text.as_bytes()).expect("parse");
    let handle = start(serial());
    let req = format!(
        "{{\"schema\":\"mcr-req v1\",\"id\":1,\"op\":\"edit\",\"graph\":\"{}\",\
         \"edits\":[{{\"op\":\"reweight\",\"arc\":0,\"weight\":7}}]}}",
        json::escape(&text)
    );
    let resp = roundtrip(&handle, &[req]);
    assert_eq!(status_of(&resp[&1]), ("ok", 0));
    let mut reference = DynamicSolver::new(
        &g,
        SolveSpec::mean(mcr_core::Algorithm::HowardExact),
        SolveOptions::new(),
    );
    reference
        .apply(&[Edit::Reweight { arc: 0, weight: 7 }])
        .expect("reference edit applies");
    let direct = solve_spec(
        &reference.current_graph(),
        &SolveSpec::mean(mcr_core::Algorithm::HowardExact),
        &SolveOptions::new(),
    )
    .expect("solves")
    .expect("cyclic");
    assert_eq!(
        resp[&1].get("lambda").and_then(Value::as_str),
        Some(direct.lambda.to_string().as_str()),
        "cold-start edit answer must match a from-scratch solve of the edited graph"
    );
    // The inline graph was parsed once and now seeds the cache: a
    // by-hash solve hits without re-parsing.
    let hash = protocol::format_hash(mcr_serve::cache::fnv1a(&text));
    let resp = roundtrip(
        &handle,
        &[format!(
            "{{\"schema\":\"mcr-req v1\",\"id\":2,\"op\":\"solve\",\"graph_hash\":\"{hash}\"}}"
        )],
    );
    assert_eq!(status_of(&resp[&2]), ("ok", 0));
    assert_eq!(
        resp[&2].get("lambda").and_then(Value::as_str),
        Some(direct.lambda.to_string().as_str()),
        "by-hash solve must see the graph the cold-start edit committed"
    );
    assert_eq!(handle.metric("serve.graph.parse"), Some(1), "parsed once");
    assert_eq!(handle.metric("serve.cache.miss"), Some(1));
    assert_eq!(handle.metric("serve.cache.hit"), Some(1));
    handle.shutdown();
}

#[test]
fn maximize_reuses_a_separate_negated_plan() {
    // Two maximize solves of a cached instance: the second must hit
    // the cache's negated-orientation plan, and both must agree with
    // the direct (no plan) answer — a wrong-orientation plan would
    // corrupt λ, which is exactly what the per-orientation cache
    // design prevents.
    let text = graph_text(14, 21);
    let g = mcr_graph::io::read_dimacs(&mut text.as_bytes()).expect("parse");
    let handle = start(serial());
    let resp = roundtrip(
        &handle,
        &[
            solve_req(1, &text, ",\"maximize\":true"),
            solve_req(2, &text, ",\"maximize\":true,\"algorithm\":\"karp\""),
            solve_req(3, &text, ""),
        ],
    );
    let direct_max = solve_spec(
        &g,
        &SolveSpec::mean(mcr_core::Algorithm::HowardExact).maximize(),
        &SolveOptions::new(),
    )
    .expect("solves")
    .expect("cyclic");
    let direct_min = solve_spec(
        &g,
        &SolveSpec::mean(mcr_core::Algorithm::HowardExact),
        &SolveOptions::new(),
    )
    .expect("solves")
    .expect("cyclic");
    let max_lambda = direct_max.lambda.to_string();
    assert_eq!(
        resp[&1].get("lambda").and_then(Value::as_str),
        Some(max_lambda.as_str())
    );
    assert_eq!(
        resp[&2].get("lambda").and_then(Value::as_str),
        Some(max_lambda.as_str()),
        "cached negated plan must not change the answer"
    );
    assert_eq!(
        resp[&3].get("lambda").and_then(Value::as_str),
        Some(direct_min.lambda.to_string().as_str())
    );
    // Two plans were built: one per orientation; one parse total.
    assert_eq!(handle.metric("serve.graph.parse"), Some(1));
    assert_eq!(handle.metric("serve.plan.build"), Some(2));
    handle.shutdown();
}

#[test]
fn failure_statuses_mirror_the_exit_taxonomy() {
    let text = graph_text(8, 2);
    let handle = start(quiet());
    let resp = roundtrip(
        &handle,
        &[
            // Expired on arrival → cancelled (4).
            solve_req(1, &text, ",\"deadline_ms\":0"),
            // Unknown algorithm → input-error (1) at parse.
            solve_req(2, &text, ",\"algorithm\":\"simplex\""),
            // Unknown hash, no inline graph → input-error (1).
            "{\"schema\":\"mcr-req v1\",\"id\":3,\"op\":\"solve\",\
             \"graph_hash\":\"00000000000000aa\"}"
                .to_string(),
            // One λ refinement, fallbacks off → budget-exhausted (2).
            solve_req(
                4,
                &text,
                ",\"algorithm\":\"lawler-exact\",\"budget\":\"refine=1\",\"fallback\":\"none\"",
            ),
            // Bad epsilon → input-error (1), typed not folded.
            solve_req(5, &text, ",\"algorithm\":\"lawler\",\"epsilon\":-1.0"),
        ],
    );
    assert_eq!(status_of(&resp[&1]), ("cancelled", 4));
    assert_eq!(status_of(&resp[&2]), ("input-error", 1));
    assert_eq!(status_of(&resp[&3]), ("input-error", 1));
    assert!(resp[&3]
        .get("error")
        .and_then(Value::as_str)
        .expect("error")
        .contains("unknown graph hash"));
    assert_eq!(status_of(&resp[&4]), ("budget-exhausted", 2));
    assert_eq!(
        resp[&4].get("retryable").and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(status_of(&resp[&5]), ("input-error", 1));
    handle.shutdown();
}

#[test]
fn full_queue_sheds_load_with_retry_after() {
    // No workers, depth 1: the first solve occupies the only slot
    // forever, the second is shed with a typed overloaded response.
    let handle = start(ServeConfig {
        workers: 0,
        queue_depth: 1,
        retry_after_ms: 75,
        ..ServeConfig::default()
    });
    let text = graph_text(8, 2);
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    write_frame(&mut writer, solve_req(1, &text, "").as_bytes()).expect("send");
    write_frame(&mut writer, solve_req(2, &text, "").as_bytes()).expect("send");
    let mut reader = BufReader::new(stream);
    // Only request 2 answers (request 1 sits in the queue unserved).
    let payload = read_frame(&mut reader).expect("read").expect("frame");
    let v = json::parse(std::str::from_utf8(&payload).expect("utf8")).expect("json");
    assert_eq!(v.get("id").and_then(Value::as_u64), Some(2));
    assert_eq!(status_of(&v), ("overloaded", 5));
    assert_eq!(v.get("retry_after_ms").and_then(Value::as_u64), Some(75));
    assert_eq!(v.get("retryable").and_then(Value::as_bool), Some(true));
    assert_eq!(handle.metric("serve.requests.rejected"), Some(1));
    assert_eq!(handle.metric("serve.requests.accepted"), Some(1));
    handle.shutdown();
}

#[test]
fn golden_request_log_is_what_the_generator_emits() {
    // Regeneration guard: the committed golden replay log must be
    // byte-identical to `mcr gen requests 12 --seed 42`, and every
    // line must parse as a valid mcr-req v1 request.
    let golden = include_str!("data/golden_requests.jsonl");
    let generated = request_log(&RequestLogConfig::new(12).seed(42));
    assert_eq!(
        golden, generated,
        "regenerate with: cargo run -p mcr-cli -- gen requests 12 --seed 42"
    );
    // Every request key must be declared in the committed mcr-req v1
    // schema manifest — the same file mcr-lint (MCRL011) checks the
    // protocol parser against, so goldens, parser, and manifest cannot
    // drift apart independently.
    let manifest = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("schemas/mcr-req-v1.txt");
    let declared: std::collections::BTreeSet<String> = std::fs::read_to_string(&manifest)
        .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()))
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(String::from)
        .collect();
    for (n, line) in golden.lines().enumerate() {
        protocol::parse_request(line.as_bytes()).expect("golden line parses");
        let Value::Obj(obj) = json::parse(line).expect("golden line is JSON") else {
            panic!("golden line {} is not an object", n + 1);
        };
        for key in obj.keys() {
            assert!(
                declared.contains(key),
                "golden_requests.jsonl:{} key `{key}` is not declared in schemas/mcr-req-v1.txt",
                n + 1
            );
        }
    }
}

#[test]
fn replay_client_drives_the_golden_log_end_to_end() {
    let handle = start(serial());
    let lines: Vec<String> = request_log(&RequestLogConfig::new(12).seed(42))
        .lines()
        .map(String::from)
        .collect();
    let mut out = Vec::new();
    let report = mcr_serve::client::replay(
        &handle.local_addr().to_string(),
        &lines,
        false,
        &mut out,
    )
    .expect("replay succeeds");
    assert_eq!(report.sent, 12);
    assert_eq!(report.received, 12);
    let by_status: BTreeMap<&str, usize> = report
        .by_status
        .iter()
        .map(|(s, n)| (s.as_str(), *n))
        .collect();
    assert_eq!(by_status.get("cancelled"), Some(&1), "{by_status:?}");
    assert_eq!(by_status.get("budget-exhausted"), Some(&1));
    assert_eq!(by_status.get("ok"), Some(&10));
    // The pool repeats instances, so the cache must have proven hits.
    assert!(handle.metric("serve.cache.hit").unwrap_or(0) >= 4);
    let parses = handle.metric("serve.graph.parse").unwrap_or(u64::MAX);
    assert!(parses <= 4, "at most one parse per pool instance: {parses}");
    handle.shutdown();
}
