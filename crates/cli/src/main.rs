//! `mcr` — command-line optimum cycle mean / cycle ratio analysis.
//!
//! ```text
//! mcr solve [FILE]      solve a DIMACS-style instance (stdin if omitted)
//!     --algorithm NAME  one of: burns burns-exact ko yto howard
//!                       howard-exact ho karp karp2 dg lawler
//!                       lawler-exact oa1        (default: howard-exact)
//!     --max             maximize instead of minimize
//!     --ratio           cost-to-time ratio objective (needs transit times)
//!     --epsilon X       precision for approximate algorithms
//!     --threads N       worker threads for the per-SCC driver
//!                       (default: available parallelism; 1 = sequential)
//!     --sweep MODE      intra-SCC arc-sweep mode: `sequential` (default,
//!                       bit-identical to the historical loops) or
//!                       `chunked` (two-phase chunk-ordered sweeps that
//!                       can use worker threads inside one giant SCC;
//!                       deterministic at any thread count, but a
//!                       different — equally correct — trajectory than
//!                       sequential mode)
//!     --sweep-chunk N   arcs per chunk in chunked mode (default 4096)
//!     --sweep-threads N threads per chunked sweep (default: spare
//!                       driver threads beyond the SCC count, min 1)
//!     --budget SPEC     work limits, comma-separated `key=value` terms:
//!                       iters=N (outer-loop iterations per SCC attempt),
//!                       refine=N (lambda refinements per SCC attempt),
//!                       time=DUR (wall clock, e.g. 500ms, 2s, 1.5)
//!     --fallback CHAIN  `none`, or comma-separated algorithm names tried
//!                       in order when the primary fails recoverably
//!                       (default: howard-exact,karp,lawler-exact)
//!     --timeout DUR     hard wall-clock deadline, enforced cooperatively
//!                       at the solver's poll points (the solve fails
//!                       closed, exit code 4; when it coincides with a
//!                       --budget time= deadline the timeout wins, so
//!                       the exit code is deterministic at the boundary)
//!     --critical        also print the critical subgraph
//!     --counters        also print operation counts
//!     --trace-out PATH  write a structured solve trace (`mcr-trace v1`
//!                       JSONL; needs a build with `--features obs`)
//!     --metrics-out PATH  write the unified metrics registry
//!                       (`mcr-metrics v1` JSONL; needs `obs`)
//!     --summary         print a human-readable observability summary
//!                       table after the solve (needs `obs`)
//!
//! Exit codes come from [`mcr_core::SolveStatus`] (shared with the
//! `mcrd` response protocol): 0 success, 1 input or usage error,
//! 2 budget exhausted, 3 certification failure (a solved instance
//! whose witness cycle does not reproduce the reported lambda — a
//! solver bug, never silent), 4 cancelled (the `--timeout` deadline
//! passed before the solve finished; no partial answer is printed).
//!
//! mcr dynamic --edits FILE  replay an `mcr-edits v1` edit script with
//!                       the incremental [`mcr_core::DynamicSolver`]:
//!                       one trajectory line per batch (λ as an exact
//!                       fraction, plus whether the batch was answered
//!                       incrementally or by a full re-solve), then the
//!                       final solution. `-` reads the script from
//!                       stdin. Accepts --algorithm, --ratio, --max,
//!                       --epsilon, --threads, --critical, --counters
//!                       with the same meanings as `mcr solve`; every
//!                       batch's answer is re-certified before printing
//!
//! mcr gen sprand N M [--seed S] [--wmin A] [--wmax B] [--tmin A --tmax B]
//! mcr gen circuit N   [--seed S]
//!                       emit a DIMACS-style instance on stdout
//! mcr gen requests N  [--seed S]
//!                       emit a replayable `mcr-req v1` JSONL request
//!                       log for the mcrd daemon (deterministic per
//!                       seed; feed it to `mcr client --replay`)
//! mcr gen edits N     [--seed S] [--nodes V --arcs E]
//!                       emit a deterministic `mcr-edits v1` edit
//!                       script with N batches over a SPRAND base
//!                       instance (feed it to `mcr dynamic --edits`)
//!
//! mcr client --addr HOST:PORT (--replay FILE|- [--no-wait] | --op OP)
//!                       batch client for a running mcrd daemon.
//!     --replay FILE     pipeline a JSONL request log (`-` = stdin) and
//!                       print one response line per request; exits 0
//!                       iff every request got a response (per-request
//!                       failures are data in the response lines).
//!                       `overloaded` sheds are retried with bounded
//!                       backoff honoring the daemon's retry_after_ms
//!     --no-wait         return after sending, without collecting
//!                       responses — used by crash drills to kill the
//!                       daemon with admitted work provably queued
//!     --op OP           send a single ping | metrics | shutdown
//!     --fleet H:P,H:P   shard across several daemons by graph hash
//!                       instead of --addr: per-shard circuit breakers,
//!                       ring failover with journal-backed duplicate
//!                       suppression; --op broadcasts to every shard
//!     --timeout-ms N    per-response read timeout (default 30000;
//!                       also the fleet's failover detection latency)
//!
//! mcr bench [FILE]      run every algorithm on an instance and print a
//!     --threads N       timing/operation-count table
//!
//! mcr dot [FILE]        convert an instance to Graphviz DOT
//! ```

use mcr_core::critical::critical_subgraph;
use mcr_core::spec::{parse_budget_spec, parse_duration_spec, parse_fallback_spec, solve_spec, SpecError};
use mcr_core::{
    certify, parse_edit_script, Algorithm, DynamicOutcome, DynamicSolver, Guarantee, Objective,
    Solution, SolveError, SolveOptions, SolveSpec, SolveStatus, SweepMode,
};
use mcr_gen::circuit::{circuit_graph, CircuitConfig};
use mcr_gen::sprand::{sprand, SprandConfig};
use mcr_gen::transit::with_random_transits;
use mcr_graph::io::{read_dimacs, to_dot, write_dimacs};
use mcr_graph::Graph;
use std::io::{Read, Write};
use std::process::ExitCode;
use std::time::Instant;

/// CLI failure: a message plus the [`SolveStatus`] that fixes the
/// process exit code (the taxonomy lives in `mcr_core::status`, shared
/// with the `mcrd` response protocol).
struct CliError {
    status: SolveStatus,
    message: String,
}

impl CliError {
    fn new(status: SolveStatus, message: impl Into<String>) -> CliError {
        CliError {
            status,
            message: message.into(),
        }
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::new(SolveStatus::InputError, msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError::new(SolveStatus::InputError, msg)
    }
}

impl From<SpecError> for CliError {
    fn from(e: SpecError) -> Self {
        CliError::new(e.status(), e.to_string())
    }
}

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            if let Some(name) = raw[i].strip_prefix("--") {
                let takes_value = ![
                    "max", "ratio", "critical", "counters", "summary", "no-wait",
                ]
                .contains(&name);
                if takes_value && i + 1 < raw.len() {
                    flags.push((name.to_string(), Some(raw[i + 1].clone())));
                    i += 2;
                } else {
                    flags.push((name.to_string(), None));
                    i += 1;
                }
            } else {
                positional.push(raw[i].clone());
                i += 1;
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn value_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{name}: {v}")),
        }
    }
}

fn load_graph(path: Option<&str>) -> Result<Graph, String> {
    let mut text = String::new();
    match path {
        None | Some("-") => {
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|e| format!("reading stdin: {e}"))?;
        }
        Some(p) => {
            text = std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"))?;
        }
    }
    read_dimacs(&mut text.as_bytes()).map_err(|e| format!("parse error: {e}"))
}

/// `--threads N` / `--budget SPEC` / `--fallback CHAIN` →
/// [`SolveOptions`]. The CLI defaults to `--threads 0` (auto-detect
/// available parallelism); `--threads 1` forces the sequential legacy
/// path. Results are identical either way.
fn solve_options(args: &Args, epsilon: f64) -> Result<SolveOptions, String> {
    let threads: usize = args.value_parsed("threads", 0)?;
    let sweep = match args.value("sweep") {
        None => SweepMode::Sequential,
        Some(v) if v.eq_ignore_ascii_case("sequential") => SweepMode::Sequential,
        Some(v) if v.eq_ignore_ascii_case("chunked") => SweepMode::Chunked,
        Some(v) => return Err(format!("invalid --sweep `{v}` (use sequential or chunked)")),
    };
    let mut opts = SolveOptions {
        threads,
        sweep,
        sweep_chunk: args.value_parsed("sweep-chunk", 0)?,
        sweep_threads: args.value_parsed("sweep-threads", 0)?,
        epsilon: Some(epsilon),
        ..SolveOptions::default()
    };
    if let Some(spec) = args.value("budget") {
        opts.budget = parse_budget_spec(spec)?;
    }
    if let Some(spec) = args.value("fallback") {
        opts.fallback = parse_fallback_spec(spec)?;
    }
    if let Some(spec) = args.value("timeout") {
        // One monotonic deadline, resolved here and carried through
        // SolveOptions. The solver compares it against Budget wall-time
        // deadlines once per solve (earliest wins, ties break to the
        // cancellation kind), so exit 2 vs exit 4 is deterministic even
        // when --timeout and --budget time= land on the same instant.
        // `--timeout 0ms` trips at the first poll point: exit 4, always.
        opts.deadline = Some(Instant::now() + parse_duration_spec(spec)?);
    }
    Ok(opts)
}

/// The observability outputs requested on the command line
/// (`--trace-out`, `--metrics-out`, `--summary`). Parsed in every
/// build; honored only by builds with the `obs` feature.
struct ObsRequest {
    trace_out: Option<String>,
    metrics_out: Option<String>,
    summary: bool,
}

impl ObsRequest {
    fn from_args(args: &Args) -> ObsRequest {
        ObsRequest {
            trace_out: args.value("trace-out").map(str::to_string),
            metrics_out: args.value("metrics-out").map(str::to_string),
            summary: args.flag("summary"),
        }
    }

    fn any(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some() || self.summary
    }
}

/// Runs `f` under an installed trace recorder, then writes the
/// requested outputs. The solve's own result passes through unchanged —
/// traces of failed solves are written too (that is when you want
/// them). Wall-clock timestamps are real here; the golden tests
/// normalize via [`mcr_core::obs::Timestamps::Normalized`] instead.
#[cfg(feature = "obs")]
fn with_obs<T>(
    req: &ObsRequest,
    f: impl FnOnce() -> Result<T, CliError>,
) -> Result<T, CliError> {
    use mcr_core::obs::Timestamps;
    if !req.any() {
        return f();
    }
    let guard = mcr_core::obs::install();
    let out = f();
    let report = guard.finish();
    if let Some(path) = &req.trace_out {
        std::fs::write(path, report.trace_jsonl(Timestamps::Wall))
            .map_err(|e| CliError::from(format!("writing trace to {path}: {e}")))?;
    }
    if let Some(path) = &req.metrics_out {
        std::fs::write(path, report.metrics_jsonl(Timestamps::Wall))
            .map_err(|e| CliError::from(format!("writing metrics to {path}: {e}")))?;
    }
    if req.summary {
        print!("{}", report.summary(Timestamps::Wall));
    }
    out
}

/// Without the `obs` feature the observability flags fail loudly:
/// recording code is compiled out of this binary, so honoring the flag
/// by writing an empty file would be silent data loss.
#[cfg(not(feature = "obs"))]
fn with_obs<T>(
    req: &ObsRequest,
    f: impl FnOnce() -> Result<T, CliError>,
) -> Result<T, CliError> {
    if req.any() {
        return Err(CliError::from(
            "this build has no observability support; rebuild with \
             `cargo build -p mcr-cli --features obs` to use --trace-out, \
             --metrics-out, or --summary"
                .to_string(),
        ));
    }
    f()
}

fn print_solution(g: &Graph, sol: &Solution, maximize: bool, args: &Args) {
    println!("lambda = {} (~ {:.6})", sol.lambda, sol.lambda.to_f64());
    match sol.guarantee {
        Guarantee::Exact => println!("guarantee: exact"),
        Guarantee::Epsilon(e) => println!("guarantee: within {e} of the optimum"),
    }
    let nodes: Vec<String> = sol
        .cycle_nodes(g)
        .iter()
        .map(|v| (v.index() + 1).to_string())
        .collect();
    println!("witness cycle ({} arcs): {}", sol.cycle.len(), nodes.join(" -> "));
    if args.flag("counters") {
        let c = &sol.counters;
        println!(
            "counters: iterations={} relaxations={} updates={} arcs_visited={} cycles={} oracle_calls={} heap_ops={}",
            c.iterations,
            c.relaxations,
            c.distance_updates,
            c.arcs_visited,
            c.cycles_examined,
            c.oracle_calls,
            c.heap.total()
        );
    }
    if args.flag("critical") {
        let (graph, lambda) = if maximize {
            (g.negated(), -sol.lambda)
        } else {
            (g.clone(), sol.lambda)
        };
        match critical_subgraph(&graph, lambda) {
            Ok(cs) => {
                println!("critical arcs ({}):", cs.arcs.len());
                for a in cs.arcs {
                    println!(
                        "  {} -> {} (w={}, t={})",
                        g.source(a).index() + 1,
                        g.target(a).index() + 1,
                        g.weight(a),
                        g.transit(a)
                    );
                }
            }
            Err(_) => println!("critical subgraph: unavailable (approximate lambda)"),
        }
    }
}

fn cmd_solve(args: &Args) -> Result<(), CliError> {
    let g = load_graph(args.positional.get(1).map(|s| s.as_str()))?;
    let alg_name = args.value("algorithm").unwrap_or("howard-exact");
    let alg = Algorithm::by_name(alg_name)
        .ok_or_else(|| format!("unknown algorithm `{alg_name}` (see --help)"))?;
    let maximize = args.flag("max");
    let ratio_mode = args.flag("ratio");
    let epsilon = args.value_parsed("epsilon", Algorithm::default_epsilon(&g))?;
    if epsilon <= 0.0 {
        return Err("epsilon must be positive".into());
    }
    let opts = solve_options(args, epsilon)?;

    // The dispatch itself — objective match, maximize negation, the
    // acyclic fold — lives in `mcr_core::spec`, shared verbatim with
    // the `mcrd` daemon so both front ends give bit-identical answers.
    let spec = SolveSpec {
        algorithm: alg,
        objective: if ratio_mode {
            Objective::Ratio
        } else {
            Objective::Mean
        },
        maximize,
    };
    match solve_spec(&g, &spec, &opts)? {
        None => {
            println!("graph is acyclic: no cycle mean/ratio");
            Ok(())
        }
        Some(sol) => {
            println!(
                "{} {} via {}",
                if maximize { "maximum" } else { "minimum" },
                if ratio_mode { "cycle ratio" } else { "cycle mean" },
                alg.name()
            );
            if sol.solved_by != alg {
                println!(
                    "note: {} gave up within the budget; {} answered instead",
                    alg.name(),
                    sol.solved_by.name()
                );
            }
            print_solution(&g, &sol, maximize, args);
            // Independent re-walk of the witness cycle: the reported
            // lambda must be its exact mean or ratio in the input graph
            // (negation commutes with both, so `g` works for --max too).
            certify(&sol, &g).map_err(|e| {
                CliError::new(
                    SolveStatus::CertifyFailed,
                    format!("certification failed: {e}"),
                )
            })?;
            println!("certificate: witness cycle reproduces lambda exactly");
            Ok(())
        }
    }
}

/// One trajectory line per batch: exact λ (or acyclic) plus whether
/// the incremental solver answered from its component cache. The line
/// is thread-count-independent — λ by the bit-identity contract, the
/// hit/miss split because component fingerprints do not depend on the
/// driver schedule — which is what lets CI byte-compare 1-thread and
/// 4-thread replays.
fn describe_batch(i: usize, outcome: &DynamicOutcome) {
    let provenance = format!(
        "[{}; {} cached, {} solved]",
        outcome.mode.name(),
        outcome.cache_hits,
        outcome.cache_misses
    );
    match &outcome.solution {
        Some(sol) => println!(
            "batch {i}: lambda = {} (~ {:.6}) {provenance}",
            sol.lambda,
            sol.lambda.to_f64()
        ),
        None => println!("batch {i}: acyclic {provenance}"),
    }
}

/// `mcr dynamic --edits FILE`: replay an `mcr-edits v1` script with the
/// persistent incremental solver, printing the λ trajectory.
fn cmd_dynamic(args: &Args) -> Result<(), CliError> {
    let source = args
        .value("edits")
        .ok_or("usage: mcr dynamic --edits FILE [solve flags] (see crate docs)")?;
    let mut text = String::new();
    match source {
        "-" => {
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|e| format!("reading stdin: {e}"))?;
        }
        p => {
            text = std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"))?;
        }
    }
    let script = parse_edit_script(&text).map_err(|e| format!("edit script: {e}"))?;
    let g = script.base_graph();
    let alg_name = args.value("algorithm").unwrap_or("howard-exact");
    let alg = Algorithm::by_name(alg_name)
        .ok_or_else(|| format!("unknown algorithm `{alg_name}` (see --help)"))?;
    let maximize = args.flag("max");
    let ratio_mode = args.flag("ratio");
    let epsilon = args.value_parsed("epsilon", Algorithm::default_epsilon(&g))?;
    if epsilon <= 0.0 {
        return Err("epsilon must be positive".into());
    }
    let opts = solve_options(args, epsilon)?;
    let spec = SolveSpec {
        algorithm: alg,
        objective: if ratio_mode {
            Objective::Ratio
        } else {
            Objective::Mean
        },
        maximize,
    };
    println!(
        "dynamic {} {} via {}: {} nodes, {} base arcs, {} batches (seed {})",
        if maximize { "maximum" } else { "minimum" },
        if ratio_mode { "cycle ratio" } else { "cycle mean" },
        alg.name(),
        script.nodes,
        script.base_arcs.len(),
        script.batches.len(),
        script.seed
    );
    let mut solver = DynamicSolver::new(&g, spec, opts);
    // Batch 0 is the initial full solve that warms the component cache;
    // a failed batch aborts the replay with its typed exit code (the
    // solver state still reflects every committed edit at that point).
    let mut last = solver.solve()?;
    describe_batch(0, &last);
    for (i, batch) in script.batches.iter().enumerate() {
        last = solver.apply(batch)?;
        describe_batch(i + 1, &last);
    }
    match last.solution {
        None => {
            println!("final graph is acyclic: no cycle mean/ratio");
            Ok(())
        }
        Some(sol) => {
            let final_graph = solver.current_graph();
            print_solution(&final_graph, &sol, maximize, args);
            // The solver re-certified every batch internally; repeat
            // the independent re-walk here so the printed certificate
            // line means the same thing it does on the one-shot path.
            certify(&sol, &final_graph).map_err(|e| {
                CliError::new(
                    SolveStatus::CertifyFailed,
                    format!("certification failed: {e}"),
                )
            })?;
            println!("certificate: witness cycle reproduces lambda exactly");
            Ok(())
        }
    }
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let family = args
        .positional
        .get(1)
        .ok_or("usage: mcr gen <sprand|circuit|requests> ...")?;
    let seed: u64 = args.value_parsed("seed", 0)?;
    if family == "requests" {
        let count: usize = args
            .positional
            .get(2)
            .ok_or("usage: mcr gen requests N [--seed S]")?
            .parse()
            .map_err(|_| "invalid N")?;
        print!(
            "{}",
            mcr_gen::requests::request_log(
                &mcr_gen::requests::RequestLogConfig::new(count).seed(seed)
            )
        );
        return Ok(());
    }
    if family == "edits" {
        let batches: usize = args
            .positional
            .get(2)
            .ok_or("usage: mcr gen edits N [--seed S] [--nodes V --arcs E]")?
            .parse()
            .map_err(|_| "invalid N")?;
        let mut cfg = mcr_gen::edits::EditScriptConfig::new(batches).seed(seed);
        let nodes: usize = args.value_parsed("nodes", cfg.nodes)?;
        let arcs: usize = args.value_parsed("arcs", cfg.arcs)?;
        cfg = cfg.size(nodes, arcs);
        print!("{}", mcr_gen::edits::edit_script(&cfg));
        return Ok(());
    }
    let g = match family.as_str() {
        "sprand" => {
            let n: usize = args
                .positional
                .get(2)
                .ok_or("usage: mcr gen sprand N M")?
                .parse()
                .map_err(|_| "invalid N")?;
            let m: usize = args
                .positional
                .get(3)
                .ok_or("usage: mcr gen sprand N M")?
                .parse()
                .map_err(|_| "invalid M")?;
            let wmin: i64 = args.value_parsed("wmin", 1)?;
            let wmax: i64 = args.value_parsed("wmax", 10_000)?;
            let g = sprand(
                &SprandConfig::new(n, m)
                    .seed(seed)
                    .weight_range(wmin, wmax),
            );
            match (args.value("tmin"), args.value("tmax")) {
                (Some(_), _) | (_, Some(_)) => {
                    let tmin: i64 = args.value_parsed("tmin", 1)?;
                    let tmax: i64 = args.value_parsed("tmax", 10)?;
                    with_random_transits(&g, tmin, tmax, seed ^ 0x7ea)
                }
                _ => g,
            }
        }
        "circuit" => {
            let n: usize = args
                .positional
                .get(2)
                .ok_or("usage: mcr gen circuit N")?
                .parse()
                .map_err(|_| "invalid N")?;
            circuit_graph(&CircuitConfig::new(n).seed(seed))
        }
        other => return Err(format!("unknown generator `{other}`")),
    };
    let mut out = Vec::new();
    write_dimacs(&mut out, &g).map_err(|e| e.to_string())?;
    print!("{}", String::from_utf8_lossy(&out));
    Ok(())
}

fn cmd_client(args: &Args) -> Result<(), String> {
    const CLIENT_USAGE: &str = "usage: mcr client (--addr HOST:PORT | --fleet H:P,H:P[,..]) \
         (--replay FILE|- [--no-wait] | --op ping|metrics|shutdown) [--timeout-ms N]";
    let timeout =
        std::time::Duration::from_millis(args.value_parsed::<u64>("timeout-ms", 30_000)?);
    let mut out = std::io::stdout();
    let fleet = match args.value("fleet") {
        Some(spec) => {
            let mut cfg =
                mcr_serve::client::FleetConfig::new(mcr_serve::shard::ShardMap::parse(spec)?);
            cfg.response_timeout = timeout;
            Some(cfg)
        }
        None => None,
    };
    if let Some(op) = args.value("op") {
        return match &fleet {
            Some(cfg) => mcr_serve::client::fleet_one_op(cfg, op, &mut out),
            None => {
                let addr = args.value("addr").ok_or(CLIENT_USAGE)?;
                mcr_serve::client::one_op_with(addr, op, timeout, &mut out)
            }
        };
    }
    if let Some(cfg) = &fleet {
        return client_fleet_replay(args, cfg, &mut out);
    }
    let addr = args.value("addr").ok_or(CLIENT_USAGE)?;
    let source = args.value("replay").ok_or(CLIENT_USAGE)?;
    let lines = read_request_log(source)?;
    let report = mcr_serve::client::replay_with(
        addr,
        &lines,
        args.flag("no-wait"),
        timeout,
        &mcr_serve::retry::RetryPolicy::default(),
        &mut out,
    )?;
    eprintln!(
        "mcr client: sent={} received={} retries={}{}",
        report.sent,
        report.received,
        report.retries,
        status_summary(&report.by_status)
    );
    Ok(())
}

fn read_request_log(source: &str) -> Result<Vec<String>, String> {
    let mut text = String::new();
    match source {
        "-" => {
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|e| format!("reading stdin: {e}"))?;
        }
        p => {
            text = std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"))?;
        }
    }
    Ok(text.lines().map(String::from).collect())
}

fn status_summary(by_status: &[(String, usize)]) -> String {
    if by_status.is_empty() {
        return String::new();
    }
    let statuses: Vec<String> = by_status.iter().map(|(s, n)| format!("{s}={n}")).collect();
    format!(" [{}]", statuses.join(" "))
}

fn client_fleet_replay(
    args: &Args,
    cfg: &mcr_serve::client::FleetConfig,
    out: &mut dyn Write,
) -> Result<(), String> {
    const FLEET_USAGE: &str =
        "usage: mcr client --fleet H:P,H:P[,..] --replay FILE|- [--timeout-ms N]";
    if args.flag("no-wait") {
        return Err("--no-wait needs --addr: the fleet client settles every request".to_string());
    }
    let source = args.value("replay").ok_or(FLEET_USAGE)?;
    let lines = read_request_log(source)?;
    let report = mcr_serve::client::fleet_replay(cfg, &lines, out)?;
    eprintln!(
        "mcr client: sent={} settled={} retries={} failovers={} breaker_opens={} deduped={}{}",
        report.sent,
        report.settled,
        report.retries,
        report.failovers,
        report.breaker_opens,
        report.deduped,
        status_summary(&report.by_status)
    );
    Ok(())
}

fn cmd_dot(args: &Args) -> Result<(), String> {
    let g = load_graph(args.positional.get(1).map(|s| s.as_str()))?;
    print!("{}", to_dot(&g, "mcr"));
    Ok(())
}

fn cmd_bench(args: &Args) -> Result<(), CliError> {
    let g = load_graph(args.positional.get(1).map(|s| s.as_str()))?;
    let opts = solve_options(args, Algorithm::default_epsilon(&g))?;
    println!(
        "instance: {} nodes, {} arcs, weights [{}, {}]",
        g.num_nodes(),
        g.num_arcs(),
        g.min_weight().unwrap_or(0),
        g.max_weight().unwrap_or(0)
    );
    println!(
        "{:<14} {:>12} {:>14} {:>9} {:>12}",
        "algorithm", "time", "lambda", "iters", "relaxations"
    );
    for alg in Algorithm::ALL {
        let start = std::time::Instant::now();
        match alg.solve_lambda_only_opts(&g, &opts) {
            Err(SolveError::Acyclic) => {
                println!("{:<14} graph is acyclic", alg.name());
                break;
            }
            // A bounded bench records the miss and keeps sweeping.
            Err(e) => println!("{:<14} {e}", alg.name()),
            Ok((lambda, counters)) => {
                println!(
                    "{:<14} {:>12} {:>14} {:>9} {:>12}",
                    alg.name(),
                    format!("{:.3?}", start.elapsed()),
                    lambda.to_string(),
                    counters.iterations,
                    counters.relaxations
                );
            }
        }
    }
    Ok(())
}

const USAGE: &str =
    "usage: mcr <solve|dynamic|gen|client|dot|bench> ...  (see crate docs for flags)";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(&raw);
    let obs_req = ObsRequest::from_args(&args);
    let result = match args.positional.first().map(|s| s.as_str()) {
        Some("solve") => with_obs(&obs_req, || cmd_solve(&args)),
        Some("dynamic") => with_obs(&obs_req, || cmd_dynamic(&args)),
        Some("gen") => cmd_gen(&args).map_err(CliError::from),
        Some("client") => cmd_client(&args).map_err(CliError::from),
        Some("dot") => cmd_dot(&args).map_err(CliError::from),
        Some("bench") => with_obs(&obs_req, || cmd_bench(&args)),
        _ => Err(CliError::from(USAGE.to_string())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mcr: {}", e.message);
            ExitCode::from(e.status.code())
        }
    }
}
