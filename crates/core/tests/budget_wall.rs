//! Wall-clock budget regression: the adaptive poll stride in
//! [`BudgetScope::check_time`] must keep deadline detection tight. A
//! 50 ms wall budget on a large SPRAND instance has to come back well
//! within the same order of magnitude — the target is ~2× the
//! deadline; the assertion is deliberately looser (10×) so slow CI
//! machines and debug builds cannot flake it, while still catching a
//! stride runaway (which would overshoot by seconds).

use mcr_core::{Algorithm, Budget, BudgetResource, FallbackChain, SolveError, SolveOptions};
use mcr_gen::sprand::{sprand, SprandConfig};
use std::time::{Duration, Instant};

#[test]
fn a_50ms_wall_budget_returns_promptly_on_a_large_instance() {
    // Big enough that Karp2's Θ(nm) sweep cannot finish in 50 ms even
    // on a fast machine, small enough to generate instantly.
    let g = sprand(
        &SprandConfig::new(20_000, 60_000)
            .seed(99)
            .weight_range(-1_000, 1_000),
    );
    let budget = Budget::default().wall_time(Duration::from_millis(50));
    let opts = SolveOptions::new()
        .budget(budget)
        .fallback(FallbackChain::NONE);

    let start = Instant::now();
    let result = Algorithm::Karp2.solve_with_options(&g, &opts);
    let elapsed = start.elapsed();

    match result {
        Err(SolveError::BudgetExhausted { resource, .. }) => {
            assert_eq!(resource, BudgetResource::WallTime);
        }
        Err(other) => panic!("expected wall-time exhaustion, got {other}"),
        Ok(_) => panic!("20k-node Karp2 cannot finish within 50 ms"),
    }
    assert!(
        elapsed < Duration::from_millis(500),
        "deadline overshoot: 50 ms budget took {elapsed:?} to return \
         (adaptive poll stride regression)"
    );
}

#[test]
fn unlimited_solves_are_not_throttled_by_the_poll_stride() {
    // The adaptive stride exists so that wall-budgeted solves do not
    // read the clock every iteration; an *unbudgeted* solve must not
    // read it at all and just run to completion.
    let g = sprand(
        &SprandConfig::new(400, 1_200)
            .seed(3)
            .weight_range(-50, 50),
    );
    let sol = Algorithm::HowardExact
        .solve_with_options(&g, &SolveOptions::default())
        .expect("cyclic");
    let budgeted = Algorithm::HowardExact
        .solve_with_options(
            &g,
            &SolveOptions::new().budget(Budget::default().wall_time(Duration::from_secs(3600))),
        )
        .expect("one hour is plenty");
    assert_eq!(sol.lambda, budgeted.lambda);
    assert_eq!(sol.cycle, budgeted.cycle);
    assert_eq!(sol.counters, budgeted.counters, "budget polling must not change the work done");
}
