//! The brace-tree item parser: the middle layer of the analysis
//! engine.
//!
//! Works over the rule-facing token stream from [`crate::scan`] and
//! recovers the item structure the symbol-graph rules need — every
//! `fn` (including nested ones and `impl` methods) with its parameter
//! list and body as token ranges, and every `enum` with its variant
//! names. It is not a grammar-complete parser: it balances the three
//! bracket kinds plus generics and leaves everything else to the
//! token level, which is exactly enough for a workspace whose style is
//! pinned by rustfmt and the other lint rules.

use crate::scan::{Scanned, TokKind, Token};

/// A `fn` item. Ranges are inclusive token indexes into the scanned
/// stream.
#[derive(Clone, Debug)]
pub struct FnItem {
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// `(` .. `)` of the parameter list.
    pub params: (usize, usize),
    /// `{` .. `}` of the body; `None` for bodiless trait methods.
    pub body: Option<(usize, usize)>,
    /// Whether the `fn` keyword sits inside a `#[cfg(test)]` span.
    pub is_test: bool,
    /// The `impl` block's self type (`impl Journal` → `Journal`,
    /// `impl Display for Journal` → `Journal`); `None` for free fns.
    pub owner: Option<String>,
}

/// An `enum` item with its variant names in declaration order.
#[derive(Clone, Debug)]
pub struct EnumItem {
    pub name: String,
    pub line: u32,
    pub variants: Vec<String>,
    /// `{` .. `}` of the variant block.
    pub body: (usize, usize),
}

/// The item tree of one file (flattened: nested fns appear after their
/// parents in token order).
#[derive(Clone, Debug, Default)]
pub struct Tree {
    pub fns: Vec<FnItem>,
    pub enums: Vec<EnumItem>,
}

/// Index of the token matching the opener at `at` (same nesting level),
/// e.g. the `}` closing a `{`.
pub fn matching(toks: &[Token], at: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(at) {
        if t.text == open {
            depth += 1;
        } else if t.text == close {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Skips a generics block starting at `<`, returning the index just
/// past the matching `>`. `->` and `=>` arrive as single tokens, so
/// plain `<`/`>` counting is sound inside a type position.
fn skip_generics(toks: &[Token], at: usize) -> usize {
    let mut depth = 0usize;
    let mut k = at;
    while k < toks.len() {
        match toks[k].text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
        k += 1;
    }
    k
}

/// Parses the item tree of a scanned file.
pub fn parse(s: &Scanned) -> Tree {
    let toks = &s.tokens;
    let mut tree = Tree::default();
    // (owner, brace range) of every `impl` block, for fn ownership.
    let mut impls: Vec<(String, usize, usize)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" => {
                let Some(bopen) = (i + 1..toks.len()).find(|&p| toks[p].text == "{") else {
                    break;
                };
                let Some(bclose) = matching(toks, bopen, "{", "}") else {
                    break;
                };
                if let Some(owner) = impl_owner(toks, i + 1, bopen) {
                    impls.push((owner, bopen, bclose));
                }
                // Descend: the block's fns are parsed by this loop.
                i = bopen + 1;
            }
            // `fn name` — `fn(..)` pointer types have no name ident.
            "fn" => {
                let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
                    i += 1;
                    continue;
                };
                let mut k = i + 2;
                if toks.get(k).is_some_and(|g| g.text == "<") {
                    k = skip_generics(toks, k);
                }
                let Some(popen) = (k..toks.len()).find(|&p| toks[p].text == "(") else {
                    break;
                };
                let Some(pclose) = matching(toks, popen, "(", ")") else {
                    break;
                };
                // Return type / where clause run to the body `{` or a
                // trait declaration's `;`.
                let after =
                    (pclose + 1..toks.len()).find(|&p| toks[p].text == "{" || toks[p].text == ";");
                let body = match after {
                    Some(p) if toks[p].text == "{" => matching(toks, p, "{", "}").map(|c| (p, c)),
                    _ => None,
                };
                // Innermost enclosing impl block, if any.
                let owner = impls
                    .iter()
                    .rev()
                    .find(|(_, bo, bc)| *bo < i && i < *bc)
                    .map(|(o, _, _)| o.clone());
                tree.fns.push(FnItem {
                    name: name.text.clone(),
                    line: t.line,
                    params: (popen, pclose),
                    body,
                    is_test: s.is_test_line(t.line),
                    owner,
                });
                // Continue *inside* the signature/body so nested fns
                // and methods are collected too.
                i += 2;
            }
            "enum" => {
                let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
                    i += 1;
                    continue;
                };
                let Some(bopen) = (i + 2..toks.len()).find(|&p| toks[p].text == "{") else {
                    break;
                };
                let Some(bclose) = matching(toks, bopen, "{", "}") else {
                    break;
                };
                tree.enums.push(EnumItem {
                    name: name.text.clone(),
                    line: t.line,
                    variants: parse_variants(toks, bopen, bclose),
                    body: (bopen, bclose),
                });
                i = bopen + 1;
            }
            _ => i += 1,
        }
    }
    tree
}

/// The self type of an `impl` header (tokens between `impl` and the
/// opening `{`): the first type ident after `for` when present
/// (`impl Display for Journal`), else the first type ident after the
/// optional generics (`impl<T> Ring<T>` → `Ring`).
fn impl_owner(toks: &[Token], start: usize, bopen: usize) -> Option<String> {
    let mut k = start;
    if toks.get(k).is_some_and(|t| t.text == "<") {
        k = skip_generics(toks, k);
    }
    if let Some(f) = (k..bopen).find(|&p| toks[p].kind == TokKind::Ident && toks[p].text == "for") {
        k = f + 1;
    }
    toks[k..bopen]
        .iter()
        .find(|t| t.kind == TokKind::Ident && !matches!(t.text.as_str(), "mut" | "dyn"))
        .map(|t| t.text.clone())
}

/// Variant names: at depth 1 inside the enum braces, the first
/// identifier after `{` or a depth-1 `,`, attributes skipped.
fn parse_variants(toks: &[Token], bopen: usize, bclose: usize) -> Vec<String> {
    let mut variants = Vec::new();
    let mut depth = 0usize;
    let mut expect_name = false;
    let mut k = bopen;
    while k <= bclose {
        let text = toks[k].text.as_str();
        match text {
            "{" | "(" | "[" => {
                depth += 1;
                if depth == 1 && text == "{" {
                    expect_name = true;
                }
            }
            "}" | ")" | "]" => depth -= 1,
            "," if depth == 1 => expect_name = true,
            "#" if depth == 1 && expect_name => {
                // Variant attribute: skip the `[...]` group.
                if toks.get(k + 1).is_some_and(|t| t.text == "[") {
                    if let Some(close) = matching(toks, k + 1, "[", "]") {
                        k = close;
                    }
                }
            }
            _ => {
                if expect_name && depth == 1 && toks[k].kind == TokKind::Ident {
                    variants.push(toks[k].text.clone());
                    expect_name = false;
                }
            }
        }
        k += 1;
    }
    variants
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    #[test]
    fn fns_with_generics_and_nesting() {
        let src = "fn outer<T: Fn(usize) -> bool>(x: T) -> usize {\n\
                   fn inner(y: u32) -> u32 { y }\n\
                   inner(1) as usize\n}\n";
        let s = scan(src);
        let tree = parse(&s);
        let names: Vec<&str> = tree.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
        assert_eq!(tree.fns[0].line, 1);
        assert_eq!(tree.fns[1].line, 2);
        // outer's params are `(x: T)`, not the `(usize)` in the bound.
        let (po, pc) = tree.fns[0].params;
        let texts: Vec<&str> = s.tokens[po..=pc].iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["(", "x", ":", "T", ")"]);
        // outer's body encloses inner's.
        let (bo, bc) = tree.fns[0].body.expect("outer body");
        let (io, ic) = tree.fns[1].body.expect("inner body");
        assert!(bo < io && ic < bc);
    }

    #[test]
    fn trait_methods_without_bodies() {
        let s = scan("trait T { fn a(&self) -> u32; fn b(&self) { } }");
        let tree = parse(&s);
        assert_eq!(tree.fns.len(), 2);
        assert!(tree.fns[0].body.is_none());
        assert!(tree.fns[1].body.is_some());
    }

    #[test]
    fn enum_variants_with_payloads_and_attrs() {
        let src = "pub enum E {\n\
                   A,\n\
                   #[allow(dead_code)]\n\
                   B(u32, String),\n\
                   C { x: f64 },\n\
                   D = 4,\n}\n";
        let s = scan(src);
        let tree = parse(&s);
        assert_eq!(tree.enums.len(), 1);
        assert_eq!(tree.enums[0].name, "E");
        assert_eq!(tree.enums[0].variants, ["A", "B", "C", "D"]);
    }

    #[test]
    fn impl_owners_are_attached() {
        let src = "fn free() {}\n\
                   impl Journal { fn append(&self) {} }\n\
                   impl<T> Ring<T> { fn push(&mut self, t: T) {} }\n\
                   impl fmt::Display for SolveStatus { fn fmt(&self) {} }\n";
        let s = scan(src);
        let tree = parse(&s);
        let owners: Vec<(&str, Option<&str>)> = tree
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref()))
            .collect();
        assert_eq!(
            owners,
            [
                ("free", None),
                ("append", Some("Journal")),
                ("push", Some("Ring")),
                ("fmt", Some("SolveStatus")),
            ]
        );
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod t {\n fn helper() {}\n}\n";
        let s = scan(src);
        let tree = parse(&s);
        assert!(!tree.fns[0].is_test);
        assert!(tree.fns[1].is_test);
    }
}
