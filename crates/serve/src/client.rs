//! The batch clients behind `mcr client`.
//!
//! Two paths share the framing and accounting:
//!
//! * [`replay`] / [`replay_with`] — the single-endpoint pipelined
//!   client: every request goes down one connection, responses are
//!   matched by id, and `overloaded` sheds are retried through a
//!   bounded [`RetryPolicy`] honoring the daemon's `retry_after_ms`
//!   hint. Transport errors remain fatal here — with one endpoint
//!   there is nowhere to fail over to.
//! * [`fleet_replay`] — the fleet client: routes each request to its
//!   [`ShardMap`] primary, keeps a per-shard [`CircuitBreaker`], and on
//!   connect/timeout/torn-frame failures fails over to the next shard
//!   in the ring, re-sending with `"dedup":true` so a shard that
//!   already settled the id replays its journaled outcome instead of
//!   solving twice. Every request settles exactly one response at the
//!   client: a real one, a deduped one, or (attempts exhausted) a
//!   synthesized typed `overloaded`.
//!
//! The process-level contract (used by the CI serve stages): the client
//! succeeds iff every request got *some* response — per-request
//! failures are data, not transport errors.

// The client talks to a network peer; every failure must be a typed
// report, not a panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

use crate::chaos;
use crate::frame;
use crate::json::{self, Value};
use crate::protocol;
use crate::retry::{CircuitBreaker, RetryPolicy};
use crate::shard::ShardMap;
use mcr_core::SolveStatus;
use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// How long the client waits for any single response frame before
/// declaring the daemon unresponsive.
pub const RESPONSE_TIMEOUT: Duration = Duration::from_secs(30);

/// What a replay run observed, for the caller's summary line.
#[derive(Debug, Default)]
pub struct ClientReport {
    /// Requests sent.
    pub sent: usize,
    /// Responses received (== `sent` unless `--no-wait`).
    pub received: usize,
    /// Re-sends after an `overloaded` shed (bounded by the policy).
    pub retries: usize,
    /// Response counts by wire status name, sorted by name.
    pub by_status: Vec<(String, usize)>,
}

fn transport<E: std::fmt::Display>(stage: &str) -> impl FnOnce(E) -> String + '_ {
    move |e| format!("{stage}: {e}")
}

/// The request line's `id`, when it has a parseable one.
fn request_id(line: &str) -> Option<u64> {
    json::parse(line).ok()?.get("id").and_then(Value::as_u64)
}

/// The premature-close diagnostic suffix. `pending` is a BTreeMap, so
/// the listed ids are in ascending order — the error text for a given
/// failure is identical on every run, at any hasher seed.
fn unanswered_suffix(pending: &BTreeMap<u64, (&str, u32)>) -> String {
    if pending.is_empty() {
        return String::new();
    }
    let ids: Vec<String> = pending.keys().map(u64::to_string).collect();
    format!(" (unanswered ids: {})", ids.join(", "))
}

/// [`replay_with`] under the default timeout and retry policy.
pub fn replay(
    addr: &str,
    lines: &[String],
    no_wait: bool,
    out: &mut dyn Write,
) -> Result<ClientReport, String> {
    replay_with(
        addr,
        lines,
        no_wait,
        RESPONSE_TIMEOUT,
        &RetryPolicy::default(),
        out,
    )
}

/// Sends every request line to `addr` and (unless `no_wait`) settles
/// one response per request, writing each response line to `out`.
/// `overloaded` sheds are retried with backoff (the daemon's
/// `retry_after_ms` hint is a floor) up to `retry.max_attempts` sends;
/// an exhausted request keeps its last `overloaded` response as final.
///
/// `no_wait` exists for crash testing: it admits work and returns
/// without waiting for solves, so the caller can `kill -9` the daemon
/// with the queue provably non-empty.
pub fn replay_with(
    addr: &str,
    lines: &[String],
    no_wait: bool,
    timeout: Duration,
    retry: &RetryPolicy,
    out: &mut dyn Write,
) -> Result<ClientReport, String> {
    let stream = TcpStream::connect(addr).map_err(transport("connect"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(transport("set timeout"))?;
    // Frames are small and latency-bound; never wait out Nagle.
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().map_err(transport("clone stream"))?;
    let mut report = ClientReport::default();
    // id → (request line, sends so far), for the overloaded-retry path.
    // BTreeMap so the ids listed by the premature-close error below are
    // in one stable order at any hasher seed (lint MCRL010).
    let mut pending: BTreeMap<u64, (&str, u32)> = BTreeMap::new();
    let mut outstanding = 0usize;
    for line in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Every send — initial or re-send — is one bounded
        // RetryPolicy attempt; max_attempts caps the loop below.
        if !retry.attempt_allowed(0) {
            continue;
        }
        chaos::pulse("serve.client.frame");
        frame::write_frame(&mut writer, line.as_bytes()).map_err(transport("send request"))?;
        report.sent += 1;
        outstanding += 1;
        if let Some(id) = request_id(line) {
            pending.insert(id, (line, 1));
        }
    }
    if no_wait {
        return Ok(report);
    }
    let mut reader = BufReader::new(stream);
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    while outstanding > 0 {
        let payload = frame::read_frame(&mut reader)
            .map_err(transport("read response"))?
            .ok_or_else(|| {
                format!(
                    "daemon closed the connection after {} of {} responses{}",
                    report.received,
                    report.sent,
                    unanswered_suffix(&pending)
                )
            })?;
        let text = String::from_utf8(payload).map_err(transport("decode response"))?;
        let parsed = json::parse(&text).ok();
        let status = parsed
            .as_ref()
            .and_then(|v| v.get("status").and_then(Value::as_str))
            .unwrap_or("unparseable")
            .to_string();
        let id = parsed.as_ref().and_then(|v| v.get("id").and_then(Value::as_u64));
        // An overloaded response means the request was shed, not
        // solved: re-send the same line after the hinted backoff.
        if status == "overloaded" {
            if let Some((line, sends)) = id.and_then(|id| pending.get(&id).copied()) {
                if retry.attempt_allowed(sends) {
                    let hint = parsed
                        .as_ref()
                        .and_then(|v| v.get("retry_after_ms").and_then(Value::as_u64));
                    std::thread::sleep(retry.backoff(sends - 1, id.unwrap_or(0), hint));
                    chaos::pulse("serve.client.frame");
                    frame::write_frame(&mut writer, line.as_bytes())
                        .map_err(transport("resend request"))?;
                    if let Some(id) = id {
                        pending.insert(id, (line, sends + 1));
                    }
                    report.retries += 1;
                    continue;
                }
            }
        }
        if let Some(id) = id {
            pending.remove(&id);
        }
        *counts.entry(status).or_insert(0) += 1;
        writeln!(out, "{text}").map_err(transport("write output"))?;
        report.received += 1;
        outstanding -= 1;
    }
    report.by_status = counts.into_iter().collect();
    Ok(report)
}

/// Sends a single `ping`, `metrics`, or `shutdown` request (id 1) and
/// prints the response. For `metrics` the embedded JSONL dump is
/// unwrapped so the output is directly `mcr-metrics v1`.
pub fn one_op(addr: &str, op: &str, out: &mut dyn Write) -> Result<(), String> {
    one_op_with(addr, op, RESPONSE_TIMEOUT, out)
}

/// [`one_op`] with an explicit response timeout.
pub fn one_op_with(
    addr: &str,
    op: &str,
    timeout: Duration,
    out: &mut dyn Write,
) -> Result<(), String> {
    if !matches!(op, "ping" | "metrics" | "shutdown") {
        return Err(format!("unknown op {op:?} (ping|metrics|shutdown)"));
    }
    let request = json::ObjWriter::new()
        .str("schema", crate::protocol::REQ_SCHEMA)
        .u64("id", 1)
        .str("op", op)
        .finish();
    let stream = TcpStream::connect(addr).map_err(transport("connect"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(transport("set timeout"))?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().map_err(transport("clone stream"))?;
    chaos::pulse("serve.client.frame");
    frame::write_frame(&mut writer, request.as_bytes()).map_err(transport("send request"))?;
    let mut reader = BufReader::new(stream);
    let payload = frame::read_frame(&mut reader)
        .map_err(transport("read response"))?
        .ok_or_else(|| "daemon closed the connection without responding".to_string())?;
    let text = String::from_utf8(payload).map_err(transport("decode response"))?;
    if op == "metrics" {
        if let Ok(v) = json::parse(&text) {
            if let Some(dump) = v.get("metrics").and_then(Value::as_str) {
                write!(out, "{dump}").map_err(transport("write output"))?;
                return Ok(());
            }
        }
    }
    writeln!(out, "{text}").map_err(transport("write output"))?;
    Ok(())
}

/// How the fleet client is wired.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The shard ring.
    pub shards: ShardMap,
    /// Bounded retry/backoff schedule (shared across shards).
    pub retry: RetryPolicy,
    /// Consecutive connect/timeout failures before a shard's breaker
    /// opens.
    pub breaker_threshold: u32,
    /// How long an open breaker refuses a shard before probing.
    pub breaker_cooldown: Duration,
    /// Per-response read timeout (also the failover detection latency
    /// for a hung shard — keep it well under [`RESPONSE_TIMEOUT`] when
    /// the ring has somewhere to fail over to).
    pub response_timeout: Duration,
}

impl FleetConfig {
    /// Defaults around a shard ring: 4 bounded attempts, breakers open
    /// after 3 consecutive failures and probe after 500 ms.
    pub fn new(shards: ShardMap) -> FleetConfig {
        FleetConfig {
            shards,
            retry: RetryPolicy::default(),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(500),
            response_timeout: RESPONSE_TIMEOUT,
        }
    }
}

/// What a fleet replay observed.
#[derive(Debug, Default)]
pub struct FleetReport {
    /// Requests taken from the log.
    pub sent: usize,
    /// Requests settled with exactly one final response each.
    pub settled: usize,
    /// Response counts by wire status name, sorted by name.
    pub by_status: Vec<(String, usize)>,
    /// Attempts beyond each request's first (retries + failover sends).
    pub retries: usize,
    /// Attempts that moved off a request's current shard after a
    /// transport failure.
    pub failovers: usize,
    /// Circuit-breaker open transitions across all shards.
    pub breaker_opens: u64,
    /// Responses answered from a shard's journal (`"deduped":true`).
    pub deduped: usize,
}

/// One shard's persistent connection.
struct ShardConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn connect_shard(endpoint: &str, timeout: Duration) -> std::io::Result<ShardConn> {
    let stream = TcpStream::connect(endpoint)?;
    stream.set_read_timeout(Some(timeout))?;
    // One request in flight per shard: a Nagle-delayed frame would put
    // a ~40 ms floor under every settle, so send eagerly.
    stream.set_nodelay(true)?;
    let writer = stream.try_clone()?;
    Ok(ShardConn {
        reader: BufReader::new(stream),
        writer,
    })
}

/// Splices `"dedup":true` into a request line for a re-send whose
/// previous write may have reached a daemon.
fn with_dedup(line: &str) -> String {
    match line.strip_suffix('}') {
        Some(head) => format!("{head},\"dedup\":true}}"),
        // Not a JSON object — send as-is; the daemon rejects it typed.
        None => line.to_string(),
    }
}

/// Replays a request log across the shard ring. Requests are settled
/// sequentially: each is routed to its graph-hash primary, failed over
/// along the ring on transport errors (with `"dedup":true` once a
/// write may have been delivered), and retried with backoff on
/// `overloaded` sheds — all bounded by `cfg.retry.max_attempts`, after
/// which a typed `overloaded` response is synthesized so the caller
/// still sees exactly one response per request.
pub fn fleet_replay(
    cfg: &FleetConfig,
    lines: &[String],
    out: &mut dyn Write,
) -> Result<FleetReport, String> {
    let n = cfg.shards.len();
    let mut conns: Vec<Option<ShardConn>> = (0..n).map(|_| None).collect();
    let mut breakers: Vec<CircuitBreaker> = (0..n)
        .map(|_| CircuitBreaker::new(cfg.breaker_threshold, cfg.breaker_cooldown))
        .collect();
    let mut report = FleetReport::default();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        report.sent += 1;
        let text = settle_one(cfg, line, &mut conns, &mut breakers, &mut report);
        let status = json::parse(&text)
            .ok()
            .and_then(|v| v.get("status").and_then(Value::as_str).map(String::from))
            .unwrap_or_else(|| "unparseable".to_string());
        *counts.entry(status).or_insert(0) += 1;
        writeln!(out, "{text}").map_err(transport("write output"))?;
        report.settled += 1;
    }
    report.breaker_opens = breakers.iter().map(CircuitBreaker::opens).sum();
    report.by_status = counts.into_iter().collect();
    Ok(report)
}

/// Settles one request against the ring: returns its final response
/// line (real, deduped, or synthesized after exhausting attempts).
fn settle_one(
    cfg: &FleetConfig,
    line: &str,
    conns: &mut [Option<ShardConn>],
    breakers: &mut [CircuitBreaker],
    report: &mut FleetReport,
) -> String {
    let hash = ShardMap::routing_hash(line);
    let id = request_id(line).unwrap_or(0);
    let ring: Vec<usize> = cfg.shards.ring(hash).collect();
    // Ring position to try next; advanced on transport failures so
    // failover is deterministic (next shard, then the one after).
    let mut position = 0usize;
    // Once a write may have reached a daemon, every further send
    // carries the dedup flag.
    let mut resent = false;
    let mut attempt = 0u32;
    // Bounded by RetryPolicy::max_attempts; every iteration is one
    // send attempt against one shard.
    while cfg.retry.attempt_allowed(attempt) {
        if attempt > 0 {
            report.retries += 1;
        }
        let now = Instant::now();
        let chosen = (0..ring.len())
            .map(|k| ring[(position + k) % ring.len()])
            .find(|&shard| breakers[shard].allow(now));
        let Some(shard) = chosen else {
            // Every breaker is open: wait out the shortest cooldown.
            std::thread::sleep(cfg.retry.backoff(attempt, hash, None));
            attempt += 1;
            continue;
        };
        let fail_over = |position: &mut usize, report: &mut FleetReport| {
            *position += 1;
            report.failovers += 1;
        };
        if conns[shard].is_none() {
            match connect_shard(cfg.shards.endpoint(shard), cfg.response_timeout) {
                Ok(conn) => conns[shard] = Some(conn),
                Err(_) => {
                    breakers[shard].record_failure(Instant::now());
                    fail_over(&mut position, report);
                    attempt += 1;
                    continue;
                }
            }
        }
        let payload = if resent { with_dedup(line) } else { line.to_string() };
        chaos::pulse("serve.client.frame");
        let sent = match conns[shard].as_mut() {
            Some(conn) => frame::write_frame(&mut conn.writer, payload.as_bytes()).is_ok(),
            None => false,
        };
        if !sent {
            conns[shard] = None;
            breakers[shard].record_failure(Instant::now());
            resent = true;
            fail_over(&mut position, report);
            attempt += 1;
            continue;
        }
        resent = true;
        let response = match conns[shard].as_mut() {
            Some(conn) => match frame::read_frame(&mut conn.reader) {
                Ok(Some(payload)) => String::from_utf8(payload).ok(),
                // Clean EOF, torn frame, stalled read past the timeout,
                // mid-frame reset: all one typed transport failure.
                Ok(None) | Err(_) => None,
            },
            None => None,
        };
        let Some(text) = response else {
            conns[shard] = None;
            breakers[shard].record_failure(Instant::now());
            fail_over(&mut position, report);
            attempt += 1;
            continue;
        };
        let parsed = json::parse(&text).ok();
        let resp_id = parsed.as_ref().and_then(|v| v.get("id").and_then(Value::as_u64));
        if resp_id != Some(id) {
            // A frame out of phase (e.g. a late answer to a request this
            // client already failed over): drop the connection so the
            // stream re-synchronizes, and try again.
            conns[shard] = None;
            breakers[shard].record_failure(Instant::now());
            fail_over(&mut position, report);
            attempt += 1;
            continue;
        }
        breakers[shard].record_success();
        let status = parsed
            .as_ref()
            .and_then(|v| v.get("status").and_then(Value::as_str))
            .unwrap_or("unparseable");
        if status == "overloaded" && cfg.retry.attempt_allowed(attempt + 1) {
            // Shed, not solved. Back off honoring the daemon's hint.
            // Only move off the shard when this request has never been
            // delivered anywhere: after a dedup re-send the shard
            // holding the original in flight is the one to wait on.
            let hint = parsed
                .as_ref()
                .and_then(|v| v.get("retry_after_ms").and_then(Value::as_u64));
            std::thread::sleep(cfg.retry.backoff(attempt, hash ^ id, hint));
            attempt += 1;
            continue;
        }
        if parsed
            .as_ref()
            .and_then(|v| v.get("deduped").and_then(Value::as_bool))
            == Some(true)
        {
            report.deduped += 1;
        }
        return text;
    }
    // Attempts exhausted: the caller still gets exactly one response.
    protocol::resp_error(
        id,
        SolveStatus::Overloaded,
        "fleet: retry attempts exhausted",
        None,
    )
}

/// Broadcasts one `ping`/`metrics`/`shutdown` op to every shard,
/// writing each shard's response under a `# shard` header. Succeeds if
/// at least one shard answered (a drill legitimately ops a ring with a
/// dead member).
pub fn fleet_one_op(cfg: &FleetConfig, op: &str, out: &mut dyn Write) -> Result<(), String> {
    let mut failed = 0usize;
    for i in 0..cfg.shards.len() {
        let endpoint = cfg.shards.endpoint(i);
        writeln!(out, "# shard {i} {endpoint}").map_err(transport("write output"))?;
        if let Err(e) = one_op_with(endpoint, op, cfg.response_timeout, out) {
            writeln!(out, "# shard {i} unreachable: {e}").map_err(transport("write output"))?;
            failed += 1;
        }
    }
    if failed == cfg.shards.len() {
        return Err(format!("all {failed} shards unreachable"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_splice_lands_inside_the_object() {
        assert_eq!(
            with_dedup("{\"id\":3,\"op\":\"solve\"}"),
            "{\"id\":3,\"op\":\"solve\",\"dedup\":true}"
        );
        assert_eq!(with_dedup("not json"), "not json");
        let spliced = with_dedup("{\"id\":3,\"op\":\"solve\"}");
        let v = json::parse(&spliced).expect("spliced line stays JSON");
        assert_eq!(v.get("dedup").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn request_id_parses_and_tolerates_junk() {
        assert_eq!(request_id("{\"id\":42,\"op\":\"ping\"}"), Some(42));
        assert_eq!(request_id("{\"op\":\"ping\"}"), None);
        assert_eq!(request_id("garbage"), None);
    }

    #[test]
    fn unanswered_ids_are_listed_in_ascending_order() {
        let mut pending: BTreeMap<u64, (&str, u32)> = BTreeMap::new();
        for id in [27, 3, 9] {
            pending.insert(id, ("line", 1));
        }
        assert_eq!(unanswered_suffix(&pending), " (unanswered ids: 3, 9, 27)");
        pending.clear();
        assert_eq!(unanswered_suffix(&pending), "");
    }
}
