//! HO: the Hartmann–Orlin early-termination variant of Karp's algorithm.
//!
//! HO keeps Karp's recurrence intact but tries to stop long before level
//! `n`: "many of the shortest paths computed by Karp's algorithm will
//! contain cycles; if one of these cycles is critical, then the minimum
//! cycle mean is found" (§2.2). At each level the walk realizing the
//! smallest `D_k` value is inspected for a cycle; whenever the best
//! cycle mean found so far improves, a criticality check — building node
//! potentials from the partial `D` table and verifying the LP
//! feasibility `d(v) − d(u) ≤ w(u,v) − λ` on every arc — either proves
//! the candidate optimal (terminate with the level `k` recorded as the
//! "iteration count" of §4.3) or the recurrence continues. If level `n`
//! is reached, Karp's formula decides as usual, so the algorithm is
//! always exact.

use super::karp::{karp_formula, INF};
use crate::budget::BudgetScope;
use crate::driver::SccOutcome;
use crate::error::SolveError;
use crate::instrument::Counters;
use crate::rational::Ratio64;
use crate::solution::Guarantee;
use mcr_graph::idx32;
use mcr_graph::{ArcId, Graph};

const NO_PARENT: u32 = u32::MAX;

/// Walks the parent chain of `(level, node)` down to level 0, returning
/// the first cycle found on it (in forward order), if any.
#[allow(clippy::too_many_arguments)] // internal helper over flat scratch arrays
fn cycle_on_walk(
    g: &Graph,
    parent: &[u32],
    n: usize,
    level: usize,
    node: usize,
    seen_at: &mut [u32],
    stamp_of: &mut [u32],
    stamp: u32,
) -> Option<Vec<ArcId>> {
    let mut v = node;
    let mut j = level;
    loop {
        if stamp_of[v] == stamp && seen_at[v] as usize > j {
            // v occurs at levels j and seen_at[v]: the arcs between are
            // a cycle. Re-walk from the higher occurrence to collect.
            let hi = seen_at[v] as usize;
            let mut arcs = Vec::with_capacity(hi - j);
            let mut x = v;
            let mut l = hi;
            while l > j {
                let a = ArcId::new(parent[l * n + x] as usize);
                arcs.push(a);
                x = g.source(a).index();
                l -= 1;
            }
            debug_assert_eq!(x, v);
            arcs.reverse();
            return Some(arcs);
        }
        stamp_of[v] = stamp;
        seen_at[v] = idx32(j);
        if j == 0 {
            return None;
        }
        let p = parent[j * n + v];
        if p == NO_PARENT {
            return None;
        }
        v = g.source(ArcId::new(p as usize)).index();
        j -= 1;
    }
}

/// Verifies that `mu` is the optimum by building potentials
/// `d(v) = min_j (D_j(v) − j·mu)` from the first `k+1` table rows and
/// checking LP feasibility on every arc.
fn criticality_check(g: &Graph, table: &[i64], k: usize, mu: Ratio64) -> bool {
    let n = g.num_nodes();
    let p = mu.numer() as i128;
    let q = mu.denom() as i128;
    const UNSET: i128 = i128::MAX / 4;
    let mut pot = vec![UNSET; n];
    for j in 0..=k {
        for v in 0..n {
            let d = table[j * n + v];
            if d < INF {
                let scaled = d as i128 * q - j as i128 * p;
                if scaled < pot[v] {
                    pot[v] = scaled;
                }
            }
        }
    }
    for a in g.arc_ids() {
        let u = g.source(a).index();
        let v = g.target(a).index();
        if pot[u] >= UNSET {
            continue; // vacuous: no walk reaches u yet
        }
        if pot[v] >= UNSET || pot[v] > pot[u] + g.weight(a) as i128 * q - p {
            return false;
        }
    }
    true
}

/// Runs HO, returning λ and the witness when one came out naturally
/// (early termination, or the best path cycle matching λ at level n).
fn run(
    g: &Graph,
    counters: &mut Counters,
    scope: &mut BudgetScope,
) -> Result<(Ratio64, Option<Vec<ArcId>>), SolveError> {
    let n = g.num_nodes();
    let m = g.num_arcs();
    let mut d = vec![INF; (n + 1) * n];
    let mut parent = vec![NO_PARENT; (n + 1) * n];
    d[0] = 0;

    let mut seen_at = vec![0u32; n];
    let mut stamp_of = vec![u32::MAX; n];
    let mut best_mu: Option<Ratio64> = None;
    let mut best_cycle: Vec<ArcId> = Vec::new();

    scope.loop_metrics("core.ho.level");
    for k in 1..=n {
        scope.tick_iteration_and_time()?;
        scope.chaos_check("core.ho.level")?;
        {
            let (prev_rows, cur_rows) = d.split_at_mut(k * n);
            let prev = &prev_rows[(k - 1) * n..];
            let cur = &mut cur_rows[..n];
            let par = &mut parent[k * n..(k + 1) * n];
            counters.arcs_visited += m as u64;
            for ai in 0..m {
                let a = ArcId::new(ai);
                let u = g.source(a).index();
                if prev[u] < INF {
                    counters.relaxations += 1;
                    let cand = prev[u] + g.weight(a);
                    let v = g.target(a).index();
                    if cand < cur[v] {
                        cur[v] = cand;
                        par[v] = idx32(ai);
                        counters.distance_updates += 1;
                    }
                }
            }
        }
        // Early termination attempt: inspect the walk realizing the
        // level's minimum D value.
        let cur = &d[k * n..(k + 1) * n];
        let vmin = match (0..n).filter(|&v| cur[v] < INF).min_by_key(|&v| cur[v]) {
            Some(v) => v,
            None => continue,
        };
        let mut improved = false;
        if let Some(cycle) =
            cycle_on_walk(g, &parent, n, k, vmin, &mut seen_at, &mut stamp_of, idx32(k))
        {
            counters.cycles_examined += 1;
            let w: i128 = cycle.iter().map(|&a| g.weight(a) as i128).sum();
            let mu = Ratio64::try_from_i128(w, cycle.len() as i128).ok_or(
                SolveError::Overflow {
                    context: "HO candidate cycle mean",
                },
            )?;
            if best_mu.is_none_or(|b| mu < b) {
                best_mu = Some(mu);
                best_cycle = cycle;
                improved = true;
            }
        }
        // Run the (relatively expensive) criticality check when the
        // candidate improves, and retry at power-of-two levels — the
        // first check can fail merely because distant nodes are still
        // unreached. O(lg n) retries keep the total overhead within
        // HO's O(n² + m·lg n) budget.
        // `iterations` accumulates (never assigns): per-component counts
        // must sum identically whether components share one counter
        // sink or merge from per-thread counters.
        if let Some(mu) = best_mu {
            if (improved || k.is_power_of_two()) && criticality_check(g, &d, k, mu) {
                counters.iterations += k as u64;
                return Ok((mu, Some(best_cycle)));
            }
        }
    }

    // No early exit: fall back to Karp's formula over the full table.
    counters.iterations += n as u64;
    let lambda = karp_formula(&d, n);
    if best_mu == Some(lambda) {
        Ok((lambda, Some(best_cycle)))
    } else {
        Ok((lambda, None))
    }
}

/// HO, λ only (the paper's measurement protocol).
pub(crate) fn lambda_scc(
    g: &Graph,
    counters: &mut Counters,
    scope: &mut BudgetScope,
) -> Result<Ratio64, SolveError> {
    Ok(run(g, counters, scope)?.0)
}

/// HO on one strongly connected, cyclic component.
pub(crate) fn solve_scc(
    g: &Graph,
    counters: &mut Counters,
    ws: &mut crate::workspace::Workspace,
    scope: &mut BudgetScope,
) -> Result<SccOutcome, SolveError> {
    let (lambda, witness) = run(g, counters, scope)?;
    let cycle = match witness {
        Some(c) => c,
        None => crate::critical::critical_cycle_ws(g, lambda, ws, scope)?,
    };
    Ok(SccOutcome {
        lambda,
        cycle,
        guarantee: Guarantee::Exact,
        solved_by: crate::Algorithm::Ho,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_graph::graph::from_arc_list;

    fn scope() -> BudgetScope {
        BudgetScope::unlimited(crate::Algorithm::Ho)
    }

    fn solve(g: &Graph, c: &mut Counters) -> SccOutcome {
        solve_scc(g, c, &mut crate::workspace::Workspace::new(), &mut scope()).expect("unlimited")
    }

    fn lambda_of(g: &Graph) -> Ratio64 {
        let mut c = Counters::new();
        solve(g, &mut c).lambda
    }

    #[test]
    fn matches_karp_on_random_graphs() {
        use mcr_gen::sprand::{sprand, SprandConfig};
        for seed in 0..40 {
            let g = sprand(&SprandConfig::new(12, 34).seed(seed).weight_range(-15, 15));
            let mut c = Counters::new();
            let karp = super::super::karp::solve_scc(
                &g,
                &mut c,
                &mut crate::workspace::Workspace::new(),
                &mut BudgetScope::unlimited(crate::Algorithm::Karp),
            )
            .expect("unlimited")
            .lambda;
            assert_eq!(lambda_of(&g), karp, "seed {seed}");
        }
    }

    #[test]
    fn terminates_early_on_small_diameter_graph() {
        // Complete digraph of weight 10 plus one cheap 2-cycle: every
        // node is reached by level 1 and the critical cycle shows up by
        // level 2, so HO certifies optimality at k << n. (On a bare
        // ring no early termination is possible: walks reach only one
        // new node per level.)
        let n = 30;
        let mut arcs: Vec<(usize, usize, i64)> = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    arcs.push((u, v, 10));
                }
            }
        }
        arcs.push((0, 1, 1));
        arcs.push((1, 0, 1));
        let g = from_arc_list(n, &arcs);
        let mut c = Counters::new();
        let s = solve(&g, &mut c);
        assert_eq!(s.lambda, Ratio64::from(1));
        assert!(c.iterations < 6, "iterations {}", c.iterations);
    }

    #[test]
    fn iteration_count_never_exceeds_n() {
        use mcr_gen::sprand::{sprand, SprandConfig};
        for seed in 0..10 {
            let g = sprand(&SprandConfig::new(20, 50).seed(seed));
            let mut c = Counters::new();
            solve(&g, &mut c);
            assert!(c.iterations <= 20);
        }
    }

    #[test]
    fn witness_cycle_is_valid_and_optimal() {
        use mcr_gen::sprand::{sprand, SprandConfig};
        for seed in 0..10 {
            let g = sprand(&SprandConfig::new(15, 45).seed(seed).weight_range(1, 30));
            let mut c = Counters::new();
            let s = solve(&g, &mut c);
            let (w, len, _) = crate::solution::check_cycle(&g, &s.cycle).expect("valid");
            assert_eq!(Ratio64::new(w, len as i64), s.lambda, "seed {seed}");
        }
    }

    #[test]
    fn one_level_budget_exhausts_instead_of_hanging() {
        let g = from_arc_list(4, &[(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4)]);
        let budget = crate::Budget::default().max_iterations(1);
        let mut s = BudgetScope::new(&budget, None, crate::Algorithm::Ho);
        let mut c = Counters::new();
        let err = solve_scc(&g, &mut c, &mut crate::workspace::Workspace::new(), &mut s)
            .expect_err("ring of 4 needs more than one level");
        assert!(matches!(err, SolveError::BudgetExhausted { .. }), "{err}");
    }
}
