//! EXP-4.3b — hunting Howard's anomalies.
//!
//! The paper notes "a few anomalies" in Howard's iteration counts
//! (§4.3) and its Table 2 shows one spectacular timing outlier (512
//! nodes, 1024 arcs: 6.75 s where neighboring cells take 0.2 s). This
//! harness sweeps many seeds per grid point and reports the
//! distribution of Howard's iteration counts — minimum, mean, maximum,
//! and the outlier ratio max/mean — for both the paper's Figure-1
//! variant and the exact variant. The conjecture the paper cites
//! (Cochet-Terrasson et al.) is O(lg n) iterations on average.
//!
//! `cargo run -p mcr-bench --release --bin howard_anomaly [--full] [--seeds k]`

use mcr_bench::{print_table, HarnessConfig};
use mcr_core::Algorithm;

fn main() {
    let mut cfg = HarnessConfig::from_args();
    if cfg.seeds < 10 {
        cfg.seeds = 25; // anomaly hunting needs a wide seed sweep
    }
    let header: Vec<String> = [
        "n",
        "m",
        "fig1 min",
        "fig1 mean",
        "fig1 max",
        "exact mean",
        "exact max",
        "max/mean",
        "lg n",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for &(n, m) in &cfg.grid {
        let mut fig1 = Vec::new();
        let mut exact = Vec::new();
        for seed in 0..cfg.seeds {
            let g = cfg.instance(n, m, seed);
            fig1.push(Algorithm::Howard.solve(&g).expect("cyclic").counters.iterations);
            exact.push(
                Algorithm::HowardExact
                    .solve(&g)
                    .expect("cyclic")
                    .counters
                    .iterations,
            );
        }
        let stats = |v: &[u64]| {
            let min = *v.iter().min().expect("nonempty");
            let max = *v.iter().max().expect("nonempty");
            let mean = v.iter().sum::<u64>() as f64 / v.len() as f64;
            (min, mean, max)
        };
        let (f_min, f_mean, f_max) = stats(&fig1);
        let (_, e_mean, e_max) = stats(&exact);
        rows.push(vec![
            n.to_string(),
            m.to_string(),
            f_min.to_string(),
            format!("{f_mean:.1}"),
            f_max.to_string(),
            format!("{e_mean:.1}"),
            e_max.to_string(),
            format!("{:.1}x", f_max as f64 / f_mean.max(1.0)),
            format!("{:.1}", (n as f64).log2()),
        ]);
        eprintln!("done n={n} m={m}");
    }
    println!(
        "EXP-4.3b: Howard iteration-count distribution over {} seeds",
        cfg.seeds
    );
    print_table(&header, &rows);
    println!("\nExpected shape (§4.3 + [6]): means within a small factor of lg n;");
    println!("occasional seeds spike well above the mean — the paper's anomalies.");
}
