//! Length-prefixed framing for the wire protocol.
//!
//! Every message — request or response — is one frame: a 4-byte
//! big-endian payload length followed by that many bytes of UTF-8
//! JSON. The length is capped at [`MAX_FRAME_LEN`] on both read and
//! write, so a corrupt or hostile peer cannot make the daemon allocate
//! unboundedly, and a response that would exceed the cap fails typed
//! instead of wedging the connection.

// Framing faces the network; it must fail typed, never panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

use crate::chaos;
use std::io::{self, Read, Write};

/// Hard cap on one frame's payload, read and write side both (8 MiB —
/// a ~100k-arc DIMACS instance is well under 2 MiB).
pub const MAX_FRAME_LEN: usize = 8 << 20;

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer
/// closed between frames); a close mid-frame is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // A clean EOF on the first header byte means the peer is done.
    let mut filled = 0usize;
    while filled < 4 {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame-header",
            ));
        }
        filled += n;
    }
    if chaos::fail_hit("serve.frame.read") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "injected frame-read fault",
        ));
    }
    // The peer vanishes after the header but before the payload — the
    // worst spot, because naive code would block forever here.
    if chaos::fail_hit("serve.net.disconnect") {
        return Err(io::Error::new(
            io::ErrorKind::ConnectionReset,
            "injected mid-frame disconnect",
        ));
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME_LEN}"),
        ));
    }
    // Delay faults here stall the read between header and payload;
    // read timeouts must bound the stall to a typed timeout error.
    chaos::pulse("serve.net.read_stall");
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Writes one frame and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame length {} exceeds cap {MAX_FRAME_LEN}",
                payload.len()
            ),
        ));
    }
    if chaos::fail_hit("serve.frame.write") {
        return Err(io::Error::new(
            io::ErrorKind::BrokenPipe,
            "injected frame-write fault",
        ));
    }
    let len = payload.len() as u32;
    // A torn frame: the header and half the payload reach the wire,
    // then the connection dies. The peer must surface a typed
    // mid-frame error, never parse the fragment as a message.
    if chaos::fail_hit("serve.net.torn_write") {
        let _ = w.write_all(&len.to_be_bytes());
        let _ = w.write_all(&payload[..payload.len() / 2]);
        let _ = w.flush();
        return Err(io::Error::new(
            io::ErrorKind::BrokenPipe,
            "injected torn frame write",
        ));
    }
    // A short write: only the header escapes before the failure —
    // distinct geometry from the torn write (the peer sees a length
    // and then EOF with zero payload bytes).
    if chaos::fail_hit("serve.net.short_write") {
        let _ = w.write_all(&len.to_be_bytes());
        let _ = w.flush();
        return Err(io::Error::new(
            io::ErrorKind::WriteZero,
            "injected short frame write",
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"a\":1}").expect("write");
        write_frame(&mut buf, b"").expect("write empty");
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).expect("read").as_deref(), Some(&b"{\"a\":1}"[..]));
        assert_eq!(read_frame(&mut r).expect("read").as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).expect("eof"), None);
    }

    #[test]
    fn oversized_header_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut r = &buf[..];
        let e = read_frame(&mut r).expect_err("cap enforced");
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_write_is_rejected() {
        let mut out = Vec::new();
        let big = vec![b'x'; MAX_FRAME_LEN + 1];
        assert!(write_frame(&mut out, &big).is_err());
        assert!(out.is_empty(), "nothing written for a rejected frame");
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_hang() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").expect("write");
        buf.truncate(buf.len() - 2);
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
        // And a close inside the header:
        let mut r = &[0u8, 0][..];
        assert!(read_frame(&mut r).is_err());
    }
}
