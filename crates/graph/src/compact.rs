//! The compact `u32` index domain and the one sanctioned narrowing
//! conversion into it.
//!
//! [`NodeId`](crate::NodeId) and [`ArcId`](crate::ArcId) are `u32`, and
//! [`GraphBuilder`](crate::GraphBuilder) refuses to grow past
//! [`MAX_INDEX`] nodes or arcs — so every index or count derived from a
//! built [`Graph`](crate::Graph) provably fits in `u32`. Hot paths that
//! pack such indices into `u32` scratch arrays convert through
//! [`idx32`] instead of a bare `as u32` cast: the bound is checked in
//! debug builds and documented here once, and `mcr-lint` rule MCRL004
//! rejects ad-hoc casts everywhere else.

/// Largest node/arc count a [`GraphBuilder`](crate::GraphBuilder)
/// accepts (`u32::MAX`); ids therefore lie in `0..MAX_INDEX`.
pub const MAX_INDEX: usize = u32::MAX as usize;

/// Converts an index or count from the graph's compact domain to `u32`.
///
/// The caller asserts, by using this function, that `i` was derived
/// from a built graph's node/arc indices or counts (all `< u32::MAX` by
/// the builder cap). Debug builds verify the bound.
#[inline]
pub fn idx32(i: usize) -> u32 {
    debug_assert!(i <= MAX_INDEX, "index {i} exceeds the compact u32 domain");
    // lint: allow(narrowing-cast) reason=bound proven by the GraphBuilder capacity cap; the one sanctioned narrowing site
    i as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx32_is_identity_on_the_domain() {
        assert_eq!(idx32(0), 0);
        assert_eq!(idx32(123_456), 123_456);
        assert_eq!(idx32(MAX_INDEX), u32::MAX);
    }
}
