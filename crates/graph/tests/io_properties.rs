//! Property-based tests of the DIMACS-style reader/writer: lossless
//! roundtrips for arbitrary graphs, and no panics on arbitrary junk.

use mcr_graph::io::{read_dimacs, to_dot, write_dimacs};
use mcr_graph::{Graph, GraphBuilder, NodeId};
use proptest::prelude::*;

fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (1usize..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, -1000i64..1000, 0i64..20), 0..120).prop_map(
            move |arcs| {
                let mut b = GraphBuilder::new();
                b.add_nodes(n);
                for (u, v, w, t) in arcs {
                    b.add_arc_with_transit(NodeId::new(u), NodeId::new(v), w, t);
                }
                b.build()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_is_lossless(g in arbitrary_graph()) {
        let mut buf = Vec::new();
        write_dimacs(&mut buf, &g).expect("write");
        let h = read_dimacs(&mut buf.as_slice()).expect("parse own output");
        prop_assert_eq!(g.num_nodes(), h.num_nodes());
        prop_assert_eq!(g.num_arcs(), h.num_arcs());
        for a in g.arc_ids() {
            prop_assert_eq!(g.source(a), h.source(a));
            prop_assert_eq!(g.target(a), h.target(a));
            prop_assert_eq!(g.weight(a), h.weight(a));
            prop_assert_eq!(g.transit(a), h.transit(a));
        }
    }

    #[test]
    fn arbitrary_text_never_panics(text in ".{0,400}") {
        // Errors are fine; panics are not.
        let _ = read_dimacs(&mut text.as_bytes());
    }

    #[test]
    fn arbitrary_dimacs_like_lines_never_panic(
        lines in proptest::collection::vec(
            prop_oneof![
                Just("p mcr 5 3".to_string()),
                Just("c comment".to_string()),
                (0u32..8, 0u32..8, -50i64..50).prop_map(|(a, b, w)| format!("a {a} {b} {w}")),
                (0u32..8, 0u32..8, -50i64..50, -2i64..5)
                    .prop_map(|(a, b, w, t)| format!("a {a} {b} {w} {t}")),
                "[a-z ]{0,12}".prop_map(|s| s),
            ],
            0..20,
        )
    ) {
        let text = lines.join("\n");
        let _ = read_dimacs(&mut text.as_bytes());
    }

    #[test]
    fn dot_output_mentions_every_arc(g in arbitrary_graph()) {
        let dot = to_dot(&g, "test");
        prop_assert_eq!(dot.matches("->").count(), g.num_arcs());
        let header_ok = dot.starts_with("digraph test {");
        let footer_ok = dot.trim_end().ends_with('}');
        prop_assert!(header_ok && footer_ok);
    }
}
