//! Fleet resilience tests: the sharded client against real daemons.
//!
//! The centerpiece is the kill-drill: two shards, one `kill -9`ed
//! mid-replay, and every request must still settle exactly once with
//! its deterministic status. The victim runs with `--workers 0` so it
//! admits and journals but never solves — any `done` line in its
//! journal would be a duplicate solve, so "zero done lines" is the
//! machine-checkable no-duplicates proof.

use mcr_gen::requests::{request_log, RequestLogConfig};
use mcr_serve::client::{fleet_replay, FleetConfig};
use mcr_serve::json::{self, Value};
use mcr_serve::shard::ShardMap;
use mcr_serve::{serve, ServeConfig};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn log_lines(count: usize, seed: u64) -> Vec<String> {
    request_log(&RequestLogConfig::new(count).seed(seed))
        .lines()
        .map(String::from)
        .collect()
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mcr-serve-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir
}

fn by_status(report: &mcr_serve::client::FleetReport) -> BTreeMap<&str, usize> {
    report
        .by_status
        .iter()
        .map(|(s, n)| (s.as_str(), *n))
        .collect()
}

/// `done` entry ids in a shard's journal, in write order.
fn done_ids(journal_dir: &Path) -> Vec<u64> {
    let text = std::fs::read_to_string(journal_dir.join(mcr_serve::journal::JOURNAL_FILE))
        .unwrap_or_default();
    text.lines()
        .filter_map(|line| {
            let v = json::parse(line).ok()?;
            if v.get("kind").and_then(Value::as_str) != Some("done") {
                return None;
            }
            v.get("id").and_then(Value::as_u64)
        })
        .collect()
}

/// An `mcrd` subprocess that is SIGKILLed when dropped, so a failing
/// assertion never leaks a daemon.
struct VictimDaemon {
    child: Arc<Mutex<Option<Child>>>,
    addr: String,
}

impl VictimDaemon {
    /// Spawns `mcrd --workers 0` on an ephemeral port and scrapes the
    /// bound address from its startup banner.
    fn spawn(journal_dir: &Path) -> VictimDaemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_mcrd"))
            .args(["--listen", "127.0.0.1:0", "--workers", "0", "--journal-dir"])
            .arg(journal_dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn mcrd victim");
        let stdout = child.stdout.take().expect("victim stdout");
        let mut banner = String::new();
        BufReader::new(stdout)
            .read_line(&mut banner)
            .expect("victim banner");
        let addr = banner
            .trim()
            .strip_prefix("mcrd listening on ")
            .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
            .to_string();
        VictimDaemon {
            child: Arc::new(Mutex::new(Some(child))),
            addr,
        }
    }

    /// SIGKILL — the crash under test, not a graceful stop.
    fn kill(child: &Mutex<Option<Child>>) {
        if let Some(mut child) = child.lock().expect("victim lock").take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl Drop for VictimDaemon {
    fn drop(&mut self) {
        VictimDaemon::kill(&self.child);
    }
}

/// The kill-drill: the victim shard is SIGKILLed mid-replay; the fleet
/// client fails over and settles all 12 requests with the generator's
/// deterministic statuses. The victim journal must hold zero `done`
/// lines (it never solves), the survivor exactly one per id.
#[test]
fn kill_minus_nine_mid_replay_settles_every_request_exactly_once() {
    let base = tmpdir("drill");
    let victim_dir = base.join("victim");
    let survivor_dir = base.join("survivor");
    let victim = VictimDaemon::spawn(&victim_dir);
    let survivor = serve(ServeConfig {
        workers: 2,
        journal_dir: Some(survivor_dir.clone()),
        ..ServeConfig::default()
    })
    .expect("survivor starts");
    let spec = format!("{},{}", victim.addr, survivor.local_addr());
    let mut cfg = FleetConfig::new(ShardMap::parse(&spec).expect("two shards"));
    // A victim-routed request must fail over in ~1 s, not 30; two
    // refused connects open the victim's breaker so the rest of the
    // replay skips it without paying the connect attempt.
    cfg.response_timeout = Duration::from_millis(1_000);
    cfg.retry.max_attempts = 5;
    cfg.breaker_threshold = 2;
    cfg.breaker_cooldown = Duration::from_millis(400);
    let killer = {
        let child = Arc::clone(&victim.child);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            VictimDaemon::kill(&child);
        })
    };
    let lines = log_lines(12, 42);
    let mut out = Vec::new();
    let report = fleet_replay(&cfg, &lines, &mut out).expect("fleet replay");
    killer.join().expect("killer thread");
    assert_eq!(report.sent, 12);
    assert_eq!(report.settled, 12, "every request settles exactly once");
    let statuses = by_status(&report);
    assert_eq!(statuses.get("ok"), Some(&10), "{statuses:?}");
    assert_eq!(statuses.get("cancelled"), Some(&1));
    assert_eq!(statuses.get("budget-exhausted"), Some(&1));
    assert!(
        report.failovers >= 1,
        "some request must have been routed to the dead victim first"
    );
    // No duplicate solves: the victim admits but never solves, so its
    // journal must not contain a single settled outcome...
    assert_eq!(done_ids(&victim_dir), Vec::<u64>::new());
    // ...and the survivor settles each id exactly once.
    let mut survivor_done = done_ids(&survivor_dir);
    survivor_done.sort_unstable();
    assert_eq!(survivor_done, (1..=12).collect::<Vec<u64>>());
    survivor.shutdown();
    let _ = std::fs::remove_dir_all(&base);
}

/// A shard that was never alive: every connect is refused, the breaker
/// opens, and the whole replay settles through the live shard.
#[test]
fn dead_endpoint_opens_the_breaker_and_the_ring_absorbs_it() {
    let base = tmpdir("dead");
    // Bind-then-drop reserves an address that now refuses connects.
    let dead_addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr").to_string()
    };
    let live = serve(ServeConfig {
        workers: 2,
        journal_dir: Some(base.join("live")),
        ..ServeConfig::default()
    })
    .expect("live shard starts");
    let spec = format!("{dead_addr},{}", live.local_addr());
    let mut cfg = FleetConfig::new(ShardMap::parse(&spec).expect("two shards"));
    cfg.breaker_threshold = 1;
    cfg.breaker_cooldown = Duration::from_secs(30); // stays open for the whole test
    let lines = log_lines(10, 7);
    let mut out = Vec::new();
    let report = fleet_replay(&cfg, &lines, &mut out).expect("fleet replay");
    assert_eq!(report.settled, 10);
    let statuses = by_status(&report);
    assert_eq!(statuses.get("ok"), Some(&8), "{statuses:?}");
    assert_eq!(statuses.get("cancelled"), Some(&1));
    assert_eq!(statuses.get("budget-exhausted"), Some(&1));
    assert!(report.failovers >= 1, "dead-routed requests fail over");
    assert!(report.breaker_opens >= 1, "the dead shard's breaker opens");
    live.shutdown();
    let _ = std::fs::remove_dir_all(&base);
}

/// The no-fault baseline: a healthy two-shard ring behaves exactly like
/// one daemon — no retries, no failovers, no breaker activity, and
/// between them the shards solve each id exactly once.
#[test]
fn clean_two_shard_replay_is_failure_free_and_exactly_once() {
    let base = tmpdir("clean");
    let dirs = [base.join("shard0"), base.join("shard1")];
    let handles: Vec<_> = dirs
        .iter()
        .map(|dir| {
            serve(ServeConfig {
                workers: 2,
                journal_dir: Some(dir.clone()),
                ..ServeConfig::default()
            })
            .expect("shard starts")
        })
        .collect();
    let spec = format!("{},{}", handles[0].local_addr(), handles[1].local_addr());
    let cfg = FleetConfig::new(ShardMap::parse(&spec).expect("two shards"));
    let lines = log_lines(10, 7);
    let mut out = Vec::new();
    let report = fleet_replay(&cfg, &lines, &mut out).expect("fleet replay");
    assert_eq!(report.settled, 10);
    let statuses = by_status(&report);
    assert_eq!(statuses.get("ok"), Some(&8), "{statuses:?}");
    assert_eq!(statuses.get("cancelled"), Some(&1));
    assert_eq!(statuses.get("budget-exhausted"), Some(&1));
    assert_eq!(report.retries, 0);
    assert_eq!(report.failovers, 0);
    assert_eq!(report.breaker_opens, 0);
    assert_eq!(report.deduped, 0);
    for handle in handles {
        handle.shutdown();
    }
    let mut all_done: Vec<u64> = dirs.iter().flat_map(|d| done_ids(d)).collect();
    all_done.sort_unstable();
    assert_eq!(
        all_done,
        (1..=10).collect::<Vec<u64>>(),
        "each id solved exactly once across the ring"
    );
    // And the routing really sharded: with ten distinct graphs both
    // shards must have seen work (hash split, not primary pinning).
    for dir in &dirs {
        assert!(!done_ids(dir).is_empty(), "one shard never saw a request");
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// Duplicate suppression end to end: a re-send with `"dedup":true`
/// whose id already settled is answered from the journal (marked
/// `deduped`), not solved twice.
#[test]
fn dedup_resend_replays_the_settled_outcome() {
    let base = tmpdir("dedup");
    let handle = serve(ServeConfig {
        workers: 1,
        journal_dir: Some(base.clone()),
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let addr = handle.local_addr().to_string();
    let lines = log_lines(4, 5);
    let solve = lines[0].clone();
    let mut out = Vec::new();
    mcr_serve::client::replay(&addr, std::slice::from_ref(&solve), false, &mut out).expect("first send");
    let first = json::parse(String::from_utf8(out).expect("utf8").trim()).expect("json");
    assert_eq!(first.get("status").and_then(Value::as_str), Some("ok"));
    let lambda = first
        .get("lambda")
        .and_then(Value::as_str)
        .expect("lambda")
        .to_string();
    // Same id again, flagged as a dedup re-send.
    let resend = format!(
        "{},\"dedup\":true}}",
        solve.strip_suffix('}').expect("object")
    );
    let mut out = Vec::new();
    mcr_serve::client::replay(&addr, &[resend], false, &mut out).expect("re-send");
    let second = json::parse(String::from_utf8(out).expect("utf8").trim()).expect("json");
    assert_eq!(second.get("deduped").and_then(Value::as_bool), Some(true));
    assert_eq!(second.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(
        second.get("lambda").and_then(Value::as_str),
        Some(lambda.as_str()),
        "the journaled λ is replayed verbatim"
    );
    assert_eq!(handle.metric("serve.dedup.settled"), Some(1));
    assert_eq!(done_ids(&base).len(), 1, "the duplicate never re-solved");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&base);
}

/// Graceful drain: a wire `shutdown` stops admissions but settles the
/// already-admitted queue before the daemon exits.
#[test]
fn wire_shutdown_drains_the_queue_before_exit() {
    let handle = serve(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let addr = handle.local_addr().to_string();
    let lines = log_lines(6, 9);
    // Pipeline six solves plus the shutdown on ONE connection: the
    // solves are all admitted (and queued behind the single worker)
    // before the drain begins, and all seven frames must be answered.
    let stream = std::net::TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    for line in &lines {
        mcr_serve::frame::write_frame(&mut writer, line.as_bytes()).expect("send");
    }
    let shutdown = "{\"schema\":\"mcr-req v1\",\"id\":99,\"op\":\"shutdown\"}";
    mcr_serve::frame::write_frame(&mut writer, shutdown.as_bytes()).expect("send shutdown");
    let mut reader = BufReader::new(stream);
    let mut statuses: BTreeMap<u64, String> = BTreeMap::new();
    let mut acked_shutdown = false;
    for _ in 0..7 {
        let payload = mcr_serve::frame::read_frame(&mut reader)
            .expect("read")
            .expect("response before close");
        let v = json::parse(std::str::from_utf8(&payload).expect("utf8")).expect("json");
        let id = v.get("id").and_then(Value::as_u64).expect("id");
        if id == 99 {
            assert_eq!(v.get("shutting_down").and_then(Value::as_bool), Some(true));
            acked_shutdown = true;
        } else {
            let status = v.get("status").and_then(Value::as_str).expect("status");
            statuses.insert(id, status.to_string());
        }
    }
    assert!(acked_shutdown);
    assert_eq!(statuses.len(), 6, "every queued solve settled: {statuses:?}");
    // The drain settles real work — the generator's tail statuses
    // arrive intact, nothing is shed retroactively.
    assert_eq!(
        statuses.values().filter(|s| s.as_str() == "ok").count(),
        4,
        "{statuses:?}"
    );
    let dump = handle.wait();
    assert!(dump.contains("serve.requests.accepted"));
}
