//! Property-based tests of the workload generators: structural
//! invariants must hold for every parameter combination.

use mcr_gen::circuit::{circuit_graph, CircuitConfig};
use mcr_gen::sprand::{sprand, SprandConfig};
use mcr_gen::structured;
use mcr_gen::transit::{rebuild_with, with_random_transits};
use mcr_graph::traverse::{has_cycle, is_strongly_connected};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sprand_is_always_strongly_connected(
        n in 1usize..200,
        extra in 0usize..300,
        seed in 0u64..1000,
        wmin in -100i64..100,
        wspan in 0i64..200,
    ) {
        let cfg = SprandConfig::new(n, n + extra)
            .seed(seed)
            .weight_range(wmin, wmin + wspan);
        let g = sprand(&cfg);
        prop_assert_eq!(g.num_nodes(), n);
        prop_assert_eq!(g.num_arcs(), n + extra);
        prop_assert!(is_strongly_connected(&g));
        prop_assert!(has_cycle(&g));
        for a in g.arc_ids() {
            let w = g.weight(a);
            prop_assert!(w >= wmin && w <= wmin + wspan);
            prop_assert_eq!(g.transit(a), 1);
        }
    }

    #[test]
    fn sprand_is_a_pure_function_of_its_config(
        n in 1usize..60,
        extra in 0usize..80,
        seed in 0u64..50,
    ) {
        let cfg = SprandConfig::new(n, n + extra).seed(seed);
        let a = sprand(&cfg);
        let b = sprand(&cfg);
        prop_assert_eq!(a.num_arcs(), b.num_arcs());
        for e in a.arc_ids() {
            prop_assert_eq!(a.source(e), b.source(e));
            prop_assert_eq!(a.target(e), b.target(e));
            prop_assert_eq!(a.weight(e), b.weight(e));
        }
    }

    #[test]
    fn circuit_stays_sparse_and_cyclic(
        gates in 2usize..400,
        seed in 0u64..200,
    ) {
        let g = circuit_graph(&CircuitConfig::new(gates).seed(seed));
        prop_assert_eq!(g.num_nodes(), gates);
        // Bounded density: ~1.5 logic arcs + 1/8 registers per gate.
        prop_assert!(g.num_arcs() <= 3 * gates + 8);
        prop_assert!(has_cycle(&g));
    }

    #[test]
    fn transit_decoration_preserves_structure(
        n in 1usize..80,
        extra in 0usize..100,
        seed in 0u64..100,
        tmin in 0i64..5,
        tspan in 0i64..10,
    ) {
        let g = sprand(&SprandConfig::new(n, n + extra).seed(seed));
        let r = with_random_transits(&g, tmin, tmin + tspan, seed);
        prop_assert_eq!(g.num_arcs(), r.num_arcs());
        for a in g.arc_ids() {
            prop_assert_eq!(g.source(a), r.source(a));
            prop_assert_eq!(g.target(a), r.target(a));
            prop_assert_eq!(g.weight(a), r.weight(a));
            let t = r.transit(a);
            prop_assert!(t >= tmin && t <= tmin + tspan);
        }
    }

    #[test]
    fn rebuild_with_applies_the_function(n in 1usize..40, seed in 0u64..30) {
        let g = sprand(&SprandConfig::new(n, 2 * n).seed(seed));
        let r = rebuild_with(&g, |i| (i as i64 % 7) + 1);
        for a in r.arc_ids() {
            prop_assert_eq!(r.transit(a), (a.index() as i64 % 7) + 1);
        }
    }

    #[test]
    fn structured_families_have_their_shapes(
        weights in proptest::collection::vec(-50i64..50, 1..30),
        rows in 1usize..6,
        cols in 1usize..6,
    ) {
        let ring = structured::ring(&weights);
        prop_assert!(is_strongly_connected(&ring));
        for v in ring.node_ids() {
            prop_assert_eq!(ring.out_degree(v), 1);
            prop_assert_eq!(ring.in_degree(v), 1);
        }
        let torus = structured::torus(rows, cols, |r, c, d| (r + c + d) as i64);
        prop_assert_eq!(torus.num_arcs(), 2 * rows * cols);
        prop_assert!(is_strongly_connected(&torus));
    }
}
