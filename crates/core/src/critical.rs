//! Critical subgraph extraction.
//!
//! After λ* is known, the *critical subgraph* of `G_{λ*}` — the arcs
//! satisfying `d(v) − d(u) = w(u,v) − λ*·t(u,v)` for shortest-path
//! potentials `d` — "contains all the arcs and nodes that determine the
//! performance of the system modeled by G" (§2). All minimum mean
//! (ratio) cycles live inside it, so it also serves as the universal
//! witness-cycle extractor for algorithms whose internal state does not
//! directly yield a cycle (Karp, Karp2, DG).

use crate::bellman::{bellman_ford, scaled_costs, CycleCheck};
use crate::instrument::Counters;
use crate::rational::Ratio64;
use mcr_graph::{ArcId, Graph, NodeId};

/// The critical subgraph of `G_{λ}`.
#[derive(Clone, Debug)]
pub struct CriticalSubgraph {
    /// Critical (tight) arcs.
    pub arcs: Vec<ArcId>,
    /// Per-node flag: adjacent to at least one critical arc.
    pub node_is_critical: Vec<bool>,
}

impl CriticalSubgraph {
    /// The critical nodes.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.node_is_critical
            .iter()
            .enumerate()
            .filter(|(_, &c)| c)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }
}

/// Computes the critical subgraph of `G_λ`.
///
/// # Errors
///
/// Returns `Err` if `lambda` exceeds the optimum (then `G_λ` has a
/// negative cycle and no shortest-path potentials exist).
///
/// ```
/// use mcr_core::{critical::critical_subgraph, Ratio64};
/// use mcr_graph::graph::from_arc_list;
/// // Two 2-cycles: means 2 and 5. At λ* = 2 only the first is critical.
/// let g = from_arc_list(3, &[(0, 1, 1), (1, 0, 3), (1, 2, 5), (2, 1, 5)]);
/// let cs = critical_subgraph(&g, Ratio64::from(2)).unwrap();
/// assert_eq!(cs.arcs.len(), 2);
/// assert_eq!(cs.nodes().len(), 2);
/// ```
pub fn critical_subgraph(g: &Graph, lambda: Ratio64) -> Result<CriticalSubgraph, String> {
    let cost = scaled_costs(g, lambda);
    let mut counters = Counters::new();
    let dist = match bellman_ford(g, &cost, true, &mut counters) {
        CycleCheck::Feasible(d) => d,
        CycleCheck::NegativeCycle(_) => {
            return Err(format!("lambda {lambda} exceeds the optimum"));
        }
    };
    let mut arcs = Vec::new();
    let mut node_is_critical = vec![false; g.num_nodes()];
    for a in g.arc_ids() {
        let u = g.source(a).index();
        let v = g.target(a).index();
        if dist[u] + cost[a.index()] == dist[v] {
            arcs.push(a);
            node_is_critical[u] = true;
            node_is_critical[v] = true;
        }
    }
    Ok(CriticalSubgraph {
        arcs,
        node_is_critical,
    })
}

/// Extracts one minimum mean (ratio) cycle, given the exact optimum
/// `lambda`: finds a cycle inside the critical subgraph by iterative
/// DFS over tight arcs.
///
/// # Panics
///
/// Panics if `lambda` is not the exact optimum of `g` (either `G_λ` has
/// a negative cycle, or the critical subgraph is acyclic). Intended for
/// internal use by exact solvers.
pub fn critical_cycle(g: &Graph, lambda: Ratio64) -> Vec<ArcId> {
    let cs = critical_subgraph(g, lambda)
        .unwrap_or_else(|e| panic!("critical_cycle with non-optimal lambda: {e}"));
    // Tight adjacency.
    let n = g.num_nodes();
    let mut tight_out: Vec<Vec<ArcId>> = vec![Vec::new(); n];
    for &a in &cs.arcs {
        tight_out[g.source(a).index()].push(a);
    }
    // Iterative three-color DFS looking for a back arc.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; n];
    let mut arc_stack: Vec<ArcId> = Vec::new();
    let mut on_path_pos = vec![usize::MAX; n];
    for root in 0..n {
        if color[root] != WHITE {
            continue;
        }
        // (node, next out-arc index)
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        color[root] = GRAY;
        on_path_pos[root] = 0;
        while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
            if *idx < tight_out[v].len() {
                let a = tight_out[v][*idx];
                *idx += 1;
                let w = g.target(a).index();
                match color[w] {
                    WHITE => {
                        color[w] = GRAY;
                        on_path_pos[w] = arc_stack.len() + 1;
                        arc_stack.push(a);
                        stack.push((w, 0));
                    }
                    GRAY => {
                        // Found a cycle: arcs from w's position on the
                        // path through a.
                        let mut cycle: Vec<ArcId> =
                            arc_stack[on_path_pos[w]..].to_vec();
                        cycle.push(a);
                        debug_assert!(
                            crate::solution::check_cycle(g, &cycle).is_ok(),
                            "critical cycle malformed"
                        );
                        return cycle;
                    }
                    _ => {}
                }
            } else {
                color[v] = BLACK;
                stack.pop();
                arc_stack.pop();
            }
        }
    }
    panic!("critical subgraph is acyclic: lambda {lambda} is not the optimum");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::check_cycle;
    use mcr_graph::graph::from_arc_list;

    #[test]
    fn critical_cycle_of_single_ring() {
        let g = from_arc_list(3, &[(0, 1, 1), (1, 2, 2), (2, 0, 3)]);
        let cyc = critical_cycle(&g, Ratio64::from(2));
        let (w, len, _) = check_cycle(&g, &cyc).expect("valid");
        assert_eq!(Ratio64::new(w, len as i64), Ratio64::from(2));
        assert_eq!(len, 3);
    }

    #[test]
    fn critical_cycle_picks_minimum() {
        // Self-loop of weight 1 beats the 2-cycle of mean 5.
        let g = from_arc_list(2, &[(0, 1, 5), (1, 0, 5), (0, 0, 1)]);
        let cyc = critical_cycle(&g, Ratio64::from(1));
        assert_eq!(cyc.len(), 1);
        assert_eq!(g.weight(cyc[0]), 1);
    }

    #[test]
    fn subgraph_excludes_non_tight() {
        let g = from_arc_list(3, &[(0, 1, 1), (1, 0, 1), (1, 2, 100), (2, 1, 100)]);
        let cs = critical_subgraph(&g, Ratio64::from(1)).expect("optimal lambda");
        assert_eq!(cs.arcs.len(), 2);
        assert!(cs.node_is_critical[0]);
        assert!(cs.node_is_critical[1]);
        assert!(!cs.node_is_critical[2]);
    }

    #[test]
    fn above_optimum_is_error() {
        let g = from_arc_list(2, &[(0, 1, 4), (1, 0, 4)]);
        assert!(critical_subgraph(&g, Ratio64::from(5)).is_err());
        assert!(critical_subgraph(&g, Ratio64::from(4)).is_ok());
    }

    #[test]
    #[should_panic(expected = "acyclic")]
    fn below_optimum_panics_in_cycle_extraction() {
        let g = from_arc_list(2, &[(0, 1, 4), (1, 0, 4)]);
        // λ = 3 < λ* = 4: feasible but nothing is tight on a cycle.
        critical_cycle(&g, Ratio64::from(3));
    }

    #[test]
    fn fractional_lambda_with_transits() {
        let mut b = mcr_graph::GraphBuilder::new();
        let v = b.add_nodes(2);
        b.add_arc_with_transit(v[0], v[1], 4, 1);
        b.add_arc_with_transit(v[1], v[0], 6, 3);
        let g = b.build();
        let cyc = critical_cycle(&g, Ratio64::new(5, 2));
        let (w, _, t) = check_cycle(&g, &cyc).expect("valid");
        assert_eq!(Ratio64::new(w, t), Ratio64::new(5, 2));
    }
}
