//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network and no registry cache, so the
//! workspace vendors a clean-room property-testing kernel exposing the
//! subset of the proptest 1.x API its tests actually use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`],
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! * integer range strategies, tuple strategies, [`strategy::Just`],
//! * [`collection::vec`],
//! * string strategies from mini-regex patterns (`".{0,400}"`,
//!   `"[a-z ]{0,12}"`).
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! the assertion message and the case number), uniform `prop_oneof!`
//! arms, and a fixed deterministic seed derived from the test name so
//! failures reproduce across runs.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of test values. Object safe: combinator methods are
    /// `Self: Sized`, so `Box<dyn Strategy<Value = V>>` works for
    /// [`prop_oneof!`](crate::prop_oneof).
    pub trait Strategy {
        type Value;

        /// Produce one value for a test case.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { base: self, f }
        }

        /// Use a generated value to pick a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Erase the concrete type (used by [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            (self.f)(self.base.new_value(rng))
        }
    }

    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.base.new_value(rng)).new_value(rng)
        }
    }

    /// Uniform choice between boxed alternatives.
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut StdRng) -> V {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident / $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(S0 / 0);
    impl_tuple_strategy!(S0 / 0, S1 / 1);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);

    // ---- mini-regex string strategies ------------------------------

    enum Atom {
        /// `.` — any printable ASCII character.
        Any,
        /// `[...]` — explicit ranges/characters.
        Class(Vec<(char, char)>),
        /// A literal character.
        Lit(char),
    }

    struct Piece {
        atom: Atom,
        lo: usize,
        hi: usize,
    }

    /// Parses the tiny regex subset the workspace uses: atoms `.`,
    /// `[class]`, literals and `\x` escapes, with quantifiers `{a}`,
    /// `{a,b}`, `*`, `+`, `?`.
    fn parse_pattern(pat: &str) -> Vec<Piece> {
        let chars: Vec<char> = pat.chars().collect();
        let mut i = 0;
        let mut out = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let c = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((c, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((c, c));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in pattern {pat:?}");
                    i += 1; // ']'
                    Atom::Class(ranges)
                }
                '\\' => {
                    assert!(i + 1 < chars.len(), "dangling escape in pattern {pat:?}");
                    let c = chars[i + 1];
                    i += 2;
                    Atom::Lit(c)
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            let (lo, hi) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .expect("unterminated quantifier")
                            + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((a, b)) => (
                                a.trim().parse().expect("bad quantifier"),
                                b.trim().parse().expect("bad quantifier"),
                            ),
                            None => {
                                let n = body.trim().parse().expect("bad quantifier");
                                (n, n)
                            }
                        }
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            assert!(lo <= hi, "inverted quantifier in pattern {pat:?}");
            out.push(Piece { atom, lo, hi });
        }
        out
    }

    /// A `&str` acts as a strategy generating strings matching it as a
    /// (mini-)regex, mirroring upstream proptest.
    impl Strategy for &'static str {
        type Value = String;
        fn new_value(&self, rng: &mut StdRng) -> String {
            let pieces = parse_pattern(self);
            let mut s = String::new();
            for p in &pieces {
                let count = rng.gen_range(p.lo..=p.hi);
                for _ in 0..count {
                    let c = match &p.atom {
                        Atom::Any => char::from(rng.gen_range(0x20u8..=0x7E)),
                        Atom::Lit(c) => *c,
                        Atom::Class(ranges) => {
                            let (a, b) = ranges[rng.gen_range(0..ranges.len())];
                            char::from_u32(rng.gen_range(a as u32..=b as u32))
                                .unwrap_or(a)
                        }
                    };
                    s.push(c);
                }
            }
            s
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification for [`vec`]: an exact size or a half-open
    /// range of sizes, mirroring upstream's `SizeRange` conversions.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Strategy for vectors whose elements come from `elem` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration; only `cases` is consulted.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Executes `body` for `config.cases` deterministic cases. The RNG
    /// seed is a hash of the test name, so reruns reproduce failures.
    pub fn run<F>(test_name: &str, config: &ProptestConfig, mut body: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), String>,
    {
        let mut rng = StdRng::seed_from_u64(fnv1a(test_name));
        for case in 0..config.cases {
            if let Err(msg) = body(&mut rng) {
                panic!(
                    "proptest {test_name}: case {case}/{} failed: {msg}",
                    config.cases
                );
            }
        }
    }
}

/// The subset of `proptest::prelude` this workspace imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines deterministic property tests. Accepts an optional leading
/// `#![proptest_config(expr)]` and any number of test functions of the
/// form `#[test] fn name(binding in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __proptest_config = $cfg;
            let __proptest_strats = ($($strat,)+);
            $crate::test_runner::run(
                stringify!($name),
                &__proptest_config,
                |__proptest_rng| {
                    let ($(ref $arg,)+) = __proptest_strats;
                    $(let $arg = $crate::strategy::Strategy::new_value($arg, __proptest_rng);)+
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Soft assertion inside a [`proptest!`] body: on failure the current
/// case is reported with the message (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Soft equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __l, __r
            ));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -50i64..50, y in 0usize..10) {
            prop_assert!(x >= -50 && x < 50);
            prop_assert!(y < 10);
        }

        #[test]
        fn maps_and_tuples_compose(v in (0u32..5, 10u32..20).prop_map(|(a, b)| a + b)) {
            prop_assert!((10..25).contains(&v));
        }

        #[test]
        fn oneof_picks_every_arm(x in prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|v| v)]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(0i64..100, 3..6)) {
            prop_assert!(v.len() >= 3 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| (0..100).contains(&e)));
        }

        #[test]
        fn string_patterns_match_shape(s in "[a-z ]{0,12}", t in ".{0,40}") {
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == ' '));
            prop_assert!(t.chars().count() <= 40);
        }

        #[test]
        fn flat_map_depends_on_base(v in (1usize..8).prop_flat_map(|n| crate::collection::vec(0usize..n, n))) {
            let n = v.len();
            prop_assert!((1..8).contains(&n));
            prop_assert!(v.iter().all(|&e| e < n));
        }
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failing_property_panics_with_case_info() {
        crate::test_runner::run(
            "always_fails",
            &ProptestConfig::with_cases(4),
            |_| Err("boom".to_string()),
        );
    }
}
