//! Lawler's algorithm: binary search over λ with a negative-cycle
//! oracle.
//!
//! λ* lies between the minimum and maximum arc weight. Lawler bisects
//! that interval, testing each midpoint with Bellman–Ford on `G_λ`: a
//! negative cycle means λ is too large, its absence means λ is too
//! small. The paper's version stops when the interval is shorter than a
//! user precision ε ([`solve_scc_eps`]); the study found it to be the
//! slowest algorithm overall. [`solve_scc_exact`] sharpens it into an
//! exact method: once the interval is shorter than `1/(n(n−1))` it
//! contains exactly one rational with denominator ≤ n — the optimum —
//! recovered by a Stern–Brocot descent.
//!
//! The hot loop here is the Bellman–Ford oracle, so Lawler inherits the
//! chunked intra-SCC sweep directly from
//! [`crate::bellman`]: when the workspace carries
//! [`SweepMode::Chunked`](crate::sweep::SweepMode), every oracle call
//! runs chunk-ordered relaxation rounds (deterministic at any
//! sweep-thread count). The oracle's *verdict* per midpoint is
//! mode-independent, so Lawler's bisection trajectory — and its result
//! — is identical in both sweep modes.

use crate::bellman::{cycle_at_or_below_ws, has_cycle_below_ws};
use crate::budget::BudgetScope;
use crate::checkpoint::JobProgress;
use crate::driver::SccOutcome;
use crate::error::SolveError;
use crate::instrument::Counters;
use crate::rational::Ratio64;
use crate::solution::Guarantee;
use crate::workspace::Workspace;
use mcr_graph::{ArcId, Graph};

/// Restores a saved bisection interval if it is consistent with this
/// component's weight bounds; an inconsistent checkpoint (wrong graph,
/// corrupted file) is ignored and the solve starts fresh.
fn restore_interval(
    resume: Option<&JobProgress>,
    wlo: Ratio64,
    whi: Ratio64,
) -> Option<(Ratio64, Ratio64)> {
    match resume {
        Some(JobProgress::Interval { lo, hi }) if *lo <= *hi && wlo <= *lo && *hi <= whi => {
            Some((*lo, *hi))
        }
        _ => None,
    }
}

/// Weight bounds as rationals; equal bounds mean every arc has the same
/// weight.
fn weight_bounds(g: &Graph) -> (Ratio64, Ratio64) {
    (
        Ratio64::from(g.min_weight().expect("component has arcs")),
        Ratio64::from(g.max_weight().expect("component has arcs")),
    )
}

fn witness_at(
    g: &Graph,
    lambda: Ratio64,
    counters: &mut Counters,
    ws: &mut Workspace,
    scope: &BudgetScope,
) -> Result<(Ratio64, Vec<ArcId>), SolveError> {
    if !cycle_at_or_below_ws(g, lambda, counters, ws, scope)? {
        // The invariant λ* ≤ hi guarantees a witness; its absence means
        // the bisection state degenerated.
        return Err(SolveError::NumericRange {
            context: "Lawler witness extraction found no cycle at the upper bound",
        });
    }
    let cycle = ws.bf.cycle.clone();
    let w: i128 = cycle.iter().map(|&a| g.weight(a) as i128).sum();
    let mean =
        Ratio64::try_from_i128(w, cycle.len() as i128).ok_or(SolveError::Overflow {
            context: "Lawler witness cycle mean",
        })?;
    Ok((mean, cycle))
}

/// Lawler with the paper's ε-termination. Every bisection step charges
/// both an iteration and a λ-refinement.
pub(crate) fn solve_scc_eps(
    g: &Graph,
    counters: &mut Counters,
    epsilon: f64,
    ws: &mut Workspace,
    scope: &mut BudgetScope,
) -> Result<SccOutcome, SolveError> {
    solve_scc_eps_ckpt(g, counters, epsilon, ws, scope, None, &mut None)
}

/// [`solve_scc_eps`] with checkpoint/resume: a valid
/// [`JobProgress::Interval`] restores the bisection bounds, and an
/// interrupted bisection saves its current bounds into `saved` before
/// returning the error. Resuming continues the identical midpoint
/// sequence, so an interrupted-then-resumed solve is bit-identical to
/// an uninterrupted one.
pub(crate) fn solve_scc_eps_ckpt(
    g: &Graph,
    counters: &mut Counters,
    epsilon: f64,
    ws: &mut Workspace,
    scope: &mut BudgetScope,
    resume: Option<&JobProgress>,
    saved: &mut Option<JobProgress>,
) -> Result<SccOutcome, SolveError> {
    debug_assert!(epsilon > 0.0, "epsilon validated by the driver");
    let (wlo, whi) = weight_bounds(g);
    let (mut lo, mut hi) = restore_interval(resume, wlo, whi).unwrap_or((wlo, whi));
    // Invariants: λ* ≥ lo, λ* ≤ hi.
    scope.loop_metrics("core.lawler.bisect");
    while (hi - lo).to_f64() > epsilon && hi.denom() < i64::MAX / 4 {
        counters.iterations += 1;
        if let Err(e) = scope
            .tick_iteration_and_time()
            .and_then(|()| scope.tick_refinement())
            .and_then(|()| scope.chaos_check("core.lawler.bisect"))
        {
            *saved = Some(JobProgress::Interval { lo, hi });
            return Err(e);
        }
        let mid = lo.midpoint(hi);
        if has_cycle_below_ws(g, mid, counters, ws, scope)? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let (mean, cycle) = witness_at(g, hi, counters, ws, scope)?;
    Ok(SccOutcome {
        lambda: mean,
        cycle,
        guarantee: Guarantee::Epsilon(epsilon),
        solved_by: crate::Algorithm::Lawler,
    })
}

/// Lawler sharpened to an exact algorithm by snapping the final interval
/// to the unique cycle mean inside it. Every bisection step charges
/// both an iteration and a λ-refinement.
pub(crate) fn solve_scc_exact(
    g: &Graph,
    counters: &mut Counters,
    ws: &mut Workspace,
    scope: &mut BudgetScope,
) -> Result<SccOutcome, SolveError> {
    solve_scc_exact_ckpt(g, counters, ws, scope, None, &mut None)
}

/// [`solve_scc_exact`] with checkpoint/resume; see
/// [`solve_scc_eps_ckpt`] for the interval save/restore contract.
pub(crate) fn solve_scc_exact_ckpt(
    g: &Graph,
    counters: &mut Counters,
    ws: &mut Workspace,
    scope: &mut BudgetScope,
    resume: Option<&JobProgress>,
    saved: &mut Option<JobProgress>,
) -> Result<SccOutcome, SolveError> {
    let n = g.num_nodes() as i64;
    let (wlo, whi) = weight_bounds(g);
    let (mut lo, mut hi) = restore_interval(resume, wlo, whi).unwrap_or((wlo, whi));
    // Cycle means have denominator ≤ n; an open interval shorter than
    // 1/(n(n−1)) contains at most one of them.
    let target = Ratio64::new(1, (n * (n - 1)).max(1) + 1);
    scope.loop_metrics("core.lawler.exact.bisect");
    while hi - lo >= target {
        counters.iterations += 1;
        if let Err(e) = scope
            .tick_iteration_and_time()
            .and_then(|()| scope.tick_refinement())
            .and_then(|()| scope.chaos_check("core.lawler.exact.bisect"))
        {
            *saved = Some(JobProgress::Interval { lo, hi });
            return Err(e);
        }
        if hi.denom() >= i64::MAX / 8 {
            return Err(SolveError::NumericRange {
                context: "Lawler bisection denominators exhausted i64 range",
            });
        }
        let mid = lo.midpoint(hi);
        if has_cycle_below_ws(g, mid, counters, ws, scope)? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let lambda = Ratio64::simplest_in(lo, hi);
    let (mean, cycle) = witness_at(g, lambda, counters, ws, scope)?;
    debug_assert_eq!(mean, lambda);
    Ok(SccOutcome {
        lambda: mean,
        cycle,
        guarantee: Guarantee::Exact,
        solved_by: crate::Algorithm::LawlerExact,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_graph::graph::from_arc_list;

    fn exact_outcome(g: &Graph, c: &mut Counters) -> SccOutcome {
        let mut scope = BudgetScope::unlimited(crate::Algorithm::LawlerExact);
        solve_scc_exact(g, c, &mut Workspace::new(), &mut scope).expect("unlimited")
    }

    fn eps_outcome(g: &Graph, c: &mut Counters, epsilon: f64) -> SccOutcome {
        let mut scope = BudgetScope::unlimited(crate::Algorithm::Lawler);
        solve_scc_eps(g, c, epsilon, &mut Workspace::new(), &mut scope).expect("unlimited")
    }

    fn exact(g: &Graph) -> Ratio64 {
        let mut c = Counters::new();
        exact_outcome(g, &mut c).lambda
    }

    #[test]
    fn single_ring_fraction() {
        let g = from_arc_list(3, &[(0, 1, 1), (1, 2, 2), (2, 0, 4)]);
        assert_eq!(exact(&g), Ratio64::new(7, 3));
    }

    #[test]
    fn uniform_weights_trivial_interval() {
        let g = from_arc_list(2, &[(0, 1, 6), (1, 0, 6)]);
        assert_eq!(exact(&g), Ratio64::from(6));
        let mut c = Counters::new();
        let s = eps_outcome(&g, &mut c, 1e-3);
        assert_eq!(s.lambda, Ratio64::from(6));
    }

    #[test]
    fn exact_matches_brute_force() {
        use mcr_gen::sprand::{sprand, SprandConfig};
        for seed in 0..40 {
            let g = sprand(&SprandConfig::new(10, 26).seed(seed).weight_range(-40, 40));
            let (expected, _) = crate::reference::brute_force_min_mean(&g).expect("cyclic");
            assert_eq!(exact(&g), expected, "seed {seed}");
        }
    }

    #[test]
    fn eps_mode_is_within_epsilon() {
        use mcr_gen::sprand::{sprand, SprandConfig};
        for seed in 0..20 {
            let g = sprand(&SprandConfig::new(12, 36).seed(seed).weight_range(1, 100));
            let (expected, _) = crate::reference::brute_force_min_mean(&g).expect("cyclic");
            let mut c = Counters::new();
            let s = eps_outcome(&g, &mut c, 1e-4);
            // Witness mean is never below the optimum and at most ε above.
            assert!(s.lambda >= expected, "seed {seed}");
            assert!(
                (s.lambda.to_f64() - expected.to_f64()) <= 1e-4 + 1e-12,
                "seed {seed}: {} vs {}",
                s.lambda,
                expected
            );
        }
    }

    #[test]
    fn counts_oracle_calls() {
        let g = from_arc_list(2, &[(0, 1, 1), (1, 0, 100)]);
        let mut c = Counters::new();
        exact_outcome(&g, &mut c);
        // log2(99 · n(n-1)) ≈ 8 bisections plus the witness extraction.
        assert!(c.oracle_calls >= 8, "oracle calls {}", c.oracle_calls);
        assert!(c.oracle_calls <= 40);
    }

    #[test]
    fn refinement_budget_of_one_exhausts() {
        let g = from_arc_list(2, &[(0, 1, 1), (1, 0, 100)]);
        let budget = crate::Budget::default().max_lambda_refinements(1);
        let mut scope = BudgetScope::new(&budget, None, crate::Algorithm::LawlerExact);
        let mut c = Counters::new();
        let err = solve_scc_exact(&g, &mut c, &mut Workspace::new(), &mut scope)
            .expect_err("needs many bisections");
        assert!(matches!(err, SolveError::BudgetExhausted { .. }), "{err}");
    }

    #[test]
    fn negative_weights() {
        let g = from_arc_list(3, &[(0, 1, -7), (1, 2, -3), (2, 0, -8), (0, 2, 5), (2, 0, 1)]);
        let (expected, _) = crate::reference::brute_force_min_mean(&g).expect("cyclic");
        assert_eq!(exact(&g), expected);
    }
}
