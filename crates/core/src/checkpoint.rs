//! Checkpoint/resume for long-running solves.
//!
//! A budgeted or cancelled solve does not have to lose its work: when
//! [`crate::SolveOptions::checkpoints`] carries a [`CheckpointStore`],
//! the driver records each component's partial progress at the moment
//! an attempt is interrupted (budget exhaustion, cancellation, or an
//! injected chaos fault), and a later call with the same store resumes
//! each component from that state instead of from scratch.
//!
//! # What is saved
//!
//! Progress is keyed by the component's **job index** — its position in
//! the driver's Tarjan-ordered job list — which is a pure function of
//! the input graph, independent of thread count and scheduling. Per
//! attempt the save is the algorithm's full cross-iteration state:
//!
//! * Howard's policy iteration ([`JobProgress::Howard`]): the policy
//!   vector (one out-arc per node), plus the `f64` node values as raw
//!   bit patterns for the Figure 1 variant (the exact variant
//!   recomputes values from the policy each round, so the policy alone
//!   suffices).
//! * The λ-interval searches, Lawler's bisection and the cycle-ratio
//!   bisection ([`JobProgress::Interval`]): the current `[lo, hi]`
//!   rational interval.
//!
//! Because each algorithm's round is a deterministic function of
//! exactly this state, a resumed solve walks the same iteration
//! sequence as an uninterrupted one and produces a **bit-identical**
//! result — the property `tests/checkpoint_resume.rs` pins at 1, 2 and
//! 8 worker threads.
//!
//! # File format
//!
//! [`Checkpoint::to_text`] / [`Checkpoint::from_text`] give a versioned,
//! line-oriented text encoding ("`mcr-checkpoint v1`" header, one
//! `job …` line per saved component) used by the CLI and usable
//! without any serialization framework; with the `serde` feature the
//! [`Checkpoint`] additionally implements `Serialize`/`Deserialize` as
//! that same text document.

// Parsing/validation surfaces must stay panic-free whatever the
// input; CI runs clippy with -D warnings, so these lints are a gate.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

use crate::algorithms::Algorithm;
use crate::rational::Ratio64;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Version tag written in the checkpoint header; bumped on any
/// incompatible format change.
pub const FORMAT_VERSION: u32 = 1;

/// Cross-iteration state of one interrupted per-SCC solve attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum JobProgress {
    /// Howard policy iteration: the current policy (arc index chosen at
    /// each node) and, for the `f64` Figure 1 variant, the node values
    /// as `f64::to_bits` patterns (`None` for the exact variant, which
    /// recomputes values from the policy).
    Howard {
        /// `policy[v]` is the arc id currently chosen at node `v`.
        policy: Vec<u32>,
        /// Figure 1 node values (`f64::to_bits`), if the variant keeps
        /// them across iterations.
        dist_bits: Option<Vec<u64>>,
    },
    /// A λ-interval search (Lawler bisection, ratio bisection): the
    /// current half-open search interval.
    Interval {
        /// Largest λ known infeasible (or the initial lower bound).
        lo: Ratio64,
        /// Smallest λ known feasible (or the initial upper bound).
        hi: Ratio64,
    },
}

/// One saved entry: which algorithm the progress belongs to plus its
/// state. Progress is only resumed by the *same* algorithm — a Lawler
/// interval means nothing to Howard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobEntry {
    /// The algorithm that was interrupted.
    pub algorithm: Algorithm,
    /// Its cross-iteration state at the interruption point.
    pub progress: JobProgress,
}

/// A point-in-time snapshot of saved solve progress, keyed by job
/// index (the component's position in the driver's deterministic
/// Tarjan-ordered job list).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Checkpoint {
    /// Saved progress per job index.
    pub jobs: BTreeMap<u64, JobEntry>,
}

/// Error from [`Checkpoint::from_text`]: the 1-based offending line
/// plus a human-readable description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointError {
    line: usize,
    message: String,
}

impl CheckpointError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        CheckpointError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number the error was detected on (0 for whole-file
    /// problems such as a missing header).
    pub fn line(&self) -> usize {
        self.line
    }

    /// Human-readable diagnostic, without the line prefix.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint line {}: {}", self.line, self.message)
    }
}

impl Error for CheckpointError {}

fn parse_ratio(tok: &str, lineno: usize) -> Result<Ratio64, CheckpointError> {
    let (num, den) = match tok.split_once('/') {
        Some((n, d)) => (n, d),
        None => (tok, "1"),
    };
    let num: i64 = num
        .parse()
        .map_err(|_| CheckpointError::new(lineno, format!("invalid rational `{tok}`")))?;
    let den: i64 = den
        .parse()
        .map_err(|_| CheckpointError::new(lineno, format!("invalid rational `{tok}`")))?;
    if den == 0 {
        return Err(CheckpointError::new(
            lineno,
            format!("zero denominator in `{tok}`"),
        ));
    }
    Ok(Ratio64::new(num, den))
}

impl Checkpoint {
    /// An empty checkpoint (nothing saved).
    pub fn new() -> Self {
        Checkpoint::default()
    }

    /// Whether no job has saved progress.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Renders the checkpoint in the versioned line format accepted by
    /// [`Checkpoint::from_text`].
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "mcr-checkpoint v{FORMAT_VERSION}");
        for (job, entry) in &self.jobs {
            match &entry.progress {
                JobProgress::Howard { policy, dist_bits } => {
                    let _ = write!(
                        out,
                        "job {job} {} howard {} {}",
                        entry.algorithm.name(),
                        policy.len(),
                        dist_bits.as_ref().map_or(0, Vec::len),
                    );
                    for p in policy {
                        let _ = write!(out, " {p}");
                    }
                    for d in dist_bits.iter().flatten() {
                        let _ = write!(out, " {d}");
                    }
                    out.push('\n');
                }
                JobProgress::Interval { lo, hi } => {
                    let _ = writeln!(
                        out,
                        "job {job} {} interval {}/{} {}/{}",
                        entry.algorithm.name(),
                        lo.numer(),
                        lo.denom(),
                        hi.numer(),
                        hi.denom(),
                    );
                }
            }
        }
        out
    }

    /// Parses the text produced by [`Checkpoint::to_text`]. Blank lines
    /// and `#` comments are ignored; any malformed line, unknown
    /// version, or unknown algorithm name is a typed error — corrupt
    /// checkpoints are rejected, never resumed from.
    pub fn from_text(text: &str) -> Result<Checkpoint, CheckpointError> {
        let mut jobs = BTreeMap::new();
        let mut saw_header = false;
        for (lineno, raw) in text.lines().enumerate() {
            let lineno = lineno + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if !saw_header {
                let version = line
                    .strip_prefix("mcr-checkpoint v")
                    .and_then(|v| v.parse::<u32>().ok())
                    .ok_or_else(|| {
                        CheckpointError::new(lineno, "expected header `mcr-checkpoint v1`")
                    })?;
                if version != FORMAT_VERSION {
                    return Err(CheckpointError::new(
                        lineno,
                        format!("unsupported checkpoint version {version}"),
                    ));
                }
                saw_header = true;
                continue;
            }
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.first() != Some(&"job") || toks.len() < 4 {
                return Err(CheckpointError::new(
                    lineno,
                    "expected `job <index> <algorithm> <kind> ...`",
                ));
            }
            let job: u64 = toks[1]
                .parse()
                .map_err(|_| CheckpointError::new(lineno, "invalid job index"))?;
            let algorithm = Algorithm::ALL
                .into_iter()
                .find(|a| a.name() == toks[2])
                .ok_or_else(|| {
                    CheckpointError::new(lineno, format!("unknown algorithm `{}`", toks[2]))
                })?;
            let progress = match toks[3] {
                "howard" => {
                    if toks.len() < 6 {
                        return Err(CheckpointError::new(lineno, "truncated howard entry"));
                    }
                    let np: usize = toks[4]
                        .parse()
                        .map_err(|_| CheckpointError::new(lineno, "invalid policy length"))?;
                    let nd: usize = toks[5]
                        .parse()
                        .map_err(|_| CheckpointError::new(lineno, "invalid value length"))?;
                    let values = &toks[6..];
                    if values.len() != np + nd || (nd != 0 && nd != np) {
                        return Err(CheckpointError::new(
                            lineno,
                            format!(
                                "howard entry declares {np}+{nd} values but carries {}",
                                values.len()
                            ),
                        ));
                    }
                    let policy = values[..np]
                        .iter()
                        .map(|t| t.parse::<u32>())
                        .collect::<Result<Vec<_>, _>>()
                        .map_err(|_| CheckpointError::new(lineno, "invalid policy arc id"))?;
                    let dist_bits = if nd == 0 {
                        None
                    } else {
                        Some(
                            values[np..]
                                .iter()
                                .map(|t| t.parse::<u64>())
                                .collect::<Result<Vec<_>, _>>()
                                .map_err(|_| {
                                    CheckpointError::new(lineno, "invalid value bit pattern")
                                })?,
                        )
                    };
                    JobProgress::Howard { policy, dist_bits }
                }
                "interval" => {
                    if toks.len() != 6 {
                        return Err(CheckpointError::new(lineno, "truncated interval entry"));
                    }
                    JobProgress::Interval {
                        lo: parse_ratio(toks[4], lineno)?,
                        hi: parse_ratio(toks[5], lineno)?,
                    }
                }
                other => {
                    return Err(CheckpointError::new(
                        lineno,
                        format!("unknown progress kind `{other}`"),
                    ));
                }
            };
            jobs.insert(job, JobEntry { algorithm, progress });
        }
        if !saw_header {
            return Err(CheckpointError::new(0, "missing `mcr-checkpoint` header"));
        }
        Ok(Checkpoint { jobs })
    }
}

/// With the `serde` feature, a [`Checkpoint`] serializes as its
/// versioned text document (one string), so any serde format can carry
/// it while the parsing and validation stay in [`Checkpoint::from_text`].
#[cfg(feature = "serde")]
impl serde::Serialize for Checkpoint {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.to_text().serialize(serializer)
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for Checkpoint {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error as _;
        let text = String::deserialize(deserializer)?;
        Checkpoint::from_text(&text).map_err(D::Error::custom)
    }
}

/// Shared, thread-safe handle to checkpoint state, attachable to a
/// solve via [`crate::SolveOptions::checkpoints`].
///
/// Clones share the same underlying state (like
/// [`crate::CancelToken`]); worker threads save progress concurrently
/// under one mutex, which is far off any hot path — it is touched only
/// when an attempt is interrupted or a component completes.
///
/// ```
/// use mcr_core::{Algorithm, CheckpointStore, JobProgress};
/// let store = CheckpointStore::new();
/// store.save(0, Algorithm::HowardExact, JobProgress::Howard {
///     policy: vec![1, 2, 0],
///     dist_bits: None,
/// });
/// let text = store.snapshot().to_text();
/// let restored = CheckpointStore::from_checkpoint(
///     mcr_core::Checkpoint::from_text(&text).unwrap());
/// assert!(restored.get(0, Algorithm::HowardExact).is_some());
/// assert!(restored.get(0, Algorithm::Karp).is_none()); // wrong algorithm
/// ```
#[derive(Clone, Debug, Default)]
pub struct CheckpointStore {
    inner: Arc<Mutex<Checkpoint>>,
}

impl CheckpointStore {
    /// A fresh, empty store.
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// A store pre-loaded from a snapshot (e.g. parsed from a file) to
    /// resume from.
    pub fn from_checkpoint(checkpoint: Checkpoint) -> Self {
        CheckpointStore {
            inner: Arc::new(Mutex::new(checkpoint)),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Checkpoint> {
        // A panic while holding this mutex can only come from a solver
        // bug; the stored snapshot itself is always consistent, so
        // recover the guard rather than poisoning every later solve.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Records `progress` for `job`, replacing any previous entry.
    pub fn save(&self, job: u64, algorithm: Algorithm, progress: JobProgress) {
        self.lock().jobs.insert(job, JobEntry { algorithm, progress });
    }

    /// The saved progress for `job`, only if it was recorded by the
    /// same `algorithm` (state is meaningless across algorithms).
    pub fn get(&self, job: u64, algorithm: Algorithm) -> Option<JobProgress> {
        self.lock()
            .jobs
            .get(&job)
            .filter(|e| e.algorithm == algorithm)
            .map(|e| e.progress.clone())
    }

    /// Drops the entry for `job` (called when the job completes, so a
    /// finished component is never "resumed" again).
    pub fn clear(&self, job: u64) {
        self.lock().jobs.remove(&job);
    }

    /// Whether no job has saved progress.
    pub fn is_empty(&self) -> bool {
        self.lock().jobs.is_empty()
    }

    /// A point-in-time copy of the saved state, for persisting.
    pub fn snapshot(&self) -> Checkpoint {
        self.lock().clone()
    }
}

/// Two stores are equal when they share the same underlying state
/// (clones of one another), mirroring [`crate::CancelToken`].
impl PartialEq for CheckpointStore {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Eq for CheckpointStore {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut jobs = BTreeMap::new();
        jobs.insert(
            0,
            JobEntry {
                algorithm: Algorithm::HowardExact,
                progress: JobProgress::Howard {
                    policy: vec![2, 0, 1],
                    dist_bits: None,
                },
            },
        );
        jobs.insert(
            3,
            JobEntry {
                algorithm: Algorithm::Howard,
                progress: JobProgress::Howard {
                    policy: vec![1, 1],
                    dist_bits: Some(vec![0.5f64.to_bits(), (-2.25f64).to_bits()]),
                },
            },
        );
        jobs.insert(
            7,
            JobEntry {
                algorithm: Algorithm::LawlerExact,
                progress: JobProgress::Interval {
                    lo: Ratio64::new(-5, 2),
                    hi: Ratio64::new(7, 3),
                },
            },
        );
        Checkpoint { jobs }
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        let ckpt = sample();
        let text = ckpt.to_text();
        assert!(text.starts_with("mcr-checkpoint v1\n"), "{text}");
        let back = Checkpoint::from_text(&text).expect("parse");
        assert_eq!(back, ckpt);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "# a comment\n\nmcr-checkpoint v1\n# another\njob 1 Karp interval 0/1 5/1\n";
        let ckpt = Checkpoint::from_text(text).expect("parse");
        assert_eq!(ckpt.jobs.len(), 1);
        assert_eq!(ckpt.jobs[&1].algorithm, Algorithm::Karp);
    }

    #[test]
    fn corrupt_checkpoints_are_rejected_with_line_numbers() {
        let cases = [
            ("", "missing", 0),
            ("nonsense\n", "header", 1),
            ("mcr-checkpoint v99\n", "version", 1),
            ("mcr-checkpoint v1\nblob 0 Karp interval 0 1\n", "job", 2),
            ("mcr-checkpoint v1\njob x Karp interval 0 1\n", "job index", 2),
            ("mcr-checkpoint v1\njob 0 Nope interval 0 1\n", "algorithm", 2),
            ("mcr-checkpoint v1\njob 0 Karp wat 0 1\n", "kind", 2),
            ("mcr-checkpoint v1\njob 0 Karp interval 1/0 2\n", "denominator", 2),
            (
                "mcr-checkpoint v1\njob 0 Howard howard 3 0 1 2\n",
                "declares",
                2,
            ),
        ];
        for (text, needle, line) in cases {
            let err = Checkpoint::from_text(text).expect_err(text);
            assert!(
                err.to_string().contains(needle),
                "error for {text:?} was {err}, wanted {needle:?}"
            );
            assert_eq!(err.line(), line, "line for {text:?}");
        }
    }

    #[test]
    fn store_is_shared_and_algorithm_scoped() {
        let store = CheckpointStore::new();
        let alias = store.clone();
        assert!(store.is_empty());
        alias.save(
            4,
            Algorithm::LawlerExact,
            JobProgress::Interval {
                lo: Ratio64::from(0),
                hi: Ratio64::from(10),
            },
        );
        assert!(store.get(4, Algorithm::LawlerExact).is_some());
        assert!(store.get(4, Algorithm::Lawler).is_none(), "wrong algorithm");
        assert!(store.get(5, Algorithm::LawlerExact).is_none(), "wrong job");
        store.clear(4);
        assert!(alias.is_empty());
    }

    #[test]
    fn snapshot_is_a_point_in_time_copy() {
        let store = CheckpointStore::from_checkpoint(sample());
        let snap = store.snapshot();
        store.clear(0);
        assert!(snap.jobs.contains_key(&0), "snapshot must not alias");
        assert!(store.get(0, Algorithm::HowardExact).is_none());
    }

    #[test]
    fn equality_is_identity() {
        let a = CheckpointStore::new();
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, CheckpointStore::new());
    }
}
