//! Karp2: the space-efficient two-pass version of Karp's algorithm.
//!
//! Karp's algorithm stores the full `Θ(n²)` table of `D_k(v)` values.
//! Karp2 (suggested to the original authors by S. Gaubert) reduces the
//! space to `Θ(n)` at the cost of roughly doubling the running time:
//! the first pass computes only `D_n(v)` with two rolling rows; the
//! second pass recomputes each `D_k(v)` row in order while folding it
//! into the running maximum of Karp's formula.

use super::karp::INF;
use crate::budget::BudgetScope;
use crate::driver::SccOutcome;
use crate::error::SolveError;
use crate::instrument::Counters;
use crate::rational::Ratio64;
use crate::solution::Guarantee;
use mcr_graph::Graph;

fn relax_row(g: &Graph, prev: &[i64], cur: &mut [i64], counters: &mut Counters) {
    cur.fill(INF);
    counters.arcs_visited += g.num_arcs() as u64;
    for a in g.arc_ids() {
        let u = g.source(a).index();
        if prev[u] < INF {
            counters.relaxations += 1;
            let cand = prev[u] + g.weight(a);
            let v = g.target(a).index();
            if cand < cur[v] {
                cur[v] = cand;
                counters.distance_updates += 1;
            }
        }
    }
}

/// Karp2, λ only. Each row relaxation (both passes) charges one budget
/// iteration, so a full run costs `2n − 1` charges.
pub(crate) fn lambda_scc(
    g: &Graph,
    counters: &mut Counters,
    scope: &mut BudgetScope,
) -> Result<Ratio64, SolveError> {
    let n = g.num_nodes();
    let mut prev = vec![INF; n];
    let mut cur = vec![INF; n];
    prev[0] = 0;

    // Pass 1: D_n only.
    scope.loop_metrics("core.karp2.level");
    for _k in 1..=n {
        scope.tick_iteration_and_time()?;
        scope.chaos_check("core.karp2.level")?;
        relax_row(g, &prev, &mut cur, counters);
        std::mem::swap(&mut prev, &mut cur);
    }
    let dn = prev.clone();

    // Pass 2: recompute D_k for k = 0..n-1, folding the formula's inner
    // maximum as we go (unreduced fractions, i128 cross-comparison).
    let mut inner_max: Vec<Option<(i64, i64)>> = vec![None; n];
    prev.fill(INF);
    prev[0] = 0;
    for k in 0..n {
        if k > 0 {
            scope.tick_iteration_and_time()?;
            scope.chaos_check("core.karp2.level")?;
            relax_row(g, &cur, &mut prev, counters);
        }
        for v in 0..n {
            if dn[v] >= INF || prev[v] >= INF {
                continue;
            }
            let cand = (dn[v] - prev[v], (n - k) as i64);
            let bigger = inner_max[v].is_none_or(|(bn, bd)| {
                cand.0 as i128 * (bd as i128) > bn as i128 * (cand.1 as i128)
            });
            if bigger {
                inner_max[v] = Some(cand);
            }
        }
        std::mem::swap(&mut prev, &mut cur);
        // After the swap, `cur` holds row k (input of the next round).
    }

    Ok((0..n)
        .filter_map(|v| inner_max[v])
        .map(|(num, den)| Ratio64::new(num, den))
        .min()
        .expect("strongly connected cyclic graph has a finite cycle mean"))
}

/// Karp2 on one strongly connected, cyclic component.
pub(crate) fn solve_scc(
    g: &Graph,
    counters: &mut Counters,
    ws: &mut crate::workspace::Workspace,
    scope: &mut BudgetScope,
) -> Result<SccOutcome, SolveError> {
    let lambda = lambda_scc(g, counters, scope)?;
    let cycle = crate::critical::critical_cycle_ws(g, lambda, ws, scope)?;
    Ok(SccOutcome {
        lambda,
        cycle,
        guarantee: Guarantee::Exact,
        solved_by: crate::Algorithm::Karp2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_graph::graph::from_arc_list;

    fn karp2_solve(g: &Graph, c: &mut Counters) -> SccOutcome {
        let mut scope = BudgetScope::unlimited(crate::Algorithm::Karp2);
        solve_scc(g, c, &mut crate::workspace::Workspace::new(), &mut scope).expect("unlimited")
    }

    fn karp_solve(g: &Graph, c: &mut Counters) -> SccOutcome {
        let mut scope = BudgetScope::unlimited(crate::Algorithm::Karp);
        super::super::karp::solve_scc(g, c, &mut crate::workspace::Workspace::new(), &mut scope)
            .expect("unlimited")
    }

    fn lambda_of(g: &Graph) -> Ratio64 {
        let mut c = Counters::new();
        karp2_solve(g, &mut c).lambda
    }

    #[test]
    fn matches_karp_on_small_graphs() {
        use mcr_gen::sprand::{sprand, SprandConfig};
        for seed in 0..25 {
            let g = sprand(&SprandConfig::new(10, 26).seed(seed).weight_range(-20, 20));
            let mut c1 = Counters::new();
            let karp = karp_solve(&g, &mut c1).lambda;
            assert_eq!(lambda_of(&g), karp, "seed {seed}");
        }
    }

    #[test]
    fn single_ring_fraction() {
        let g = from_arc_list(3, &[(0, 1, 1), (1, 2, 1), (2, 0, 2)]);
        assert_eq!(lambda_of(&g), Ratio64::new(4, 3));
    }

    #[test]
    fn does_double_the_arc_visits_of_karp() {
        let g = from_arc_list(4, &[(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4), (1, 0, 9)]);
        let mut c_karp = Counters::new();
        karp_solve(&g, &mut c_karp);
        let mut c_karp2 = Counters::new();
        karp2_solve(&g, &mut c_karp2);
        // Pass 1 visits n·m arcs, pass 2 visits (n-1)·m more.
        assert!(c_karp2.arcs_visited > c_karp.arcs_visited);
        assert!(c_karp2.arcs_visited <= 2 * c_karp.arcs_visited);
    }

    #[test]
    fn self_loop() {
        let g = from_arc_list(1, &[(0, 0, 5)]);
        assert_eq!(lambda_of(&g), Ratio64::from(5));
    }
}
