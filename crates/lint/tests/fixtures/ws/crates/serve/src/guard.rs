pub struct RequestGuard {
    scope: BudgetScope,
}
