//! Brute-force reference solver: enumerate every simple cycle.
//!
//! Johnson's simple-cycle enumeration, usable only on small graphs, is
//! the independent ground truth the whole algorithm suite is
//! differential-tested against. It shares no code with any of the ten
//! study algorithms.

use crate::rational::Ratio64;
use mcr_graph::{ArcId, Graph};

/// Enumerates all simple cycles of `g` (as arc sequences), invoking
/// `visit` on each.
///
/// Self-loops and cycles through parallel arcs are all enumerated
/// separately. Exponential in general — intended for graphs with at
/// most a few dozen nodes (tests only).
pub fn for_each_simple_cycle(g: &Graph, mut visit: impl FnMut(&[ArcId])) {
    let n = g.num_nodes();
    // Johnson-style: for each root r, enumerate cycles whose smallest
    // node is r, restricted to nodes >= r.
    let mut blocked = vec![false; n];
    let mut path: Vec<ArcId> = Vec::new();

    fn dfs(
        g: &Graph,
        root: usize,
        v: usize,
        blocked: &mut Vec<bool>,
        path: &mut Vec<ArcId>,
        visit: &mut impl FnMut(&[ArcId]),
    ) {
        blocked[v] = true;
        for &a in g.out_arcs(mcr_graph::NodeId::new(v)) {
            let w = g.target(a).index();
            if w < root {
                continue;
            }
            if w == root {
                path.push(a);
                visit(path);
                path.pop();
            } else if !blocked[w] {
                path.push(a);
                dfs(g, root, w, blocked, path, visit);
                path.pop();
            }
        }
        blocked[v] = false;
    }

    for root in 0..n {
        dfs(g, root, root, &mut blocked, &mut path, &mut visit);
    }
}

/// The exact minimum cycle mean of `g` with a witness cycle, by
/// exhaustive enumeration, or `None` if `g` is acyclic.
pub fn brute_force_min_mean(g: &Graph) -> Option<(Ratio64, Vec<ArcId>)> {
    let mut best: Option<(Ratio64, Vec<ArcId>)> = None;
    for_each_simple_cycle(g, |cycle| {
        let w: i64 = cycle.iter().map(|&a| g.weight(a)).sum();
        let mean = Ratio64::new(w, cycle.len() as i64);
        if best.as_ref().is_none_or(|(b, _)| mean < *b) {
            best = Some((mean, cycle.to_vec()));
        }
    });
    best
}

/// The exact minimum cost-to-time ratio of `g` with a witness cycle, by
/// exhaustive enumeration. Cycles with zero total transit time are
/// skipped (their ratio is undefined). Returns `None` if `g` has no
/// cycle with positive transit time.
pub fn brute_force_min_ratio(g: &Graph) -> Option<(Ratio64, Vec<ArcId>)> {
    let mut best: Option<(Ratio64, Vec<ArcId>)> = None;
    for_each_simple_cycle(g, |cycle| {
        let w: i64 = cycle.iter().map(|&a| g.weight(a)).sum();
        let t: i64 = cycle.iter().map(|&a| g.transit(a)).sum();
        if t == 0 {
            return;
        }
        let ratio = Ratio64::new(w, t);
        if best.as_ref().is_none_or(|(b, _)| ratio < *b) {
            best = Some((ratio, cycle.to_vec()));
        }
    });
    best
}

/// Number of simple cycles of `g` (the `α` in the paper's Howard
/// bound `O(nmα)`).
pub fn count_simple_cycles(g: &Graph) -> u64 {
    let mut count = 0;
    for_each_simple_cycle(g, |_| count += 1);
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::check_cycle;
    use mcr_graph::graph::from_arc_list;

    #[test]
    fn ring_has_one_cycle() {
        let g = from_arc_list(4, &[(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4)]);
        assert_eq!(count_simple_cycles(&g), 1);
        let (mean, cyc) = brute_force_min_mean(&g).expect("cyclic");
        assert_eq!(mean, Ratio64::new(10, 4));
        assert!(check_cycle(&g, &cyc).is_ok());
    }

    #[test]
    fn complete_graph_cycle_count() {
        // K3 directed: cycles = 3 two-cycles + 2 three-cycles = 5.
        let g = from_arc_list(3, &[(0, 1, 1), (1, 0, 1), (0, 2, 1), (2, 0, 1), (1, 2, 1), (2, 1, 1)]);
        assert_eq!(count_simple_cycles(&g), 5);
    }

    #[test]
    fn self_loops_and_parallel_arcs_counted() {
        let g = from_arc_list(2, &[(0, 0, 1), (0, 1, 2), (0, 1, 3), (1, 0, 4)]);
        // Self-loop + two distinct 2-cycles through the parallel arcs.
        assert_eq!(count_simple_cycles(&g), 3);
        let (mean, _) = brute_force_min_mean(&g).expect("cyclic");
        assert_eq!(mean, Ratio64::from(1));
    }

    #[test]
    fn acyclic_returns_none() {
        let g = from_arc_list(3, &[(0, 1, 1), (1, 2, 1), (0, 2, 1)]);
        assert!(brute_force_min_mean(&g).is_none());
        assert!(brute_force_min_ratio(&g).is_none());
    }

    #[test]
    fn ratio_skips_zero_transit_cycles() {
        let mut b = mcr_graph::GraphBuilder::new();
        let v = b.add_nodes(2);
        // Zero-transit 2-cycle, plus a self-loop with transit 2.
        b.add_arc_with_transit(v[0], v[1], 1, 0);
        b.add_arc_with_transit(v[1], v[0], 1, 0);
        b.add_arc_with_transit(v[0], v[0], 6, 2);
        let g = b.build();
        let (ratio, cyc) = brute_force_min_ratio(&g).expect("one valid cycle");
        assert_eq!(ratio, Ratio64::from(3));
        assert_eq!(cyc.len(), 1);
    }

    #[test]
    fn min_mean_vs_min_ratio_differ() {
        let mut b = mcr_graph::GraphBuilder::new();
        let v = b.add_nodes(3);
        // Cycle A: w=4, |C|=2, t=4 → mean 2, ratio 1.
        b.add_arc_with_transit(v[0], v[1], 2, 2);
        b.add_arc_with_transit(v[1], v[0], 2, 2);
        // Cycle B (self-loop): w=1, |C|=1, t=4 → mean 1, ratio 1/4.
        b.add_arc_with_transit(v[2], v[2], 1, 4);
        let g = b.build();
        assert_eq!(brute_force_min_mean(&g).unwrap().0, Ratio64::from(1));
        assert_eq!(brute_force_min_ratio(&g).unwrap().0, Ratio64::new(1, 4));
    }
}
