//! Solver results: the optimum value, a witness cycle, and the
//! optimality guarantee.

use crate::algorithms::Algorithm;
use crate::instrument::Counters;
use crate::rational::Ratio64;
use mcr_graph::{ArcId, Graph, NodeId};

/// What a solver promises about the [`Solution::lambda`] it returned.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Guarantee {
    /// `lambda` is exactly the optimum cycle mean/ratio.
    Exact,
    /// `lambda` is the exact mean/ratio of the returned witness cycle,
    /// and the optimum lies within `eps` of it (approximate algorithms:
    /// Lawler, OA1, Howard with coarse precision).
    Epsilon(f64),
}

impl Guarantee {
    /// Whether the result is certified optimal.
    pub fn is_exact(self) -> bool {
        matches!(self, Guarantee::Exact)
    }
}

/// The result of a minimum cycle mean / cycle ratio computation.
///
/// `lambda` is always the *exact* rational mean (or ratio) of the
/// witness `cycle`; for approximate algorithms the optimum may be up to
/// the guarantee's epsilon below it.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Solution {
    /// The optimum (or near-optimum) cycle mean or cost-to-time ratio.
    pub lambda: Ratio64,
    /// A witness cycle achieving `lambda`, as a sequence of arc ids of
    /// the original input graph, in traversal order (the target of each
    /// arc is the source of the next, cyclically).
    pub cycle: Vec<ArcId>,
    /// Optimality guarantee.
    pub guarantee: Guarantee,
    /// The algorithm that actually produced this result. Normally the
    /// one the caller asked for; under graceful degradation
    /// ([`crate::FallbackChain`]) it records which member of the chain
    /// answered for the winning component.
    pub solved_by: Algorithm,
    /// Operation counts accumulated while solving.
    pub counters: Counters,
}

impl Solution {
    /// The nodes of the witness cycle, in traversal order (one per arc).
    pub fn cycle_nodes(&self, g: &Graph) -> Vec<NodeId> {
        self.cycle.iter().map(|&a| g.source(a)).collect()
    }

    /// Recomputes the mean (weight over length) of the witness cycle.
    ///
    /// # Panics
    ///
    /// Panics on a malformed witness (empty cycle, or a mean whose
    /// reduced form no longer fits `i64/i64`) — impossible for
    /// solutions produced by this crate. Use [`Solution::try_cycle_mean`]
    /// for untrusted data.
    pub fn cycle_mean(&self, g: &Graph) -> Ratio64 {
        // lint: allow(panic) reason=documented panicking convenience API; try_cycle_mean is the fallible form
        self.try_cycle_mean(g).expect("well-formed witness cycle")
    }

    /// Fallible [`Solution::cycle_mean`]: the accumulation is exact in
    /// `i128`, so this is `None` only for an empty cycle or a value
    /// outside `i64/i64`.
    pub fn try_cycle_mean(&self, g: &Graph) -> Option<Ratio64> {
        let (w, _) = cycle_totals(g, &self.cycle);
        Ratio64::try_from_i128(w, self.cycle.len() as i128)
    }

    /// Recomputes the cost-to-time ratio (weight over transit time) of
    /// the witness cycle.
    ///
    /// # Panics
    ///
    /// Panics if the cycle's total transit time is zero. Use
    /// [`Solution::try_cycle_ratio`] for untrusted data.
    pub fn cycle_ratio(&self, g: &Graph) -> Ratio64 {
        let (_, t) = cycle_totals(g, &self.cycle);
        assert!(t > 0, "witness cycle has zero transit time");
        // lint: allow(panic) reason=documented panicking convenience API; try_cycle_ratio is the fallible form
        self.try_cycle_ratio(g).expect("well-formed witness cycle")
    }

    /// Fallible [`Solution::cycle_ratio`]: `None` if the cycle's total
    /// transit time is not positive or the reduced ratio does not fit
    /// `i64/i64`.
    pub fn try_cycle_ratio(&self, g: &Graph) -> Option<Ratio64> {
        let (w, t) = cycle_totals(g, &self.cycle);
        if t <= 0 {
            return None;
        }
        Ratio64::try_from_i128(w, t)
    }
}

/// Exact total weight and transit time of `cycle`, accumulated in
/// `i128` (a sum of at most `usize::MAX` `i64` terms cannot overflow
/// `i128`, so this never wraps — the fallibility of downstream
/// consumers is confined to fitting the *reduced ratio* back into
/// [`Ratio64`]).
pub fn cycle_totals(g: &Graph, cycle: &[ArcId]) -> (i128, i128) {
    let mut weight = 0i128;
    let mut transit = 0i128;
    for &a in cycle {
        weight += g.weight(a) as i128;
        transit += g.transit(a) as i128;
    }
    (weight, transit)
}

/// Checks that `cycle` is a well-formed cycle in `g`: nonempty, each
/// arc's target is the next arc's source, and the last arc returns to
/// the first arc's source. Returns its `(weight, length, transit)`.
///
/// Used by tests and debug assertions throughout the crate.
pub fn check_cycle(g: &Graph, cycle: &[ArcId]) -> Result<(i64, usize, i64), String> {
    if cycle.is_empty() {
        return Err("empty cycle".into());
    }
    let mut weight = 0i64;
    let mut transit = 0i64;
    for (i, &a) in cycle.iter().enumerate() {
        let next = cycle[(i + 1) % cycle.len()];
        if g.target(a) != g.source(next) {
            return Err(format!(
                "arc {a:?} ends at {:?} but next arc {next:?} starts at {:?}",
                g.target(a),
                g.source(next)
            ));
        }
        weight = weight
            .checked_add(g.weight(a))
            .ok_or_else(|| format!("cycle weight overflows i64 at arc {a:?}"))?;
        transit = transit
            .checked_add(g.transit(a))
            .ok_or_else(|| format!("cycle transit overflows i64 at arc {a:?}"))?;
    }
    Ok((weight, cycle.len(), transit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_graph::graph::from_arc_list;

    #[test]
    fn check_cycle_accepts_valid() {
        let g = from_arc_list(3, &[(0, 1, 2), (1, 2, 3), (2, 0, 4)]);
        let cycle: Vec<ArcId> = g.arc_ids().collect();
        let (w, len, t) = check_cycle(&g, &cycle).expect("valid cycle");
        assert_eq!((w, len, t), (9, 3, 3));
    }

    #[test]
    fn check_cycle_rejects_broken() {
        let g = from_arc_list(3, &[(0, 1, 2), (1, 2, 3), (2, 0, 4)]);
        let bad = vec![ArcId::new(0), ArcId::new(2)];
        assert!(check_cycle(&g, &bad).is_err());
        assert!(check_cycle(&g, &[]).is_err());
    }

    #[test]
    fn solution_helpers() {
        let g = from_arc_list(2, &[(0, 1, 3), (1, 0, 5)]);
        let s = Solution {
            lambda: Ratio64::new(4, 1),
            cycle: g.arc_ids().collect(),
            guarantee: Guarantee::Exact,
            solved_by: Algorithm::HowardExact,
            counters: Counters::new(),
        };
        assert_eq!(s.cycle_mean(&g), Ratio64::from(4));
        assert_eq!(s.cycle_ratio(&g), Ratio64::from(4));
        assert_eq!(s.cycle_nodes(&g), vec![NodeId::new(0), NodeId::new(1)]);
        assert!(s.guarantee.is_exact());
        assert!(!Guarantee::Epsilon(0.5).is_exact());
        assert_eq!(s.solved_by, Algorithm::HowardExact);
    }

    #[test]
    fn check_cycle_reports_overflow_instead_of_wrapping() {
        let g = from_arc_list(2, &[(0, 1, i64::MAX), (1, 0, i64::MAX)]);
        let cycle: Vec<ArcId> = g.arc_ids().collect();
        let err = check_cycle(&g, &cycle).expect_err("sum overflows i64");
        assert!(err.contains("overflows"), "{err}");
        // The exact i128 totals are still available.
        let (w, t) = cycle_totals(&g, &cycle);
        assert_eq!(w, 2 * i64::MAX as i128);
        assert_eq!(t, 2);
    }
}
