//! Solver configuration shared by the public entry points.

/// Options for the per-SCC solver driver.
///
/// ```
/// use mcr_core::{Algorithm, SolveOptions};
/// use mcr_graph::graph::from_arc_list;
/// let g = from_arc_list(4, &[(0, 1, 4), (1, 0, 4), (2, 3, 1), (3, 2, 1)]);
/// let opts = SolveOptions::new().threads(2);
/// let sol = Algorithm::HowardExact.solve_with_options(&g, &opts).unwrap();
/// assert_eq!(sol.lambda, mcr_core::Ratio64::from(1));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolveOptions {
    /// Number of worker threads for solving strongly connected
    /// components in parallel. `1` (the default) is the sequential
    /// legacy path; `0` means "use [`std::thread::available_parallelism`]".
    ///
    /// Results are **bit-identical** for every thread count: components
    /// are reduced in a fixed order with a strict comparison, and
    /// counters merge commutatively. Parallelism only helps on inputs
    /// with several nontrivial components.
    pub threads: usize,
    /// Precision for the ε-approximate algorithms; `None` uses
    /// [`crate::Algorithm::default_epsilon`]. Exact algorithms ignore it.
    pub epsilon: Option<f64>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            threads: 1,
            epsilon: None,
        }
    }
}

impl SolveOptions {
    /// The default options: sequential, default precision.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker thread count (`0` = auto-detect).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the precision for approximate algorithms.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon <= 0` or is not finite.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "epsilon must be positive and finite"
        );
        self.epsilon = Some(epsilon);
        self
    }

    /// The concrete worker count: `threads`, or the machine's available
    /// parallelism when `threads == 0` (falling back to 1 if that cannot
    /// be determined).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sequential() {
        let opts = SolveOptions::default();
        assert_eq!(opts.threads, 1);
        assert_eq!(opts.effective_threads(), 1);
        assert!(opts.epsilon.is_none());
    }

    #[test]
    fn zero_threads_autodetects() {
        let opts = SolveOptions::new().threads(0);
        assert!(opts.effective_threads() >= 1);
    }

    #[test]
    fn builder_sets_fields() {
        let opts = SolveOptions::new().threads(4).epsilon(1e-3);
        assert_eq!(opts.threads, 4);
        assert_eq!(opts.effective_threads(), 4);
        assert_eq!(opts.epsilon, Some(1e-3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_epsilon_rejected() {
        let _ = SolveOptions::new().epsilon(0.0);
    }
}
