//! EXP-4.1 — the minimum cycle mean versus the graph parameters.
//!
//! §4.1: "the minimum cycle mean is almost independent of the number of
//! nodes, and it changes inversely with the density of the graph",
//! because denser graphs contain more cycles and the critical cycles
//! get smaller. This harness prints λ* (seed-averaged) and the critical
//! cycle length over the SPRAND grid.
//!
//! `cargo run -p mcr-bench --release --bin mcm_vs_params [--full]`

use mcr_bench::{print_table, HarnessConfig};
use mcr_core::Algorithm;

fn main() {
    let cfg = HarnessConfig::from_args();
    let header: Vec<String> = vec![
        "n".into(),
        "m".into(),
        "m/n".into(),
        "mean lambda*".into(),
        "mean |C|".into(),
    ];
    let mut rows = Vec::new();
    for &(n, m) in &cfg.grid {
        let mut lam_sum = 0.0;
        let mut len_sum = 0.0;
        for seed in 0..cfg.seeds {
            let g = cfg.instance(n, m, seed);
            let sol = Algorithm::HowardExact.solve(&g).expect("cyclic");
            lam_sum += sol.lambda.to_f64();
            len_sum += sol.cycle.len() as f64;
        }
        rows.push(vec![
            n.to_string(),
            m.to_string(),
            format!("{:.1}", m as f64 / n as f64),
            format!("{:.2}", lam_sum / cfg.seeds as f64),
            format!("{:.1}", len_sum / cfg.seeds as f64),
        ]);
    }
    println!(
        "EXP-4.1: lambda* vs graph parameters ({} seeds per point)",
        cfg.seeds
    );
    print_table(&header, &rows);
    println!("\nExpected shape (§4.1): along a fixed n, lambda* drops as m/n grows;");
    println!("along fixed m/n, lambda* is nearly independent of n; critical cycles");
    println!("shrink with density.");
}
