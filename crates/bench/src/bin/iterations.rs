//! EXP-4.3 — iteration counts of the iterative algorithms.
//!
//! §4.3: Burns', KO, YTO and Howard's algorithms iterate until
//! convergence; HO's "iteration count" is the level k it reaches. The
//! paper observes: counts stay below n (around n/2 for Burns/KO/YTO on
//! strongly connected random graphs unless m = n); Burns iterates less
//! than KO; KO and YTO match exactly; Howard's count is drastically
//! smaller than everyone else's and shrinks with density.
//!
//! `cargo run -p mcr-bench --release --bin iterations [--full]`

use mcr_bench::{fits_in_memory, print_table, HarnessConfig};
use mcr_core::Algorithm;

fn main() {
    let cfg = HarnessConfig::from_args();
    let algs = [
        Algorithm::Burns,
        Algorithm::Ko,
        Algorithm::Yto,
        Algorithm::Howard,
        Algorithm::Ho,
    ];
    let mut header: Vec<String> = vec!["n".into(), "m".into()];
    header.extend(algs.iter().map(|a| format!("{} iters", a.name())));
    header.push("iters/n (KO)".into());

    let mut rows = Vec::new();
    for &(n, m) in &cfg.grid {
        let mut row = vec![n.to_string(), m.to_string()];
        let mut ko_iters = 0.0;
        for alg in algs {
            if !fits_in_memory(alg, n) {
                row.push("N/A".into());
                continue;
            }
            let mut total = 0u64;
            for seed in 0..cfg.seeds {
                let g = cfg.instance(n, m, seed);
                total += alg.solve(&g).expect("cyclic").counters.iterations;
            }
            let avg = total as f64 / cfg.seeds as f64;
            if alg == Algorithm::Ko {
                ko_iters = avg;
            }
            row.push(format!("{avg:.1}"));
        }
        row.push(format!("{:.2}", ko_iters / n as f64));
        rows.push(row);
        eprintln!("done n={n} m={m}");
    }
    println!(
        "EXP-4.3: mean iteration counts over {} seeds (HO column = final level k)",
        cfg.seeds
    );
    print_table(&header, &rows);
    println!("\nExpected shape (§4.3): all counts < n; Burns ≤ KO = YTO ≈ n/2 for m > n;");
    println!("Howard's count is drastically smaller and tends to shrink with density.");
}
