pub fn stamp_now() -> Instant {
    Instant::now()
}
