//! The `mcr-req v1` / `mcr-resp v1` wire protocol.
//!
//! One frame ([`crate::frame`]) carries one JSON object. Requests:
//!
//! ```json
//! {"schema":"mcr-req v1","id":1,"op":"solve",
//!  "graph":"p edge 3 3\n...","algorithm":"howard-exact",
//!  "objective":"ratio","maximize":false,"epsilon":1e-6,
//!  "deadline_ms":250,"budget":"iters=400,time=200ms",
//!  "fallback":"karp,burns-exact","threads":1}
//! ```
//!
//! `op` is one of `solve`, `edit`, `ping`, `metrics`, `shutdown`. A
//! solve request names its graph either inline (`graph`, DIMACS text)
//! or by content hash (`graph_hash`, 16 lowercase hex digits of the
//! FNV-1a hash of the exact DIMACS text) to hit the daemon's cache
//! without re-sending the instance. Unknown keys are ignored (forward
//! compatibility); unknown values of known keys are typed input errors.
//!
//! An `edit` request mutates a cached instance in place and re-answers
//! incrementally from the daemon's [`mcr_core::DynamicSolver`] — no
//! re-parse, no re-send. Its `edits` array carries `mcr-edits v1` edit
//! objects (`op` one of `insert`/`delete`/`reweight`/`retime` plus the
//! op's scalar fields; see `schemas/mcr-edits-v1.txt`):
//!
//! ```json
//! {"schema":"mcr-req v1","id":2,"op":"edit",
//!  "graph_hash":"1234567890abcdef","algorithm":"howard-exact",
//!  "edits":[{"op":"reweight","arc":0,"weight":9},
//!           {"op":"insert","src":1,"dst":0,"weight":3,"transit":1}]}
//! ```
//!
//! After an `edit` settles, the hash names the *mutated* instance: it
//! is a handle to an evolving graph, not a digest of its current text.
//!
//! Responses echo the request `id` — the daemon may interleave
//! responses from concurrent workers in any order, so clients MUST
//! match on `id`, not arrival order:
//!
//! ```json
//! {"schema":"mcr-resp v1","id":1,"status":"ok","code":0,
//!  "graph_hash":"1234567890abcdef","acyclic":false,
//!  "lambda":"7/2","lambda_f64":3.5,"guarantee":"exact",
//!  "solved_by":"Howard-exact","cycle":[0,2,5]}
//! ```
//!
//! `status`/`code` mirror [`SolveStatus`] and the CLI exit taxonomy
//! exactly — a request that would exit the one-shot CLI with code 2
//! produces `"status":"budget-exhausted","code":2` here. Failure
//! responses carry `error` (human-readable) and, when the condition is
//! load shedding, `retry_after_ms`.

// Everything here parses bytes off a socket; reject, never panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

use crate::json::{self, ObjWriter, Value};
use mcr_core::spec::{parse_budget_spec, parse_fallback_spec};
use mcr_core::{
    Algorithm, Budget, DynamicOutcome, Edit, FallbackChain, Guarantee, Objective, Solution,
    SolveSpec, SolveStatus,
};

/// Schema tag every request must carry.
pub const REQ_SCHEMA: &str = "mcr-req v1";
/// Schema tag every response carries.
pub const RESP_SCHEMA: &str = "mcr-resp v1";

/// Most worker threads a single request may ask for: a service must
/// not let one request commandeer the whole box.
pub const MAX_REQUEST_THREADS: usize = 8;

/// A parsed, validated request.
#[derive(Debug)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// What to do.
    pub op: Op,
}

/// The operations of `mcr-req v1`.
#[derive(Debug)]
pub enum Op {
    /// Solve a cycle mean / cycle ratio instance.
    Solve(Box<SolveJob>),
    /// Mutate a cached instance and re-answer incrementally.
    Edit(Box<EditJob>),
    /// Liveness probe.
    Ping,
    /// Dump the daemon's `mcr-metrics v1` counters.
    Metrics,
    /// Ask the daemon to stop accepting work and exit.
    Shutdown,
}

/// A fully validated solve request, ready for the worker pool.
#[derive(Debug, Clone)]
pub struct SolveJob {
    /// Algorithm, objective, orientation.
    pub spec: SolveSpec,
    /// Inline DIMACS text, if the client sent the instance.
    pub graph_text: Option<String>,
    /// Content hash, if the client referenced a cached instance (also
    /// cross-checked against `graph_text` when both are present).
    pub graph_hash: Option<u64>,
    /// Precision override for the approximate algorithms.
    pub epsilon: Option<f64>,
    /// Relative deadline, measured from *admission* (not dequeue): the
    /// worker converts it to one absolute [`std::time::Instant`].
    pub deadline_ms: Option<u64>,
    /// Work limits, parsed from the CLI's `--budget` mini-language.
    pub budget: Option<Budget>,
    /// Fallback override, parsed from the CLI's `--fallback` spec.
    pub fallback: Option<FallbackChain>,
    /// Intra-solve threads, clamped to `1..=`[`MAX_REQUEST_THREADS`].
    pub threads: usize,
    /// Set by a client re-sending after a possibly-delivered write: ask
    /// the daemon to suppress a duplicate solve by answering from the
    /// journal when this id already settled.
    pub dedup: bool,
}

/// A fully validated `edit` request: an edit batch against a cached
/// (or inline-seeded) instance, answered by the daemon's persistent
/// [`mcr_core::DynamicSolver`] for that instance.
#[derive(Debug, Clone)]
pub struct EditJob {
    /// Algorithm, objective, orientation the incremental answer is for.
    pub spec: SolveSpec,
    /// Inline DIMACS text, to seed the cache when the instance is new.
    pub graph_text: Option<String>,
    /// Content hash naming the instance to mutate.
    pub graph_hash: Option<u64>,
    /// Precision override for the approximate algorithms.
    pub epsilon: Option<f64>,
    /// Intra-solve threads, clamped to `1..=`[`MAX_REQUEST_THREADS`].
    pub threads: usize,
    /// The edit batch, applied atomically (all or none).
    pub edits: Vec<Edit>,
}

/// Why a request was rejected at parse time. Carries whatever `id`
/// could be salvaged so the rejection can still be correlated.
#[derive(Debug)]
pub struct RequestError {
    /// The request's `id` if it parsed, else 0.
    pub id: u64,
    /// What was wrong.
    pub message: String,
}

fn fail(id: u64, message: impl Into<String>) -> RequestError {
    RequestError {
        id,
        message: message.into(),
    }
}

/// Parses and validates one request frame.
pub fn parse_request(payload: &[u8]) -> Result<Request, RequestError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| fail(0, format!("request is not UTF-8: {e}")))?;
    let value = json::parse(text).map_err(|e| fail(0, format!("request is not JSON: {e}")))?;
    let obj = match &value {
        Value::Obj(_) => &value,
        _ => return Err(fail(0, "request must be a JSON object")),
    };
    // Salvage the id first so every later rejection is correlatable.
    let id = obj.get("id").and_then(Value::as_u64).unwrap_or(0);
    match obj.get("schema").and_then(Value::as_str) {
        Some(REQ_SCHEMA) => {}
        Some(other) => return Err(fail(id, format!("unsupported schema {other:?}"))),
        None => return Err(fail(id, format!("missing schema (expected {REQ_SCHEMA:?})"))),
    }
    if obj.get("id").and_then(Value::as_u64).is_none() {
        return Err(fail(0, "missing or non-integer id"));
    }
    let op = match obj.get("op").and_then(Value::as_str) {
        Some("solve") => Op::Solve(Box::new(parse_solve(id, obj)?)),
        Some("edit") => Op::Edit(Box::new(parse_edit(id, obj)?)),
        Some("ping") => Op::Ping,
        Some("metrics") => Op::Metrics,
        Some("shutdown") => Op::Shutdown,
        Some(other) => return Err(fail(id, format!("unknown op {other:?}"))),
        None => return Err(fail(id, "missing op")),
    };
    Ok(Request { id, op })
}

/// Parses the `algorithm`/`objective`/`maximize` triple shared by the
/// `solve` and `edit` ops.
fn parse_spec(id: u64, obj: &Value) -> Result<SolveSpec, RequestError> {
    let algorithm = match obj.get("algorithm").and_then(Value::as_str) {
        None => Algorithm::HowardExact,
        Some(name) => Algorithm::by_name(name)
            .ok_or_else(|| fail(id, format!("unknown algorithm {name:?}")))?,
    };
    let objective = match obj.get("objective").and_then(Value::as_str) {
        None => Objective::Mean,
        Some(name) => Objective::by_name(name)
            .ok_or_else(|| fail(id, format!("unknown objective {name:?} (mean|ratio)")))?,
    };
    let maximize = obj.get("maximize").and_then(Value::as_bool).unwrap_or(false);
    let mut spec = match objective {
        Objective::Mean => SolveSpec::mean(algorithm),
        Objective::Ratio => SolveSpec::ratio(algorithm),
    };
    if maximize {
        spec = spec.maximize();
    }
    Ok(spec)
}

/// Parses the `graph`/`graph_hash` pair shared by `solve` and `edit`.
fn parse_instance(
    id: u64,
    obj: &Value,
    what: &str,
) -> Result<(Option<String>, Option<u64>), RequestError> {
    let graph_text = obj
        .get("graph")
        .and_then(Value::as_str)
        .map(|s| s.to_string());
    let graph_hash = match obj.get("graph_hash").and_then(Value::as_str) {
        None => None,
        Some(hex) => Some(
            parse_hash(hex).ok_or_else(|| fail(id, format!("malformed graph_hash {hex:?}")))?,
        ),
    };
    if graph_text.is_none() && graph_hash.is_none() {
        return Err(fail(id, format!("{what} request needs graph or graph_hash")));
    }
    Ok((graph_text, graph_hash))
}

fn parse_solve(id: u64, obj: &Value) -> Result<SolveJob, RequestError> {
    let spec = parse_spec(id, obj)?;
    let (graph_text, graph_hash) = parse_instance(id, obj, "solve")?;
    let epsilon = obj.get("epsilon").and_then(Value::as_f64);
    let deadline_ms = obj.get("deadline_ms").and_then(Value::as_u64);
    let budget = match obj.get("budget").and_then(Value::as_str) {
        None => None,
        Some(spec) => {
            Some(parse_budget_spec(spec).map_err(|e| fail(id, format!("bad budget: {e}")))?)
        }
    };
    let fallback = match obj.get("fallback").and_then(Value::as_str) {
        None => None,
        Some(spec) => {
            Some(parse_fallback_spec(spec).map_err(|e| fail(id, format!("bad fallback: {e}")))?)
        }
    };
    let threads = obj
        .get("threads")
        .and_then(Value::as_u64)
        .map(|t| (t as usize).clamp(1, MAX_REQUEST_THREADS))
        .unwrap_or(1);
    let dedup = obj.get("dedup").and_then(Value::as_bool).unwrap_or(false);
    Ok(SolveJob {
        spec,
        graph_text,
        graph_hash,
        epsilon,
        deadline_ms,
        budget,
        fallback,
        threads,
        dedup,
    })
}

/// JSON integers arrive as [`Value::Num`]; accept exactly those that
/// are whole and fit `i64` (weights may be negative on the wire).
fn as_i64(v: &Value) -> Option<i64> {
    match v.as_f64() {
        Some(n) if n.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&n) => {
            Some(n as i64)
        }
        _ => None,
    }
}

fn parse_one_edit(id: u64, idx: usize, v: &Value) -> Result<Edit, RequestError> {
    let num = |key: &'static str| {
        v.get(key)
            .and_then(as_i64)
            .ok_or_else(|| fail(id, format!("edit {idx}: missing or non-integer {key:?}")))
    };
    let index = |key: &'static str| {
        num(key).and_then(|n| {
            usize::try_from(n).map_err(|_| fail(id, format!("edit {idx}: negative {key:?}")))
        })
    };
    match v.get("op").and_then(Value::as_str) {
        Some("insert") => Ok(Edit::InsertArc {
            src: index("src")?,
            dst: index("dst")?,
            weight: num("weight")?,
            transit: num("transit")?,
        }),
        Some("delete") => Ok(Edit::DeleteArc { arc: index("arc")? }),
        Some("reweight") => Ok(Edit::Reweight {
            arc: index("arc")?,
            weight: num("weight")?,
        }),
        Some("retime") => Ok(Edit::Retime {
            arc: index("arc")?,
            transit: num("transit")?,
        }),
        Some(other) => Err(fail(id, format!("edit {idx}: unknown op {other:?}"))),
        None => Err(fail(id, format!("edit {idx}: missing op"))),
    }
}

fn parse_edit(id: u64, obj: &Value) -> Result<EditJob, RequestError> {
    let spec = parse_spec(id, obj)?;
    let (graph_text, graph_hash) = parse_instance(id, obj, "edit")?;
    let epsilon = obj.get("epsilon").and_then(Value::as_f64);
    let threads = obj
        .get("threads")
        .and_then(Value::as_u64)
        .map(|t| (t as usize).clamp(1, MAX_REQUEST_THREADS))
        .unwrap_or(1);
    let edits = match obj.get("edits") {
        None => Vec::new(),
        Some(Value::Arr(items)) => items
            .iter()
            .enumerate()
            .map(|(idx, v)| parse_one_edit(id, idx, v))
            .collect::<Result<Vec<Edit>, RequestError>>()?,
        Some(_) => return Err(fail(id, "edits must be an array of edit objects")),
    };
    Ok(EditJob {
        spec,
        graph_text,
        graph_hash,
        epsilon,
        threads,
        edits,
    })
}

/// Renders a hash the way the wire expects it: 16 lowercase hex digits.
pub fn format_hash(hash: u64) -> String {
    format!("{hash:016x}")
}

/// Parses a wire-format hash.
pub fn parse_hash(hex: &str) -> Option<u64> {
    if hex.len() != 16 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn resp_base(id: u64, status: SolveStatus) -> ObjWriter {
    ObjWriter::new()
        .str("schema", RESP_SCHEMA)
        .u64("id", id)
        .str("status", status.wire_name())
        .u64("code", u64::from(status.code()))
}

/// Success response for a solved instance.
pub fn resp_solution(id: u64, graph_hash: Option<u64>, sol: &Solution) -> String {
    let mut w = resp_base(id, SolveStatus::Ok);
    if let Some(h) = graph_hash {
        w = w.str("graph_hash", &format_hash(h));
    }
    w = w
        .bool("acyclic", false)
        .str("lambda", &sol.lambda.to_string())
        .f64("lambda_f64", sol.lambda.to_f64());
    w = match sol.guarantee {
        Guarantee::Exact => w.str("guarantee", "exact"),
        Guarantee::Epsilon(e) => w.str("guarantee", "epsilon").f64("epsilon", e),
    };
    let cycle: Vec<String> = sol.cycle.iter().map(|a| a.index().to_string()).collect();
    w.str("solved_by", sol.solved_by.name())
        .raw("cycle", &format!("[{}]", cycle.join(",")))
        .finish()
}

/// Success response for an `edit` op: the incremental answer for the
/// mutated instance, plus `mode` (`"incremental"`/`"full"`) reporting
/// whether the daemon's [`mcr_core::DynamicSolver`] answered from its
/// component cache or fell back to a from-scratch solve.
pub fn resp_edit(id: u64, graph_hash: Option<u64>, outcome: &DynamicOutcome) -> String {
    let mut w = resp_base(id, SolveStatus::Ok);
    if let Some(h) = graph_hash {
        w = w.str("graph_hash", &format_hash(h));
    }
    w = w.str("mode", outcome.mode.name());
    match &outcome.solution {
        None => w.bool("acyclic", true).finish(),
        Some(sol) => {
            w = w
                .bool("acyclic", false)
                .str("lambda", &sol.lambda.to_string())
                .f64("lambda_f64", sol.lambda.to_f64());
            w = match sol.guarantee {
                Guarantee::Exact => w.str("guarantee", "exact"),
                Guarantee::Epsilon(e) => w.str("guarantee", "epsilon").f64("epsilon", e),
            };
            let cycle: Vec<String> = sol.cycle.iter().map(|a| a.index().to_string()).collect();
            w.str("solved_by", sol.solved_by.name())
                .raw("cycle", &format!("[{}]", cycle.join(",")))
                .finish()
        }
    }
}

/// Success response for an acyclic instance (no cycle mean exists).
pub fn resp_acyclic(id: u64, graph_hash: Option<u64>) -> String {
    let mut w = resp_base(id, SolveStatus::Ok);
    if let Some(h) = graph_hash {
        w = w.str("graph_hash", &format_hash(h));
    }
    w.bool("acyclic", true).finish()
}

/// Failure response; `retry_after_ms` is set for load shedding.
pub fn resp_error(
    id: u64,
    status: SolveStatus,
    message: &str,
    retry_after_ms: Option<u64>,
) -> String {
    let mut w = resp_base(id, status)
        .str("error", message)
        .bool("retryable", status.is_retryable());
    if let Some(ms) = retry_after_ms {
        w = w.u64("retry_after_ms", ms);
    }
    w.finish()
}

/// Duplicate-suppressed response: the id already settled, so the
/// journaled outcome is replayed instead of re-solving. Carries
/// `"deduped":true` plus the recorded status and λ (when the original
/// solve produced one); it does not reconstruct the full solution body.
pub fn resp_deduped(id: u64, status: SolveStatus, lambda: Option<&str>) -> String {
    let mut w = resp_base(id, status).bool("deduped", true);
    if let Some(l) = lambda {
        w = w.str("lambda", l);
    }
    w.finish()
}

/// `ping` response.
pub fn resp_pong(id: u64) -> String {
    resp_base(id, SolveStatus::Ok).bool("pong", true).finish()
}

/// `metrics` response: the counter dump rides along as one string of
/// `mcr-metrics v1` JSONL.
pub fn resp_metrics(id: u64, metrics_jsonl: &str) -> String {
    resp_base(id, SolveStatus::Ok)
        .str("metrics", metrics_jsonl)
        .finish()
}

/// `shutdown` acknowledgment.
pub fn resp_shutdown(id: u64) -> String {
    resp_base(id, SolveStatus::Ok)
        .bool("shutting_down", true)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRIANGLE: &str = "p mcr 3 3\na 1 2 1\na 2 3 2\na 3 1 3\n";

    fn req(body: &str) -> Result<Request, RequestError> {
        parse_request(body.as_bytes())
    }

    fn quoted(s: &str) -> String {
        format!("\"{}\"", json::escape(s))
    }

    #[test]
    fn solve_request_round_trips() {
        let graph = quoted(TRIANGLE);
        let r = req(&format!(
            "{{\"schema\":\"mcr-req v1\",\"id\":7,\"op\":\"solve\",\"graph\":{graph},\
             \"algorithm\":\"karp\",\"objective\":\"mean\",\"maximize\":true,\
             \"epsilon\":0.5,\"deadline_ms\":250,\"budget\":\"iters=40\",\
             \"fallback\":\"none\",\"threads\":3}}"
        ))
        .expect("parse");
        assert_eq!(r.id, 7);
        let Op::Solve(job) = r.op else {
            panic!("expected solve")
        };
        assert_eq!(job.spec.algorithm, Algorithm::Karp);
        assert_eq!(job.spec.objective, Objective::Mean);
        assert!(job.spec.maximize);
        assert_eq!(job.graph_text.as_deref(), Some(TRIANGLE));
        assert_eq!(job.epsilon, Some(0.5));
        assert_eq!(job.deadline_ms, Some(250));
        assert_eq!(job.budget.and_then(|b| b.max_iterations), Some(40));
        assert_eq!(job.threads, 3);
    }

    #[test]
    fn defaults_are_howard_exact_mean_minimize() {
        let graph = quoted(TRIANGLE);
        let r = req(&format!(
            "{{\"schema\":\"mcr-req v1\",\"id\":1,\"op\":\"solve\",\"graph\":{graph}}}"
        ))
        .expect("parse");
        let Op::Solve(job) = r.op else {
            panic!("expected solve")
        };
        assert_eq!(job.spec.algorithm, Algorithm::HowardExact);
        assert_eq!(job.spec.objective, Objective::Mean);
        assert!(!job.spec.maximize);
        assert_eq!(job.threads, 1);
    }

    #[test]
    fn rejections_keep_the_id_when_salvageable() {
        let e = req("{\"schema\":\"mcr-req v1\",\"id\":9,\"op\":\"solve\"}").expect_err("no graph");
        assert_eq!(e.id, 9);
        assert!(e.message.contains("graph"));
        let e = req("{\"schema\":\"mcr-req v1\",\"id\":9,\"op\":\"fry\"}").expect_err("bad op");
        assert!(e.message.contains("unknown op"));
        let e = req("{\"schema\":\"mcr-req v0\",\"id\":9,\"op\":\"ping\"}").expect_err("schema");
        assert!(e.message.contains("unsupported schema"));
        let e = req("not json at all").expect_err("json");
        assert_eq!(e.id, 0);
    }

    #[test]
    fn hashes_round_trip_and_reject_junk() {
        for h in [0u64, 1, u64::MAX, 0xdead_beef_0000_1234] {
            assert_eq!(parse_hash(&format_hash(h)), Some(h));
        }
        assert_eq!(parse_hash("123"), None);
        assert_eq!(parse_hash("zz345678zz345678"), None);
    }

    #[test]
    fn responses_parse_back_and_carry_the_taxonomy() {
        let text = resp_error(3, SolveStatus::Overloaded, "queue full", Some(50));
        let v = json::parse(&text).expect("valid JSON");
        assert_eq!(v.get("status").and_then(Value::as_str), Some("overloaded"));
        assert_eq!(v.get("code").and_then(Value::as_u64), Some(5));
        assert_eq!(v.get("retry_after_ms").and_then(Value::as_u64), Some(50));
        assert_eq!(v.get("retryable").and_then(Value::as_bool), Some(true));
        let text = resp_acyclic(4, Some(0xabc));
        let v = json::parse(&text).expect("valid JSON");
        assert_eq!(v.get("acyclic").and_then(Value::as_bool), Some(true));
        assert_eq!(
            v.get("graph_hash").and_then(Value::as_str),
            Some("0000000000000abc")
        );
    }

    #[test]
    fn dedup_flag_parses_and_defaults_off() {
        let graph = quoted(TRIANGLE);
        let r = req(&format!(
            "{{\"schema\":\"mcr-req v1\",\"id\":1,\"op\":\"solve\",\"graph\":{graph},\"dedup\":true}}"
        ))
        .expect("parse");
        let Op::Solve(job) = r.op else {
            panic!("expected solve")
        };
        assert!(job.dedup);
        let r = req(&format!(
            "{{\"schema\":\"mcr-req v1\",\"id\":1,\"op\":\"solve\",\"graph\":{graph}}}"
        ))
        .expect("parse");
        let Op::Solve(job) = r.op else {
            panic!("expected solve")
        };
        assert!(!job.dedup);
    }

    #[test]
    fn deduped_responses_replay_the_settled_outcome() {
        let text = resp_deduped(6, SolveStatus::Ok, Some("7/2"));
        let v = json::parse(&text).expect("valid JSON");
        assert_eq!(v.get("deduped").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(v.get("lambda").and_then(Value::as_str), Some("7/2"));
        let text = resp_deduped(7, SolveStatus::Cancelled, None);
        let v = json::parse(&text).expect("valid JSON");
        assert_eq!(v.get("status").and_then(Value::as_str), Some("cancelled"));
        assert!(v.get("lambda").is_none());
    }

    #[test]
    fn edit_requests_parse_all_four_ops() {
        let graph = quoted(TRIANGLE);
        let r = req(&format!(
            "{{\"schema\":\"mcr-req v1\",\"id\":5,\"op\":\"edit\",\"graph\":{graph},\
             \"algorithm\":\"karp\",\"edits\":[\
             {{\"op\":\"reweight\",\"arc\":0,\"weight\":-9}},\
             {{\"op\":\"insert\",\"src\":1,\"dst\":0,\"weight\":3,\"transit\":2}},\
             {{\"op\":\"retime\",\"arc\":1,\"transit\":4}},\
             {{\"op\":\"delete\",\"arc\":2}}]}}"
        ))
        .expect("parse");
        let Op::Edit(job) = r.op else {
            panic!("expected edit")
        };
        assert_eq!(job.spec.algorithm, Algorithm::Karp);
        assert_eq!(
            job.edits,
            vec![
                Edit::Reweight { arc: 0, weight: -9 },
                Edit::InsertArc {
                    src: 1,
                    dst: 0,
                    weight: 3,
                    transit: 2
                },
                Edit::Retime { arc: 1, transit: 4 },
                Edit::DeleteArc { arc: 2 },
            ]
        );
    }

    #[test]
    fn edit_requests_reject_malformed_edits() {
        let graph = quoted(TRIANGLE);
        let e = req(&format!(
            "{{\"schema\":\"mcr-req v1\",\"id\":5,\"op\":\"edit\",\"graph\":{graph},\
             \"edits\":[{{\"op\":\"grow\"}}]}}"
        ))
        .expect_err("unknown edit op");
        assert!(e.message.contains("unknown op"), "{}", e.message);
        let e = req(&format!(
            "{{\"schema\":\"mcr-req v1\",\"id\":5,\"op\":\"edit\",\"graph\":{graph},\
             \"edits\":[{{\"op\":\"delete\",\"arc\":-1}}]}}"
        ))
        .expect_err("negative index");
        assert!(e.message.contains("negative"), "{}", e.message);
        let e = req("{\"schema\":\"mcr-req v1\",\"id\":5,\"op\":\"edit\",\"edits\":[]}")
            .expect_err("no instance");
        assert!(e.message.contains("graph"), "{}", e.message);
    }

    #[test]
    fn edit_responses_carry_the_mode() {
        use mcr_core::{DynamicOutcome, SolveMode};
        let outcome = DynamicOutcome {
            solution: None,
            mode: SolveMode::Incremental,
            cache_hits: 1,
            cache_misses: 0,
        };
        let text = resp_edit(8, Some(0xabc), &outcome);
        let v = json::parse(&text).expect("valid JSON");
        assert_eq!(v.get("mode").and_then(Value::as_str), Some("incremental"));
        assert_eq!(v.get("acyclic").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
    }

    #[test]
    fn threads_are_clamped_to_the_service_cap() {
        let graph = quoted(TRIANGLE);
        let r = req(&format!(
            "{{\"schema\":\"mcr-req v1\",\"id\":1,\"op\":\"solve\",\"graph\":{graph},\"threads\":999}}"
        ))
        .expect("parse");
        let Op::Solve(job) = r.op else {
            panic!("expected solve")
        };
        assert_eq!(job.threads, MAX_REQUEST_THREADS);
    }
}
