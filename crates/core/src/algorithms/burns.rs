//! Burns' algorithm: primal-dual linear programming.
//!
//! Burns solves the LP formulation `max λ s.t. d(v) − d(u) ≤ w(u,v) −
//! λ·t(u,v)` and its dual simultaneously. It maintains a dual-feasible
//! pair `(d, λ)` and the *critical subgraph* of tight arcs; while that
//! subgraph is acyclic, λ can be pushed up by the largest step `θ` that
//! keeps every constraint satisfied (with `d` adjusted along the
//! critical heights), rebuilding the critical subgraph from scratch
//! every iteration — the non-incremental behavior the paper blames for
//! Burns being slower than KO/YTO despite fewer iterations (§4.5). When
//! the critical subgraph acquires a cycle, that cycle is optimum.
//!
//! All arithmetic is exact (`i128` rationals), so the result is
//! certified.

use crate::budget::BudgetScope;
use crate::driver::SccOutcome;
use crate::error::SolveError;
use crate::instrument::Counters;
use crate::rational::Ratio64;
use crate::solution::Guarantee;
use mcr_graph::{ArcId, Graph};

/// Minimal exact rational over `i128` with overflow-checked arithmetic.
/// Burns' intermediate duals can need denominators beyond `i64`, hence
/// this widened private type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Rat {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    const ZERO: Rat = Rat { num: 0, den: 1 };

    fn new(num: i128, den: i128) -> Self {
        assert!(den != 0);
        let (num, den) = if den < 0 { (-num, -den) } else { (num, den) };
        let g = gcd(num, den);
        if g == 0 {
            Rat { num: 0, den: 1 }
        } else {
            Rat {
                num: num / g,
                den: den / g,
            }
        }
    }

    fn from_int(v: i64) -> Self {
        Rat {
            num: v as i128,
            den: 1,
        }
    }

    fn checked(v: Option<i128>) -> Result<i128, SolveError> {
        v.ok_or(SolveError::Overflow {
            context: "Burns exact arithmetic (i128)",
        })
    }

    /// Knuth's gcd-first rational addition (TAOCP 4.5.1): keeps
    /// intermediates small when denominators share factors, which they
    /// overwhelmingly do in Burns' iterates.
    fn add(self, o: Rat) -> Result<Rat, SolveError> {
        let g = gcd(self.den, o.den).max(1);
        let t = Self::checked(
            Self::checked(self.num.checked_mul(o.den / g))?
                .checked_add(Self::checked(o.num.checked_mul(self.den / g))?),
        )?;
        let g2 = gcd(t, g).max(1);
        Ok(Rat {
            num: t / g2,
            den: Self::checked((self.den / g).checked_mul(o.den / g2))?,
        })
    }

    fn sub(self, o: Rat) -> Result<Rat, SolveError> {
        self.add(Rat {
            num: -o.num,
            den: o.den,
        })
    }

    fn mul_int(self, k: i64) -> Result<Rat, SolveError> {
        let k = k as i128;
        let g = gcd(k, self.den).max(1);
        Ok(Rat {
            num: Self::checked(self.num.checked_mul(k / g))?,
            den: self.den / g,
        })
    }

    fn div_int(self, k: i64) -> Result<Rat, SolveError> {
        debug_assert!(k != 0);
        let k = k as i128;
        let g = gcd(self.num, k).max(1);
        Ok(Rat::new(
            self.num / g,
            Self::checked(self.den.checked_mul(k / g))?,
        ))
    }

    fn is_zero(self) -> bool {
        self.num == 0
    }

    fn lt(self, o: Rat) -> Result<bool, SolveError> {
        Ok(Self::checked(self.num.checked_mul(o.den))?
            < Self::checked(o.num.checked_mul(self.den))?)
    }

    fn to_ratio64(self) -> Result<Ratio64, SolveError> {
        Ratio64::try_from_i128(self.num, self.den).ok_or(SolveError::Overflow {
            context: "Burns dual value exceeds Ratio64 range",
        })
    }
}

/// Finds a cycle among `arcs` (a subgraph of `g`) via iterative
/// three-color DFS, or `None` if the subgraph is acyclic.
pub(crate) fn cycle_in_arc_subgraph(g: &Graph, arcs: &[ArcId]) -> Option<Vec<ArcId>> {
    let n = g.num_nodes();
    let mut out: Vec<Vec<ArcId>> = vec![Vec::new(); n];
    for &a in arcs {
        out[g.source(a).index()].push(a);
    }
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    let mut color = vec![WHITE; n];
    let mut arc_stack: Vec<ArcId> = Vec::new();
    let mut pos = vec![usize::MAX; n];
    for root in 0..n {
        if color[root] != WHITE {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        color[root] = GRAY;
        pos[root] = 0;
        while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
            if *idx < out[v].len() {
                let a = out[v][*idx];
                *idx += 1;
                let w = g.target(a).index();
                match color[w] {
                    WHITE => {
                        color[w] = GRAY;
                        pos[w] = arc_stack.len() + 1;
                        arc_stack.push(a);
                        stack.push((w, 0));
                    }
                    GRAY => {
                        let mut cycle: Vec<ArcId> = arc_stack[pos[w]..].to_vec();
                        cycle.push(a);
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                color[v] = 2;
                stack.pop();
                arc_stack.pop();
            }
        }
    }
    None
}

/// Initial dual-feasible pair from the lexicographic shortest path tree
/// (compare paths by `(transit, weight)`): `λ₀` is the smallest event of
/// any arc, `d₀(v) = a(v) − λ₀·k(v)`. With unit transit times this
/// reduces to the classic `λ₀ = min w`, `d₀ = 0`.
fn initial_pair(g: &Graph) -> Result<(Rat, Vec<Rat>), SolveError> {
    let n = g.num_nodes();
    let mut a = vec![0i64; n];
    let mut k = vec![0i64; n];
    let mut rounds = 0;
    loop {
        let mut changed = false;
        rounds += 1;
        if rounds > n + 1 {
            // The lexicographic relaxation converges within n rounds
            // unless some cycle has zero total transit time (its ratio
            // is undefined, so the instance is invalid for MCRP).
            return Err(SolveError::ZeroTransitCycle);
        }
        for e in g.arc_ids() {
            let u = g.source(e).index();
            let v = g.target(e).index();
            let cand = (k[u] + g.transit(e), a[u] + g.weight(e));
            if cand < (k[v], a[v]) {
                k[v] = cand.0;
                a[v] = cand.1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut lambda: Option<Ratio64> = None;
    for e in g.arc_ids() {
        let u = g.source(e).index();
        let v = g.target(e).index();
        let den = k[u] + g.transit(e) - k[v];
        if den > 0 {
            let ev = Ratio64::new(a[u] + g.weight(e) - a[v], den);
            if lambda.is_none_or(|l| ev < l) {
                lambda = Some(ev);
            }
        }
    }
    // A cyclic component always has a positive-transit event once
    // zero-transit cycles are ruled out above.
    let lambda = lambda.ok_or(SolveError::ZeroTransitCycle)?;
    let lam = Rat::new(lambda.numer() as i128, lambda.denom() as i128);
    let mut d = Vec::with_capacity(n);
    for v in 0..n {
        d.push(Rat::from_int(a[v]).sub(lam.mul_int(k[v])?)?);
    }
    Ok((lam, d))
}

/// Burns' algorithm on one strongly connected, cyclic component.
pub(crate) fn solve_scc(
    g: &Graph,
    counters: &mut Counters,
    scope: &mut BudgetScope,
) -> Result<SccOutcome, SolveError> {
    let n = g.num_nodes();
    let (mut lambda, mut d) = initial_pair(g)?;
    let cap = 4 * (n as u64) * (n as u64) + 1_000;
    let mut rounds = 0u64;
    let mut slack = vec![Rat::ZERO; g.num_arcs()];
    scope.loop_metrics("core.burns.exact.phase");
    loop {
        counters.iterations += 1;
        scope.tick_iteration_and_time()?;
        scope.chaos_check("core.burns.exact.phase")?;
        rounds += 1;
        if rounds > cap {
            return Err(SolveError::NumericRange {
                context: "Burns exceeded its internal iteration cap",
            });
        }

        // Rebuild the critical (tight) subgraph from scratch.
        let mut tight: Vec<ArcId> = Vec::new();
        for e in g.arc_ids() {
            let u = g.source(e).index();
            let v = g.target(e).index();
            counters.relaxations += 1;
            let s = Rat::from_int(g.weight(e))
                .sub(lambda.mul_int(g.transit(e))?)?
                .add(d[u])?
                .sub(d[v])?;
            debug_assert!(!s.lt(Rat::ZERO).unwrap_or(false), "dual feasibility violated");
            if s.is_zero() {
                tight.push(e);
            }
            slack[e.index()] = s;
        }

        if let Some(cycle) = cycle_in_arc_subgraph(g, &tight) {
            counters.cycles_examined += 1;
            return Ok(SccOutcome {
                lambda: lambda.to_ratio64()?,
                cycle,
                guarantee: Guarantee::Exact,
                solved_by: crate::Algorithm::BurnsExact,
            });
        }

        // Heights: ρ(u) = max over tight out-arcs of ρ(v) + t(e), via a
        // reverse topological sweep of the (acyclic) critical subgraph.
        let mut tight_out: Vec<Vec<ArcId>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for &e in &tight {
            tight_out[g.source(e).index()].push(e);
            indeg[g.target(e).index()] += 1;
        }
        let mut order: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut head = 0;
        while head < order.len() {
            let v = order[head];
            head += 1;
            for &e in &tight_out[v] {
                let w = g.target(e).index();
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    order.push(w);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "critical subgraph must be acyclic here");
        let mut rho = vec![0i64; n];
        for &v in order.iter().rev() {
            for &e in &tight_out[v] {
                let cand = rho[g.target(e).index()] + g.transit(e);
                if cand > rho[v] {
                    rho[v] = cand;
                }
            }
        }

        // Largest feasible step θ.
        let mut theta: Option<Rat> = None;
        for e in g.arc_ids() {
            let u = g.source(e).index();
            let v = g.target(e).index();
            let coeff = rho[v] + g.transit(e) - rho[u];
            if coeff > 0 && !slack[e.index()].is_zero() {
                let cand = slack[e.index()].div_int(coeff)?;
                let smaller = match theta {
                    None => true,
                    Some(t) => cand.lt(t)?,
                };
                if smaller {
                    theta = Some(cand);
                }
            }
        }
        // On a strongly connected cyclic component some arc always
        // bounds the step; an unbounded θ means the dual state has
        // degenerated (numeric trouble, not a property of the input).
        let theta = theta.ok_or(SolveError::NumericRange {
            context: "Burns step is unbounded",
        })?;
        debug_assert!(Rat::ZERO.lt(theta).unwrap_or(false));
        lambda = lambda.add(theta)?;
        for v in 0..n {
            if rho[v] != 0 {
                d[v] = d[v].add(theta.mul_int(rho[v])?)?;
                counters.distance_updates += 1;
            }
        }
    }
}

/// Burns' algorithm with `f64` duals — the arithmetic the original
/// study's C++/LEDA implementation used. The step/tightness logic is
/// identical to [`solve_scc`]; slacks within `tol` of zero count as
/// tight. The returned λ is the exact rational mean of the critical
/// cycle found, so on non-adversarial inputs the result matches the
/// exact version bit for bit (differential tests enforce this); the
/// exact version remains available as `Algorithm::BurnsExact` for the
/// arithmetic-cost ablation.
pub(crate) fn solve_scc_f64(
    g: &Graph,
    counters: &mut Counters,
    scope: &mut BudgetScope,
) -> Result<SccOutcome, SolveError> {
    let n = g.num_nodes();
    let (lam0, d0) = initial_pair(g)?;
    let mut lambda = lam0.num as f64 / lam0.den as f64;
    let mut d: Vec<f64> = d0.iter().map(|r| r.num as f64 / r.den as f64).collect();
    let scale = g
        .arc_ids()
        .map(|a| g.weight(a).abs())
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    let tol = scale * 1e-9;
    let cap = 4 * (n as u64) * (n as u64) + 1_000;
    let mut rounds = 0u64;
    let mut slack = vec![0f64; g.num_arcs()];
    scope.loop_metrics("core.burns.phase");
    loop {
        counters.iterations += 1;
        scope.tick_iteration_and_time()?;
        scope.chaos_check("core.burns.phase")?;
        rounds += 1;
        if rounds > cap {
            return Err(SolveError::NumericRange {
                context: "Burns (f64) exceeded its internal iteration cap",
            });
        }
        let mut tight: Vec<ArcId> = Vec::new();
        for e in g.arc_ids() {
            let u = g.source(e).index();
            let v = g.target(e).index();
            counters.relaxations += 1;
            let s = g.weight(e) as f64 - lambda * g.transit(e) as f64 + d[u] - d[v];
            if s <= tol {
                tight.push(e);
            }
            slack[e.index()] = s;
        }
        if let Some(cycle) = cycle_in_arc_subgraph(g, &tight) {
            counters.cycles_examined += 1;
            let w: i128 = cycle.iter().map(|&a| g.weight(a) as i128).sum();
            let t: i128 = cycle.iter().map(|&a| g.transit(a) as i128).sum();
            if t <= 0 {
                return Err(SolveError::ZeroTransitCycle);
            }
            let candidate = Ratio64::try_from_i128(w, t).ok_or(SolveError::Overflow {
                context: "Burns (f64) critical cycle ratio",
            })?;
            // Certify: double-precision slacks can misclassify tight
            // arcs on extreme weight scales, yielding a non-optimal
            // cycle. One exact negative-cycle test (O(nm), the cost of
            // a single Burns iteration) catches that; fall back to the
            // exact-rational variant in the rare failure case.
            if crate::bellman::has_cycle_below(g, candidate, counters).is_some() {
                let mut fresh = Counters::new();
                let outcome = solve_scc(g, &mut fresh, scope);
                *counters += fresh;
                return outcome;
            }
            return Ok(SccOutcome {
                lambda: candidate,
                cycle,
                guarantee: Guarantee::Exact,
                solved_by: crate::Algorithm::Burns,
            });
        }
        let mut tight_out: Vec<Vec<ArcId>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for &e in &tight {
            tight_out[g.source(e).index()].push(e);
            indeg[g.target(e).index()] += 1;
        }
        let mut order: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut head = 0;
        while head < order.len() {
            let v = order[head];
            head += 1;
            for &e in &tight_out[v] {
                let w = g.target(e).index();
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    order.push(w);
                }
            }
        }
        let mut rho = vec![0i64; n];
        for &v in order.iter().rev() {
            for &e in &tight_out[v] {
                let cand = rho[g.target(e).index()] + g.transit(e);
                if cand > rho[v] {
                    rho[v] = cand;
                }
            }
        }
        let mut theta = f64::INFINITY;
        for e in g.arc_ids() {
            let u = g.source(e).index();
            let v = g.target(e).index();
            let coeff = rho[v] + g.transit(e) - rho[u];
            if coeff > 0 && slack[e.index()] > tol {
                theta = theta.min(slack[e.index()] / coeff as f64);
            }
        }
        if !(theta.is_finite() && theta > 0.0) {
            return Err(SolveError::NumericRange {
                context: "Burns (f64) step collapsed — tolerance too loose for this input",
            });
        }
        lambda += theta;
        for v in 0..n {
            if rho[v] != 0 {
                d[v] += theta * rho[v] as f64;
                counters.distance_updates += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_graph::graph::from_arc_list;

    fn exact(g: &Graph, c: &mut Counters) -> SccOutcome {
        let mut scope = BudgetScope::unlimited(crate::Algorithm::BurnsExact);
        solve_scc(g, c, &mut scope).expect("unlimited")
    }

    fn fast(g: &Graph, c: &mut Counters) -> SccOutcome {
        let mut scope = BudgetScope::unlimited(crate::Algorithm::Burns);
        solve_scc_f64(g, c, &mut scope).expect("unlimited")
    }

    fn solve(g: &Graph) -> Ratio64 {
        let mut c = Counters::new();
        exact(g, &mut c).lambda
    }

    #[test]
    fn single_ring() {
        let g = from_arc_list(3, &[(0, 1, 1), (1, 2, 2), (2, 0, 4)]);
        assert_eq!(solve(&g), Ratio64::new(7, 3));
    }

    #[test]
    fn self_loop() {
        let g = from_arc_list(1, &[(0, 0, -2)]);
        assert_eq!(solve(&g), Ratio64::from(-2));
    }

    #[test]
    fn matches_brute_force() {
        use mcr_gen::sprand::{sprand, SprandConfig};
        for seed in 0..60 {
            let g = sprand(&SprandConfig::new(10, 28).seed(seed).weight_range(-25, 25));
            let (expected, _) = crate::reference::brute_force_min_mean(&g).expect("cyclic");
            assert_eq!(solve(&g), expected, "seed {seed}");
        }
    }

    #[test]
    fn f64_variant_matches_exact_variant() {
        use mcr_gen::sprand::{sprand, SprandConfig};
        for seed in 0..60 {
            let g = sprand(&SprandConfig::new(12, 32).seed(seed).weight_range(-100, 100));
            let mut c1 = Counters::new();
            let mut c2 = Counters::new();
            let precise = exact(&g, &mut c1);
            let quick = fast(&g, &mut c2);
            assert_eq!(quick.lambda, precise.lambda, "seed {seed}");
            assert!(crate::solution::check_cycle(&g, &quick.cycle).is_ok());
        }
    }

    #[test]
    fn f64_variant_handles_transits() {
        use mcr_gen::sprand::{sprand, SprandConfig};
        use mcr_gen::transit::with_random_transits;
        for seed in 0..20 {
            let g0 = sprand(&SprandConfig::new(10, 25).seed(seed).weight_range(-20, 20));
            let g = with_random_transits(&g0, 1, 5, seed);
            let (expected, _) = crate::reference::brute_force_min_ratio(&g).expect("cyclic");
            let mut c = Counters::new();
            assert_eq!(fast(&g, &mut c).lambda, expected, "seed {seed}");
        }
    }

    #[test]
    fn ratio_with_transits() {
        let mut b = mcr_graph::GraphBuilder::new();
        let v = b.add_nodes(2);
        b.add_arc_with_transit(v[0], v[1], 3, 2);
        b.add_arc_with_transit(v[1], v[0], 7, 3); // ratio 2
        b.add_arc_with_transit(v[0], v[0], 9, 2); // ratio 9/2
        let g = b.build();
        assert_eq!(solve(&g), Ratio64::from(2));
    }

    #[test]
    fn ratio_with_zero_transit_arcs() {
        let mut b = mcr_graph::GraphBuilder::new();
        let v = b.add_nodes(3);
        b.add_arc_with_transit(v[0], v[1], -4, 0);
        b.add_arc_with_transit(v[1], v[2], 1, 2);
        b.add_arc_with_transit(v[2], v[0], 1, 1); // ratio -2/3
        b.add_arc_with_transit(v[0], v[0], 10, 4);
        let g = b.build();
        assert_eq!(solve(&g), Ratio64::new(-2, 3));
    }

    #[test]
    fn iteration_count_within_quadratic_bound() {
        use mcr_gen::sprand::{sprand, SprandConfig};
        let g = sprand(&SprandConfig::new(60, 180).seed(1));
        let mut c = Counters::new();
        exact(&g, &mut c);
        // §4.3: "the number of iterations is always less than the
        // number of nodes" in practice.
        assert!(c.iterations <= 60 * 60);
    }

    #[test]
    fn witness_cycle_checks_out() {
        use mcr_gen::sprand::{sprand, SprandConfig};
        for seed in 0..10 {
            let g = sprand(&SprandConfig::new(20, 60).seed(seed));
            let mut c = Counters::new();
            let s = exact(&g, &mut c);
            let (w, len, _) = crate::solution::check_cycle(&g, &s.cycle).expect("valid");
            assert_eq!(Ratio64::new(w, len as i64), s.lambda);
        }
    }

    #[test]
    fn zero_transit_cycle_is_an_error() {
        let mut b = mcr_graph::GraphBuilder::new();
        let v = b.add_nodes(2);
        b.add_arc_with_transit(v[0], v[1], 1, 0);
        b.add_arc_with_transit(v[1], v[0], 2, 0);
        let g = b.build();
        let mut c = Counters::new();
        let mut scope = BudgetScope::unlimited(crate::Algorithm::BurnsExact);
        let err = solve_scc(&g, &mut c, &mut scope).expect_err("ratio undefined");
        assert_eq!(err, SolveError::ZeroTransitCycle);
    }

    #[test]
    fn one_iteration_budget_exhausts_instead_of_hanging() {
        use mcr_gen::sprand::{sprand, SprandConfig};
        let g = sprand(&SprandConfig::new(12, 32).seed(3).weight_range(-40, 40));
        let budget = crate::Budget::default().max_iterations(1);
        let mut scope = BudgetScope::new(&budget, None, crate::Algorithm::BurnsExact);
        let mut c = Counters::new();
        match solve_scc(&g, &mut c, &mut scope) {
            Ok(_) => {} // a lucky instance can finish in one phase
            Err(e) => assert!(matches!(e, SolveError::BudgetExhausted { .. }), "{e}"),
        }
    }
}
