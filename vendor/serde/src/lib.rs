//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network and no registry cache. The
//! workspace's `serde` support is an **optional, off-by-default**
//! feature, but Cargo still needs the dependency to resolve; this crate
//! provides the trait skeleton (`Serialize`, `Deserialize`,
//! `Serializer`, `Deserializer`, the `ser`/`de` error traits) so the
//! manifests and default builds work offline.
//!
//! Limitations, stated plainly: there are no derive macros here, so
//! building the workspace **with** `--features serde` requires the real
//! serde crate. The stub exists to keep `cargo build` / `cargo test`
//! (default features) fully functional without a registry.

use std::fmt::Display;

pub mod ser {
    use super::Display;

    /// Error constructor used by manual `Serialize` impls.
    pub trait Error: Sized {
        fn custom<T: Display>(msg: T) -> Self;
    }
}

pub mod de {
    use super::Display;

    /// Error constructor used by manual `Deserialize` impls.
    pub trait Error: Sized {
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// A type that can be serialized through any [`Serializer`].
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A minimal self-describing serializer over the primitive subset the
/// workspace's manual impls emit.
pub trait Serializer: Sized {
    type Ok;
    type Error: ser::Error;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
}

/// A type that can be deserialized through any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A minimal deserializer over the same primitive subset.
pub trait Deserializer<'de>: Sized {
    type Error: de::Error;

    fn deserialize_bool(self) -> Result<bool, Self::Error>;
    fn deserialize_i64(self) -> Result<i64, Self::Error>;
    fn deserialize_u64(self) -> Result<u64, Self::Error>;
    fn deserialize_f64(self) -> Result<f64, Self::Error>;
    fn deserialize_string(self) -> Result<String, Self::Error>;
}

macro_rules! impl_primitive {
    ($($t:ty => $ser:ident / $de:ident / $conv:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$ser(*self as $conv)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                Ok(deserializer.$de()? as $t)
            }
        }
    )*};
}

impl_primitive!(
    i8 => serialize_i64 / deserialize_i64 / i64,
    i16 => serialize_i64 / deserialize_i64 / i64,
    i32 => serialize_i64 / deserialize_i64 / i64,
    i64 => serialize_i64 / deserialize_i64 / i64,
    u8 => serialize_u64 / deserialize_u64 / u64,
    u16 => serialize_u64 / deserialize_u64 / u64,
    u32 => serialize_u64 / deserialize_u64 / u64,
    u64 => serialize_u64 / deserialize_u64 / u64,
    f64 => serialize_f64 / deserialize_f64 / f64,
);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_bool()
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_string()
    }
}
