//! Workload generators for the optimum cycle mean / cycle ratio study.
//!
//! The original experiments used two input families:
//!
//! 1. **SPRAND random graphs** (Cherkassky–Goldberg–Radzik's generator):
//!    a Hamiltonian cycle over all nodes — which guarantees strong
//!    connectivity — plus `m − n` arcs chosen uniformly at random, with
//!    arc weights uniform in `[1, 10000]`. Reimplemented in [`sprand()`].
//! 2. **Cyclic sequential multi-level logic benchmark circuits** from
//!    the 1991 Logic Synthesis and Optimization Benchmarks. Those
//!    netlists are not redistributable here, so [`circuit`] generates
//!    synthetic sequential-circuit-like graphs with the same qualitative
//!    properties the paper relies on: sparse (≈1–2 arcs per node),
//!    locally connected, with many short register feedback cycles.
//!
//! [`structured`] adds deterministic families (rings, tori, complete
//! graphs, layered feedback graphs) used by tests and ablation benches,
//! and [`transit`] decorates any graph with random transit times to turn
//! a cycle mean instance into a cost-to-time ratio instance.
//!
//! All generators are deterministic functions of their seed
//! (`rand::rngs::StdRng`), so every experiment in this repository is
//! reproducible bit for bit.
//!
//! ```
//! use mcr_gen::sprand::{sprand, SprandConfig};
//! let g = sprand(&SprandConfig::new(128, 256).seed(7));
//! assert_eq!(g.num_nodes(), 128);
//! assert_eq!(g.num_arcs(), 256);
//! ```

pub mod circuit;
pub mod edits;
pub mod requests;
pub mod sprand;
pub mod structured;
pub mod transit;

pub use circuit::{circuit_graph, CircuitConfig};
pub use requests::{request_log, RequestLogConfig};
pub use sprand::{sprand, SprandConfig};
