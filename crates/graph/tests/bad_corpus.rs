//! The bad-input corpus: every file under `tests/data/bad/` must parse
//! to a typed [`ParseErrorKind`] with the right line number — never a
//! panic, never a silently wrong graph. The CLI's exit-code contract
//! (exit 1 on input errors) is built on this guarantee.

use mcr_graph::io::read_dimacs;
use mcr_graph::ParseErrorKind;
use std::fs::File;
use std::io::BufReader;
use std::path::PathBuf;

fn corpus_file(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data/bad")
        .join(name)
}

fn parse(name: &str) -> mcr_graph::ParseGraphError {
    let file = File::open(corpus_file(name)).unwrap_or_else(|e| panic!("open {name}: {e}"));
    read_dimacs(&mut BufReader::new(file))
        .expect_err("a corpus file must fail to parse")
}

#[test]
fn truncated_header_is_detected() {
    let err = parse("truncated_header.dimacs");
    assert_eq!(err.kind(), ParseErrorKind::TruncatedHeader);
    assert_eq!(err.line(), 2);
    assert!(err.to_string().starts_with("line 2:"), "{err}");
}

#[test]
fn out_of_range_arc_is_detected() {
    let err = parse("out_of_range_arc.dimacs");
    assert_eq!(err.kind(), ParseErrorKind::OutOfRangeEndpoint);
    assert_eq!(err.line(), 5);
    assert!(err.message().contains("1..=4"), "{err}");
}

#[test]
fn non_numeric_weight_is_detected() {
    let err = parse("non_numeric_weight.dimacs");
    assert_eq!(err.kind(), ParseErrorKind::NonNumericField);
    assert_eq!(err.line(), 4);
}

#[test]
fn duplicate_header_is_detected() {
    let err = parse("duplicate_header.dimacs");
    assert_eq!(err.kind(), ParseErrorKind::DuplicateHeader);
    assert_eq!(err.line(), 4);
}

#[test]
fn every_corpus_file_fails_without_panicking() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/bad");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("corpus directory exists") {
        let path = entry.expect("readable entry").path();
        if !path.is_file() {
            continue;
        }
        seen += 1;
        let file = File::open(&path).expect("open corpus file");
        let err = read_dimacs(&mut BufReader::new(file))
            .expect_err("bad corpus files must not parse");
        // Every error carries a usable location and classification.
        let _ = err.kind();
        assert!(err.to_string().contains("line"), "{err}");
    }
    assert!(seen >= 4, "expected the four seeded corpus files, saw {seen}");
}

#[test]
fn arbitrary_byte_noise_never_panics() {
    // Fixed pseudo-random byte soup (xorshift) fed straight into the
    // parser: any outcome is fine except a panic.
    let mut state = 0x9e3779b97f4a7c15u64;
    for len in [0usize, 1, 7, 64, 513, 4096] {
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            bytes.push((state & 0xff) as u8);
        }
        let _ = read_dimacs(&mut bytes.as_slice());
    }
}
