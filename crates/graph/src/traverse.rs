//! Breadth-first / depth-first traversals and topological ordering.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Returns the nodes reachable from `start` in BFS order (including
/// `start` itself).
///
/// ```
/// use mcr_graph::{graph::from_arc_list, traverse::bfs_order, NodeId};
/// let g = from_arc_list(3, &[(0, 1, 1), (1, 2, 1)]);
/// let order = bfs_order(&g, NodeId::new(0));
/// assert_eq!(order.len(), 3);
/// assert_eq!(order[0], NodeId::new(0));
/// ```
pub fn bfs_order(g: &Graph, start: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.num_nodes()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for (_, w) in g.out_neighbors(v) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                queue.push_back(w);
            }
        }
    }
    order
}

/// Returns the nodes reachable from `start` in iterative DFS preorder.
pub fn dfs_preorder(g: &Graph, start: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.num_nodes()];
    let mut order = Vec::new();
    let mut stack = vec![start];
    seen[start.index()] = true;
    while let Some(v) = stack.pop() {
        order.push(v);
        // Push in reverse so the first out-arc is explored first.
        for &a in g.out_arcs(v).iter().rev() {
            let w = g.target(a);
            if !seen[w.index()] {
                seen[w.index()] = true;
                stack.push(w);
            }
        }
    }
    order
}

/// Returns a topological order of `g`, or `None` if `g` contains a cycle
/// (Kahn's algorithm).
///
/// ```
/// use mcr_graph::{graph::from_arc_list, traverse::topological_order};
/// let dag = from_arc_list(3, &[(0, 1, 1), (1, 2, 1)]);
/// assert!(topological_order(&dag).is_some());
/// let cyc = from_arc_list(2, &[(0, 1, 1), (1, 0, 1)]);
/// assert!(topological_order(&cyc).is_none());
/// ```
pub fn topological_order(g: &Graph) -> Option<Vec<NodeId>> {
    let n = g.num_nodes();
    let mut indeg: Vec<usize> = (0..n).map(|v| g.in_degree(NodeId::new(v))).collect();
    let mut queue: VecDeque<NodeId> = (0..n)
        .filter(|&v| indeg[v] == 0)
        .map(NodeId::new)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for (_, w) in g.out_neighbors(v) {
            indeg[w.index()] -= 1;
            if indeg[w.index()] == 0 {
                queue.push_back(w);
            }
        }
    }
    if order.len() == n {
        Some(order)
    } else {
        None
    }
}

/// Whether every node of `g` is reachable from every other node.
///
/// Checks forward reachability from node 0 in `g` and in the reverse
/// graph. An empty graph is vacuously strongly connected; a single node
/// is strongly connected regardless of self-loops.
pub fn is_strongly_connected(g: &Graph) -> bool {
    let n = g.num_nodes();
    if n <= 1 {
        return true;
    }
    if bfs_order(g, NodeId::new(0)).len() != n {
        return false;
    }
    bfs_order(&g.reversed(), NodeId::new(0)).len() == n
}

/// Whether `g` contains at least one cycle (including self-loops).
pub fn has_cycle(g: &Graph) -> bool {
    topological_order(g).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_arc_list;

    #[test]
    fn bfs_visits_each_reachable_node_once() {
        let g = from_arc_list(5, &[(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 1)]);
        let order = bfs_order(&g, NodeId::new(0));
        assert_eq!(order.len(), 4); // node 4 unreachable
        let mut sorted: Vec<usize> = order.iter().map(|v| v.index()).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn dfs_preorder_explores_first_arc_first() {
        let g = from_arc_list(4, &[(0, 1, 1), (0, 2, 1), (1, 3, 1)]);
        let order = dfs_preorder(&g, NodeId::new(0));
        assert_eq!(
            order,
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(3), NodeId::new(2)]
        );
    }

    #[test]
    fn topo_order_respects_arcs() {
        let g = from_arc_list(6, &[(5, 0, 1), (5, 2, 1), (4, 0, 1), (4, 1, 1), (2, 3, 1), (3, 1, 1)]);
        let order = topological_order(&g).expect("dag");
        let mut pos = [0usize; 6];
        for (i, v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        for a in g.arc_ids() {
            assert!(pos[g.source(a).index()] < pos[g.target(a).index()]);
        }
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = from_arc_list(2, &[(0, 1, 1), (1, 1, 1)]);
        assert!(has_cycle(&g));
    }

    #[test]
    fn strong_connectivity_checks() {
        let ring = from_arc_list(3, &[(0, 1, 1), (1, 2, 1), (2, 0, 1)]);
        assert!(is_strongly_connected(&ring));
        let path = from_arc_list(3, &[(0, 1, 1), (1, 2, 1)]);
        assert!(!is_strongly_connected(&path));
        let single = from_arc_list(1, &[]);
        assert!(is_strongly_connected(&single));
        let empty = from_arc_list(0, &[]);
        assert!(is_strongly_connected(&empty));
    }
}
