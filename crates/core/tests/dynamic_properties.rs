//! Property-based laws of the incremental [`DynamicSolver`], in the
//! style of `differential_properties.rs`:
//!
//! 1. **Inverse cancellation** — applying an edit and then its inverse
//!    (reweight back, retime back, delete the inserted arc) restores
//!    the original λ*, witness and counters exactly.
//! 2. **Within-batch order invariance** — a batch of reweights/retimes
//!    on *distinct* arcs answers identically under any permutation.
//! 3. **Replay equivalence** — feeding a script batch-by-batch through
//!    a warm solver ends at the same answer as one batch with all the
//!    edits, and as a cold solver built directly on the final arcs.
//!
//! These are the algebraic guarantees the component cache must not
//! break; the differential harness (`dynamic_differential.rs`) covers
//! the bit-identity against from-scratch solves.

use mcr_core::spec::{solve_spec, SolveSpec};
use mcr_core::{Algorithm, ArcSpec, DynamicSolver, Edit, SolveOptions};
use mcr_graph::{Graph, GraphBuilder, NodeId};
use proptest::prelude::*;

fn build(nodes: usize, arcs: &[ArcSpec]) -> Graph {
    let mut b = GraphBuilder::new();
    b.add_nodes(nodes);
    for a in arcs {
        b.add_arc_with_transit(NodeId::new(a.src), NodeId::new(a.dst), a.weight, a.transit);
    }
    b.build()
}

/// Small arbitrary instances: 2–7 nodes, 1–14 arcs, positive transits
/// (so the ratio objective is always well-posed on every subgraph).
fn arbitrary_instance() -> impl Strategy<Value = (usize, Vec<ArcSpec>)> {
    (2usize..8).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, -20i64..=20, 1i64..=3), 1..14).prop_map(
            move |arcs| {
                let arcs = arcs
                    .into_iter()
                    .map(|(src, dst, weight, transit)| ArcSpec {
                        src,
                        dst,
                        weight,
                        transit,
                    })
                    .collect();
                (n, arcs)
            },
        )
    })
}

fn spec_for(selector: u8) -> SolveSpec {
    match selector % 4 {
        0 => SolveSpec::mean(Algorithm::HowardExact),
        1 => SolveSpec::mean(Algorithm::Karp),
        2 => SolveSpec::mean(Algorithm::HowardExact).maximize(),
        _ => SolveSpec::ratio(Algorithm::HowardExact),
    }
}

/// `(lambda?, cycle, counters)` of an outcome, or `Err(text)` — a
/// comparable snapshot ([`mcr_core::Solution`] has no `PartialEq`).
type Snapshot = Result<Option<(String, Vec<mcr_graph::ArcId>, String)>, String>;

fn snapshot(r: Result<mcr_core::DynamicOutcome, mcr_core::spec::SpecError>) -> Snapshot {
    match r {
        Ok(out) => Ok(out
            .solution
            .map(|s| (s.lambda.to_string(), s.cycle, format!("{:?}", s.counters)))),
        Err(e) => Err(e.to_string()),
    }
}

/// An in-range edit with its exact inverse.
fn inverse_pair(arcs: &[ArcSpec], raw: (u8, usize, i64, i64)) -> (Edit, Edit) {
    let (kind, idx, a, b) = raw;
    let n = arcs.len();
    match kind % 3 {
        0 => {
            let arc = idx % n;
            (
                Edit::Reweight { arc, weight: a },
                Edit::Reweight {
                    arc,
                    weight: arcs[arc].weight,
                },
            )
        }
        1 => {
            let arc = idx % n;
            (
                Edit::Retime {
                    arc,
                    transit: 1 + b.rem_euclid(3),
                },
                Edit::Retime {
                    arc,
                    transit: arcs[arc].transit,
                },
            )
        }
        _ => {
            let src = arcs[idx % n].src;
            let dst = arcs[(idx / 2) % n].dst;
            (
                Edit::InsertArc {
                    src,
                    dst,
                    weight: a,
                    transit: 1 + b.rem_euclid(3),
                },
                // The inserted arc lands at index n.
                Edit::DeleteArc { arc: n },
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn an_edit_and_its_inverse_restore_the_answer(
        inst in arbitrary_instance(),
        raw in (0u8..=255, 0usize..=1_000_000, -20i64..=20, 0i64..=2),
        selector in 0u8..=255,
    ) {
        let (nodes, arcs) = inst;
        let spec = spec_for(selector);
        let mut solver = DynamicSolver::new(&build(nodes, &arcs), spec, SolveOptions::new());
        let before = snapshot(solver.solve());
        let (edit, inverse) = inverse_pair(&arcs, raw);
        // Every generated edit is structurally valid (positive transits,
        // in-range indices), so the batch always commits.
        prop_assert!(solver.apply(&[edit]).is_ok());
        let after = snapshot(solver.apply(&[inverse]));
        prop_assert_eq!(before, after, "edit {:?} + inverse did not cancel", edit);
    }

    #[test]
    fn reweights_of_distinct_arcs_commute_within_a_batch(
        inst in arbitrary_instance(),
        picks in proptest::collection::vec((0usize..=1_000_000, -20i64..=20, 1i64..=3, 0u8..=1), 1..5),
        selector in 0u8..=255,
    ) {
        let (nodes, arcs) = inst;
        let spec = spec_for(selector);
        // One edit per distinct arc index, so order cannot matter.
        let mut batch = Vec::new();
        let mut used = std::collections::BTreeSet::new();
        for (idx, weight, transit, retime) in picks {
            let retime = retime == 1;
            let arc = idx % arcs.len();
            if !used.insert(arc) {
                continue;
            }
            batch.push(if retime {
                Edit::Retime { arc, transit }
            } else {
                Edit::Reweight { arc, weight }
            });
        }
        let mut forward = DynamicSolver::new(&build(nodes, &arcs), spec, SolveOptions::new());
        let _ = forward.solve();
        let a = snapshot(forward.apply(&batch));
        let mut reversed_batch = batch.clone();
        reversed_batch.reverse();
        let mut backward = DynamicSolver::new(&build(nodes, &arcs), spec, SolveOptions::new());
        let _ = backward.solve();
        let b = snapshot(backward.apply(&reversed_batch));
        prop_assert_eq!(a, b, "batch {:?} is order-sensitive", batch);
    }

    #[test]
    fn batched_replay_equals_one_shot_and_cold_rebuild(
        inst in arbitrary_instance(),
        raws in proptest::collection::vec((0u8..=255, 0usize..=1_000_000, -20i64..=20, 0i64..=2), 1..6),
        selector in 0u8..=255,
    ) {
        let (nodes, arcs) = inst;
        let spec = spec_for(selector);
        // Replay one edit per batch on a warm solver...
        let mut incremental =
            DynamicSolver::new(&build(nodes, &arcs), spec, SolveOptions::new());
        let _ = incremental.solve();
        let mut all: Vec<Edit> = Vec::new();
        let mut last = None;
        for raw in raws {
            // Derive each edit from the solver's *current* arcs so it
            // stays in range after deletes/inserts.
            let (edit, _) = inverse_pair(incremental.arcs(), raw);
            all.push(edit);
            last = Some(snapshot(incremental.apply(&[edit])));
        }
        let batched = last.expect("at least one edit");
        // ...equals one batch holding every edit...
        let mut one_shot = DynamicSolver::new(&build(nodes, &arcs), spec, SolveOptions::new());
        let _ = one_shot.solve();
        let o = snapshot(one_shot.apply(&all));
        prop_assert_eq!(&batched, &o, "one-shot batch diverged: {:?}", all);
        // ...and a cold solver built straight on the final arc list.
        let mut cold = DynamicSolver::new(
            &build(nodes, incremental.arcs()),
            spec,
            SolveOptions::new(),
        );
        let c = snapshot(cold.solve());
        prop_assert_eq!(&batched, &c, "cold rebuild diverged: {:?}", all);
        // And all three agree with solve_spec on the final graph.
        let g = build(nodes, incremental.arcs());
        let fresh = match solve_spec(&g, &spec, &SolveOptions::new()) {
            Ok(sol) => Ok(sol.map(|s| (s.lambda.to_string(), s.cycle, format!("{:?}", s.counters)))),
            Err(e) => Err(e.to_string()),
        };
        prop_assert_eq!(&batched, &fresh, "from-scratch solve diverged: {:?}", all);
    }
}
