//! Directed-graph substrate for the optimum cycle mean / cycle ratio study.
//!
//! This crate plays the role that LEDA 3.4.1 played in the original DAC 1999
//! experiments of Dasdan, Irani and Gupta: it provides the graph data
//! structure all algorithms share, strongly-connected-component
//! decomposition, traversals, graph I/O, and the priority queues (a
//! Fibonacci heap and an indexed binary heap) used by the parametric
//! shortest path algorithms (KO and YTO).
//!
//! # Design
//!
//! A [`Graph`] is an immutable, arc-indexed digraph in compressed
//! adjacency (CSR) form, built through a [`GraphBuilder`]. Nodes and arcs
//! are identified by the dense newtype indices [`NodeId`] and [`ArcId`],
//! so algorithm state lives in flat `Vec`s indexed by id — the same
//! "node array / arc array" style the original C++ implementation used.
//! Every arc carries an `i64` weight (cost) and an `i64` transit time
//! (defaulting to 1, which turns the cost-to-time ratio problem into the
//! cycle mean problem).
//!
//! # Example
//!
//! ```
//! use mcr_graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! let v = b.add_nodes(3);
//! b.add_arc(v[0], v[1], 2);
//! b.add_arc(v[1], v[2], 4);
//! b.add_arc(v[2], v[0], 3);
//! let g = b.build();
//! assert_eq!(g.num_nodes(), 3);
//! assert_eq!(g.num_arcs(), 3);
//! let total: i64 = g.arc_ids().map(|a| g.weight(a)).sum();
//! assert_eq!(total, 9);
//! ```

pub mod chaos;
pub mod compact;
pub mod graph;
pub mod heap;
#[cfg(feature = "serde")]
mod serde_impls;
pub mod io;
pub mod scc;
pub mod traverse;

pub use compact::idx32;
pub use graph::{ArcId, Graph, GraphBuilder, GraphError, NodeId};
pub use io::{ParseErrorKind, ParseGraphError};
pub use scc::{condensation, SccDecomposition, SubgraphExtractor};
