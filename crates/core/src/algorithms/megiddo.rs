//! Megiddo's parametric search (Table 1, row 12).
//!
//! Megiddo's technique runs a *master* algorithm — here Bellman–Ford on
//! `G_λ` — symbolically at the unknown optimum `λ*`. Every distance is
//! a linear function `a − b·λ` of λ, so each comparison the master
//! algorithm makes either has a fixed sign over the current interval
//! known to contain λ*, or crosses at a rational point `λc` that an
//! *oracle* (a concrete negative-cycle test at `λc`) resolves, shrinking
//! the interval to one side. Unlike Lawler's blind bisection, every
//! oracle call lands exactly on a decision point of the master
//! algorithm, so the search homes in on λ* along the algorithm's own
//! critical values — and frequently *pins λ* exactly* when an oracle
//! query hits it (a cycle of ratio exactly `λc` exists but none below).
//! Any residual interval is finished by bisection plus the Stern–Brocot
//! snap, so the result is always exact.
//!
//! Original bound `O(n²m log n)`; this rendering costs one `O(nm)`
//! oracle call per unresolved crossing.

use crate::bellman::{cycle_at_or_below_ws, has_cycle_below_ws};
use crate::budget::BudgetScope;
use crate::driver::SccOutcome;
use crate::error::SolveError;
use crate::instrument::Counters;
use crate::rational::Ratio64;
use crate::solution::Guarantee;
use crate::workspace::Workspace;
use mcr_graph::Graph;

/// Linear distance function `a − b·λ`.
#[derive(Clone, Copy, PartialEq, Eq)]
struct Lin {
    a: i64,
    b: i64,
}

/// The λ*-containing interval, with an early-exit flag once λ* is
/// pinned exactly.
struct Interval {
    lo: Ratio64,
    hi: Ratio64,
    pinned: bool,
}

impl Interval {
    fn width_below(&self, target: Ratio64) -> bool {
        self.pinned || self.hi - self.lo < target
    }
}

/// Evaluates `f(x) = num − den·x` exactly.
fn eval(num: i64, den: i64, x: Ratio64) -> Ratio64 {
    Ratio64::from(num) - Ratio64::from(den) * x
}

/// Decides whether `cand < cur` holds at λ*, resolving crossings with
/// oracle calls that shrink (or pin) the interval. Each oracle
/// resolution charges one λ-refinement.
#[allow(clippy::too_many_arguments)] // internal helper threading scratch + budget state
fn less_at_optimum(
    g: &Graph,
    cand: Lin,
    cur: Lin,
    iv: &mut Interval,
    counters: &mut Counters,
    ws: &mut Workspace,
    scope: &mut BudgetScope,
) -> Result<bool, SolveError> {
    let num = cand.a - cur.a;
    let den = cand.b - cur.b;
    // f(λ) = num − den·λ; cand < cur at λ* ⟺ f(λ*) < 0.
    let f_lo = eval(num, den, iv.lo);
    let f_hi = eval(num, den, iv.hi);
    if f_lo < Ratio64::ZERO && f_hi < Ratio64::ZERO {
        return Ok(true);
    }
    if f_lo >= Ratio64::ZERO && f_hi >= Ratio64::ZERO {
        // Nonnegative across the interval: a tie at λ* is "not less",
        // and f can only vanish at one point of a closed interval
        // unless it is identically zero (then num = den = 0).
        return Ok(false);
    }
    // Sign change: the crossing num/den lies strictly inside.
    debug_assert!(den != 0);
    if den == 0 {
        return Err(SolveError::NumericRange {
            context: "Megiddo crossing with a constant comparison function",
        });
    }
    scope.tick_refinement()?;
    scope.chaos_check("core.megiddo.resolve")?;
    let cross = Ratio64::new(num, den);
    if has_cycle_below_ws(g, cross, counters, ws, scope)? {
        // λ* < cross.
        iv.hi = cross;
        Ok(f_lo < Ratio64::ZERO)
    } else if cycle_at_or_below_ws(g, cross, counters, ws, scope)? {
        // No cycle below but one at cross: λ* == cross, pinned.
        iv.lo = cross;
        iv.hi = cross;
        iv.pinned = true;
        Ok(false) // f(λ*) = f(cross) = 0: tie, not less
    } else {
        // λ* > cross.
        iv.lo = cross;
        Ok(f_hi < Ratio64::ZERO)
    }
}

/// Megiddo's algorithm on one strongly connected, cyclic component
/// (general transit times; the cycle mean problem is the unit case).
/// Symbolic Bellman–Ford rounds charge iterations; oracle resolutions
/// charge λ-refinements.
pub(crate) fn solve_scc(
    g: &Graph,
    counters: &mut Counters,
    ws: &mut Workspace,
    scope: &mut BudgetScope,
) -> Result<SccOutcome, SolveError> {
    let n = g.num_nodes();
    let wabs = g
        .arc_ids()
        .map(|a| g.weight(a).abs())
        .max()
        .expect("component has arcs")
        .max(1);
    let bound = wabs.saturating_mul(n as i64) + 1;
    let mut iv = Interval {
        lo: Ratio64::from(-bound),
        hi: Ratio64::from(bound),
        pinned: false,
    };

    // Symbolic Bellman–Ford from an implicit super-source.
    let mut dist = vec![Lin { a: 0, b: 0 }; n];
    scope.loop_metrics("core.megiddo.resolve");
    for _round in 0..=n {
        if iv.pinned {
            break;
        }
        counters.iterations += 1;
        scope.tick_iteration_and_time()?;
        scope.chaos_check("core.megiddo.resolve")?;
        let mut changed = false;
        for e in g.arc_ids() {
            let u = g.source(e).index();
            let v = g.target(e).index();
            counters.relaxations += 1;
            let cand = Lin {
                a: dist[u].a + g.weight(e),
                b: dist[u].b + g.transit(e),
            };
            if less_at_optimum(g, cand, dist[v], &mut iv, counters, ws, scope)? {
                dist[v] = cand;
                counters.distance_updates += 1;
                changed = true;
            }
            if iv.pinned {
                break;
            }
        }
        if !changed {
            break;
        }
    }

    // Finish: bisect any residual interval down to the uniqueness
    // width, then snap to the single representable optimum inside.
    let total_t: i64 = g.arc_ids().map(|a| g.transit(a)).sum();
    let t_bound = total_t.max(1);
    let target = Ratio64::new(1, t_bound.saturating_mul(t_bound - 1).max(1) + 1);
    while !iv.width_below(target) {
        if iv.hi.denom() >= i64::MAX / 8 || iv.lo.denom() >= i64::MAX / 8 {
            return Err(SolveError::NumericRange {
                context: "Megiddo residual bisection exhausted the i64 range",
            });
        }
        scope.tick_refinement()?;
        scope.chaos_check("core.megiddo.resolve")?;
        let mid = iv.lo.midpoint(iv.hi);
        if has_cycle_below_ws(g, mid, counters, ws, scope)? {
            iv.hi = mid;
        } else {
            iv.lo = mid;
        }
    }
    let lambda = if iv.pinned {
        iv.lo
    } else {
        Ratio64::simplest_in(iv.lo, iv.hi)
    };
    if !cycle_at_or_below_ws(g, lambda, counters, ws, scope)? {
        return Err(SolveError::NumericRange {
            context: "Megiddo found no cycle at its computed optimum",
        });
    }
    let cycle = ws.bf.cycle.clone();
    let w: i128 = cycle.iter().map(|&a| g.weight(a) as i128).sum();
    let t: i128 = cycle.iter().map(|&a| g.transit(a) as i128).sum();
    if t <= 0 {
        return Err(SolveError::ZeroTransitCycle);
    }
    let lambda = Ratio64::try_from_i128(w, t).ok_or(SolveError::Overflow {
        context: "Megiddo witness cycle ratio",
    })?;
    Ok(SccOutcome {
        lambda,
        cycle,
        guarantee: Guarantee::Exact,
        solved_by: crate::Algorithm::Megiddo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_graph::graph::from_arc_list;

    fn solve(g: &Graph) -> (Ratio64, Counters) {
        let mut c = Counters::new();
        let mut scope = BudgetScope::unlimited(crate::Algorithm::Megiddo);
        let s = solve_scc(g, &mut c, &mut Workspace::new(), &mut scope).expect("unlimited");
        (s.lambda, c)
    }

    #[test]
    fn single_ring() {
        let g = from_arc_list(3, &[(0, 1, 1), (1, 2, 2), (2, 0, 4)]);
        assert_eq!(solve(&g).0, Ratio64::new(7, 3));
    }

    #[test]
    fn self_loop() {
        let g = from_arc_list(1, &[(0, 0, -5)]);
        assert_eq!(solve(&g).0, Ratio64::from(-5));
    }

    #[test]
    fn matches_brute_force() {
        use mcr_gen::sprand::{sprand, SprandConfig};
        for seed in 0..50 {
            let g = sprand(&SprandConfig::new(10, 28).seed(seed).weight_range(-40, 40));
            let (expected, _) = crate::reference::brute_force_min_mean(&g).expect("cyclic");
            assert_eq!(solve(&g).0, expected, "seed {seed}");
        }
    }

    #[test]
    fn ratio_with_transits() {
        use mcr_gen::sprand::{sprand, SprandConfig};
        use mcr_gen::transit::with_random_transits;
        for seed in 0..25 {
            let g0 = sprand(&SprandConfig::new(9, 22).seed(seed).weight_range(-20, 20));
            let g = with_random_transits(&g0, 1, 5, seed ^ 0xfeed);
            let (expected, _) = crate::reference::brute_force_min_ratio(&g).expect("cyclic");
            assert_eq!(solve(&g).0, expected, "seed {seed}");
        }
    }

    #[test]
    fn oracle_calls_stay_modest() {
        use mcr_gen::sprand::{sprand, SprandConfig};
        for seed in 0..10 {
            let g = sprand(&SprandConfig::new(60, 180).seed(seed));
            let (lam, c) = solve(&g);
            let mut cl = Counters::new();
            let lawler = super::super::lawler::solve_scc_exact(
                &g,
                &mut cl,
                &mut crate::workspace::Workspace::new(),
                &mut BudgetScope::unlimited(crate::Algorithm::LawlerExact),
            )
            .expect("unlimited");
            assert_eq!(lam, lawler.lambda, "seed {seed}");
            // Every oracle call is an O(nm) Bellman–Ford; Megiddo calls
            // it only at crossings inside the shrinking interval, which
            // stays within a small factor of Lawler's blind bisection.
            assert!(
                c.oracle_calls <= 4 * cl.oracle_calls + 20,
                "seed {seed}: megiddo {} vs lawler {}",
                c.oracle_calls,
                cl.oracle_calls
            );
        }
    }

    #[test]
    fn pins_lambda_early_on_integer_optima() {
        // λ* = 3 is an integer: some oracle query lands on it exactly.
        let g = from_arc_list(2, &[(0, 1, 2), (1, 0, 4), (0, 0, 7)]);
        let (lam, _) = solve(&g);
        assert_eq!(lam, Ratio64::from(3));
    }

    #[test]
    fn zero_transit_arcs() {
        let mut b = mcr_graph::GraphBuilder::new();
        let v = b.add_nodes(3);
        b.add_arc_with_transit(v[0], v[1], -4, 0);
        b.add_arc_with_transit(v[1], v[2], 1, 2);
        b.add_arc_with_transit(v[2], v[0], 1, 1);
        b.add_arc_with_transit(v[0], v[0], 10, 4);
        let g = b.build();
        assert_eq!(solve(&g).0, Ratio64::new(-2, 3));
    }
}
