//! mcr-obs: structured solve traces and a unified metrics registry.
//!
//! This crate is the recording half of the observability layer described
//! in DESIGN.md. It is linked into `mcr-core` only when core's `obs`
//! feature is on (the same compile-out contract as `mcr-chaos`, asserted
//! by `cargo tree` in CI), and it is deliberately dependency-free.
//!
//! # Model
//!
//! A *recorder* is installed globally for the duration of one observed
//! region (typically one CLI invocation or one bench cell):
//!
//! ```
//! let guard = mcr_obs::install();
//! mcr_obs::counter_add("heap.insert", 3);
//! mcr_obs::job_event(0, "job.start", vec![("alg", "Karp".into())]);
//! let report = guard.finish();
//! assert_eq!(report.counters["heap.insert"], 3);
//! ```
//!
//! Three kinds of data accumulate while a recorder is installed:
//!
//! * **Events** — spans and point events (`solve.start`, `job.end`,
//!   `attempt.start`, `fallback.hop`, `checkpoint.save`,
//!   `fault.injected`, `cancel.observed`, ...). Every event carries a
//!   deterministic ordering key `(solve, phase, job, seq)` plus a wall
//!   clock timestamp that is *excluded* from ordering, so the rendered
//!   trace is stable across thread counts and machine speeds: each SCC
//!   job is solved by exactly one thread, so its per-job sequence
//!   numbers are reproducible even though jobs interleave in real time.
//! * **Counters** — named monotonic `u64` counters. The per-solve
//!   `Counters` structs that the algorithms already thread by hand are
//!   absorbed here once per solve under `solve.*` / `heap.*` names, and
//!   each budgeted algorithm loop registers its own scope-local
//!   `loop.<site>.*` counts (lint rule MCRL006 enforces this).
//! * **Timings** — named duration aggregates (count/total/min/max).
//!
//! `ObsGuard::finish` returns a [`Report`] which renders to the
//! versioned JSONL schemas `mcr-trace v1` and `mcr-metrics v1`, or to a
//! human summary table. Goldens use [`Timestamps::Normalized`], which
//! zeroes every wall-clock field while keeping the deterministic parts.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

pub mod json;

/// Version tag stamped on every trace JSONL line.
pub const TRACE_SCHEMA: &str = "mcr-trace v1";
/// Version tag stamped on every metrics JSONL line.
pub const METRICS_SCHEMA: &str = "mcr-metrics v1";
/// Version tag stamped on every per-cell bench JSONL line.
pub const TABLE2_SCHEMA: &str = "mcr-table2 v1";
/// Numeric trace schema version; bump together with [`TRACE_SCHEMA`].
/// The golden suite pins this so schema drift fails loudly with
/// instructions instead of silently rewriting snapshots.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// A field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Which part of a solve an event belongs to. The phase is the second
/// component of the deterministic ordering key, so solve-level start
/// events sort before every job event, which sort before solve-level
/// end events, regardless of wall-clock interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Solve-level events emitted before jobs run (`solve.start`).
    Setup = 0,
    /// Job-scoped events (and global mid-solve events, which sort after
    /// all job streams within the phase).
    Jobs = 1,
    /// Solve-level events emitted after jobs finish (`solve.end`).
    Teardown = 2,
}

impl Phase {
    fn as_u8(self) -> u8 {
        match self {
            Phase::Setup => 0,
            Phase::Jobs => 1,
            Phase::Teardown => 2,
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Index of the enclosing solve (0-based, incremented by each
    /// `solve.start`).
    pub solve: u64,
    /// Ordering phase within the solve.
    pub phase: Phase,
    /// SCC job index for job-scoped events; `None` for solve-level and
    /// global events. Job indices come from the driver's deterministic
    /// Tarjan-order job extraction, the same key checkpointing uses.
    pub job: Option<u64>,
    /// Sequence number within this event's `(solve, phase, job)` stream.
    pub seq: u64,
    /// Wall-clock nanoseconds since the recorder was installed.
    /// Excluded from ordering; zeroed by [`Timestamps::Normalized`].
    pub elapsed_ns: u64,
    /// Event kind, e.g. `"job.start"` or `"fault.injected"`.
    pub kind: &'static str,
    /// Free-form payload fields, rendered after the fixed keys.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// The deterministic sort key. Within [`Phase::Jobs`], events with a
    /// job index sort by job then sequence; global (job-less) events
    /// sort after every job stream.
    fn sort_key(&self) -> (u64, u8, u64, u64) {
        let job_key = self.job.unwrap_or(u64::MAX);
        (self.solve, self.phase.as_u8(), job_key, self.seq)
    }
}

/// Duration aggregate for one named timing metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Timing {
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

impl Timing {
    fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count = self.count.saturating_add(1);
        self.total_ns = self.total_ns.saturating_add(ns);
    }
}

/// Whether rendered output keeps real wall-clock values or zeroes them
/// for byte-stable golden comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Timestamps {
    /// Real elapsed times and timing aggregates.
    Wall,
    /// Every wall-clock-derived field rendered as zero; the
    /// deterministic ordering key, event payloads, counters, and timing
    /// *counts* are kept.
    Normalized,
}

struct State {
    started: Instant,
    /// Index of the solve currently being recorded; `solve.start`
    /// advances it. Concurrent solves under one recorder would share an
    /// index, so goldens observe one solve at a time.
    current_solve: u64,
    solves_started: u64,
    /// Next sequence number per `(solve, phase, job-or-MAX)` stream.
    seqs: BTreeMap<(u64, u8, u64), u64>,
    events: Vec<Event>,
    counters: BTreeMap<String, u64>,
    timings: BTreeMap<String, Timing>,
}

impl State {
    fn new() -> Self {
        State {
            // lint: allow(nondet) reason=wall anchor only; every emitted t_ns is relative to it and Timestamps::Normalized zeroes them for goldens
            started: Instant::now(),
            current_solve: 0,
            solves_started: 0,
            seqs: BTreeMap::new(),
            events: Vec::new(),
            counters: BTreeMap::new(),
            timings: BTreeMap::new(),
        }
    }

    fn push_event(&mut self, phase: Phase, job: Option<u64>, kind: &'static str, fields: Vec<(&'static str, Value)>) {
        let solve = self.current_solve;
        let stream = (solve, phase.as_u8(), job.unwrap_or(u64::MAX));
        let seq = self.seqs.entry(stream).or_insert(0);
        let event = Event {
            solve,
            phase,
            job,
            seq: *seq,
            elapsed_ns: u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            kind,
            fields,
        };
        *seq = seq.saturating_add(1);
        self.events.push(event);
    }
}

static INSTALL: Mutex<()> = Mutex::new(());
static STATE: Mutex<Option<State>> = Mutex::new(None);
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn state_lock() -> MutexGuard<'static, Option<State>> {
    // A panic while holding the lock poisons it; the state itself stays
    // coherent (every mutation is a single guarded section), so recover
    // the inner value rather than propagating the poison.
    STATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Fast-path check: is a recorder currently installed? A single relaxed
/// atomic load, safe to call on every hook site.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Owns the installed recorder; dropping (or [`ObsGuard::finish`]ing)
/// it uninstalls. Holding the guard also holds a global install lock so
/// two recorders can never interleave — the same serialization contract
/// `ChaosGuard` uses.
pub struct ObsGuard {
    _install: MutexGuard<'static, ()>,
    finished: bool,
}

/// Installs a fresh recorder and returns the guard that owns it.
/// Blocks if another recorder is currently installed (tests in one
/// process serialize on this, like chaos tests do).
pub fn install() -> ObsGuard {
    let install = INSTALL.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    *state_lock() = Some(State::new());
    ACTIVE.store(true, Ordering::SeqCst);
    ObsGuard {
        _install: install,
        finished: false,
    }
}

impl ObsGuard {
    /// Stops recording and returns everything captured, sorted into the
    /// deterministic event order.
    pub fn finish(mut self) -> Report {
        self.finished = true;
        ACTIVE.store(false, Ordering::SeqCst);
        match state_lock().take() {
            Some(state) => Report::from_state(state),
            None => Report::default(),
        }
    }
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        if !self.finished {
            ACTIVE.store(false, Ordering::SeqCst);
            *state_lock() = None;
        }
    }
}

/// Records a solve-level start event ([`Phase::Setup`]) and advances
/// the solve index. No-op when no recorder is installed.
pub fn solve_start(fields: Vec<(&'static str, Value)>) {
    if !active() {
        return;
    }
    if let Some(state) = state_lock().as_mut() {
        state.current_solve = state.solves_started;
        state.solves_started = state.solves_started.saturating_add(1);
        state.push_event(Phase::Setup, None, "solve.start", fields);
    }
}

/// Records a solve-level end event ([`Phase::Teardown`]).
pub fn solve_end(kind: &'static str, fields: Vec<(&'static str, Value)>) {
    if !active() {
        return;
    }
    if let Some(state) = state_lock().as_mut() {
        state.push_event(Phase::Teardown, None, kind, fields);
    }
}

/// Records an event scoped to SCC job `job` ([`Phase::Jobs`]). Each job
/// runs on exactly one thread, so its sequence numbers — and therefore
/// the rendered order — are identical at any thread count.
pub fn job_event(job: u64, kind: &'static str, fields: Vec<(&'static str, Value)>) {
    if !active() {
        return;
    }
    if let Some(state) = state_lock().as_mut() {
        state.push_event(Phase::Jobs, Some(job), kind, fields);
    }
}

/// Records a mid-solve event with no job scope (e.g. a fault injected
/// outside any job). These sort after all job streams within the phase;
/// their relative order across threads is observation order, so goldens
/// use single-job or single-threaded configurations for them.
pub fn global_event(kind: &'static str, fields: Vec<(&'static str, Value)>) {
    if !active() {
        return;
    }
    if let Some(state) = state_lock().as_mut() {
        state.push_event(Phase::Jobs, None, kind, fields);
    }
}

/// Adds `delta` to the named monotonic counter.
pub fn counter_add(name: &str, delta: u64) {
    if !active() || delta == 0 {
        return;
    }
    if let Some(state) = state_lock().as_mut() {
        let slot = state.counters.entry(name.to_owned()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }
}

/// Records one duration sample for the named timing metric.
pub fn timing_record(name: &str, ns: u64) {
    if !active() {
        return;
    }
    if let Some(state) = state_lock().as_mut() {
        state.timings.entry(name.to_owned()).or_default().record(ns);
    }
}

/// Everything one recorder captured, ready to render.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Events in deterministic `(solve, phase, job, seq)` order.
    pub events: Vec<Event>,
    /// Monotonic counters, name-sorted (BTreeMap order).
    pub counters: BTreeMap<String, u64>,
    /// Timing aggregates, name-sorted.
    pub timings: BTreeMap<String, Timing>,
}

impl Report {
    fn from_state(state: State) -> Self {
        let mut events = state.events;
        events.sort_by_key(Event::sort_key);
        Report {
            events,
            counters: state.counters,
            timings: state.timings,
        }
    }

    /// Renders the trace as `mcr-trace v1` JSONL: a header line, then
    /// one line per event in deterministic order.
    pub fn trace_jsonl(&self, timestamps: Timestamps) -> String {
        let mut out = String::new();
        out.push_str(
            &json::Obj::new()
                .str("schema", TRACE_SCHEMA)
                .str("kind", "trace.header")
                .u64("version", u64::from(TRACE_SCHEMA_VERSION))
                .u64("events", self.events.len() as u64)
                .finish(),
        );
        out.push('\n');
        for (i, event) in self.events.iter().enumerate() {
            let t_ns = match timestamps {
                Timestamps::Wall => event.elapsed_ns,
                Timestamps::Normalized => 0,
            };
            let mut obj = json::Obj::new()
                .str("schema", TRACE_SCHEMA)
                .u64("i", i as u64)
                .str("kind", event.kind)
                .u64("solve", event.solve)
                .u64("phase", u64::from(event.phase.as_u8()));
            if let Some(job) = event.job {
                obj = obj.u64("job", job);
            }
            obj = obj.u64("seq", event.seq).u64("t_ns", t_ns);
            for (key, value) in &event.fields {
                obj = match value {
                    Value::U64(v) => obj.u64(key, *v),
                    Value::I64(v) => obj.i64(key, *v),
                    Value::F64(v) => obj.f64(key, *v),
                    Value::Str(v) => obj.str(key, v),
                };
            }
            out.push_str(&obj.finish());
            out.push('\n');
        }
        out
    }

    /// Renders the registry as `mcr-metrics v1` JSONL: a header line,
    /// then one line per counter, then one line per timing.
    pub fn metrics_jsonl(&self, timestamps: Timestamps) -> String {
        let mut out = String::new();
        out.push_str(
            &json::Obj::new()
                .str("schema", METRICS_SCHEMA)
                .str("kind", "metrics.header")
                .u64("counters", self.counters.len() as u64)
                .u64("timings", self.timings.len() as u64)
                .finish(),
        );
        out.push('\n');
        for (name, value) in &self.counters {
            out.push_str(
                &json::Obj::new()
                    .str("schema", METRICS_SCHEMA)
                    .str("kind", "counter")
                    .str("name", name)
                    .u64("value", *value)
                    .finish(),
            );
            out.push('\n');
        }
        for (name, timing) in &self.timings {
            let (total, min, max) = match timestamps {
                Timestamps::Wall => (timing.total_ns, timing.min_ns, timing.max_ns),
                Timestamps::Normalized => (0, 0, 0),
            };
            out.push_str(
                &json::Obj::new()
                    .str("schema", METRICS_SCHEMA)
                    .str("kind", "timing")
                    .str("name", name)
                    .u64("count", timing.count)
                    .u64("total_ns", total)
                    .u64("min_ns", min)
                    .u64("max_ns", max)
                    .finish(),
            );
            out.push('\n');
        }
        out
    }

    /// Renders the human-facing summary table the CLI prints under
    /// `--summary`. With [`Timestamps::Normalized`] all wall-clock
    /// columns show `-` so the layout itself can be golden-tested.
    pub fn summary(&self, timestamps: Timestamps) -> String {
        let mut out = String::new();
        out.push_str(&format!("observability summary ({TRACE_SCHEMA})\n"));

        let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
        for event in &self.events {
            *by_kind.entry(event.kind).or_insert(0) += 1;
        }
        out.push_str(&format!("  events: {}\n", self.events.len()));
        for (kind, count) in &by_kind {
            out.push_str(&format!("    {kind:<24} {count:>10}\n"));
        }

        out.push_str(&format!("  counters: {}\n", self.counters.len()));
        for (name, value) in &self.counters {
            out.push_str(&format!("    {name:<32} {value:>14}\n"));
        }

        out.push_str(&format!("  timings: {}\n", self.timings.len()));
        if !self.timings.is_empty() {
            out.push_str(&format!(
                "    {:<24} {:>8} {:>12} {:>12} {:>12}\n",
                "name", "count", "total_ms", "min_ms", "max_ms"
            ));
        }
        for (name, timing) in &self.timings {
            match timestamps {
                Timestamps::Wall => {
                    let ms = |ns: u64| ns as f64 / 1.0e6;
                    out.push_str(&format!(
                        "    {:<24} {:>8} {:>12.3} {:>12.3} {:>12.3}\n",
                        name,
                        timing.count,
                        ms(timing.total_ns),
                        ms(timing.min_ns),
                        ms(timing.max_ns)
                    ));
                }
                Timestamps::Normalized => {
                    out.push_str(&format!(
                        "    {:<24} {:>8} {:>12} {:>12} {:>12}\n",
                        name, timing.count, "-", "-", "-"
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_hooks_are_noops() {
        assert!(!active());
        counter_add("x", 1);
        timing_record("t", 10);
        job_event(0, "job.start", Vec::new());
        let report = {
            let guard = install();
            guard.finish()
        };
        assert!(report.events.is_empty());
        assert!(report.counters.is_empty());
        assert!(report.timings.is_empty());
    }

    #[test]
    fn events_sort_by_solve_phase_job_seq() {
        let guard = install();
        solve_start(vec![("n", 4u64.into())]);
        // Emit job events out of job order, as a thread race would.
        job_event(2, "job.start", Vec::new());
        job_event(0, "job.start", Vec::new());
        job_event(0, "job.end", Vec::new());
        job_event(2, "job.end", Vec::new());
        global_event("fault.injected", vec![("site", "core.karp.level".into())]);
        solve_end("solve.end", vec![("status", "ok".into())]);
        let report = guard.finish();
        let kinds: Vec<(&str, Option<u64>)> = report.events.iter().map(|e| (e.kind, e.job)).collect();
        assert_eq!(
            kinds,
            vec![
                ("solve.start", None),
                ("job.start", Some(0)),
                ("job.end", Some(0)),
                ("job.start", Some(2)),
                ("job.end", Some(2)),
                ("fault.injected", None),
                ("solve.end", None),
            ]
        );
        // Per-stream sequence numbers restart at 0.
        assert_eq!(report.events[1].seq, 0);
        assert_eq!(report.events[2].seq, 1);
        assert_eq!(report.events[3].seq, 0);
    }

    #[test]
    fn counters_and_timings_accumulate() {
        let guard = install();
        counter_add("heap.insert", 2);
        counter_add("heap.insert", 3);
        counter_add("zero", 0); // zero deltas create nothing
        timing_record("driver.job", 10);
        timing_record("driver.job", 4);
        let report = guard.finish();
        assert_eq!(report.counters.get("heap.insert"), Some(&5));
        assert!(!report.counters.contains_key("zero"));
        let t = report.timings["driver.job"];
        assert_eq!((t.count, t.total_ns, t.min_ns, t.max_ns), (2, 14, 4, 10));
    }

    #[test]
    fn normalized_trace_is_deterministic() {
        let render = || {
            let guard = install();
            solve_start(vec![("alg", "Karp".into())]);
            job_event(0, "job.start", vec![("nodes", 3u64.into())]);
            job_event(0, "job.end", vec![("status", "ok".into())]);
            solve_end("solve.end", Vec::new());
            counter_add("solve.iterations", 7);
            timing_record("driver.job", 123);
            let report = guard.finish();
            (
                report.trace_jsonl(Timestamps::Normalized),
                report.metrics_jsonl(Timestamps::Normalized),
                report.summary(Timestamps::Normalized),
            )
        };
        let (t1, m1, s1) = render();
        let (t2, m2, s2) = render();
        assert_eq!(t1, t2);
        assert_eq!(m1, m2);
        assert_eq!(s1, s2);
        assert!(t1.lines().next().is_some_and(|l| l.contains("trace.header")));
        assert!(t1.contains(r#""schema":"mcr-trace v1""#));
        assert!(t1.contains(r#""t_ns":0"#));
        assert!(m1.contains(r#""name":"solve.iterations","value":7"#));
        assert!(m1.contains(r#""total_ns":0"#));
        assert!(s1.contains("driver.job"));
    }

    #[test]
    fn wall_trace_reports_real_timestamps() {
        let guard = install();
        solve_start(Vec::new());
        timing_record("driver.job", 500);
        let report = guard.finish();
        let wall = report.metrics_jsonl(Timestamps::Wall);
        assert!(wall.contains(r#""total_ns":500"#));
    }

    #[test]
    fn second_solve_increments_solve_index() {
        let guard = install();
        solve_start(Vec::new());
        solve_end("solve.end", Vec::new());
        solve_start(Vec::new());
        job_event(0, "job.start", Vec::new());
        let report = guard.finish();
        assert_eq!(report.events[0].solve, 0);
        assert_eq!(report.events.last().map(|e| e.solve), Some(1));
    }

    #[test]
    fn drop_without_finish_uninstalls() {
        {
            let _guard = install();
            assert!(active());
        }
        assert!(!active());
    }
}
