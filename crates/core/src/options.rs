//! Solver configuration shared by the public entry points.

// Parsing/validation surfaces must stay panic-free whatever the
// input; CI runs clippy with -D warnings, so these lints are a gate.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

use crate::algorithms::Algorithm;
use crate::budget::{Budget, Deadline};
use crate::cancel::CancelToken;
use crate::checkpoint::CheckpointStore;
use crate::driver::SccPlan;
use crate::sweep::{SweepConfig, SweepMode, DEFAULT_CHUNK_ARCS};
use std::time::Instant;

/// The ordered list of alternate algorithms the driver tries when the
/// primary algorithm fails with a recoverable error (budget exhaustion,
/// overflow, numeric-range exhaustion) on a component.
///
/// The default chain is `HowardExact → Karp → LawlerExact` — the paper's
/// practical favorite backed by the `Θ(nm)` worst-case workhorse and an
/// exact binary search with entirely different numerics. The primary
/// algorithm is always tried first; alternates equal to the primary (or
/// to an earlier alternate) are skipped.
///
/// ```
/// use mcr_core::{Algorithm, FallbackChain};
/// let chain = FallbackChain::default();
/// assert_eq!(
///     chain.chain_for(Algorithm::Karp),
///     vec![Algorithm::Karp, Algorithm::HowardExact, Algorithm::LawlerExact],
/// );
/// assert_eq!(
///     FallbackChain::NONE.chain_for(Algorithm::Megiddo),
///     vec![Algorithm::Megiddo],
/// );
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FallbackChain {
    alternates: [Option<Algorithm>; 4],
}

impl Default for FallbackChain {
    fn default() -> Self {
        FallbackChain {
            alternates: [
                Some(Algorithm::HowardExact),
                Some(Algorithm::Karp),
                Some(Algorithm::LawlerExact),
                None,
            ],
        }
    }
}

impl FallbackChain {
    /// No fallback: a recoverable failure of the primary algorithm is
    /// reported to the caller directly.
    pub const NONE: FallbackChain = FallbackChain {
        alternates: [None; 4],
    };

    /// A chain of up to four alternates, tried in order. Entries beyond
    /// the fourth are ignored.
    pub fn new(algorithms: &[Algorithm]) -> Self {
        let mut alternates = [None; 4];
        for (slot, &alg) in alternates.iter_mut().zip(algorithms) {
            *slot = Some(alg);
        }
        FallbackChain { alternates }
    }

    /// The alternates in order (without the primary).
    pub fn alternates(&self) -> impl Iterator<Item = Algorithm> + '_ {
        self.alternates.iter().flatten().copied()
    }

    /// The full attempt order for `primary`: the primary first, then
    /// each alternate not already attempted.
    pub fn chain_for(&self, primary: Algorithm) -> Vec<Algorithm> {
        let mut chain = vec![primary];
        for alg in self.alternates() {
            if !chain.contains(&alg) {
                chain.push(alg);
            }
        }
        chain
    }
}

/// Options for the per-SCC solver driver.
///
/// ```
/// use mcr_core::{Algorithm, SolveOptions};
/// use mcr_graph::graph::from_arc_list;
/// let g = from_arc_list(4, &[(0, 1, 4), (1, 0, 4), (2, 3, 1), (3, 2, 1)]);
/// let opts = SolveOptions::new().threads(2);
/// let sol = Algorithm::HowardExact.solve_with_options(&g, &opts).unwrap();
/// assert_eq!(sol.lambda, mcr_core::Ratio64::from(1));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SolveOptions {
    /// Number of worker threads for solving strongly connected
    /// components in parallel. `1` (the default) is the sequential
    /// legacy path; `0` means "use [`std::thread::available_parallelism`]".
    ///
    /// Results are **bit-identical** for every thread count: components
    /// are reduced in a fixed order with a strict comparison, and
    /// counters merge commutatively. Parallelism only helps on inputs
    /// with several nontrivial components.
    pub threads: usize,
    /// Precision for the ε-approximate algorithms; `None` uses
    /// [`crate::Algorithm::default_epsilon`]. Exact algorithms ignore it.
    pub epsilon: Option<f64>,
    /// Work limits; [`Budget::UNLIMITED`] (the default) preserves the
    /// unbudgeted behavior exactly.
    pub budget: Budget,
    /// Alternates tried when the primary algorithm fails recoverably on
    /// a component. Use [`FallbackChain::NONE`] to surface the primary
    /// algorithm's own error instead.
    pub fallback: FallbackChain,
    /// Cooperative cancellation: when set, the solver polls the token
    /// at its wall-clock poll points and fails closed with
    /// [`crate::SolveError::Cancelled`] once it is cancelled. `None`
    /// (the default) adds no per-iteration cost.
    pub cancel: Option<CancelToken>,
    /// Cancellation deadline: the absolute monotonic instant after
    /// which the solve fails closed with
    /// [`crate::SolveError::Cancelled`] (the CLI's `--timeout`, a
    /// service request's deadline). Folded with
    /// [`Budget::wall_time`]'s deadline into **one** instant by
    /// [`SolveOptions::effective_deadline`] before the solve starts, so
    /// whether a near-boundary trip reports exit 2 (budget) or exit 4
    /// (cancelled) is decided once, deterministically — not by a race
    /// between two clocks.
    pub deadline: Option<Instant>,
    /// Checkpoint/resume state: when set, interrupted per-component
    /// attempts save their progress here, and a later solve with the
    /// same (or a reloaded) store resumes from it bit-identically. See
    /// [`crate::checkpoint`].
    pub checkpoints: Option<CheckpointStore>,
    /// How the relaxation kernels traverse a component's arc array.
    /// [`SweepMode::Sequential`] (the default) is the classic in-place
    /// sweep; [`SweepMode::Chunked`] enables the two-phase
    /// chunk-ordered-commit sweeps of [`crate::sweep`], whose results
    /// are identical at any [`SolveOptions::sweep_threads`] count.
    pub sweep: SweepMode,
    /// Arcs per chunk for the chunked sweeps; `0` (the default) uses
    /// [`DEFAULT_CHUNK_ARCS`]. The chunk size *does* select which
    /// (deterministic) chunked schedule runs, so hold it fixed when
    /// comparing runs bit-for-bit.
    pub sweep_chunk: usize,
    /// Intra-SCC thread budget: worker threads for one chunked sweep's
    /// compute phase. `0` (the default) derives it from the spare
    /// driver threads — `effective_threads() / number-of-SCC-jobs`, at
    /// least 1 — so a single giant SCC receives the whole requested
    /// thread count. Has no effect in [`SweepMode::Sequential`]. Never
    /// changes results, only wall-clock.
    pub sweep_threads: usize,
    /// A pre-computed SCC decomposition ([`SccPlan::prepare`]): when
    /// set **and** prepared from this exact graph, the per-SCC driver
    /// reuses its Tarjan-ordered job list instead of re-running SCC
    /// extraction — the cache fast path of the `mcrd` daemon. The plan
    /// carries a size fingerprint; a solve on any other graph (e.g. the
    /// ratio-expansion graphs derived internally) falls back to fresh
    /// extraction, so a stale plan can never misroute a solve onto the
    /// wrong components as long as the caller honors the
    /// same-graph contract. Job indices (the checkpoint keys) are
    /// identical with and without a plan.
    pub plan: Option<SccPlan>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            threads: 1,
            epsilon: None,
            budget: Budget::UNLIMITED,
            fallback: FallbackChain::default(),
            cancel: None,
            deadline: None,
            checkpoints: None,
            sweep: SweepMode::Sequential,
            sweep_chunk: 0,
            sweep_threads: 0,
            plan: None,
        }
    }
}

impl SolveOptions {
    /// The default options: sequential, default precision.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker thread count (`0` = auto-detect).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the precision for approximate algorithms.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon <= 0` or is not finite.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "epsilon must be positive and finite"
        );
        self.epsilon = Some(epsilon);
        self
    }

    /// Sets the work limits.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the fallback chain.
    pub fn fallback(mut self, fallback: FallbackChain) -> Self {
        self.fallback = fallback;
        self
    }

    /// Attaches a cooperative cancellation token.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Sets the absolute cancellation deadline (see
    /// [`SolveOptions::deadline`]).
    pub fn deadline(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Attaches a pre-computed SCC plan (see [`SolveOptions::plan`]).
    /// The plan must have been prepared from the same graph the solve
    /// runs on.
    pub fn plan(mut self, plan: SccPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// The single solve-wide deadline: the earlier of the budget's
    /// wall-clock deadline (trips as
    /// [`crate::SolveError::BudgetExhausted`], exit 2) and the
    /// cancellation deadline (trips as
    /// [`crate::SolveError::Cancelled`], exit 4), with ties resolving
    /// to cancellation. Every entry point resolves this **once** when
    /// the solve starts, so all components and fallback attempts race
    /// against one instant and the error type at the boundary is
    /// deterministic.
    pub fn effective_deadline(&self) -> Option<Deadline> {
        Deadline::earliest(
            self.budget.deadline().map(Deadline::budget),
            self.deadline.map(Deadline::cancel),
        )
    }

    /// Attaches a checkpoint store for interrupt/resume.
    pub fn checkpoints(mut self, store: CheckpointStore) -> Self {
        self.checkpoints = Some(store);
        self
    }

    /// Sets the sweep traversal mode.
    pub fn sweep(mut self, mode: SweepMode) -> Self {
        self.sweep = mode;
        self
    }

    /// Sets the chunk size (arcs) for chunked sweeps (`0` = default).
    pub fn sweep_chunk(mut self, arcs: usize) -> Self {
        self.sweep_chunk = arcs;
        self
    }

    /// Sets the intra-SCC sweep thread budget (`0` = derive from the
    /// spare driver threads).
    pub fn sweep_threads(mut self, threads: usize) -> Self {
        self.sweep_threads = threads;
        self
    }

    /// The concrete worker count: `threads`, or the machine's available
    /// parallelism when `threads == 0` (falling back to 1 if that cannot
    /// be determined).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// Resolves the sweep knobs for a solve with `jobs` SCC jobs: the
    /// chunk size defaults to [`DEFAULT_CHUNK_ARCS`], and a zero
    /// `sweep_threads` receives the worker threads the per-SCC driver
    /// cannot use itself (`effective_threads() / jobs`, at least 1).
    /// The mode and chunk size select *which* deterministic schedule
    /// runs; the thread count never changes results.
    pub fn resolved_sweep(&self, jobs: usize) -> SweepConfig {
        let chunk = if self.sweep_chunk == 0 {
            DEFAULT_CHUNK_ARCS
        } else {
            self.sweep_chunk
        };
        let threads = if self.sweep_threads == 0 {
            (self.effective_threads() / jobs.max(1)).max(1)
        } else {
            self.sweep_threads
        };
        SweepConfig {
            mode: self.sweep,
            chunk,
            threads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sequential() {
        let opts = SolveOptions::default();
        assert_eq!(opts.threads, 1);
        assert_eq!(opts.effective_threads(), 1);
        assert!(opts.epsilon.is_none());
    }

    #[test]
    fn zero_threads_autodetects() {
        let opts = SolveOptions::new().threads(0);
        assert!(opts.effective_threads() >= 1);
    }

    #[test]
    fn builder_sets_fields() {
        let opts = SolveOptions::new().threads(4).epsilon(1e-3);
        assert_eq!(opts.threads, 4);
        assert_eq!(opts.effective_threads(), 4);
        assert_eq!(opts.epsilon, Some(1e-3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_epsilon_rejected() {
        let _ = SolveOptions::new().epsilon(0.0);
    }

    #[test]
    fn sweep_resolution_hands_spare_threads_to_the_sweeps() {
        // 8 requested threads over 2 jobs: each job's sweeps get 4.
        let opts = SolveOptions::new().threads(8).sweep(SweepMode::Chunked);
        let cfg = opts.resolved_sweep(2);
        assert_eq!(cfg.mode, SweepMode::Chunked);
        assert_eq!(cfg.chunk, DEFAULT_CHUNK_ARCS);
        assert_eq!(cfg.threads, 4);
        // A single giant SCC receives the whole requested count.
        assert_eq!(opts.resolved_sweep(1).threads, 8);
        // More jobs than threads: sweeps stay sequential.
        assert_eq!(opts.resolved_sweep(20).threads, 1);
        // Explicit knobs win over derivation.
        let opts = opts.sweep_threads(3).sweep_chunk(512);
        let cfg = opts.resolved_sweep(1);
        assert_eq!((cfg.threads, cfg.chunk), (3, 512));
        // The default mode is sequential.
        assert_eq!(SolveOptions::default().sweep, SweepMode::Sequential);
    }

    #[test]
    fn effective_deadline_prefers_the_earlier_source() {
        use crate::budget::DeadlineKind;
        use std::time::Duration;
        assert!(SolveOptions::default().effective_deadline().is_none());
        // Only a cancellation deadline: kind is Cancel, instant exact.
        let at = Instant::now() + Duration::from_secs(5);
        let opts = SolveOptions::new().deadline(at);
        let d = opts.effective_deadline().expect("deadline set");
        assert_eq!((d.at, d.kind), (at, DeadlineKind::Cancel));
        // A much tighter wall budget wins over the distant timeout.
        let opts = opts.budget(Budget::default().wall_time(Duration::from_millis(1)));
        assert_eq!(
            opts.effective_deadline().expect("both set").kind,
            DeadlineKind::Budget
        );
        // ... and a timeout earlier than the wall budget wins back.
        let opts = SolveOptions::new()
            .budget(Budget::default().wall_time(Duration::from_secs(3600)))
            .deadline(Instant::now() + Duration::from_millis(1));
        assert_eq!(
            opts.effective_deadline().expect("both set").kind,
            DeadlineKind::Cancel
        );
    }

    #[test]
    fn default_budget_is_unlimited_and_chain_is_standard() {
        let opts = SolveOptions::default();
        assert!(opts.budget.is_unlimited());
        assert_eq!(opts.fallback, FallbackChain::default());
    }

    #[test]
    fn chain_for_dedups_the_primary_and_alternates() {
        let chain = FallbackChain::new(&[
            Algorithm::Karp,
            Algorithm::Karp,
            Algorithm::HowardExact,
            Algorithm::Karp,
        ]);
        assert_eq!(
            chain.chain_for(Algorithm::Karp),
            vec![Algorithm::Karp, Algorithm::HowardExact],
        );
        assert_eq!(
            chain.chain_for(Algorithm::Burns),
            vec![Algorithm::Burns, Algorithm::Karp, Algorithm::HowardExact],
        );
    }

    #[test]
    fn new_ignores_entries_beyond_four() {
        let chain = FallbackChain::new(&[
            Algorithm::Burns,
            Algorithm::Ko,
            Algorithm::Yto,
            Algorithm::Ho,
            Algorithm::Megiddo,
        ]);
        assert_eq!(chain.alternates().count(), 4);
    }
}
