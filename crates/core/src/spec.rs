//! One request, one dispatch: the shared solve entry point.
//!
//! The CLI's `mcr solve` and the `mcrd` daemon accept the same logical
//! request — algorithm, objective (mean or ratio), minimize/maximize,
//! precision — and must produce **bit-identical** answers for it. That
//! only holds if they share one dispatch: the objective-specific entry
//! points differ per algorithm (the ratio problem has native solvers
//! for some algorithms and an expansion reduction for the rest), and
//! duplicating that match would let the two front ends drift. This
//! module owns it.

// Request dispatch must stay panic-free whatever the request says;
// CI runs clippy with -D warnings, so these lints are a gate.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

use crate::algorithms::Algorithm;
use crate::budget::Budget;
use crate::error::SolveError;
use crate::options::{FallbackChain, SolveOptions};
use crate::ratio;
use crate::solution::Solution;
use crate::status::SolveStatus;
use mcr_graph::Graph;
use std::fmt;
use std::time::Duration;

/// Which cyclic quantity is being optimized.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Cycle mean `w(C)/|C|` — the MCMP of the study.
    Mean,
    /// Cost-to-time ratio `w(C)/t(C)` — the MCRP (requires every cycle
    /// to have positive total transit time).
    Ratio,
}

impl Objective {
    /// Stable wire tag (`mcr-req v1` `objective` field).
    pub fn wire_name(self) -> &'static str {
        match self {
            Objective::Mean => "mean",
            Objective::Ratio => "ratio",
        }
    }

    /// Inverse of [`Objective::wire_name`] (case-insensitive).
    pub fn by_name(name: &str) -> Option<Objective> {
        if name.eq_ignore_ascii_case("mean") {
            Some(Objective::Mean)
        } else if name.eq_ignore_ascii_case("ratio") {
            Some(Objective::Ratio)
        } else {
            None
        }
    }
}

/// A fully-specified solve request, minus the execution knobs (which
/// live in [`SolveOptions`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolveSpec {
    /// The algorithm to dispatch (fallbacks come from the options).
    pub algorithm: Algorithm,
    /// Mean or ratio.
    pub objective: Objective,
    /// Maximize instead of minimize (solved on the negated graph; the
    /// returned λ is already negated back to the caller's orientation).
    pub maximize: bool,
}

impl SolveSpec {
    /// Minimum cycle mean with `algorithm`.
    pub fn mean(algorithm: Algorithm) -> SolveSpec {
        SolveSpec {
            algorithm,
            objective: Objective::Mean,
            maximize: false,
        }
    }

    /// Minimum cycle ratio with `algorithm`.
    pub fn ratio(algorithm: Algorithm) -> SolveSpec {
        SolveSpec {
            algorithm,
            objective: Objective::Ratio,
            maximize: false,
        }
    }

    /// Flips to the maximization objective.
    pub fn maximize(mut self) -> SolveSpec {
        self.maximize = true;
        self
    }
}

/// Why [`solve_spec`] failed: a typed solver error, or a request-level
/// problem that has no [`SolveError`] variant (the ratio-expansion
/// reduction reports those as text).
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// A typed failure from the solver layer.
    Solve(SolveError),
    /// The request itself was unusable.
    Input(String),
}

impl SpecError {
    /// The [`SolveStatus`] this failure maps to (CLI exit code,
    /// `mcr-resp v1` status).
    pub fn status(&self) -> SolveStatus {
        match self {
            SpecError::Solve(e) => SolveStatus::from_solve_error(e),
            SpecError::Input(_) => SolveStatus::InputError,
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Solve(e) => e.fmt(f),
            SpecError::Input(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<SolveError> for SpecError {
    fn from(e: SolveError) -> Self {
        SpecError::Solve(e)
    }
}

/// Runs `spec` on `g` under `opts`.
///
/// Returns `Ok(None)` when `g` is acyclic (a non-error outcome: there
/// is no cycle mean or ratio to report). For `maximize` the solve runs
/// on the negated graph and the returned λ is negated back, so the
/// solution is in the caller's orientation; the witness cycle indexes
/// `g`'s arcs either way, and [`crate::certify`] against `g` works
/// unchanged (negation commutes with both objectives).
///
/// **Plan orientation.** [`SolveOptions::plan`] must be prepared from
/// the graph the solve actually *runs on*: `g` for minimize, but
/// `g.negated()` for maximize — a plan's frozen jobs carry the
/// subgraph weights of the orientation it was extracted from, and the
/// size fingerprint cannot tell the two orientations apart. The `mcrd`
/// graph cache keeps one plan per orientation for exactly this reason.
///
/// This is exactly the dispatch the CLI has always applied; the `mcrd`
/// daemon calls the same function, which is what makes daemon answers
/// bit-identical to one-shot CLI answers for the same request.
pub fn solve_spec(
    g: &Graph,
    spec: &SolveSpec,
    opts: &SolveOptions,
) -> Result<Option<Solution>, SpecError> {
    let negated;
    let target: &Graph = if spec.maximize {
        negated = g.negated();
        &negated
    } else {
        g
    };
    // Validate the precision up front: the Option-returning ratio
    // entries would otherwise fold a bad epsilon into "acyclic".
    let epsilon = match opts.epsilon {
        Some(e) if e > 0.0 && e.is_finite() => e,
        Some(e) => return Err(SolveError::InvalidEpsilon { epsilon: e }.into()),
        None => Algorithm::default_epsilon(target),
    };
    let sol: Option<Solution> = match spec.objective {
        Objective::Mean => flatten_acyclic(spec.algorithm.solve_with_options(target, opts))?,
        Objective::Ratio => {
            if ratio::has_zero_transit_cycle(target) {
                return Err(SolveError::ZeroTransitCycle.into());
            }
            match spec.algorithm {
                Algorithm::Howard => ratio::howard_ratio(target, epsilon),
                Algorithm::HowardExact => {
                    flatten_acyclic(ratio::howard_ratio_exact_opts(target, opts))?
                }
                Algorithm::Burns | Algorithm::BurnsExact => ratio::burns_ratio(target),
                Algorithm::Ko => ratio::parametric_ratio(target, false),
                Algorithm::Yto => ratio::parametric_ratio(target, true),
                Algorithm::Lawler => ratio::lawler_ratio(target, epsilon),
                Algorithm::LawlerExact => {
                    flatten_acyclic(ratio::lawler_ratio_exact_opts(target, opts))?
                }
                Algorithm::Megiddo => ratio::megiddo_ratio(target),
                other => ratio::ratio_via_expansion(target, other).map_err(SpecError::Input)?,
            }
        }
    };
    Ok(sol.map(|mut sol| {
        if spec.maximize {
            sol.lambda = -sol.lambda;
        }
        sol
    }))
}

/// Folds the non-error "no cycle" outcome back into `None`, leaving
/// real failures typed.
fn flatten_acyclic(r: Result<Solution, SolveError>) -> Result<Option<Solution>, SpecError> {
    match r {
        Ok(sol) => Ok(Some(sol)),
        Err(SolveError::Acyclic) => Ok(None),
        Err(e) => Err(e.into()),
    }
}

/// Parses a budget spec: comma-separated `key=value` terms with keys
/// `iters`, `refine`, `time` (`500ms`, `2s`, or plain seconds). The
/// one syntax accepted by both `mcr solve --budget` and the `mcr-req
/// v1` `"budget"` field.
pub fn parse_budget_spec(spec: &str) -> Result<Budget, String> {
    let mut budget = Budget::UNLIMITED;
    for term in spec.split(',') {
        let term = term.trim();
        if term.is_empty() {
            continue;
        }
        let (key, value) = term
            .split_once('=')
            .ok_or_else(|| format!("budget term `{term}` is not key=value"))?;
        match key {
            "iters" | "iterations" => {
                let n: u64 = value
                    .parse()
                    .map_err(|_| format!("invalid iteration budget `{value}`"))?;
                budget = budget.max_iterations(n);
            }
            "refine" | "refinements" => {
                let n: u64 = value
                    .parse()
                    .map_err(|_| format!("invalid refinement budget `{value}`"))?;
                budget = budget.max_lambda_refinements(n);
            }
            "time" | "wall" => {
                budget = budget.wall_time(parse_duration_spec(value)?);
            }
            other => {
                return Err(format!(
                    "unknown budget resource `{other}` (use iters, refine, or time)"
                ))
            }
        }
    }
    Ok(budget)
}

/// Parses a duration spec: `500ms`, `2s`, or plain seconds.
pub fn parse_duration_spec(value: &str) -> Result<Duration, String> {
    let (digits, scale) = if let Some(ms) = value.strip_suffix("ms") {
        (ms, 1e-3)
    } else if let Some(secs) = value.strip_suffix('s') {
        (secs, 1.0)
    } else {
        (value, 1.0)
    };
    let amount: f64 = digits
        .parse()
        .map_err(|_| format!("invalid duration `{value}` (use e.g. 500ms, 2s)"))?;
    if !(amount >= 0.0 && amount.is_finite()) {
        return Err(format!("invalid duration `{value}`"));
    }
    Ok(Duration::from_secs_f64(amount * scale))
}

/// Parses a fallback-chain spec: `none`, or comma-separated algorithm
/// names in attempt order. Shared by `mcr solve --fallback` and the
/// `mcr-req v1` `"fallback"` field.
pub fn parse_fallback_spec(spec: &str) -> Result<FallbackChain, String> {
    if spec.eq_ignore_ascii_case("none") {
        return Ok(FallbackChain::NONE);
    }
    let mut chain = Vec::new();
    for name in spec.split(',') {
        let name = name.trim();
        if name.is_empty() {
            continue;
        }
        chain.push(
            Algorithm::by_name(name)
                .ok_or_else(|| format!("unknown fallback algorithm `{name}`"))?,
        );
    }
    Ok(FallbackChain::new(&chain))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::Ratio64;
    use mcr_graph::graph::from_arc_list;

    #[test]
    fn mean_spec_matches_direct_solve() {
        let g = from_arc_list(3, &[(0, 1, 2), (1, 2, 4), (2, 0, 3), (1, 0, 8)]);
        for alg in Algorithm::ALL {
            let direct = alg.solve(&g).expect("cyclic");
            let via_spec = solve_spec(&g, &SolveSpec::mean(alg), &SolveOptions::default())
                .expect("ok")
                .expect("cyclic");
            assert_eq!(via_spec.lambda, direct.lambda, "{}", alg.name());
            assert_eq!(via_spec.cycle, direct.cycle, "{}", alg.name());
            assert_eq!(via_spec.counters, direct.counters, "{}", alg.name());
        }
    }

    #[test]
    fn maximize_negates_in_and_out() {
        let g = from_arc_list(2, &[(0, 1, 1), (1, 0, 5)]);
        let spec = SolveSpec::mean(Algorithm::HowardExact).maximize();
        let sol = solve_spec(&g, &spec, &SolveOptions::default())
            .expect("ok")
            .expect("cyclic");
        assert_eq!(sol.lambda, Ratio64::from(3));
        // The witness indexes the caller's graph and certifies there.
        crate::certify(&sol, &g).expect("maximized witness certifies");
    }

    #[test]
    fn acyclic_is_ok_none() {
        let g = from_arc_list(3, &[(0, 1, 1), (1, 2, 1)]);
        for objective in [Objective::Mean, Objective::Ratio] {
            let spec = SolveSpec {
                algorithm: Algorithm::Karp,
                objective,
                maximize: false,
            };
            assert!(
                solve_spec(&g, &spec, &SolveOptions::default())
                    .expect("non-error")
                    .is_none(),
                "{objective:?}"
            );
        }
    }

    #[test]
    fn ratio_spec_agrees_across_algorithms() {
        use mcr_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        let v = b.add_nodes(3);
        b.add_arc_with_transit(v[0], v[1], 2, 1);
        b.add_arc_with_transit(v[1], v[2], 4, 2);
        b.add_arc_with_transit(v[2], v[0], 3, 1);
        b.add_arc_with_transit(v[1], v[0], 8, 3);
        let g = b.build();
        let reference = solve_spec(
            &g,
            &SolveSpec::ratio(Algorithm::HowardExact),
            &SolveOptions::default(),
        )
        .expect("ok")
        .expect("cyclic")
        .lambda;
        for alg in Algorithm::ALL {
            let sol = solve_spec(&g, &SolveSpec::ratio(alg), &SolveOptions::default())
                .expect("ok")
                .expect("cyclic");
            if !alg.is_approximate() {
                assert_eq!(sol.lambda, reference, "{}", alg.name());
            }
        }
    }

    #[test]
    fn zero_transit_cycle_is_typed() {
        use mcr_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        let v = b.add_nodes(2);
        b.add_arc_with_transit(v[0], v[1], 1, 0);
        b.add_arc_with_transit(v[1], v[0], 1, 0);
        let g = b.build();
        let err = solve_spec(
            &g,
            &SolveSpec::ratio(Algorithm::HowardExact),
            &SolveOptions::default(),
        )
        .expect_err("zero-transit cycle");
        assert_eq!(err, SpecError::Solve(SolveError::ZeroTransitCycle));
        assert_eq!(err.status(), SolveStatus::InputError);
    }

    #[test]
    fn invalid_epsilon_is_typed_for_both_objectives() {
        let g = from_arc_list(2, &[(0, 1, 1), (1, 0, 3)]);
        for objective in [Objective::Mean, Objective::Ratio] {
            let spec = SolveSpec {
                algorithm: Algorithm::Lawler,
                objective,
                maximize: false,
            };
            let opts = SolveOptions {
                epsilon: Some(-1.0),
                ..SolveOptions::default()
            };
            let err = solve_spec(&g, &spec, &opts).expect_err("bad epsilon");
            assert!(
                matches!(err, SpecError::Solve(SolveError::InvalidEpsilon { .. })),
                "{objective:?}: {err}"
            );
        }
    }

    #[test]
    fn budget_and_fallback_specs_parse() {
        let b = parse_budget_spec("iters=3,refine=2,time=250ms").expect("parses");
        assert_eq!(b.max_iterations, Some(3));
        assert_eq!(b.max_lambda_refinements, Some(2));
        assert_eq!(b.wall_time, Some(Duration::from_millis(250)));
        assert!(parse_budget_spec("fuel=9").is_err());
        assert_eq!(parse_fallback_spec("none").expect("parses"), FallbackChain::NONE);
        let chain = parse_fallback_spec("karp, lawler-exact").expect("parses");
        assert_eq!(
            chain.alternates().collect::<Vec<_>>(),
            [Algorithm::Karp, Algorithm::LawlerExact]
        );
        assert!(parse_fallback_spec("dijkstra").is_err());
        assert!(parse_duration_spec("-1s").is_err());
        assert!(parse_duration_spec("2s").is_ok());
    }

    #[test]
    fn objective_wire_names_round_trip() {
        for o in [Objective::Mean, Objective::Ratio] {
            assert_eq!(Objective::by_name(o.wire_name()), Some(o));
        }
        assert_eq!(Objective::by_name("nonsense"), None);
    }
}
