//! Offline stand-in for the `serde_json` crate.
//!
//! Only compiled because it is an (unconditional) dev-dependency of
//! crates whose serde tests are feature-gated off by default. Every
//! entry point type-checks against the vendored serde trait skeleton
//! and returns an "offline stub" error at runtime; the feature-gated
//! serde tests require the real crates (see the vendored `serde` docs).

use std::fmt;

/// Error type for the stubbed JSON entry points.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json offline stub: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

fn stub_error() -> Error {
    Error {
        msg: "JSON serialization requires the real serde/serde_json crates \
              (unavailable in this offline build)"
            .to_string(),
    }
}

/// Stub: always returns an error (see crate docs).
pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String, Error> {
    Err(stub_error())
}

/// Stub: always returns an error (see crate docs).
pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T, Error> {
    Err(stub_error())
}

#[cfg(test)]
mod tests {
    #[test]
    fn stub_reports_itself_honestly() {
        let err = super::to_string(&7u64).unwrap_err();
        assert!(err.to_string().contains("offline stub"));
    }
}
