//! Deterministic `mcr-edits v1` edit scripts for the incremental
//! solver.
//!
//! [`edit_script`] emits a base graph (a disjoint union of SPRAND
//! components, so untouched components stay cacheable) plus a seeded
//! stream of edit batches — what `mcr gen edits N --seed S` prints, what
//! `mcr dynamic --edits` replays, and what the committed golden script
//! (`crates/core/tests/data/golden_edits.jsonl`) pins byte-for-byte.
//!
//! The batch mix is deliberately adversarial for an *incremental*
//! solver rather than a one-shot one: reweights dominate (cheap,
//! cache-friendly), but every script also inserts fresh arcs (new
//! cycles appear), deletes existing arcs (arc ids renumber, components
//! split), and retimes (the ratio objective's sensitivity). The
//! generator tracks the evolving arc count so every emitted edit is
//! valid at replay time.
//!
//! Like `requests.rs`, the JSON is hand-rolled: the generator crate
//! sits below `mcr-core` in the dependency order, and core's tests
//! depend on it in turn.

use crate::sprand::{sprand, SprandConfig};
use mcr_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`edit_script`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EditScriptConfig {
    /// Number of edit batches to emit.
    pub batches: usize,
    /// RNG seed; equal configs produce byte-identical scripts.
    pub rng_seed: u64,
    /// Total node count of the base graph (split across components).
    pub nodes: usize,
    /// Total arc count of the base graph (split across components).
    pub arcs: usize,
    /// Disjoint SPRAND components in the base graph. More than one
    /// makes the script a real incremental workload: an edit inside one
    /// component leaves the others' fingerprints — and therefore the
    /// [`mcr_core::DynamicSolver`] cache entries — untouched.
    pub components: usize,
}

impl EditScriptConfig {
    /// A `batches`-batch script with seed 0 over the default base
    /// instance (24 nodes, 48 arcs, 3 disjoint components).
    pub fn new(batches: usize) -> Self {
        EditScriptConfig {
            batches,
            rng_seed: 0,
            nodes: 24,
            arcs: 48,
            components: 3,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// Sets the base instance size (totals across all components).
    pub fn size(mut self, nodes: usize, arcs: usize) -> Self {
        self.nodes = nodes;
        self.arcs = arcs;
        self
    }

    /// Sets the number of disjoint base components.
    pub fn components(mut self, components: usize) -> Self {
        self.components = components;
        self
    }
}

/// Extracts `(src, dst, weight, transit)` rows in arc-id order.
fn arc_rows(g: &Graph) -> Vec<(usize, usize, i64, i64)> {
    g.arc_ids()
        .map(|a| {
            (
                g.source(a).index(),
                g.target(a).index(),
                g.weight(a),
                g.transit(a),
            )
        })
        .collect()
}

/// Renders a deterministic `mcr-edits v1` JSONL script.
///
/// The base graph is the disjoint union of `components` SPRAND blocks
/// (weights in `1..=100`, unit transits), `nodes/components` nodes and
/// `arcs/components` arcs each. Each batch holds 1–3 edits; op
/// frequencies are roughly reweight 40%, insert 25%, delete 20%,
/// retime 15%. Inserted arcs stay inside one randomly chosen block, so
/// the blocks remain disjoint and the untouched ones stay cacheable.
/// Deletes are suppressed while fewer than 4 arcs remain so a script
/// never empties its own graph.
pub fn edit_script(cfg: &EditScriptConfig) -> String {
    let mut rng = StdRng::seed_from_u64(cfg.rng_seed);
    let components = cfg.components.max(1);
    let per_nodes = (cfg.nodes / components).max(2);
    let per_arcs = (cfg.arcs / components).max(2);
    let nodes = components * per_nodes;
    let mut arcs = Vec::new();
    for k in 0..components {
        let block = sprand(
            &SprandConfig::new(per_nodes, per_arcs)
                .seed(cfg.rng_seed.wrapping_add(k as u64))
                .weight_range(1, 100),
        );
        let off = k * per_nodes;
        for (src, dst, weight, transit) in arc_rows(&block) {
            arcs.push((src + off, dst + off, weight, transit));
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":\"mcr-edits v1\",\"kind\":\"header\",\"nodes\":{},\"arcs\":{},\"batches\":{},\"seed\":{}}}\n",
        nodes,
        arcs.len(),
        cfg.batches,
        cfg.rng_seed
    ));
    for &(src, dst, weight, transit) in &arcs {
        out.push_str(&format!(
            "{{\"kind\":\"arc\",\"src\":{src},\"dst\":{dst},\"weight\":{weight},\"transit\":{transit}}}\n"
        ));
    }
    for batch in 1..=cfg.batches {
        let count = 1 + rng.gen_range(0..3);
        for _ in 0..count {
            let roll = rng.gen_range(0..100);
            let line = if roll < 40 && !arcs.is_empty() {
                let arc = rng.gen_range(0..arcs.len());
                let weight = rng.gen_range(1..=100i64);
                arcs[arc].2 = weight;
                format!(
                    "{{\"kind\":\"edit\",\"batch\":{batch},\"op\":\"reweight\",\"arc\":{arc},\"weight\":{weight}}}\n"
                )
            } else if roll < 65 {
                let off = rng.gen_range(0..components) * per_nodes;
                let src = off + rng.gen_range(0..per_nodes);
                let dst = off + rng.gen_range(0..per_nodes);
                let weight = rng.gen_range(1..=100i64);
                let transit = rng.gen_range(1..=3i64);
                arcs.push((src, dst, weight, transit));
                format!(
                    "{{\"kind\":\"edit\",\"batch\":{batch},\"op\":\"insert\",\"src\":{src},\"dst\":{dst},\"weight\":{weight},\"transit\":{transit}}}\n"
                )
            } else if roll < 85 && arcs.len() >= 4 {
                let arc = rng.gen_range(0..arcs.len());
                arcs.remove(arc);
                format!("{{\"kind\":\"edit\",\"batch\":{batch},\"op\":\"delete\",\"arc\":{arc}}}\n")
            } else if !arcs.is_empty() {
                let arc = rng.gen_range(0..arcs.len());
                let transit = rng.gen_range(1..=3i64);
                arcs[arc].3 = transit;
                format!(
                    "{{\"kind\":\"edit\",\"batch\":{batch},\"op\":\"retime\",\"arc\":{arc},\"transit\":{transit}}}\n"
                )
            } else {
                continue;
            };
            out.push_str(&line);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_configs() {
        let a = edit_script(&EditScriptConfig::new(8).seed(7));
        let b = edit_script(&EditScriptConfig::new(8).seed(7));
        assert_eq!(a, b);
        let c = edit_script(&EditScriptConfig::new(8).seed(8));
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn header_counts_match_the_lines() {
        let text = edit_script(&EditScriptConfig::new(5).seed(3));
        let header = text.lines().next().expect("header");
        let arcs = text.lines().filter(|l| l.contains("\"kind\":\"arc\"")).count();
        assert!(header.contains(&format!("\"arcs\":{arcs}")), "{header}");
        assert!(header.contains("\"batches\":5"), "{header}");
        let edits = text.lines().filter(|l| l.contains("\"kind\":\"edit\"")).count();
        assert!(edits >= 5, "each batch emits at least one edit");
    }

    #[test]
    fn every_edit_is_valid_at_replay_time() {
        // Track the arc count exactly as a replayer would and check
        // each referenced index is in range when its line is reached.
        let text = edit_script(&EditScriptConfig::new(64).seed(11));
        let mut arcs = 0usize;
        for line in text.lines() {
            if line.contains("\"kind\":\"arc\"") {
                arcs += 1;
            } else if line.contains("\"op\":\"insert\"") {
                arcs += 1;
            } else if let Some(rest) = line.split("\"arc\":").nth(1) {
                let idx: usize = rest
                    .trim_end_matches('}')
                    .split(',')
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("arc index parses");
                assert!(idx < arcs, "index {idx} out of {arcs}: {line}");
                if line.contains("\"op\":\"delete\"") {
                    arcs -= 1;
                }
            }
        }
        assert!(arcs >= 4);
    }
}
