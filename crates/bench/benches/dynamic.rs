//! Criterion bench: per-edit latency of the incremental
//! [`DynamicSolver`] vs a from-scratch `solve_spec` after every edit.
//!
//! `cargo bench -p mcr-bench --bench dynamic`
//!
//! Two instances, both ≥ 10k arcs:
//!
//! * `sprand_union` — a disjoint union of 64 SPRAND components
//!   (the shape the component cache is built for: an edit touches one
//!   component, the other 63 replay from cache);
//! * `circuit` — one mostly-connected circuit graph (the adversarial
//!   shape: almost everything lives in one SCC, so most of the work
//!   re-solves every time and the bench measures the solver's
//!   fingerprint/rebuild overhead honestly).
//!
//! Each group times `incremental` (a persistent solver absorbing one
//! reweight per iteration) against `from_scratch` (the same edit
//! followed by a full `solve_spec` of the edited graph). Before any
//! timing, the whole edit rotation is replayed once asserting the
//! incremental answer bit-identical to the from-scratch one (λ,
//! witness, counters) and recording the fallback rate — how many
//! batches the cache could not shortcut — which is printed and
//! recorded in `results/BENCH_dynamic.json`.
//!
//! Note: the incremental speedup is *work reduction*, not parallelism,
//! so it shows up even on a single-core container; see the JSON for
//! recorded numbers and the machine caveat.
//!
//! Setting `MCR_BENCH_QUICK=1` shrinks the instances and sample counts
//! to CI-smoke size — the bit-identity asserts still run in full.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcr_core::spec::{solve_spec, SolveSpec};
use mcr_core::{Algorithm, DynamicSolver, Edit, SolveMode, SolveOptions};
use mcr_gen::circuit::{circuit_graph, CircuitConfig};
use mcr_gen::sprand::{sprand, SprandConfig};
use mcr_graph::{Graph, GraphBuilder};
use std::hint::black_box;

fn quick() -> bool {
    std::env::var_os("MCR_BENCH_QUICK").is_some_and(|v| v != "0")
}

/// Disjoint union of `blocks` SPRAND components (no bridges: every
/// block is its own SCC and stays byte-identical under edits to the
/// others).
fn sprand_union(blocks: usize, n: usize, m: usize, seed: u64) -> Graph {
    let mut b = GraphBuilder::new();
    for k in 0..blocks {
        let part = sprand(
            &SprandConfig::new(n, m)
                .seed(seed * 131 + k as u64)
                .weight_range(1, 10_000),
        );
        let ids = b.add_nodes(part.num_nodes());
        for a in part.arc_ids() {
            b.add_arc(
                ids[part.source(a).index()],
                ids[part.target(a).index()],
                part.weight(a),
            );
        }
    }
    b.build()
}

/// A deterministic rotation of single-arc reweights, spread across the
/// arc range so successive edits land in different components.
fn edit_rotation(num_arcs: usize, edits: usize) -> Vec<Edit> {
    (0..edits)
        .map(|i| Edit::Reweight {
            arc: (i * 7919) % num_arcs,
            weight: 1 + ((i * 2654435761) % 9_973) as i64,
        })
        .collect()
}

/// Replays the rotation once on a warm solver, asserting every
/// incremental answer bit-identical to a from-scratch solve of the
/// edited graph, and returns how many batches fell back to the full
/// path.
fn assert_identical_and_count_fallbacks(
    g: &Graph,
    spec: SolveSpec,
    edits: &[Edit],
) -> (usize, usize) {
    let mut solver = DynamicSolver::new(g, spec, SolveOptions::new());
    solver.solve().expect("initial solve");
    let mut full = 0usize;
    for (i, edit) in edits.iter().enumerate() {
        let out = solver.apply(std::slice::from_ref(edit)).expect("edit solves");
        if out.mode == SolveMode::Full {
            full += 1;
        }
        let current = solver.current_graph();
        let fresh = solve_spec(&current, &spec, &SolveOptions::new())
            .expect("edited graph solves")
            .expect("cyclic");
        let inc = out.solution.expect("cyclic");
        assert_eq!(inc.lambda, fresh.lambda, "edit {i}: lambda");
        assert_eq!(inc.cycle, fresh.cycle, "edit {i}: witness");
        assert_eq!(inc.counters, fresh.counters, "edit {i}: counters");
    }
    (full, edits.len())
}

fn bench_instance(c: &mut Criterion, name: &str, g: &Graph, spec: SolveSpec) {
    let edits = edit_rotation(g.num_arcs(), if quick() { 8 } else { 64 });
    let (full, total) = assert_identical_and_count_fallbacks(g, spec, &edits);
    println!("{name}: {} arcs, fallback-to-full rate {full}/{total}", g.num_arcs());

    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("per_edit", "incremental"), |b| {
        let mut solver = DynamicSolver::new(g, spec, SolveOptions::new());
        solver.solve().expect("initial solve");
        let mut i = 0usize;
        b.iter(|| {
            let edit = edits[i % edits.len()];
            i += 1;
            black_box(solver.apply(std::slice::from_ref(&edit)).expect("edit"))
        });
    });
    group.bench_function(BenchmarkId::new("per_edit", "from_scratch"), |b| {
        // The non-incremental protocol: mutate a plain arc list, rebuild
        // the CSR graph, and run a full solve_spec per edit.
        let nodes = g.num_nodes();
        let mut arcs: Vec<(usize, usize, i64, i64)> = g
            .arc_ids()
            .map(|a| (g.source(a).index(), g.target(a).index(), g.weight(a), g.transit(a)))
            .collect();
        let mut i = 0usize;
        b.iter(|| {
            match edits[i % edits.len()] {
                Edit::Reweight { arc, weight } => arcs[arc].2 = weight,
                _ => unreachable!("the rotation is reweights only"),
            }
            i += 1;
            let mut builder = GraphBuilder::new();
            let ids = builder.add_nodes(nodes);
            for &(src, dst, w, t) in &arcs {
                builder.add_arc_with_transit(ids[src], ids[dst], w, t);
            }
            let edited = builder.build();
            black_box(solve_spec(&edited, &spec, &SolveOptions::new()).expect("solves"))
        });
    });
    group.finish();
}

fn bench_dynamic(c: &mut Criterion) {
    // Components big enough that per-SCC solve work (exact Lawler
    // bisection) dominates the O(n + m) rebuild both paths share —
    // that ratio, not parallelism, is where incrementality pays.
    let (blocks, n, m) = if quick() { (4, 32, 96) } else { (8, 256, 1280) };
    let union = sprand_union(blocks, n, m, 11);
    bench_instance(
        c,
        "dynamic_sprand",
        &union,
        SolveSpec::mean(Algorithm::LawlerExact),
    );

    let gates = if quick() { 512 } else { 7000 };
    let circuit = circuit_graph(&CircuitConfig::new(gates).seed(7));
    bench_instance(
        c,
        "dynamic_circuit",
        &circuit,
        SolveSpec::mean(Algorithm::HowardExact),
    );
}

criterion_group!(benches, bench_dynamic);
criterion_main!(benches);
