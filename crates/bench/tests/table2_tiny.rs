//! Tiny-grid Table 2 regression: the time-normalized JSONL report for
//! the `--tiny` configuration (n = 64, two seeds) is pinned against the
//! golden committed at `results/table2_tiny.jsonl`. Every λ* cell must
//! stay bit-identical across commits — timing drift is normalized away,
//! answer drift fails the build.
//!
//! Regenerate after an intentional change (new algorithm row, schema
//! bump, generator change) with:
//! `UPDATE_GOLDENS=1 cargo test -p mcr-bench --test table2_tiny`

use mcr_bench::table2::{jsonl_report, sweep};
use mcr_bench::{tiny_grid, HarnessConfig, TINY_SEEDS};

fn tiny_config(threads: usize) -> HarnessConfig {
    HarnessConfig {
        grid: tiny_grid(),
        seeds: TINY_SEEDS,
        quick: false,
        threads,
    }
}

fn golden_path() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/table2_tiny.jsonl")
}

#[test]
fn tiny_grid_report_matches_committed_golden() {
    let cfg = tiny_config(1);
    let report = jsonl_report(&sweep(&cfg), &cfg, true);
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, &report).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nregenerate with UPDATE_GOLDENS=1 \
             cargo test -p mcr-bench --test table2_tiny",
            path.display()
        )
    });
    assert_eq!(
        report, expected,
        "tiny-grid table2 report drifted from results/table2_tiny.jsonl; a \
         λ* change is a correctness regression — investigate before \
         regenerating with UPDATE_GOLDENS=1"
    );
}

#[test]
fn tiny_grid_report_is_thread_count_invariant() {
    let baseline = {
        let cfg = tiny_config(1);
        jsonl_report(&sweep(&cfg), &cfg, true)
    };
    for threads in [2usize, 8] {
        let cfg = tiny_config(threads);
        let report = jsonl_report(&sweep(&cfg), &cfg, true);
        // The header records the thread count; the measured cells must
        // not change with it.
        let strip = |r: &str| {
            r.lines()
                .filter(|l| !l.contains("\"kind\":\"table2.header\""))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            strip(&report),
            strip(&baseline),
            "table2 cells changed between 1 and {threads} threads"
        );
    }
}
