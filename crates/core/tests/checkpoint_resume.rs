//! Checkpoint/resume end-to-end: a solve interrupted by its budget and
//! resumed from a [`CheckpointStore`] must reach a **bit-identical**
//! result to an uninterrupted solve — same lambda, same witness cycle,
//! same guarantee, same answering algorithm — at 1, 2, and 8 worker
//! threads. Checkpoints are keyed by job index (Tarjan extraction
//! order), which is independent of the thread count, so a store written
//! at one thread count resumes correctly at any other.

use mcr_core::{
    Algorithm, Budget, Checkpoint, CheckpointStore, FallbackChain, Solution, SolveError,
    SolveOptions, SweepMode,
};
use mcr_gen::sprand::{sprand, SprandConfig};
use mcr_graph::graph::from_arc_list;
use mcr_graph::Graph;

/// Several nontrivial strongly connected components in one graph, so
/// multi-threaded runs genuinely schedule multiple jobs.
fn multi_scc_graph() -> Graph {
    let parts: Vec<Graph> = (0..3)
        .map(|seed| {
            sprand(
                &SprandConfig::new(24, 72)
                    .seed(0xC0FFEE + seed)
                    .weight_range(-60, 60),
            )
        })
        .collect();
    let mut arcs = Vec::new();
    let mut offset = 0usize;
    for g in &parts {
        for a in g.arc_ids() {
            arcs.push((
                g.source(a).index() + offset,
                g.target(a).index() + offset,
                g.weight(a),
            ));
        }
        offset += g.num_nodes();
    }
    from_arc_list(offset, &arcs)
}

fn assert_bit_identical(resumed: &Solution, reference: &Solution, context: &str) {
    assert_eq!(resumed.lambda, reference.lambda, "{context}: lambda");
    assert_eq!(resumed.cycle, reference.cycle, "{context}: witness cycle");
    assert_eq!(resumed.guarantee, reference.guarantee, "{context}: guarantee");
    assert_eq!(
        resumed.solved_by, reference.solved_by,
        "{context}: solved_by"
    );
}

/// Interrupt `alg` with `tight` (which must exhaust on this graph),
/// then resume unlimited from the same store and compare against the
/// uninterrupted reference. Returns the resumed solution.
fn interrupt_then_resume(
    g: &Graph,
    alg: Algorithm,
    tight: Budget,
    threads: usize,
    reference: &Solution,
) -> Solution {
    let store = CheckpointStore::new();
    let interrupted = alg.solve_with_options(
        g,
        &SolveOptions::new()
            .threads(threads)
            .budget(tight)
            .fallback(FallbackChain::NONE)
            .checkpoints(store.clone()),
    );
    let err = interrupted.expect_err("tight budget must interrupt the solve");
    assert!(
        matches!(err, SolveError::BudgetExhausted { .. }),
        "{} threads={threads}: {err}",
        alg.name()
    );
    assert!(
        !store.is_empty(),
        "{} threads={threads}: interruption saved no progress",
        alg.name()
    );

    let resumed = alg
        .solve_with_options(
            g,
            &SolveOptions::new()
                .threads(threads)
                .fallback(FallbackChain::NONE)
                .checkpoints(store.clone()),
        )
        .expect("unlimited resume finishes");
    assert_bit_identical(
        &resumed,
        reference,
        &format!("{} threads={threads}", alg.name()),
    );
    assert!(
        store.is_empty(),
        "{} threads={threads}: successful jobs must clear their checkpoints",
        alg.name()
    );
    resumed
}

#[test]
fn howard_exact_resumes_bit_identically_at_1_2_8_threads() {
    let g = multi_scc_graph();
    let reference = Algorithm::HowardExact
        .solve_with_options(&g, &SolveOptions::new().fallback(FallbackChain::NONE))
        .expect("cyclic");
    assert!(
        reference.counters.iterations >= 6,
        "instance too easy to demonstrate resumption ({} iterations)",
        reference.counters.iterations
    );
    for threads in [1, 2, 8] {
        let resumed = interrupt_then_resume(
            &g,
            Algorithm::HowardExact,
            Budget::default().max_iterations(1),
            threads,
            &reference,
        );
        // Fewer iterations than the reference proves the resumed run
        // continued from the saved policy instead of starting over.
        assert!(
            resumed.counters.iterations < reference.counters.iterations,
            "threads={threads}: resume did not reuse saved progress \
             ({} vs {} iterations)",
            resumed.counters.iterations,
            reference.counters.iterations
        );
    }
}

#[test]
fn howard_fig1_resumes_bit_identically() {
    let g = multi_scc_graph();
    let reference = Algorithm::Howard
        .solve_with_options(&g, &SolveOptions::new().fallback(FallbackChain::NONE))
        .expect("cyclic");
    for threads in [1, 2, 8] {
        interrupt_then_resume(
            &g,
            Algorithm::Howard,
            Budget::default().max_iterations(1),
            threads,
            &reference,
        );
    }
}

#[test]
fn lawler_exact_resumes_the_bisection_interval() {
    let g = multi_scc_graph();
    let reference = Algorithm::LawlerExact
        .solve_with_options(&g, &SolveOptions::new().fallback(FallbackChain::NONE))
        .expect("cyclic");
    for threads in [1, 2, 8] {
        let resumed = interrupt_then_resume(
            &g,
            Algorithm::LawlerExact,
            Budget::default().max_lambda_refinements(3),
            threads,
            &reference,
        );
        assert!(
            resumed.counters.iterations < reference.counters.iterations,
            "threads={threads}: bisection restarted instead of resuming"
        );
    }
}

#[test]
fn lawler_eps_resumes_bit_identically() {
    let g = multi_scc_graph();
    let reference = Algorithm::Lawler
        .solve_with_options(&g, &SolveOptions::new().fallback(FallbackChain::NONE))
        .expect("cyclic");
    for threads in [1, 2, 8] {
        interrupt_then_resume(
            &g,
            Algorithm::Lawler,
            Budget::default().max_lambda_refinements(3),
            threads,
            &reference,
        );
    }
}

#[test]
fn chunked_sweeps_resume_bit_identically_at_1_2_8_sweep_threads() {
    // The chunked intra-SCC path composes with checkpoint/resume.
    // Howard is interrupted after one policy iteration, so the resume
    // continues mid-policy-iteration from the saved policy (its value
    // sweeps then run chunk-ordered); Lawler is interrupted
    // mid-bisection, so the resumed bisection drives the chunked
    // Bellman–Ford oracle from the saved interval. At every sweep-thread
    // count the resumed run must be bit-identical to the uninterrupted
    // *chunked* run, whose λ in turn matches the sequential-sweep
    // reference.
    let g = multi_scc_graph();
    for (alg, tight) in [
        (Algorithm::HowardExact, Budget::default().max_iterations(1)),
        (Algorithm::Howard, Budget::default().max_iterations(1)),
        (
            Algorithm::LawlerExact,
            Budget::default().max_lambda_refinements(3),
        ),
    ] {
        let seq_ref = alg
            .solve_with_options(&g, &SolveOptions::new().fallback(FallbackChain::NONE))
            .expect("cyclic");
        for sweep_threads in [1, 2, 8] {
            let chunked = |budget: Budget| {
                SolveOptions::new()
                    .sweep(SweepMode::Chunked)
                    .sweep_chunk(16)
                    .sweep_threads(sweep_threads)
                    .budget(budget)
                    .fallback(FallbackChain::NONE)
            };
            let context = format!("chunked {} sweep_threads={sweep_threads}", alg.name());
            let reference = alg
                .solve_with_options(&g, &chunked(Budget::UNLIMITED))
                .expect("cyclic");
            assert_eq!(reference.lambda, seq_ref.lambda, "{context}: λ vs sequential");

            let store = CheckpointStore::new();
            let err = alg
                .solve_with_options(&g, &chunked(tight).checkpoints(store.clone()))
                .expect_err("tight budget must interrupt the chunked solve");
            assert!(
                matches!(err, SolveError::BudgetExhausted { .. }),
                "{context}: {err}"
            );
            assert!(!store.is_empty(), "{context}: interruption saved no progress");

            let resumed = alg
                .solve_with_options(&g, &chunked(Budget::UNLIMITED).checkpoints(store.clone()))
                .expect("unlimited chunked resume finishes");
            assert_bit_identical(&resumed, &reference, &context);
            assert!(
                resumed.counters.iterations < reference.counters.iterations,
                "{context}: resume did not reuse saved progress"
            );
            assert!(store.is_empty(), "{context}: checkpoints not cleared");
        }
    }
}

#[test]
fn store_written_under_one_sweep_mode_resumes_under_another() {
    // Checkpoints record *progress* (policies, intervals), not the sweep
    // schedule, so a store written by a sequential-sweep run resumes
    // under a chunked run (and vice versa) and still reaches the
    // mode-independent answer.
    let g = multi_scc_graph();
    let chunked = SolveOptions::new()
        .sweep(SweepMode::Chunked)
        .sweep_chunk(16)
        .sweep_threads(4)
        .fallback(FallbackChain::NONE);
    let sequential = SolveOptions::new().fallback(FallbackChain::NONE);
    let reference = Algorithm::HowardExact
        .solve_with_options(&g, &sequential)
        .expect("cyclic");
    for (write_opts, resume_opts, label) in [
        (&sequential, &chunked, "sequential→chunked"),
        (&chunked, &sequential, "chunked→sequential"),
    ] {
        let store = CheckpointStore::new();
        Algorithm::HowardExact
            .solve_with_options(
                &g,
                &write_opts
                    .clone()
                    .budget(Budget::default().max_iterations(1))
                    .checkpoints(store.clone()),
            )
            .expect_err("tight budget interrupts");
        let resumed = Algorithm::HowardExact
            .solve_with_options(&g, &resume_opts.clone().checkpoints(store))
            .expect("cross-mode resume finishes");
        assert_bit_identical(&resumed, &reference, label);
    }
}

#[test]
fn store_written_at_one_thread_count_resumes_at_another() {
    let g = multi_scc_graph();
    let reference = Algorithm::HowardExact
        .solve_with_options(&g, &SolveOptions::new().fallback(FallbackChain::NONE))
        .expect("cyclic");
    // Interrupt at 8 threads, resume at 1 (and the reverse): job keys
    // come from the SCC extraction order, not the schedule.
    for (interrupt_threads, resume_threads) in [(8, 1), (1, 8)] {
        let store = CheckpointStore::new();
        Algorithm::HowardExact
            .solve_with_options(
                &g,
                &SolveOptions::new()
                    .threads(interrupt_threads)
                    .budget(Budget::default().max_iterations(1))
                    .fallback(FallbackChain::NONE)
                    .checkpoints(store.clone()),
            )
            .expect_err("tight budget interrupts");
        let resumed = Algorithm::HowardExact
            .solve_with_options(
                &g,
                &SolveOptions::new()
                    .threads(resume_threads)
                    .fallback(FallbackChain::NONE)
                    .checkpoints(store),
            )
            .expect("resume finishes");
        assert_bit_identical(
            &resumed,
            &reference,
            &format!("interrupt@{interrupt_threads} resume@{resume_threads}"),
        );
    }
}

#[test]
fn checkpoints_survive_a_text_round_trip() {
    let g = multi_scc_graph();
    let reference = Algorithm::HowardExact
        .solve_with_options(&g, &SolveOptions::new().fallback(FallbackChain::NONE))
        .expect("cyclic");
    let store = CheckpointStore::new();
    Algorithm::HowardExact
        .solve_with_options(
            &g,
            &SolveOptions::new()
                .budget(Budget::default().max_iterations(1))
                .fallback(FallbackChain::NONE)
                .checkpoints(store.clone()),
        )
        .expect_err("tight budget interrupts");

    // Persist to the text format and reload into a fresh store, as a
    // process restart would.
    let text = store.snapshot().to_text();
    let reloaded = Checkpoint::from_text(&text).expect("own output parses");
    let resumed = Algorithm::HowardExact
        .solve_with_options(
            &g,
            &SolveOptions::new()
                .fallback(FallbackChain::NONE)
                .checkpoints(CheckpointStore::from_checkpoint(reloaded)),
        )
        .expect("resume from reloaded store finishes");
    assert_bit_identical(&resumed, &reference, "text round trip");
}

#[test]
fn stale_checkpoint_for_a_different_graph_is_ignored() {
    let g = multi_scc_graph();
    let other = from_arc_list(2, &[(0, 1, 1), (1, 0, 9)]);
    let reference = Algorithm::HowardExact
        .solve_with_options(&g, &SolveOptions::new().fallback(FallbackChain::NONE))
        .expect("cyclic");
    // Write checkpoints against a tiny unrelated graph, then resume the
    // big one with them: validation must reject the stale policy and
    // solve fresh, still reaching the reference answer.
    let store = CheckpointStore::new();
    Algorithm::HowardExact
        .solve_with_options(
            &other,
            &SolveOptions::new()
                .budget(Budget::default().max_iterations(0))
                .fallback(FallbackChain::NONE)
                .checkpoints(store.clone()),
        )
        .expect_err("zero budget interrupts");
    let resumed = Algorithm::HowardExact
        .solve_with_options(
            &g,
            &SolveOptions::new()
                .fallback(FallbackChain::NONE)
                .checkpoints(store),
        )
        .expect("stale checkpoints must not break the solve");
    assert_bit_identical(&resumed, &reference, "stale store");
}
