pub fn write_req(o: &mut ObjWriter, id: u64) {
    o.str("schema", "mcr-req-v1");
    o.u64("id", id);
    o.str("op", "solve");
}

pub fn write_resp(o: &mut ObjWriter, id: u64) {
    o.str("schema", "mcr-resp-v1");
    o.u64("id", id);
    o.u64("status", 0);
    o.u64("bogus_field", 9);
}
