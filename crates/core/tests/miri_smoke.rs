//! Curated Miri subset for `mcr-core`: one tiny end-to-end solve per
//! algorithm, cross-checked against each other, plus a two-thread run
//! of the parallel driver (Miri's scheduler is adversarial enough to
//! surface data races the OS scheduler hides). The big differential and
//! property suites are far too slow under the interpreter; CI runs this
//! tier as `cargo miri test -p mcr-core --test miri_smoke`, and it also
//! runs as a plain (fast) integration test under `cargo test`.

use mcr_core::{Algorithm, Ratio64, SolveOptions};
use mcr_graph::graph::from_arc_list;
use mcr_graph::Graph;

/// Two SCCs: a 2-cycle of mean 3/2 and a 3-cycle of mean 2/3 — the
/// minimum cycle mean is 2/3, the maximum 3/2, with the work queue
/// actually fanning out across components.
fn tiny_multi_scc() -> Graph {
    from_arc_list(
        5,
        &[
            (0, 1, 1),
            (1, 0, 2),
            (2, 3, 1),
            (3, 4, 0),
            (4, 2, 1),
            (1, 2, 7),
        ],
    )
}

#[test]
fn every_algorithm_agrees_on_the_tiny_instance() {
    let g = tiny_multi_scc();
    let expected = Ratio64::new(2, 3);
    for alg in Algorithm::ALL {
        let sol = alg.solve(&g).expect("cyclic");
        assert_eq!(sol.lambda, expected, "{}", alg.name());
        let mean = sol.try_cycle_mean(&g).expect("witness present");
        assert_eq!(mean, expected, "{}", alg.name());
    }
}

#[test]
fn parallel_driver_is_race_free_and_deterministic_at_two_threads() {
    let g = tiny_multi_scc();
    let opts = SolveOptions::new().threads(2);
    for alg in [Algorithm::Karp, Algorithm::Howard, Algorithm::Yto] {
        let seq = alg.solve(&g).expect("cyclic");
        let par = alg.solve_with_options(&g, &opts).expect("cyclic");
        assert_eq!(par.lambda, seq.lambda, "{}", alg.name());
        assert_eq!(par.cycle, seq.cycle, "{}", alg.name());
        assert_eq!(par.counters, seq.counters, "{}", alg.name());
    }
}

#[test]
fn acyclic_input_fails_closed() {
    let dag = from_arc_list(3, &[(0, 1, 1), (1, 2, 1)]);
    for alg in [Algorithm::Karp, Algorithm::Howard] {
        assert!(alg.solve(&dag).is_none(), "{}", alg.name());
    }
}
