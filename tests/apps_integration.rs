//! Integration tests of the CAD application layer against the raw
//! solver API: the applications must agree with direct graph modeling.

use mcr::apps::asynchronous::EventRuleSystem;
use mcr::apps::dataflow::{Actor, DataflowGraph};
use mcr::apps::max_plus::MaxPlusMatrix;
use mcr::apps::retiming::{Block, Netlist};

use mcr::{GraphBuilder, Ratio64};

#[test]
fn netlist_matches_direct_graph_model() {
    let mut nl = Netlist::new();
    let blocks: Vec<_> = (0..6)
        .map(|i| nl.add_block(Block::new(format!("b{i}"), 3 + 2 * i as i64)))
        .collect();
    let wires = [
        (0usize, 1usize, 1i64),
        (1, 2, 0),
        (2, 0, 1),
        (2, 3, 1),
        (3, 4, 2),
        (4, 5, 0),
        (5, 3, 1),
        (5, 1, 3),
    ];
    let mut b = GraphBuilder::new();
    let v = b.add_nodes(6);
    for &(f, t, r) in &wires {
        nl.connect(blocks[f], blocks[t], r);
        b.add_arc_with_transit(v[f], v[t], 3 + 2 * f as i64, r);
    }
    let direct = mcr::maximum_cycle_ratio(&b.build()).expect("cyclic").lambda;
    let analysis = nl.analyze().expect("no comb loop").expect("cyclic");
    assert_eq!(analysis.min_period, direct);
}

#[test]
fn dataflow_bound_equals_negated_min_ratio() {
    let mut dfg = DataflowGraph::new();
    let ids: Vec<_> = (0..5)
        .map(|i| dfg.add_actor(Actor::new(format!("a{i}"), 1 + i as i64)))
        .collect();
    let edges = [
        (0usize, 1usize, 1i64),
        (1, 2, 0),
        (2, 3, 1),
        (3, 0, 1),
        (3, 4, 0),
        (4, 1, 2),
    ];
    let mut b = GraphBuilder::new();
    let v = b.add_nodes(5);
    for &(f, t, d) in &edges {
        dfg.connect(ids[f], ids[t], d);
        b.add_arc_with_transit(v[f], v[t], 1 + f as i64, d);
    }
    let g = b.build();
    let expected = -mcr::minimum_cycle_ratio(&g.negated()).expect("cyclic").lambda;
    let bound = dfg.iteration_bound().expect("no deadlock").expect("recursive");
    assert_eq!(bound.periods_per_iteration, expected);
}

#[test]
fn dataflow_slacks_bound_the_iteration_bound() {
    let mut dfg = DataflowGraph::new();
    let a = dfg.add_actor(Actor::new("a", 4));
    let b = dfg.add_actor(Actor::new("b", 6));
    let c = dfg.add_actor(Actor::new("c", 2));
    dfg.connect(a, b, 1);
    dfg.connect(b, a, 1);
    dfg.connect(b, c, 1);
    dfg.connect(c, b, 0);
    dfg.connect(c, a, 2);
    let bound = dfg
        .iteration_bound()
        .expect("no deadlock")
        .expect("recursive")
        .periods_per_iteration;
    let slacks = dfg.loop_slacks().expect("no deadlock");
    assert!(!slacks.is_empty());
    // The max loop bound is the iteration bound; slacks are nonnegative
    // and sorted descending by loop bound.
    assert_eq!(slacks[0].loop_bound, bound);
    assert_eq!(slacks[0].slack, Ratio64::ZERO);
    for w in slacks.windows(2) {
        assert!(w[0].loop_bound >= w[1].loop_bound);
    }
    for s in &slacks {
        assert!(s.slack >= Ratio64::ZERO);
        assert_eq!(s.slack + s.loop_bound, bound);
    }
}

#[test]
fn max_plus_eigenvalue_equals_max_cycle_mean_of_precedence_graph() {
    let mut a = MaxPlusMatrix::new(4);
    let entries = [
        (0usize, 1usize, 7i64),
        (1, 2, -2),
        (2, 3, 5),
        (3, 0, 4),
        (0, 0, 3),
        (2, 1, 1),
    ];
    for &(i, j, w) in &entries {
        a.set(i, j, w);
    }
    let lam = a.eigenvalue().expect("cyclic");
    let direct = mcr::maximum_cycle_mean(&a.precedence_graph())
        .expect("cyclic")
        .lambda;
    assert_eq!(lam, direct);
}

#[test]
fn event_rule_system_matches_direct_ratio_model() {
    // A ring of handshaking stages; the period must equal the direct
    // max-ratio computation on the same numbers.
    let mut ers = EventRuleSystem::new();
    let events: Vec<_> = (0..6).map(|i| ers.add_event(format!("e{i}"))).collect();
    let mut b = GraphBuilder::new();
    let v = b.add_nodes(6);
    let rules = [
        (0usize, 1usize, 12i64, 0i64),
        (1, 2, 7, 1),
        (2, 3, 9, 0),
        (3, 4, 4, 1),
        (4, 5, 11, 0),
        (5, 0, 3, 1),
        (2, 0, 8, 1),
        (4, 1, 6, 2),
    ];
    for &(f, t, d, o) in &rules {
        ers.add_rule(events[f], events[t], d, o);
        b.add_arc_with_transit(v[f], v[t], d, o);
    }
    let direct = mcr::maximum_cycle_ratio(&b.build()).expect("cyclic").lambda;
    let analysis = ers.analyze().expect("live").expect("cyclic");
    assert_eq!(analysis.period, direct);
    assert!(!analysis.critical_events.is_empty());
}

#[test]
fn three_application_views_of_one_structure_agree() {
    // The same numbers read as a netlist, a dataflow graph, and an
    // event-rule system give the same limiting ratio, because all three
    // reduce to the same maximum cycle ratio.
    let edges = [
        (0usize, 1usize, 1i64),
        (1, 2, 0),
        (2, 0, 1),
        (1, 0, 2),
        (2, 1, 1),
    ];
    let times = [5i64, 9, 3];

    let mut nl = Netlist::new();
    let blocks: Vec<_> = times
        .iter()
        .enumerate()
        .map(|(i, &d)| nl.add_block(Block::new(format!("b{i}"), d)))
        .collect();
    let mut dfg = DataflowGraph::new();
    let actors: Vec<_> = times
        .iter()
        .enumerate()
        .map(|(i, &d)| dfg.add_actor(Actor::new(format!("a{i}"), d)))
        .collect();
    let mut ers = EventRuleSystem::new();
    let events: Vec<_> = (0..3).map(|i| ers.add_event(format!("e{i}"))).collect();
    for &(f, t, k) in &edges {
        nl.connect(blocks[f], blocks[t], k);
        dfg.connect(actors[f], actors[t], k);
        ers.add_rule(events[f], events[t], times[f], k);
    }
    let p1 = nl.analyze().unwrap().unwrap().min_period;
    let p2 = dfg
        .iteration_bound()
        .unwrap()
        .unwrap()
        .periods_per_iteration;
    let p3 = ers.analyze().unwrap().unwrap().period;
    assert_eq!(p1, p2);
    assert_eq!(p2, p3);
}

#[test]
fn max_plus_simulation_is_eventually_linear() {
    // For an irreducible matrix the orbit becomes periodic with slope λ:
    // x(k + p) = x(k) + p·λ for some period p once transients die out.
    let mut a = MaxPlusMatrix::new(3);
    a.set(0, 1, 2);
    a.set(1, 2, 2);
    a.set(2, 0, 2); // pure ring: λ = 2, period divides 3
    let x0 = vec![Some(0i64), Some(10), Some(-3)];
    let x50 = a.simulate(&x0, 50);
    let x53 = a.simulate(&x0, 53);
    for i in 0..3 {
        assert_eq!(x53[i].unwrap(), x50[i].unwrap() + 6, "entry {i}");
    }
}
