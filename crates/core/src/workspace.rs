//! Reusable scratch workspaces for the per-SCC solvers.
//!
//! The hot loops of Howard's algorithm and the Bellman–Ford oracle used
//! to allocate afresh on every iteration (a `settled` bitmap and a
//! rebuilt `Vec<Vec<u32>>` reverse-policy adjacency per policy
//! iteration; distance, parent and cost vectors per oracle call). A
//! [`Workspace`] owns all of that scratch state once per solving thread:
//! buffers grow to the largest component seen and are then reused, so
//! steady-state solving performs no heap allocation beyond the returned
//! witness cycles.
//!
//! Two techniques keep the reuse cheap *and* bit-identical to the
//! allocating code they replaced:
//!
//! * **Epoch-stamped marks** ([`Marks`]): a "visited/settled" flag is a
//!   `u32` stamp compared against the current epoch, so clearing a mark
//!   array is a single counter increment instead of an `O(n)` fill.
//! * **Flat CSR adjacency** ([`RevCsr`]): the reverse-policy adjacency
//!   is rebuilt per iteration by counting sort into one flat array.
//!   Sources are placed in increasing node order, which is exactly the
//!   push order of the `Vec<Vec<u32>>` it replaces — traversal order,
//!   and therefore every downstream tie-break, is unchanged.

use crate::sweep::SweepConfig;
use mcr_graph::ArcId;

/// Epoch-stamped mark array: `mark[v] == epoch` means "set in the
/// current epoch". [`Marks::next`] starts a new epoch in `O(1)`
/// (amortized — the array is zeroed only on `u32` wrap-around).
#[derive(Clone, Debug, Default)]
pub(crate) struct Marks {
    pub(crate) mark: Vec<u32>,
    epoch: u32,
}

impl Marks {
    /// Starts a new epoch over `n` slots and returns its stamp; no slot
    /// is marked in a fresh epoch.
    pub(crate) fn next(&mut self, n: usize) -> u32 {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
        self.advance(1)
    }

    /// Like [`Marks::next`] but reserves two consecutive stamps
    /// (`(e, e + 1)`), for tri-state marking (unseen / first / second).
    pub(crate) fn next_pair(&mut self, n: usize) -> (u32, u32) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
        let first = self.advance(2);
        (first, first + 1)
    }

    fn advance(&mut self, stamps: u32) -> u32 {
        if self.epoch >= u32::MAX - stamps {
            // Wrap-around: stale stamps could collide, so pay one full
            // clear (once per ~4 billion epochs).
            self.mark.fill(0);
            self.epoch = 0;
        }
        self.epoch += stamps;
        self.epoch - (stamps - 1)
    }
}

/// Flat CSR (compressed sparse row) adjacency rebuilt in place: list `x`
/// is `flat[start[x]..start[x + 1]]`. Entries are placed by counting
/// sort in increasing insertion order, matching the push order of the
/// per-list `Vec<Vec<u32>>` representation it replaces.
#[derive(Clone, Debug, Default)]
pub(crate) struct RevCsr {
    pub(crate) start: Vec<u32>,
    pub(crate) flat: Vec<u32>,
    cursor: Vec<u32>,
}

impl RevCsr {
    /// Rebuilds the CSR from `(list, item)` pairs produced by `pairs`
    /// (invoked twice — it must be cheap and deterministic). `lists` is
    /// the number of lists.
    pub(crate) fn build(&mut self, lists: usize, pairs: impl Fn(&mut dyn FnMut(u32, u32)) + Copy) {
        self.start.clear();
        self.start.resize(lists + 1, 0);
        let mut total = 0u32;
        pairs(&mut |list, _item| {
            self.start[list as usize + 1] += 1;
            total += 1;
        });
        for i in 0..lists {
            self.start[i + 1] += self.start[i];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.start[..lists]);
        self.flat.clear();
        self.flat.resize(total as usize, 0);
        pairs(&mut |list, item| {
            let c = &mut self.cursor[list as usize];
            self.flat[*c as usize] = item;
            *c += 1;
        });
    }

    /// The items of list `x`, in insertion order.
    #[inline]
    pub(crate) fn list(&self, x: usize) -> &[u32] {
        &self.flat[self.start[x] as usize..self.start[x + 1] as usize]
    }
}

/// Scratch buffers for the policy-cycle scan of Howard's algorithm.
#[derive(Clone, Debug, Default)]
pub(crate) struct PolicyCycleScratch {
    pub(crate) visited_by: Vec<u32>,
    pub(crate) pos_in_walk: Vec<u32>,
    pub(crate) walk: Vec<u32>,
    /// The minimum-ratio policy cycle found by the latest scan.
    pub(crate) best_cycle: Vec<ArcId>,
}

/// Scratch buffers for the Bellman–Ford negative-cycle oracle.
#[derive(Clone, Debug, Default)]
pub(crate) struct BellmanScratch {
    /// Scaled arc costs of `G_λ` (input to the oracle).
    pub(crate) cost: Vec<i128>,
    /// Shifted costs used by the non-strict (≤ 0) cycle test.
    pub(crate) cost_shifted: Vec<i128>,
    pub(crate) dist: Vec<i128>,
    pub(crate) parent: Vec<u32>,
    /// The negative cycle found by the latest failed feasibility check.
    pub(crate) cycle: Vec<ArcId>,
}

/// Candidate buffers for the chunked sweeps of [`crate::sweep`]: one
/// per value domain (`f64` for Howard fig. 1, `i128` for the exact
/// Howard/Bellman kernels, `i64` for the Karp/DG table fills), plus a
/// flat arc list for DG's per-level frontier expansion.
#[derive(Clone, Debug, Default)]
pub(crate) struct SweepScratch {
    pub(crate) cand_f64: Vec<f64>,
    pub(crate) cand_i128: Vec<i128>,
    pub(crate) cand_i64: Vec<i64>,
    /// Arcs leaving the current DG frontier, in frontier order.
    pub(crate) level_arcs: Vec<ArcId>,
}

/// Scratch buffers for the critical-subgraph DFS.
#[derive(Clone, Debug, Default)]
pub(crate) struct DfsScratch {
    /// `(node, next out-index)` call stack.
    pub(crate) stack: Vec<(u32, u32)>,
    /// Arcs of the current DFS path.
    pub(crate) arc_stack: Vec<u32>,
    /// Position of each gray node's incoming arc on `arc_stack`.
    pub(crate) pos: Vec<u32>,
}

/// Per-thread scratch state threaded through every SCC solver by the
/// driver. Create one per worker (or one for a whole sequential run)
/// and reuse it across components; see the module docs for what it
/// buys and why results stay bit-identical.
///
/// `Workspace::new()` allocates nothing — buffers grow on first use.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Howard: current policy (one out-arc per node).
    pub(crate) policy: Vec<ArcId>,
    /// Howard (fig. 1): `f64` node distances, persisted across
    /// iterations.
    pub(crate) dist_f64: Vec<f64>,
    /// Howard (exact): scaled-integer node distances.
    pub(crate) dist_scaled: Vec<i128>,
    pub(crate) cycles: PolicyCycleScratch,
    /// Reverse-policy adjacency, rebuilt each policy iteration.
    pub(crate) rev: RevCsr,
    /// BFS queue.
    pub(crate) queue: Vec<u32>,
    pub(crate) marks: Marks,
    pub(crate) bf: BellmanScratch,
    pub(crate) dfs: DfsScratch,
    /// Chunked-sweep candidate buffers.
    pub(crate) sw: SweepScratch,
    /// Sweep configuration for this solve, set by the driver before the
    /// first job and preserved across [`Workspace::reset`] — it is
    /// configuration, not scratch state, and the chunked kernels must
    /// see the same schedule after a mid-solve reset.
    pub(crate) sweep: SweepConfig,
    /// Set between [`Workspace::begin_use`] and [`Workspace::end_use`].
    /// A workspace still poisoned at the *next* `begin_use` was
    /// abandoned mid-solve (budget abort, error unwind) and is reset to
    /// a pristine state before reuse, so no half-updated policy or
    /// distance state can leak into the next SCC job.
    poisoned: bool,
}

impl Workspace {
    /// A fresh workspace. No allocation happens until first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the workspace as in use by one SCC solve attempt. If the
    /// previous attempt never called [`Workspace::end_use`] (it errored
    /// or was cancelled partway), the scratch state is discarded via
    /// [`Workspace::reset`] first — a fresh workspace is bit-identical
    /// to a cleanly-reused one, so determinism is preserved at the cost
    /// of re-growing the buffers once.
    pub(crate) fn begin_use(&mut self) {
        if self.poisoned {
            self.reset();
        }
        self.poisoned = true;
    }

    /// Marks the current solve attempt as cleanly completed; the
    /// scratch state is safe to reuse as-is.
    pub(crate) fn end_use(&mut self) {
        self.poisoned = false;
    }

    /// Whether the workspace holds state from an attempt that did not
    /// complete cleanly (no [`Workspace::end_use`] after the last
    /// [`Workspace::begin_use`]).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Discards all scratch state, returning the workspace to its
    /// freshly-constructed (unpoisoned, empty) state. The sweep
    /// configuration survives: it is part of the solve's options, not
    /// of the abandoned attempt's state.
    pub fn reset(&mut self) {
        crate::chaos::pulse("core.workspace.reset");
        let sweep = self.sweep;
        *self = Workspace::default();
        self.sweep = sweep;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_epochs_do_not_collide() {
        let mut m = Marks::default();
        let e1 = m.next(4);
        m.mark[2] = e1;
        let e2 = m.next(4);
        assert_ne!(e1, e2);
        assert!(m.mark[2] != e2, "stale mark leaked into the new epoch");
        let (a, b) = m.next_pair(4);
        assert_eq!(b, a + 1);
        assert!(m.mark[2] != a && m.mark[2] != b);
    }

    #[test]
    fn marks_survive_wraparound() {
        let mut m = Marks {
            mark: vec![0; 3],
            epoch: u32::MAX - 2,
        };
        let e1 = m.next(3);
        m.mark[0] = e1;
        let (a, b) = m.next_pair(3); // forces the wrap path
        assert!(m.mark[0] != a && m.mark[0] != b, "wrap must clear stale stamps");
    }

    #[test]
    fn csr_preserves_insertion_order() {
        // Pairs emitted in source order 0..5, lists keyed by item % 2.
        let mut csr = RevCsr::default();
        csr.build(2, |emit| {
            for v in 0u32..5 {
                emit(v % 2, v);
            }
        });
        assert_eq!(csr.list(0), &[0, 2, 4]);
        assert_eq!(csr.list(1), &[1, 3]);
        // Rebuild with different shape reuses the buffers.
        csr.build(3, |emit| {
            emit(2, 7);
            emit(0, 9);
        });
        assert_eq!(csr.list(0), &[9]);
        assert_eq!(csr.list(1), &[] as &[u32]);
        assert_eq!(csr.list(2), &[7]);
    }

    #[test]
    fn workspace_new_is_empty() {
        let ws = Workspace::new();
        assert!(ws.policy.is_empty());
        assert!(ws.bf.dist.is_empty());
        assert_eq!(ws.rev.start.capacity(), 0);
    }

    #[test]
    fn abandoned_use_resets_on_next_begin() {
        let mut ws = Workspace::new();
        ws.begin_use();
        ws.dist_f64.push(1.5); // simulate mid-solve state
        assert!(ws.is_poisoned());
        // No end_use: the attempt was aborted. The next begin_use must
        // not see the stale state.
        ws.begin_use();
        assert!(ws.dist_f64.is_empty(), "stale scratch leaked past reset");
        ws.end_use();
        assert!(!ws.is_poisoned());
    }

    #[test]
    fn reset_preserves_the_sweep_config() {
        use crate::sweep::{SweepConfig, SweepMode};
        let mut ws = Workspace::new();
        ws.sweep = SweepConfig {
            mode: SweepMode::Chunked,
            chunk: 128,
            threads: 4,
        };
        ws.begin_use();
        ws.dist_f64.push(1.0);
        ws.reset();
        assert!(ws.dist_f64.is_empty());
        assert_eq!(ws.sweep.chunk, 128, "sweep config is options, not scratch");
        assert!(ws.sweep.is_chunked());
    }

    #[test]
    fn clean_use_preserves_buffers() {
        let mut ws = Workspace::new();
        ws.begin_use();
        ws.dist_f64.resize(8, 0.0);
        ws.end_use();
        ws.begin_use();
        assert_eq!(ws.dist_f64.len(), 8, "clean reuse must keep grown buffers");
        ws.end_use();
    }
}
