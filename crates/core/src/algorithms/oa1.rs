//! OA1: an Orlin–Ahuja-style scaling algorithm.
//!
//! The original OA1 combines an *approximate binary search* on λ with an
//! ε-scaled auction/assignment oracle; it assumes integer weights
//! bounded by `W` and is asymptotically the fastest known algorithm when
//! `W` is polynomial in `n` — yet the study found it "not as fast as
//! their running time implies … in general slower than Karp's
//! algorithm" (§4.5).
//!
//! The DAC text does not specify the auction machinery, so this
//! reproduction keeps the documented framework — approximate binary
//! search whose oracle works on *ε-scaled (rounded) costs* — with the
//! oracle realized as Bellman–Ford on the rounded integer costs
//! `ĉ(e) = ⌊(w(e) − λ)/ε⌋`:
//!
//! * a negative rounded cycle implies a real cycle of mean at most
//!   `λ + (n−1)·ε`, so the upper bound moves to `λ + δ/8` (with
//!   `ε = δ/(8n)` for interval width `δ`);
//! * no negative rounded cycle implies every real cycle mean is at
//!   least `λ`, so the lower bound moves to `λ`.
//!
//! Each phase shrinks the interval to at most 5/8 of its width. The
//! substitution (documented in DESIGN.md) preserves what the study
//! measures: a scaling method with an attractive bound that is slow in
//! practice.

use crate::bellman::{check_staged_costs_ws, cycle_at_or_below_ws};
use crate::budget::BudgetScope;
use crate::driver::SccOutcome;
use crate::error::SolveError;
use crate::instrument::Counters;
use crate::rational::Ratio64;
use crate::solution::Guarantee;
use crate::workspace::Workspace;
use mcr_graph::{ArcId, Graph};

/// Rounded costs `⌊(w(e)·q − p) / (pe/qe · q)⌋` for λ = p/q and phase
/// precision ε = pe/qe, computed exactly in i128 into a reused buffer.
fn rounded_costs_into(g: &Graph, lambda: Ratio64, eps: Ratio64, out: &mut Vec<i128>) {
    let p = lambda.numer() as i128;
    let q = lambda.denom() as i128;
    let pe = eps.numer() as i128;
    let qe = eps.denom() as i128;
    debug_assert!(pe > 0);
    // (w − p/q) / (pe/qe) = (w·q − p)·qe / (q·pe)
    let den = q * pe;
    out.clear();
    out.extend(
        g.arc_ids()
            .map(|a| ((g.weight(a) as i128 * q - p) * qe).div_euclid(den)),
    );
}

/// OA1 on one strongly connected, cyclic component. Every scaling
/// phase charges both an iteration and a λ-refinement.
pub(crate) fn solve_scc(
    g: &Graph,
    counters: &mut Counters,
    epsilon: f64,
    ws: &mut Workspace,
    scope: &mut BudgetScope,
) -> Result<SccOutcome, SolveError> {
    debug_assert!(epsilon > 0.0, "epsilon validated by the driver");
    let n = g.num_nodes() as i64;
    let mut lo = Ratio64::from(g.min_weight().expect("component has arcs"));
    let mut hi = Ratio64::from(g.max_weight().expect("component has arcs"));
    let mut best: Option<(Ratio64, Vec<ArcId>)> = None;

    scope.loop_metrics("core.oa1.refine");
    while (hi - lo).to_f64() > epsilon {
        // Denominators grow by a factor ~16n per phase; stop scaling
        // once they threaten i64 and fall back to the witness bound.
        if hi.denom() > i64::MAX / (64 * n.max(1)) || lo.denom() > i64::MAX / (64 * n.max(1)) {
            break;
        }
        counters.iterations += 1;
        scope.tick_iteration_and_time()?;
        scope.tick_refinement()?;
        scope.chaos_check("core.oa1.refine")?;
        let delta = hi - lo;
        let mid = lo.midpoint(hi);
        let eps_phase = delta / Ratio64::from(8 * n.max(1));
        rounded_costs_into(g, mid, eps_phase, &mut ws.bf.cost);
        if check_staged_costs_ws(g, true, counters, ws, scope)? {
            // Real mean of this cycle is < mid + (n−1)·ε ≤ mid + δ/8.
            let cycle = &ws.bf.cycle;
            let w: i128 = cycle.iter().map(|&a| g.weight(a) as i128).sum();
            let mean = Ratio64::try_from_i128(w, cycle.len() as i128).ok_or(
                SolveError::Overflow {
                    context: "OA1 witness cycle mean",
                },
            )?;
            if best.as_ref().is_none_or(|(b, _)| mean < *b) {
                best = Some((mean, cycle.clone()));
            }
            let new_hi = mid + eps_phase * Ratio64::from(n.max(1));
            hi = if new_hi < hi { new_hi } else { hi };
            // The witness itself may sharpen the bound further.
            if mean < hi {
                hi = mean;
            }
        } else {
            lo = mid;
        }
    }

    let (lambda, cycle) = match best {
        Some((mean, cycle)) if mean <= hi => (mean, cycle),
        _ => {
            // No rounded phase produced a witness (λ* close to the max
            // weight): extract one exactly at the upper bound.
            if !cycle_at_or_below_ws(g, hi, counters, ws, scope)? {
                return Err(SolveError::NumericRange {
                    context: "OA1 witness extraction found no cycle at the upper bound",
                });
            }
            let cycle = ws.bf.cycle.clone();
            let w: i128 = cycle.iter().map(|&a| g.weight(a) as i128).sum();
            let mean = Ratio64::try_from_i128(w, cycle.len() as i128).ok_or(
                SolveError::Overflow {
                    context: "OA1 witness cycle mean",
                },
            )?;
            (mean, cycle)
        }
    };
    Ok(SccOutcome {
        lambda,
        cycle,
        guarantee: Guarantee::Epsilon(epsilon * 2.0),
        solved_by: crate::Algorithm::Oa1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_graph::graph::from_arc_list;

    fn outcome(g: &Graph, c: &mut Counters, eps: f64) -> SccOutcome {
        let mut scope = BudgetScope::unlimited(crate::Algorithm::Oa1);
        solve_scc(g, c, eps, &mut Workspace::new(), &mut scope).expect("unlimited")
    }

    fn solve(g: &Graph, eps: f64) -> Ratio64 {
        let mut c = Counters::new();
        outcome(g, &mut c, eps).lambda
    }

    #[test]
    fn single_ring() {
        let g = from_arc_list(3, &[(0, 1, 1), (1, 2, 2), (2, 0, 4)]);
        let lam = solve(&g, 1e-6);
        assert_eq!(lam, Ratio64::new(7, 3));
    }

    #[test]
    fn within_epsilon_of_brute_force() {
        use mcr_gen::sprand::{sprand, SprandConfig};
        for seed in 0..25 {
            let g = sprand(&SprandConfig::new(10, 30).seed(seed).weight_range(1, 100));
            let (expected, _) = crate::reference::brute_force_min_mean(&g).expect("cyclic");
            let lam = solve(&g, 1e-3);
            assert!(lam >= expected, "seed {seed}");
            assert!(
                lam.to_f64() - expected.to_f64() <= 2e-3 + 1e-9,
                "seed {seed}: {lam} vs {expected}"
            );
        }
    }

    #[test]
    fn uniform_weights() {
        let g = from_arc_list(2, &[(0, 1, 9), (1, 0, 9)]);
        assert_eq!(solve(&g, 1e-6), Ratio64::from(9));
    }

    #[test]
    fn phase_count_is_logarithmic() {
        let g = from_arc_list(2, &[(0, 1, 1), (1, 0, 10_000)]);
        let mut c = Counters::new();
        outcome(&g, &mut c, 1e-3);
        // (5/8)^k · 9999 < 1e-3 ⇒ k ≈ 35.
        assert!(c.iterations <= 60, "phases {}", c.iterations);
    }

    #[test]
    fn refinement_budget_of_one_exhausts_or_finishes() {
        let g = from_arc_list(2, &[(0, 1, 1), (1, 0, 10_000)]);
        let budget = crate::Budget::default().max_lambda_refinements(1);
        let mut scope = BudgetScope::new(&budget, None, crate::Algorithm::Oa1);
        let mut c = Counters::new();
        let err = solve_scc(&g, &mut c, 1e-3, &mut Workspace::new(), &mut scope)
            .expect_err("wide interval needs many phases");
        assert!(matches!(err, SolveError::BudgetExhausted { .. }), "{err}");
    }

    #[test]
    fn negative_weights() {
        let g = from_arc_list(3, &[(0, 1, -10), (1, 2, -20), (2, 0, -30), (1, 0, 50)]);
        let lam = solve(&g, 1e-6);
        assert_eq!(lam, Ratio64::from(-20));
    }
}
