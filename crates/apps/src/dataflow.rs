//! Iteration bound analysis of recursive dataflow graphs.
//!
//! In a synchronous dataflow graph, actors fire when their inputs are
//! available and edges carry *delays* (initial tokens / registers). The
//! throughput of any schedule — no matter how much hardware is thrown
//! at it — is limited by the **iteration bound** (Ito & Parhi, §1.1 of
//! the study):
//!
//! ```text
//! T∞ = max_C  time(C) / delays(C)
//! ```
//!
//! over the loops `C` of the graph. This module provides the DFG model,
//! the bound, per-loop slack analysis, and the critical loop.

use mcr_core::critical::critical_subgraph;
use mcr_core::reference::for_each_simple_cycle;
use mcr_core::{maximum_cycle_ratio, Ratio64};
use mcr_graph::{Graph, GraphBuilder, NodeId};

/// A dataflow actor with an execution time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Actor {
    /// Human-readable name.
    pub name: String,
    /// Execution time in integer time units.
    pub execution_time: i64,
}

impl Actor {
    /// Creates a named actor.
    ///
    /// # Panics
    ///
    /// Panics if `execution_time` is negative.
    pub fn new(name: impl Into<String>, execution_time: i64) -> Self {
        assert!(execution_time >= 0, "execution times must be nonnegative");
        Actor {
            name: name.into(),
            execution_time,
        }
    }
}

/// Handle to an actor in a [`DataflowGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ActorId(usize);

/// A synchronous dataflow graph.
#[derive(Clone, Debug, Default)]
pub struct DataflowGraph {
    actors: Vec<Actor>,
    // (from, to, delays)
    edges: Vec<(usize, usize, i64)>,
}

/// The iteration bound and its witness.
#[derive(Clone, Debug)]
pub struct IterationBound {
    /// `T∞`: minimum achievable iteration period.
    pub periods_per_iteration: Ratio64,
    /// Actors on one critical loop, in traversal order.
    pub critical_loop: Vec<ActorId>,
}

/// Slack of one loop relative to the iteration bound.
#[derive(Clone, Debug)]
pub struct LoopSlack {
    /// Actors on the loop, in traversal order.
    pub actors: Vec<ActorId>,
    /// The loop's own bound `time/delays`.
    pub loop_bound: Ratio64,
    /// `T∞ − loop_bound` (zero on critical loops).
    pub slack: Ratio64,
}

impl DataflowGraph {
    /// An empty dataflow graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an actor and returns its handle.
    pub fn add_actor(&mut self, actor: Actor) -> ActorId {
        self.actors.push(actor);
        ActorId(self.actors.len() - 1)
    }

    /// Adds an edge carrying `delays` initial tokens.
    ///
    /// # Panics
    ///
    /// Panics on stale handles or negative delay counts.
    pub fn connect(&mut self, from: ActorId, to: ActorId, delays: i64) {
        assert!(from.0 < self.actors.len() && to.0 < self.actors.len());
        assert!(delays >= 0, "delay counts must be nonnegative");
        self.edges.push((from.0, to.0, delays));
    }

    /// Number of actors.
    pub fn num_actors(&self) -> usize {
        self.actors.len()
    }

    /// The actor behind a handle.
    pub fn actor(&self, id: ActorId) -> &Actor {
        &self.actors[id.0]
    }

    fn graph(&self) -> Graph {
        let mut b = GraphBuilder::with_capacity(self.actors.len(), self.edges.len());
        b.add_nodes(self.actors.len());
        for &(from, to, delays) in &self.edges {
            b.add_arc_with_transit(
                NodeId::new(from),
                NodeId::new(to),
                self.actors[from].execution_time,
                delays,
            );
        }
        b.build()
    }

    /// Whether the graph has a delay-free loop (a deadlock: no schedule
    /// exists).
    pub fn has_deadlock(&self) -> bool {
        mcr_core::ratio::has_zero_transit_cycle(&self.graph())
    }

    /// Computes the iteration bound, or `None` for a non-recursive
    /// (acyclic) graph, whose throughput is unbounded by loops.
    ///
    /// # Errors
    ///
    /// Returns `Err` on a delay-free loop (deadlock).
    pub fn iteration_bound(&self) -> Result<Option<IterationBound>, String> {
        let g = self.graph();
        if mcr_core::ratio::has_zero_transit_cycle(&g) {
            return Err("dataflow graph deadlocks: a loop carries no delays".into());
        }
        Ok(maximum_cycle_ratio(&g).map(|sol| IterationBound {
            periods_per_iteration: sol.lambda,
            critical_loop: sol
                .cycle
                .iter()
                .map(|&a| ActorId(g.source(a).index()))
                .collect(),
        }))
    }

    /// Enumerates every simple loop with its bound and slack, sorted by
    /// decreasing loop bound (critical loops first). Exponential in the
    /// worst case — intended for design-sized graphs.
    ///
    /// # Errors
    ///
    /// Returns `Err` on a delay-free loop.
    pub fn loop_slacks(&self) -> Result<Vec<LoopSlack>, String> {
        let bound = match self.iteration_bound()? {
            None => return Ok(Vec::new()),
            Some(b) => b.periods_per_iteration,
        };
        let g = self.graph();
        let mut out = Vec::new();
        for_each_simple_cycle(&g, |cycle| {
            let time: i64 = cycle.iter().map(|&a| g.weight(a)).sum();
            let delays: i64 = cycle.iter().map(|&a| g.transit(a)).sum();
            let loop_bound = Ratio64::new(time, delays);
            out.push(LoopSlack {
                actors: cycle.iter().map(|&a| ActorId(g.source(a).index())).collect(),
                loop_bound,
                slack: bound - loop_bound,
            });
        });
        out.sort_by_key(|s| std::cmp::Reverse(s.loop_bound));
        Ok(out)
    }

    /// Actors lying on some critical loop — the ones worth pipelining
    /// or speeding up, derived from the critical subgraph.
    ///
    /// # Errors
    ///
    /// Returns `Err` on a delay-free loop.
    pub fn critical_actors(&self) -> Result<Vec<ActorId>, String> {
        let bound = match self.iteration_bound()? {
            None => return Ok(Vec::new()),
            Some(b) => b.periods_per_iteration,
        };
        let g = self.graph();
        let cs = critical_subgraph(&g.negated(), -bound).map_err(|e| format!("internal: {e}"))?;
        Ok(cs
            .nodes()
            .into_iter()
            .map(|v| ActorId(v.index()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic second-order IIR filter (biquad).
    fn biquad() -> (DataflowGraph, [ActorId; 4]) {
        let mut dfg = DataflowGraph::new();
        let add1 = dfg.add_actor(Actor::new("add1", 1));
        let add2 = dfg.add_actor(Actor::new("add2", 1));
        let mul_a = dfg.add_actor(Actor::new("mul_a", 2));
        let mul_b = dfg.add_actor(Actor::new("mul_b", 2));
        dfg.connect(add1, add2, 0);
        dfg.connect(add2, mul_a, 1);
        dfg.connect(add2, mul_b, 2);
        dfg.connect(mul_a, add1, 0);
        dfg.connect(mul_b, add2, 0);
        (dfg, [add1, add2, mul_a, mul_b])
    }

    #[test]
    fn biquad_iteration_bound() {
        // Loops: add2→mul_a→add1→add2: time 1+2+1=4, delays 1 → 4.
        //        add2→mul_b→add2: time 1+2=3, delays 2 → 3/2.
        let (dfg, _) = biquad();
        let bound = dfg.iteration_bound().unwrap().unwrap();
        assert_eq!(bound.periods_per_iteration, Ratio64::from(4));
        assert_eq!(bound.critical_loop.len(), 3);
    }

    #[test]
    fn loop_slacks_are_sorted_and_consistent() {
        let (dfg, _) = biquad();
        let slacks = dfg.loop_slacks().unwrap();
        assert_eq!(slacks.len(), 2);
        assert_eq!(slacks[0].slack, Ratio64::ZERO);
        assert_eq!(slacks[1].loop_bound, Ratio64::new(3, 2));
        assert_eq!(slacks[1].slack, Ratio64::new(5, 2));
    }

    #[test]
    fn critical_actors_are_the_slow_loop() {
        let (dfg, [add1, add2, mul_a, mul_b]) = biquad();
        let critical = dfg.critical_actors().unwrap();
        assert!(critical.contains(&add1));
        assert!(critical.contains(&add2));
        assert!(critical.contains(&mul_a));
        assert!(!critical.contains(&mul_b));
    }

    #[test]
    fn deadlock_detection() {
        let mut dfg = DataflowGraph::new();
        let a = dfg.add_actor(Actor::new("a", 1));
        let b = dfg.add_actor(Actor::new("b", 1));
        dfg.connect(a, b, 0);
        dfg.connect(b, a, 0);
        assert!(dfg.has_deadlock());
        assert!(dfg.iteration_bound().is_err());
        assert!(dfg.loop_slacks().is_err());
    }

    #[test]
    fn acyclic_graph_has_no_bound() {
        let mut dfg = DataflowGraph::new();
        let a = dfg.add_actor(Actor::new("src", 3));
        let b = dfg.add_actor(Actor::new("sink", 4));
        dfg.connect(a, b, 0);
        assert!(dfg.iteration_bound().unwrap().is_none());
        assert!(dfg.loop_slacks().unwrap().is_empty());
        assert!(dfg.critical_actors().unwrap().is_empty());
    }

    #[test]
    fn faster_multiplier_lowers_the_bound() {
        let (mut base, _) = biquad();
        // Same topology, multiplier sped up from 2 to 1.
        base.actors[2].execution_time = 1;
        let bound = base.iteration_bound().unwrap().unwrap();
        assert_eq!(bound.periods_per_iteration, Ratio64::from(3));
    }
}
