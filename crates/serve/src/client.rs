//! The batch client behind `mcr client`.
//!
//! Reads an `mcr-req v1` request log (JSONL — one request per line,
//! blank lines and `#` comments skipped), pipelines every request to
//! the daemon over one connection, then collects exactly one response
//! per request and prints each response line to the output. Responses
//! may arrive in any order; the client counts frames, callers match
//! ids. The process-level contract (used by the CI serve stage): the
//! client succeeds iff every request got *some* response — per-request
//! failures are data, not transport errors.

// The client talks to a network peer; every failure must be a typed
// report, not a panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

use crate::chaos;
use crate::frame;
use crate::json::{self, Value};
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// How long the client waits for any single response frame before
/// declaring the daemon unresponsive.
pub const RESPONSE_TIMEOUT: Duration = Duration::from_secs(30);

/// What a replay run observed, for the caller's summary line.
#[derive(Debug, Default)]
pub struct ClientReport {
    /// Requests sent.
    pub sent: usize,
    /// Responses received (== `sent` unless `--no-wait`).
    pub received: usize,
    /// Response counts by wire status name, sorted by name.
    pub by_status: Vec<(String, usize)>,
}

fn transport<E: std::fmt::Display>(stage: &str) -> impl FnOnce(E) -> String + '_ {
    move |e| format!("{stage}: {e}")
}

/// Sends every request line to `addr` and (unless `no_wait`) reads one
/// response per request, writing each response line to `out`.
///
/// `no_wait` exists for crash testing: it admits work and returns
/// without waiting for solves, so the caller can `kill -9` the daemon
/// with the queue provably non-empty.
pub fn replay(
    addr: &str,
    lines: &[String],
    no_wait: bool,
    out: &mut dyn Write,
) -> Result<ClientReport, String> {
    let stream = TcpStream::connect(addr).map_err(transport("connect"))?;
    stream
        .set_read_timeout(Some(RESPONSE_TIMEOUT))
        .map_err(transport("set timeout"))?;
    let mut writer = stream.try_clone().map_err(transport("clone stream"))?;
    let mut report = ClientReport::default();
    for line in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        chaos::pulse("serve.client.frame");
        frame::write_frame(&mut writer, line.as_bytes()).map_err(transport("send request"))?;
        report.sent += 1;
    }
    if no_wait {
        return Ok(report);
    }
    let mut reader = BufReader::new(stream);
    let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
    while report.received < report.sent {
        let payload = frame::read_frame(&mut reader)
            .map_err(transport("read response"))?
            .ok_or_else(|| {
                format!(
                    "daemon closed the connection after {} of {} responses",
                    report.received, report.sent
                )
            })?;
        let text = String::from_utf8(payload).map_err(transport("decode response"))?;
        let status = json::parse(&text)
            .ok()
            .and_then(|v| v.get("status").and_then(Value::as_str).map(String::from))
            .unwrap_or_else(|| "unparseable".to_string());
        *counts.entry(status).or_insert(0) += 1;
        writeln!(out, "{text}").map_err(transport("write output"))?;
        report.received += 1;
    }
    report.by_status = counts.into_iter().collect();
    Ok(report)
}

/// Sends a single `ping`, `metrics`, or `shutdown` request (id 1) and
/// prints the response. For `metrics` the embedded JSONL dump is
/// unwrapped so the output is directly `mcr-metrics v1`.
pub fn one_op(addr: &str, op: &str, out: &mut dyn Write) -> Result<(), String> {
    if !matches!(op, "ping" | "metrics" | "shutdown") {
        return Err(format!("unknown op {op:?} (ping|metrics|shutdown)"));
    }
    let request = json::ObjWriter::new()
        .str("schema", crate::protocol::REQ_SCHEMA)
        .u64("id", 1)
        .str("op", op)
        .finish();
    let stream = TcpStream::connect(addr).map_err(transport("connect"))?;
    stream
        .set_read_timeout(Some(RESPONSE_TIMEOUT))
        .map_err(transport("set timeout"))?;
    let mut writer = stream.try_clone().map_err(transport("clone stream"))?;
    chaos::pulse("serve.client.frame");
    frame::write_frame(&mut writer, request.as_bytes()).map_err(transport("send request"))?;
    let mut reader = BufReader::new(stream);
    let payload = frame::read_frame(&mut reader)
        .map_err(transport("read response"))?
        .ok_or_else(|| "daemon closed the connection without responding".to_string())?;
    let text = String::from_utf8(payload).map_err(transport("decode response"))?;
    if op == "metrics" {
        if let Ok(v) = json::parse(&text) {
            if let Some(dump) = v.get("metrics").and_then(Value::as_str) {
                write!(out, "{dump}").map_err(transport("write output"))?;
                return Ok(());
            }
        }
    }
    writeln!(out, "{text}").map_err(transport("write output"))?;
    Ok(())
}
