//! Optimum cycle mean and optimum cost-to-time ratio algorithms.
//!
//! This crate reproduces the complete algorithm suite of the DAC 1999
//! experimental study by Dasdan, Irani and Gupta: ten leading algorithms
//! for the **minimum mean cycle problem** (MCMP) and the **minimum cost
//! to time ratio problem** (MCRP), implemented uniformly over the
//! [`mcr_graph`] substrate, instrumented with operation counters, and
//! validated against an independent brute-force reference.
//!
//! # The problems
//!
//! For a digraph with arc weights `w` and transit times `t`, the *mean*
//! of a cycle `C` is `w(C)/|C|` and its *ratio* is `w(C)/t(C)`. The
//! minimum cycle mean `λ*` (minimum ratio `ρ*`) minimizes over all
//! cycles. These quantities are the cycle period of cyclic digital
//! systems: the iteration bound of dataflow graphs, the minimum clock
//! period of synchronous circuits, the throughput of asynchronous
//! circuits.
//!
//! # Quick start
//!
//! ```
//! use mcr_core::{minimum_cycle_mean, Algorithm};
//! use mcr_graph::graph::from_arc_list;
//!
//! let g = from_arc_list(3, &[(0, 1, 2), (1, 2, 4), (2, 0, 3), (1, 0, 8)]);
//! let sol = minimum_cycle_mean(&g).expect("graph has a cycle");
//! assert_eq!(sol.lambda, mcr_core::Ratio64::from(3)); // (2+4+3)/3
//!
//! // Any specific algorithm from the study:
//! let karp = Algorithm::Karp.solve(&g).expect("cyclic");
//! assert_eq!(karp.lambda, sol.lambda);
//! ```
//!
//! # Algorithms
//!
//! | Name | Entry | Result | Complexity |
//! |------|-------|--------|------------|
//! | Burns | [`Algorithm::Burns`] | exact | `O(n²m)` |
//! | KO (Karp–Orlin) | [`Algorithm::Ko`] | exact | `O(nm log n)` |
//! | YTO (Young–Tarjan–Orlin) | [`Algorithm::Yto`] | exact | `O(nm + n² log n)` |
//! | Howard | [`Algorithm::Howard`] | exact value of final policy cycle | pseudopolynomial |
//! | Howard (exact) | [`Algorithm::HowardExact`] | exact | pseudopolynomial |
//! | HO (Hartmann–Orlin) | [`Algorithm::Ho`] | exact | `O(nm)` |
//! | Karp | [`Algorithm::Karp`] | exact | `Θ(nm)` |
//! | DG (Dasdan–Gupta) | [`Algorithm::Dg`] | exact | `O(nm)` |
//! | Karp2 (two-pass Karp) | [`Algorithm::Karp2`] | exact, `Θ(n)` space | `Θ(nm)` |
//! | Lawler | [`Algorithm::Lawler`] | ε-approximate | `O(nm log(range/ε))` |
//! | Lawler (exact) | [`Algorithm::LawlerExact`] | exact via rational snap | `O(nm log(n·range))` |
//! | Megiddo | [`Algorithm::Megiddo`] | exact, parametric search | `O(n²m log n)` |
//! | OA1 (Orlin–Ahuja style scaling) | [`Algorithm::Oa1`] | ε-approximate | scaling |
//!
//! Maximum versions and cost-to-time-ratio versions are in [`maximum`]
//! and [`ratio`].

pub mod algorithms;
pub mod bellman;
pub mod budget;
pub mod cancel;
pub mod certify;
pub mod chaos;
pub mod checkpoint;
pub mod critical;
mod driver;
pub mod dynamic;
pub mod edits;
pub mod error;
pub mod instrument;
pub mod maximum;
pub mod obs;
pub mod options;
pub mod ratio;
pub mod rational;
pub mod reference;
pub mod register_graph;
pub mod solution;
pub mod spec;
pub mod status;
pub mod sweep;
pub mod workspace;

pub use algorithms::Algorithm;
pub use budget::{Budget, BudgetScope, Deadline, DeadlineKind};
pub use cancel::CancelToken;
pub use certify::{certify, CertifyError};
pub use checkpoint::{Checkpoint, CheckpointError, CheckpointStore, JobProgress};
pub use driver::SccPlan;
pub use dynamic::{ArcSpec, DynamicOutcome, DynamicSolver, Edit, SolveMode};
pub use edits::{parse_edit_script, render_edit_script, EditScript, EDITS_SCHEMA};
pub use error::{BudgetResource, SolveError};
pub use instrument::Counters;
pub use options::{FallbackChain, SolveOptions};
pub use rational::Ratio64;
pub use solution::{Guarantee, Solution};
pub use spec::{Objective, SolveSpec, SpecError};
pub use status::SolveStatus;
pub use sweep::{SweepConfig, SweepMode};
pub use workspace::Workspace;

use mcr_graph::Graph;

/// Computes the minimum cycle mean of `g` with the study's overall
/// fastest algorithm (Howard's), or `None` if `g` is acyclic.
///
/// ```
/// use mcr_graph::graph::from_arc_list;
/// let g = from_arc_list(2, &[(0, 1, 1), (1, 0, 5)]);
/// let sol = mcr_core::minimum_cycle_mean(&g).expect("cyclic");
/// assert_eq!(sol.lambda, mcr_core::Ratio64::from(3));
/// ```
pub fn minimum_cycle_mean(g: &Graph) -> Option<Solution> {
    Algorithm::HowardExact.solve(g)
}

/// [`minimum_cycle_mean`] with explicit [`SolveOptions`] — a
/// worker-thread count for graphs with many strongly connected
/// components (results are bit-identical at every thread count), a work
/// [`Budget`], and a [`FallbackChain`]. Errors mirror
/// [`Algorithm::solve_with_options`].
pub fn minimum_cycle_mean_opts(g: &Graph, opts: &SolveOptions) -> Result<Solution, SolveError> {
    Algorithm::HowardExact.solve_with_options(g, opts)
}

/// Computes the minimum cost-to-time ratio of `g`, or `None` if `g` is
/// acyclic. See [`ratio`] for algorithm choices and preconditions
/// (every cycle must have positive total transit time).
pub fn minimum_cycle_ratio(g: &Graph) -> Option<Solution> {
    ratio::howard_ratio_exact(g)
}

/// Computes the maximum cycle mean of `g`, or `None` if `g` is acyclic.
pub fn maximum_cycle_mean(g: &Graph) -> Option<Solution> {
    maximum::maximum_cycle_mean(g)
}

/// Computes the maximum cost-to-time ratio of `g`, or `None` if `g` is
/// acyclic.
pub fn maximum_cycle_ratio(g: &Graph) -> Option<Solution> {
    maximum::maximum_cycle_ratio(g)
}
