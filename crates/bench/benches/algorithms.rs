//! Criterion benches: statistically robust timing of every Table 2
//! algorithm on representative SPRAND rows, Howard's scaling sweep, and
//! the ratio solvers.
//!
//! `cargo bench -p mcr-bench --bench algorithms`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcr_core::{ratio, Algorithm};
use mcr_gen::sprand::{sprand, SprandConfig};
use mcr_gen::transit::with_random_transits;
use std::hint::black_box;

/// One Table 2 row (n = 512, sweep of densities) per algorithm.
fn bench_table2_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_row_n512");
    group.sample_size(10);
    for &m in &[512usize, 1024, 1536] {
        let g = sprand(&SprandConfig::new(512, m).seed(0));
        for alg in Algorithm::TABLE2 {
            group.bench_with_input(
                BenchmarkId::new(alg.name(), m),
                &g,
                |b, g| b.iter(|| black_box(alg.solve(black_box(g)))),
            );
        }
    }
    group.finish();
}

/// Howard's wall time as n grows (the headline result: near-linear in
/// practice despite exponential worst-case bounds).
fn bench_howard_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("howard_scaling");
    group.sample_size(10);
    for &n in &[512usize, 1024, 2048, 4096, 8192] {
        let g = sprand(&SprandConfig::new(n, 3 * n).seed(0));
        group.bench_with_input(BenchmarkId::new("howard_exact", n), &g, |b, g| {
            b.iter(|| black_box(Algorithm::HowardExact.solve(black_box(g))))
        });
        group.bench_with_input(BenchmarkId::new("howard_fig1", n), &g, |b, g| {
            b.iter(|| black_box(Algorithm::Howard.solve(black_box(g))))
        });
    }
    group.finish();
}

/// KO vs YTO head-to-head across densities (§4.2's timing claim).
fn bench_parametric(c: &mut Criterion) {
    let mut group = c.benchmark_group("parametric_ko_vs_yto");
    group.sample_size(10);
    for &m_per_n in &[1usize, 2, 3] {
        let g = sprand(&SprandConfig::new(1024, 1024 * m_per_n).seed(0));
        group.bench_with_input(BenchmarkId::new("KO", m_per_n), &g, |b, g| {
            b.iter(|| black_box(Algorithm::Ko.solve(black_box(g))))
        });
        group.bench_with_input(BenchmarkId::new("YTO", m_per_n), &g, |b, g| {
            b.iter(|| black_box(Algorithm::Yto.solve(black_box(g))))
        });
    }
    group.finish();
}

/// The ratio solvers on a transit-decorated instance (EXP-MCR).
fn bench_ratio(c: &mut Criterion) {
    let mut group = c.benchmark_group("ratio_solvers");
    group.sample_size(10);
    let g0 = sprand(&SprandConfig::new(512, 1536).seed(0));
    let g = with_random_transits(&g0, 1, 10, 1);
    group.bench_function("howard", |b| {
        b.iter(|| black_box(ratio::howard_ratio_exact(black_box(&g))))
    });
    group.bench_function("burns", |b| {
        b.iter(|| black_box(ratio::burns_ratio(black_box(&g))))
    });
    group.bench_function("yto", |b| {
        b.iter(|| black_box(ratio::parametric_ratio(black_box(&g), true)))
    });
    group.bench_function("lawler_exact", |b| {
        b.iter(|| black_box(ratio::lawler_ratio_exact(black_box(&g))))
    });
    group.finish();
}

/// Ablation: exact Lawler snap vs ε-Lawler vs OA1 — the cost of
/// exactness in the oracle-based methods.
fn bench_oracle_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_methods");
    group.sample_size(10);
    let g = sprand(&SprandConfig::new(1024, 3072).seed(0));
    group.bench_function("lawler_eps", |b| {
        b.iter(|| black_box(Algorithm::Lawler.solve(black_box(&g))))
    });
    group.bench_function("lawler_exact", |b| {
        b.iter(|| black_box(Algorithm::LawlerExact.solve(black_box(&g))))
    });
    group.bench_function("oa1", |b| {
        b.iter(|| black_box(Algorithm::Oa1.solve(black_box(&g))))
    });
    group.bench_function("megiddo", |b| {
        b.iter(|| black_box(Algorithm::Megiddo.solve(black_box(&g))))
    });
    group.finish();
}

/// Ablation: the study inherited LEDA's Fibonacci heap for KO and YTO
/// ("their use in the KO algorithm was preferred to make these two
/// algorithms comparable", §4.2). How much does that choice matter
/// against a plain indexed binary heap?
fn bench_heap_ablation(c: &mut Criterion) {
    use mcr_core::algorithms::parametric_with_heap;
    let mut group = c.benchmark_group("parametric_heap_ablation");
    group.sample_size(10);
    let g = sprand(&SprandConfig::new(2048, 6144).seed(0));
    group.bench_function("yto_fibonacci", |b| {
        b.iter(|| black_box(parametric_with_heap(black_box(&g), true, true)))
    });
    group.bench_function("yto_binary", |b| {
        b.iter(|| black_box(parametric_with_heap(black_box(&g), true, false)))
    });
    group.bench_function("ko_fibonacci", |b| {
        b.iter(|| black_box(parametric_with_heap(black_box(&g), false, true)))
    });
    group.bench_function("ko_binary", |b| {
        b.iter(|| black_box(parametric_with_heap(black_box(&g), false, false)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table2_row,
    bench_howard_scaling,
    bench_parametric,
    bench_ratio,
    bench_oracle_methods,
    bench_heap_ablation
);
criterion_main!(benches);
