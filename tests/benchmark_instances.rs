//! The shipped benchmark instances under `benchmarks/` solve to their
//! documented optima with every algorithm.

use mcr::graph::io::read_dimacs;
use mcr::{Algorithm, Graph, Ratio64};

fn load(text: &str) -> Graph {
    read_dimacs(&mut text.as_bytes()).expect("benchmark file parses")
}

fn check_mean(g: &Graph, min: Ratio64, max: Ratio64, label: &str) {
    for alg in Algorithm::ALL {
        if alg.is_approximate() {
            continue;
        }
        let sol = alg.solve(g).expect("cyclic");
        assert_eq!(sol.lambda, min, "{label} min via {}", alg.name());
    }
    let got_max = mcr::maximum_cycle_mean(g).expect("cyclic").lambda;
    assert_eq!(got_max, max, "{label} max");
}

#[test]
fn pipeline4() {
    let g = load(include_str!("../benchmarks/pipeline4.dimacs"));
    assert_eq!(g.num_nodes(), 4);
    // Ratios (transit-aware): pipeline loop 64/4 = 16, bypass 31/1.
    let min_ratio = mcr::minimum_cycle_ratio(&g).unwrap().lambda;
    let max_ratio = mcr::maximum_cycle_ratio(&g).unwrap().lambda;
    assert_eq!(min_ratio, Ratio64::from(16));
    assert_eq!(max_ratio, Ratio64::from(31));
}

#[test]
fn biquad() {
    let g = load(include_str!("../benchmarks/biquad.dimacs"));
    let min_ratio = mcr::minimum_cycle_ratio(&g).unwrap().lambda;
    let max_ratio = mcr::maximum_cycle_ratio(&g).unwrap().lambda;
    assert_eq!(min_ratio, Ratio64::new(3, 2));
    assert_eq!(max_ratio, Ratio64::from(4));
    // The documented iteration bound matches the dataflow API on the
    // same structure (see examples/iteration_bound.rs).
}

#[test]
fn ring5() {
    let g = load(include_str!("../benchmarks/ring5.dimacs"));
    check_mean(&g, Ratio64::from(5), Ratio64::from(5), "ring5");
    // A single cycle: the witness is the whole ring.
    let sol = mcr::minimum_cycle_mean(&g).unwrap();
    assert_eq!(sol.cycle.len(), 5);
}

#[test]
fn multi_scc() {
    let g = load(include_str!("../benchmarks/multi_scc.dimacs"));
    check_mean(&g, Ratio64::from(2), Ratio64::from(5), "multi_scc");
}

#[test]
fn approximate_algorithms_bracket_documented_optima() {
    for (text, min) in [
        (include_str!("../benchmarks/ring5.dimacs"), Ratio64::from(5)),
        (include_str!("../benchmarks/multi_scc.dimacs"), Ratio64::from(2)),
    ] {
        let g = load(text);
        for alg in [Algorithm::Lawler, Algorithm::Oa1, Algorithm::Howard] {
            let sol = alg.solve_with_epsilon(&g, 1e-6).expect("cyclic");
            assert_eq!(sol.lambda, min, "{}", alg.name());
        }
    }
}
