//! Strongly connected components (iterative Tarjan) and condensation.
//!
//! Every cycle mean / cycle ratio algorithm in the study assumes a
//! strongly connected input; the common driver decomposes an arbitrary
//! digraph with [`SccDecomposition::new`], extracts each nontrivial
//! component with [`SccDecomposition::component_subgraph`], solves it,
//! and takes the minimum over components — exactly the procedure
//! described in Section 2 of the paper.

use crate::compact::idx32;
use crate::graph::{ArcId, Graph, GraphBuilder, NodeId};

/// The strongly connected components of a digraph.
///
/// Components are numbered `0..num_components()` in **reverse
/// topological order** of the condensation (Tarjan's output order): if
/// there is an arc from component `a` to component `b` with `a != b`,
/// then `a > b`.
///
/// ```
/// use mcr_graph::{graph::from_arc_list, SccDecomposition};
/// // Two 2-cycles joined by a one-way bridge.
/// let g = from_arc_list(4, &[(0, 1, 1), (1, 0, 1), (1, 2, 1), (2, 3, 1), (3, 2, 1)]);
/// let scc = SccDecomposition::new(&g);
/// assert_eq!(scc.num_components(), 2);
/// assert_eq!(scc.component_of(mcr_graph::NodeId::new(0)),
///            scc.component_of(mcr_graph::NodeId::new(1)));
/// ```
#[derive(Clone, Debug)]
pub struct SccDecomposition {
    comp_of: Vec<u32>,
    comp_nodes: Vec<Vec<NodeId>>,
}

impl SccDecomposition {
    /// Computes the strongly connected components of `g` with an
    /// iterative Tarjan algorithm (no recursion, safe for n in the
    /// hundreds of thousands).
    pub fn new(g: &Graph) -> Self {
        let n = g.num_nodes();
        const UNVISITED: u32 = u32::MAX;
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut comp_of = vec![0u32; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut comp_nodes: Vec<Vec<NodeId>> = Vec::new();
        let mut next_index = 0u32;

        // Explicit DFS call stack: (node, position in its out-arc list).
        let mut call: Vec<(u32, usize)> = Vec::new();

        for root in 0..idx32(n) {
            if index[root as usize] != UNVISITED {
                continue;
            }
            crate::chaos::pulse("graph.scc.root");
            call.push((root, 0));
            index[root as usize] = next_index;
            lowlink[root as usize] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root as usize] = true;

            while let Some(&mut (v, ref mut pos)) = call.last_mut() {
                let vu = v as usize;
                let out = g.out_arcs(NodeId::new(vu));
                if *pos < out.len() {
                    let w = g.target(out[*pos]).index();
                    *pos += 1;
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(idx32(w));
                        on_stack[w] = true;
                        call.push((idx32(w), 0));
                    } else if on_stack[w] {
                        lowlink[vu] = lowlink[vu].min(index[w]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        let p = parent as usize;
                        lowlink[p] = lowlink[p].min(lowlink[vu]);
                    }
                    if lowlink[vu] == index[vu] {
                        let comp_id = idx32(comp_nodes.len());
                        let mut members = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            comp_of[w as usize] = comp_id;
                            members.push(NodeId::new(w as usize));
                            if w == v {
                                break;
                            }
                        }
                        comp_nodes.push(members);
                    }
                }
            }
        }

        SccDecomposition { comp_of, comp_nodes }
    }

    /// Number of strongly connected components.
    pub fn num_components(&self) -> usize {
        self.comp_nodes.len()
    }

    /// Component id of `v`.
    #[inline]
    pub fn component_of(&self, v: NodeId) -> usize {
        self.comp_of[v.index()] as usize
    }

    /// The nodes of component `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.num_components()`.
    pub fn component(&self, c: usize) -> &[NodeId] {
        &self.comp_nodes[c]
    }

    /// Iterates over all components as node slices.
    pub fn components(&self) -> impl Iterator<Item = &[NodeId]> {
        self.comp_nodes.iter().map(|v| v.as_slice())
    }

    /// Whether component `c` can contain a cycle: it has more than one
    /// node, or its single node has a self-loop.
    pub fn is_cyclic_component(&self, g: &Graph, c: usize) -> bool {
        let nodes = &self.comp_nodes[c];
        if nodes.len() > 1 {
            return true;
        }
        let v = nodes[0];
        g.out_neighbors(v).any(|(_, w)| w == v)
    }

    /// Extracts component `c` as a standalone graph.
    ///
    /// Returns the subgraph, the mapping from subgraph node index to
    /// original [`NodeId`], and the mapping from subgraph arc index to
    /// original [`ArcId`]. Only arcs with both endpoints inside the
    /// component are kept; weights and transit times are preserved.
    ///
    /// Allocates a fresh node-translation table per call; batch callers
    /// extracting many components should use a [`SubgraphExtractor`].
    pub fn component_subgraph(&self, g: &Graph, c: usize) -> (Graph, Vec<NodeId>, Vec<ArcId>) {
        let nodes = &self.comp_nodes[c];
        let mut ex = SubgraphExtractor::new(g.num_nodes());
        let (sub, arc_map) = ex.extract(g, nodes);
        (sub, nodes.clone(), arc_map)
    }
}

/// Reusable scratch state for extracting many node-induced subgraphs of
/// the same host graph without re-allocating the `O(n)` translation
/// table each time.
///
/// The per-SCC solver driver extracts every cyclic component up front;
/// with `k` components a naive loop performs `k` allocations of
/// `n · 4` bytes and `O(kn)` initialization. The extractor allocates the
/// table once and resets only the entries it touched.
///
/// ```
/// use mcr_graph::{graph::from_arc_list, scc::SubgraphExtractor, SccDecomposition};
/// let g = from_arc_list(4, &[(0, 1, 1), (1, 0, 1), (2, 3, 5), (3, 2, 5)]);
/// let scc = SccDecomposition::new(&g);
/// let mut ex = SubgraphExtractor::new(g.num_nodes());
/// for c in 0..scc.num_components() {
///     let (sub, arc_map) = ex.extract(&g, scc.component(c));
///     assert_eq!(sub.num_nodes(), 2);
///     assert_eq!(arc_map.len(), 2);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct SubgraphExtractor {
    /// `local_of[v] == u32::MAX` outside an `extract` call; only entries
    /// for the current node set are populated, and they are restored on
    /// the way out.
    local_of: Vec<u32>,
}

impl SubgraphExtractor {
    /// Creates an extractor for host graphs of up to `num_nodes` nodes
    /// (the table grows on demand if a larger graph shows up).
    pub fn new(num_nodes: usize) -> Self {
        SubgraphExtractor {
            local_of: vec![u32::MAX; num_nodes],
        }
    }

    /// Extracts the subgraph induced by `nodes` (weights and transit
    /// times preserved), plus the map from subgraph arc index to the
    /// host graph's [`ArcId`]. Node `i` of the subgraph is `nodes[i]`.
    pub fn extract(&mut self, g: &Graph, nodes: &[NodeId]) -> (Graph, Vec<ArcId>) {
        if self.local_of.len() < g.num_nodes() {
            self.local_of.resize(g.num_nodes(), u32::MAX);
        }
        for (i, &v) in nodes.iter().enumerate() {
            self.local_of[v.index()] = idx32(i);
        }
        let mut b = GraphBuilder::with_capacity(nodes.len(), nodes.len() * 2);
        b.add_nodes(nodes.len());
        let mut arc_map = Vec::new();
        for &v in nodes {
            for &a in g.out_arcs(v) {
                let t = g.target(a);
                let lt = self.local_of[t.index()];
                if lt != u32::MAX {
                    b.add_arc_with_transit(
                        NodeId::new(self.local_of[v.index()] as usize),
                        NodeId::new(lt as usize),
                        g.weight(a),
                        g.transit(a),
                    );
                    arc_map.push(a);
                }
            }
        }
        for &v in nodes {
            self.local_of[v.index()] = u32::MAX;
        }
        (b.build(), arc_map)
    }
}

/// Builds the condensation of `g`: one node per strongly connected
/// component, one zero-weight arc per original arc crossing between two
/// distinct components (parallel condensation arcs are collapsed).
///
/// The result is acyclic. Node `c` of the condensation corresponds to
/// component `c` of `scc`.
///
/// ```
/// use mcr_graph::{graph::from_arc_list, condensation, SccDecomposition};
/// let g = from_arc_list(4, &[(0, 1, 1), (1, 0, 1), (1, 2, 1), (2, 3, 1), (3, 2, 1)]);
/// let scc = SccDecomposition::new(&g);
/// let c = condensation(&g, &scc);
/// assert_eq!(c.num_nodes(), 2);
/// assert_eq!(c.num_arcs(), 1);
/// ```
pub fn condensation(g: &Graph, scc: &SccDecomposition) -> Graph {
    let k = scc.num_components();
    let mut b = GraphBuilder::with_capacity(k, k);
    b.add_nodes(k);
    let mut seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    for a in g.arc_ids() {
        let cu = idx32(scc.component_of(g.source(a)));
        let cv = idx32(scc.component_of(g.target(a)));
        if cu != cv && seen.insert((cu, cv)) {
            b.add_arc(NodeId::new(cu as usize), NodeId::new(cv as usize), 0);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_arc_list;

    #[test]
    fn single_node_no_loop_is_trivial_component() {
        let g = from_arc_list(1, &[]);
        let scc = SccDecomposition::new(&g);
        assert_eq!(scc.num_components(), 1);
        assert!(!scc.is_cyclic_component(&g, 0));
    }

    #[test]
    fn self_loop_component_is_cyclic() {
        let g = from_arc_list(1, &[(0, 0, 1)]);
        let scc = SccDecomposition::new(&g);
        assert_eq!(scc.num_components(), 1);
        assert!(scc.is_cyclic_component(&g, 0));
    }

    #[test]
    fn dag_has_singleton_components() {
        let g = from_arc_list(4, &[(0, 1, 1), (1, 2, 1), (0, 2, 1), (2, 3, 1)]);
        let scc = SccDecomposition::new(&g);
        assert_eq!(scc.num_components(), 4);
        for c in 0..4 {
            assert_eq!(scc.component(c).len(), 1);
            assert!(!scc.is_cyclic_component(&g, c));
        }
    }

    #[test]
    fn cycle_is_one_component() {
        let g = from_arc_list(5, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1), (4, 0, 1)]);
        let scc = SccDecomposition::new(&g);
        assert_eq!(scc.num_components(), 1);
        assert_eq!(scc.component(0).len(), 5);
    }

    #[test]
    fn components_in_reverse_topological_order() {
        // 0 <-> 1  ->  2 <-> 3  ->  4
        let g = from_arc_list(
            5,
            &[(0, 1, 1), (1, 0, 1), (1, 2, 1), (2, 3, 1), (3, 2, 1), (3, 4, 1)],
        );
        let scc = SccDecomposition::new(&g);
        assert_eq!(scc.num_components(), 3);
        for a in g.arc_ids() {
            let cu = scc.component_of(g.source(a));
            let cv = scc.component_of(g.target(a));
            if cu != cv {
                assert!(cu > cv, "arc {:?} violates reverse topological order", a);
            }
        }
    }

    #[test]
    fn component_subgraph_preserves_weights_and_transits() {
        let mut b = GraphBuilder::new();
        let v = b.add_nodes(3);
        b.add_arc_with_transit(v[0], v[1], 5, 2);
        b.add_arc_with_transit(v[1], v[0], 7, 3);
        b.add_arc(v[1], v[2], 100); // leaves the component
        let g = b.build();
        let scc = SccDecomposition::new(&g);
        let c = scc.component_of(v[0]);
        let (sub, node_map, arc_map) = scc.component_subgraph(&g, c);
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(sub.num_arcs(), 2);
        assert_eq!(node_map.len(), 2);
        let total_w: i64 = sub.arc_ids().map(|a| sub.weight(a)).sum();
        let total_t: i64 = sub.arc_ids().map(|a| sub.transit(a)).sum();
        assert_eq!(total_w, 12);
        assert_eq!(total_t, 5);
        for (local, &orig) in arc_map.iter().enumerate() {
            assert_eq!(sub.weight(ArcId::new(local)), g.weight(orig));
        }
    }

    #[test]
    fn condensation_is_acyclic_and_collapses_parallel() {
        let g = from_arc_list(
            4,
            &[
                (0, 1, 1),
                (1, 0, 1),
                (0, 2, 1),
                (1, 2, 1), // two cross arcs, same component pair
                (2, 3, 1),
                (3, 2, 1),
            ],
        );
        let scc = SccDecomposition::new(&g);
        let c = condensation(&g, &scc);
        assert_eq!(c.num_nodes(), 2);
        assert_eq!(c.num_arcs(), 1);
        let cscc = SccDecomposition::new(&c);
        assert_eq!(cscc.num_components(), c.num_nodes());
    }

    #[test]
    fn two_disjoint_cycles() {
        let g = from_arc_list(4, &[(0, 1, 1), (1, 0, 1), (2, 3, 1), (3, 2, 1)]);
        let scc = SccDecomposition::new(&g);
        assert_eq!(scc.num_components(), 2);
        assert!(scc.is_cyclic_component(&g, 0));
        assert!(scc.is_cyclic_component(&g, 1));
        assert_ne!(
            scc.component_of(NodeId::new(0)),
            scc.component_of(NodeId::new(2))
        );
    }

    #[test]
    fn extractor_reuse_matches_one_shot_extraction() {
        // Three disjoint rings; extracting them through one extractor
        // must give the same subgraphs as fresh per-component calls.
        let g = from_arc_list(
            6,
            &[(0, 1, 1), (1, 0, 2), (2, 3, 3), (3, 2, 4), (4, 5, 5), (5, 4, 6)],
        );
        let scc = SccDecomposition::new(&g);
        let mut ex = SubgraphExtractor::new(g.num_nodes());
        for c in 0..scc.num_components() {
            let (sub_a, arcs_a) = ex.extract(&g, scc.component(c));
            let (sub_b, _, arcs_b) = scc.component_subgraph(&g, c);
            assert_eq!(arcs_a, arcs_b);
            assert_eq!(sub_a.num_nodes(), sub_b.num_nodes());
            assert_eq!(sub_a.num_arcs(), sub_b.num_arcs());
            for a in sub_a.arc_ids() {
                assert_eq!(sub_a.source(a), sub_b.source(a));
                assert_eq!(sub_a.target(a), sub_b.target(a));
                assert_eq!(sub_a.weight(a), sub_b.weight(a));
                assert_eq!(sub_a.transit(a), sub_b.transit(a));
            }
        }
    }

    #[test]
    fn extractor_grows_for_larger_graphs() {
        let small = from_arc_list(2, &[(0, 1, 1), (1, 0, 1)]);
        let big = from_arc_list(10, &[(8, 9, 2), (9, 8, 2)]);
        let mut ex = SubgraphExtractor::new(small.num_nodes());
        let (sub, _) = ex.extract(&small, &[NodeId::new(0), NodeId::new(1)]);
        assert_eq!(sub.num_arcs(), 2);
        let (sub, arcs) = ex.extract(&big, &[NodeId::new(8), NodeId::new(9)]);
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(arcs.len(), 2);
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        // 100_000-node path; recursive Tarjan would blow the stack.
        let n = 100_000;
        let arcs: Vec<(usize, usize, i64)> = (0..n - 1).map(|i| (i, i + 1, 1)).collect();
        let g = from_arc_list(n, &arcs);
        let scc = SccDecomposition::new(&g);
        assert_eq!(scc.num_components(), n);
    }
}
