//! The `mcr-edits v1` edit-script wire format.
//!
//! A versioned JSONL format describing a base graph plus a sequence of
//! edit batches for the incremental [`crate::DynamicSolver`] — what
//! `mcr dynamic --edits FILE` consumes and `mcr gen edits` emits. Every
//! line is one flat JSON object (scalar fields only, no nesting), in
//! this order:
//!
//! ```text
//! {"schema":"mcr-edits v1","kind":"header","nodes":4,"arcs":2,"batches":1,"seed":7}
//! {"kind":"arc","src":0,"dst":1,"weight":5,"transit":1}
//! {"kind":"arc","src":1,"dst":0,"weight":3,"transit":1}
//! {"kind":"edit","batch":1,"op":"reweight","arc":0,"weight":-2}
//! ```
//!
//! * the **header** line declares the node count, the number of base
//!   `arc` lines that follow, the number of edit batches, and the
//!   generator seed (informational);
//! * one **arc** line per base arc, in arc-id (insertion) order;
//! * **edit** lines carry a 1-based `batch` number (batch boundaries
//!   are where the replayer re-solves) and an `op` of `insert`
//!   (`src`/`dst`/`weight`/`transit`), `delete` (`arc`), `reweight`
//!   (`arc`/`weight`), or `retime` (`arc`/`transit`). Batch numbers
//!   must be nondecreasing; a batch with no lines is an empty batch
//!   (re-solve without edits).
//!
//! The field list is pinned by `schemas/mcr-edits-v1.txt` and checked
//! by `mcr-lint` rule MCRL011; `crates/core/tests/data/golden_edits.jsonl`
//! is the committed golden script guarding the byte format.

use crate::dynamic::{ArcSpec, Edit};
use mcr_graph::{Graph, GraphBuilder, NodeId};
use std::collections::BTreeMap;

/// The schema tag every `mcr-edits v1` header carries.
pub const EDITS_SCHEMA: &str = "mcr-edits v1";

/// A parsed edit script: the base graph plus the edit batches to replay
/// against it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EditScript {
    /// Node count of the base graph (fixed across the whole script).
    pub nodes: usize,
    /// Base arcs in arc-id order.
    pub base_arcs: Vec<ArcSpec>,
    /// Edit batches, in replay order. `batches[i]` is wire batch `i+1`.
    pub batches: Vec<Vec<Edit>>,
    /// The generator seed recorded in the header (informational).
    pub seed: u64,
}

impl EditScript {
    /// Materializes the base graph (before any batch), arcs in arc-id
    /// order — the instance a [`crate::DynamicSolver`] replaying this
    /// script starts from.
    pub fn base_graph(&self) -> Graph {
        let mut b = GraphBuilder::new();
        b.add_nodes(self.nodes);
        for a in &self.base_arcs {
            b.add_arc_with_transit(NodeId::new(a.src), NodeId::new(a.dst), a.weight, a.transit);
        }
        b.build()
    }
}

/// One scalar JSON value of a flat object line.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Scalar {
    Str(String),
    Num(i128),
}

/// Parses one flat JSON object (`{"key":value,...}`, string or integer
/// values, no nesting / escapes / duplicates).
fn parse_flat_object(line: &str) -> Result<BTreeMap<String, Scalar>, String> {
    let inner = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("line is not a JSON object: {line}"))?;
    let mut fields = BTreeMap::new();
    let mut chars = inner.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(c) if c.is_whitespace() || *c == ',') {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(fields);
        }
        if chars.next() != Some('"') {
            return Err(format!("expected a quoted key in: {line}"));
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '"' {
                break;
            }
            if c == '\\' {
                return Err(format!("escapes are not part of mcr-edits v1: {line}"));
            }
            key.push(c);
        }
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        if chars.next() != Some(':') {
            return Err(format!("missing `:` after key `{key}` in: {line}"));
        }
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        let value = match chars.peek() {
            Some('"') => {
                chars.next();
                let mut s = String::new();
                for c in chars.by_ref() {
                    if c == '"' {
                        break;
                    }
                    if c == '\\' {
                        return Err(format!("escapes are not part of mcr-edits v1: {line}"));
                    }
                    s.push(c);
                }
                Scalar::Str(s)
            }
            Some(c) if *c == '-' || c.is_ascii_digit() => {
                let mut num = String::new();
                while matches!(chars.peek(), Some(c) if *c == '-' || c.is_ascii_digit()) {
                    num.push(chars.next().unwrap_or('0'));
                }
                Scalar::Num(
                    num.parse::<i128>()
                        .map_err(|_| format!("invalid number `{num}` in: {line}"))?,
                )
            }
            _ => return Err(format!("unsupported value for key `{key}` in: {line}")),
        };
        if fields.insert(key.clone(), value).is_some() {
            return Err(format!("duplicate key `{key}` in: {line}"));
        }
    }
}

fn get_num(
    fields: &BTreeMap<String, Scalar>,
    key: &str,
    line: &str,
) -> Result<i128, String> {
    match fields.get(key) {
        Some(Scalar::Num(n)) => Ok(*n),
        Some(Scalar::Str(_)) => Err(format!("field `{key}` must be a number in: {line}")),
        None => Err(format!("missing field `{key}` in: {line}")),
    }
}

fn get_usize(
    fields: &BTreeMap<String, Scalar>,
    key: &str,
    line: &str,
) -> Result<usize, String> {
    usize::try_from(get_num(fields, key, line)?)
        .map_err(|_| format!("field `{key}` is out of range in: {line}"))
}

fn get_i64(fields: &BTreeMap<String, Scalar>, key: &str, line: &str) -> Result<i64, String> {
    i64::try_from(get_num(fields, key, line)?)
        .map_err(|_| format!("field `{key}` is out of range in: {line}"))
}

fn get_str<'a>(
    fields: &'a BTreeMap<String, Scalar>,
    key: &str,
    line: &str,
) -> Result<&'a str, String> {
    match fields.get(key) {
        Some(Scalar::Str(s)) => Ok(s),
        Some(Scalar::Num(_)) => Err(format!("field `{key}` must be a string in: {line}")),
        None => Err(format!("missing field `{key}` in: {line}")),
    }
}

/// Parses a whole `mcr-edits v1` script. Blank lines are ignored.
pub fn parse_edit_script(text: &str) -> Result<EditScript, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header_line = lines.next().ok_or("empty edit script")?;
    let header = parse_flat_object(header_line)?;
    let schema = get_str(&header, "schema", header_line)?;
    if schema != EDITS_SCHEMA {
        return Err(format!("unsupported schema `{schema}` (want `{EDITS_SCHEMA}`)"));
    }
    if get_str(&header, "kind", header_line)? != "header" {
        return Err(format!("first line must be the header: {header_line}"));
    }
    let nodes = get_usize(&header, "nodes", header_line)?;
    let arcs = get_usize(&header, "arcs", header_line)?;
    let batches = get_usize(&header, "batches", header_line)?;
    let seed = u64::try_from(get_num(&header, "seed", header_line)?)
        .map_err(|_| format!("field `seed` is out of range in: {header_line}"))?;

    let mut script = EditScript {
        nodes,
        base_arcs: Vec::with_capacity(arcs),
        batches: vec![Vec::new(); batches],
        seed,
    };
    let mut last_batch = 0usize;
    for line in lines {
        let fields = parse_flat_object(line)?;
        match get_str(&fields, "kind", line)? {
            "arc" => {
                if !script.batches.iter().all(Vec::is_empty) || last_batch != 0 {
                    return Err(format!("arc line after the first edit line: {line}"));
                }
                script.base_arcs.push(ArcSpec {
                    src: get_usize(&fields, "src", line)?,
                    dst: get_usize(&fields, "dst", line)?,
                    weight: get_i64(&fields, "weight", line)?,
                    transit: get_i64(&fields, "transit", line)?,
                });
            }
            "edit" => {
                let batch = get_usize(&fields, "batch", line)?;
                if batch == 0 || batch > batches {
                    return Err(format!(
                        "batch {batch} is outside 1..={batches}: {line}"
                    ));
                }
                if batch < last_batch {
                    return Err(format!("batch numbers must be nondecreasing: {line}"));
                }
                last_batch = batch;
                let edit = match get_str(&fields, "op", line)? {
                    "insert" => Edit::InsertArc {
                        src: get_usize(&fields, "src", line)?,
                        dst: get_usize(&fields, "dst", line)?,
                        weight: get_i64(&fields, "weight", line)?,
                        transit: get_i64(&fields, "transit", line)?,
                    },
                    "delete" => Edit::DeleteArc {
                        arc: get_usize(&fields, "arc", line)?,
                    },
                    "reweight" => Edit::Reweight {
                        arc: get_usize(&fields, "arc", line)?,
                        weight: get_i64(&fields, "weight", line)?,
                    },
                    "retime" => Edit::Retime {
                        arc: get_usize(&fields, "arc", line)?,
                        transit: get_i64(&fields, "transit", line)?,
                    },
                    other => return Err(format!("unknown op `{other}`: {line}")),
                };
                // lint: allow(panic) reason=batch is validated to lie in 1..=batches just above
                script.batches[batch - 1].push(edit);
            }
            other => return Err(format!("unknown kind `{other}`: {line}")),
        }
    }
    if script.base_arcs.len() != arcs {
        return Err(format!(
            "header declared {arcs} base arcs but {} followed",
            script.base_arcs.len()
        ));
    }
    Ok(script)
}

/// Renders a script back to `mcr-edits v1` text (the inverse of
/// [`parse_edit_script`]; `parse(render(s)) == s`).
pub fn render_edit_script(script: &EditScript) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":\"{EDITS_SCHEMA}\",\"kind\":\"header\",\"nodes\":{},\"arcs\":{},\"batches\":{},\"seed\":{}}}\n",
        script.nodes,
        script.base_arcs.len(),
        script.batches.len(),
        script.seed
    ));
    for a in &script.base_arcs {
        out.push_str(&format!(
            "{{\"kind\":\"arc\",\"src\":{},\"dst\":{},\"weight\":{},\"transit\":{}}}\n",
            a.src, a.dst, a.weight, a.transit
        ));
    }
    for (i, batch) in script.batches.iter().enumerate() {
        let b = i + 1;
        for edit in batch {
            let line = match *edit {
                Edit::InsertArc {
                    src,
                    dst,
                    weight,
                    transit,
                } => format!(
                    "{{\"kind\":\"edit\",\"batch\":{b},\"op\":\"insert\",\"src\":{src},\"dst\":{dst},\"weight\":{weight},\"transit\":{transit}}}\n"
                ),
                Edit::DeleteArc { arc } => {
                    format!("{{\"kind\":\"edit\",\"batch\":{b},\"op\":\"delete\",\"arc\":{arc}}}\n")
                }
                Edit::Reweight { arc, weight } => format!(
                    "{{\"kind\":\"edit\",\"batch\":{b},\"op\":\"reweight\",\"arc\":{arc},\"weight\":{weight}}}\n"
                ),
                Edit::Retime { arc, transit } => format!(
                    "{{\"kind\":\"edit\",\"batch\":{b},\"op\":\"retime\",\"arc\":{arc},\"transit\":{transit}}}\n"
                ),
            };
            out.push_str(&line);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EditScript {
        EditScript {
            nodes: 3,
            base_arcs: vec![
                ArcSpec {
                    src: 0,
                    dst: 1,
                    weight: 5,
                    transit: 1,
                },
                ArcSpec {
                    src: 1,
                    dst: 0,
                    weight: -3,
                    transit: 2,
                },
            ],
            batches: vec![
                vec![
                    Edit::Reweight { arc: 0, weight: 7 },
                    Edit::InsertArc {
                        src: 2,
                        dst: 2,
                        weight: 1,
                        transit: 1,
                    },
                ],
                vec![],
                vec![Edit::DeleteArc { arc: 1 }, Edit::Retime { arc: 0, transit: 3 }],
            ],
            seed: 42,
        }
    }

    #[test]
    fn round_trips() {
        let script = sample();
        let text = render_edit_script(&script);
        assert_eq!(parse_edit_script(&text).expect("parses"), script);
    }

    #[test]
    fn rejects_malformed_lines() {
        let good = render_edit_script(&sample());
        for bad in [
            "",
            "{\"schema\":\"mcr-edits v9\",\"kind\":\"header\",\"nodes\":1,\"arcs\":0,\"batches\":0,\"seed\":0}\n",
            "{\"kind\":\"header\",\"nodes\":1,\"arcs\":0,\"batches\":0,\"seed\":0}\n",
            &good.replace("\"op\":\"delete\"", "\"op\":\"explode\""),
            &good.replace("\"kind\":\"arc\"", "\"kind\":\"blob\""),
            &good.replace("\"batch\":3", "\"batch\":9"),
            &good.replace("\"arcs\":2", "\"arcs\":5"),
        ] {
            assert!(parse_edit_script(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn batch_order_is_enforced() {
        let mut script = render_edit_script(&sample());
        // Swap the batch-1 and batch-3 groups textually: the decreasing
        // batch number must be rejected.
        script = script.replace("\"batch\":1", "\"batch\":9");
        script = script.replace("\"batch\":3", "\"batch\":1");
        script = script.replace("\"batch\":9", "\"batch\":3");
        assert!(parse_edit_script(&script).is_err());
    }

    #[test]
    fn empty_batches_survive() {
        let script = sample();
        let parsed = parse_edit_script(&render_edit_script(&script)).expect("parses");
        assert_eq!(parsed.batches.len(), 3);
        assert!(parsed.batches[1].is_empty());
    }
}
