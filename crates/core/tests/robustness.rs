//! End-to-end robustness of the budgeted solver layer: starved budgets
//! terminate with a typed error instead of hanging, fallback answers
//! are deterministic at every thread count, a budget-aborted attempt
//! cannot poison the workspace of the next SCC job, and every solution
//! the layer emits — on random instances and on the full benchmark
//! suite — survives independent certification.

use mcr_core::{
    certify, Algorithm, Budget, FallbackChain, Ratio64, SolveError, SolveOptions,
};
use mcr_gen::sprand::{sprand, SprandConfig};
use mcr_graph::io::read_dimacs;
use mcr_graph::{Graph, GraphBuilder};

const THREADS: [usize; 3] = [1, 2, 8];

/// Disjoint SPRAND blocks joined by one-way bridges: several genuine
/// SCC jobs for the driver, so worker-local workspaces really get
/// reused across components.
fn multi_scc(blocks: usize, n: usize, m: usize, seed: u64) -> Graph {
    let mut b = GraphBuilder::new();
    let mut anchors = Vec::new();
    for k in 0..blocks {
        let part = sprand(
            &SprandConfig::new(n, m)
                .seed(seed * 977 + k as u64)
                .weight_range(-30, 30),
        );
        let ids = b.add_nodes(part.num_nodes());
        anchors.push(ids[0]);
        for a in part.arc_ids() {
            b.add_arc(
                ids[part.source(a).index()],
                ids[part.target(a).index()],
                part.weight(a),
            );
        }
    }
    for w in anchors.windows(2) {
        b.add_arc(w[0], w[1], 0);
    }
    b.build()
}

/// A union of 2-rings whose weight spread forces Lawler's bisection to
/// need many refinements, so `max_lambda_refinements(1)` reliably
/// exhausts the primary and exercises the fallback on every component.
fn bisection_hostile(rings: usize) -> Graph {
    let mut b = GraphBuilder::new();
    let mut anchors = Vec::new();
    for k in 0..rings as i64 {
        let v = b.add_nodes(2);
        anchors.push(v[0]);
        b.add_arc(v[0], v[1], 1 + k);
        b.add_arc(v[1], v[0], 4000 + 13 * k);
    }
    for w in anchors.windows(2) {
        b.add_arc(w[0], w[1], 0);
    }
    b.build()
}

#[test]
fn one_iteration_budget_terminates_for_every_algorithm_and_thread_count() {
    let g = multi_scc(3, 7, 18, 5);
    let reference = mcr_core::minimum_cycle_mean(&g).expect("cyclic").lambda;
    for alg in Algorithm::ALL {
        for threads in THREADS {
            let opts = SolveOptions {
                threads,
                budget: Budget::default().max_iterations(1),
                fallback: FallbackChain::NONE,
                ..SolveOptions::default()
            };
            // The test completing at all is the no-hang guarantee; the
            // result must be a certified answer or a typed exhaustion.
            match alg.solve_with_options(&g, &opts) {
                Ok(sol) => {
                    certify(&sol, &g).expect("budgeted answers still certify");
                    assert_eq!(sol.lambda, reference, "{} t={threads}", alg.name());
                }
                Err(SolveError::BudgetExhausted { algorithm, .. }) => {
                    assert_eq!(algorithm, alg, "attribution t={threads}");
                }
                Err(other) => panic!("{} t={threads}: unexpected {other}", alg.name()),
            }
        }
    }
}

#[test]
fn zero_wall_clock_budget_terminates_for_every_algorithm() {
    let g = multi_scc(2, 8, 20, 11);
    for alg in Algorithm::ALL {
        let opts = SolveOptions {
            budget: Budget::default().wall_time(std::time::Duration::ZERO),
            fallback: FallbackChain::NONE,
            ..SolveOptions::default()
        };
        match alg.solve_with_options(&g, &opts) {
            Ok(sol) => certify(&sol, &g).expect("certifies"),
            Err(SolveError::BudgetExhausted { .. }) => {}
            Err(other) => panic!("{}: unexpected {other}", alg.name()),
        }
    }
}

#[test]
fn fallback_answers_are_bit_identical_at_every_thread_count() {
    let g = bisection_hostile(6);
    let opts_for = |threads: usize| SolveOptions {
        threads,
        budget: Budget::default().max_lambda_refinements(1),
        ..SolveOptions::default()
    };
    let baseline = Algorithm::LawlerExact
        .solve_with_options(&g, &opts_for(1))
        .expect("fallback chain answers");
    assert_ne!(
        baseline.solved_by,
        Algorithm::LawlerExact,
        "the primary must actually give up for this test to bite"
    );
    certify(&baseline, &g).expect("fallback answer certifies");
    let unbudgeted = Algorithm::LawlerExact.solve(&g).expect("cyclic");
    assert_eq!(baseline.lambda, unbudgeted.lambda, "fallback is still exact");
    for threads in [2, 8] {
        let par = Algorithm::LawlerExact
            .solve_with_options(&g, &opts_for(threads))
            .expect("fallback chain answers");
        assert_eq!(par.lambda, baseline.lambda, "t={threads}: lambda");
        assert_eq!(par.cycle, baseline.cycle, "t={threads}: witness");
        assert_eq!(par.solved_by, baseline.solved_by, "t={threads}: attribution");
    }
}

#[test]
fn budget_aborted_attempt_does_not_poison_the_next_scc_job() {
    // Many SCCs solved back-to-back on few workers: each component's
    // primary attempt aborts mid-flight (stale labels, partial policy
    // arrays) before the fallback answers. If an aborted attempt leaked
    // state into the reused workspace, some later component would come
    // out wrong — so every component's answer must match the
    // unbudgeted solve, at every thread count.
    let g = bisection_hostile(12);
    let unbudgeted = Algorithm::LawlerExact.solve(&g).expect("cyclic");
    for threads in THREADS {
        let opts = SolveOptions {
            threads,
            budget: Budget::default().max_lambda_refinements(1),
            ..SolveOptions::default()
        };
        let sol = Algorithm::LawlerExact
            .solve_with_options(&g, &opts)
            .expect("fallback answers");
        assert_eq!(sol.lambda, unbudgeted.lambda, "t={threads}");
        assert_eq!(sol.cycle, unbudgeted.cycle, "t={threads}");
        certify(&sol, &g).expect("certifies");
    }
}

#[test]
fn recovered_errors_do_not_leak_into_healthy_components() {
    // Mixed difficulty: hostile rings (primary exhausts, fallback
    // answers) interleaved with easy rings (primary succeeds). The
    // merged solution must still be the global optimum.
    let mut b = GraphBuilder::new();
    let mut anchors = Vec::new();
    for k in 0..4i64 {
        let v = b.add_nodes(2);
        anchors.push(v[0]);
        b.add_arc(v[0], v[1], 1);
        b.add_arc(v[1], v[0], 4001 + k); // hostile: wide bisection range
        let u = b.add_nodes(2);
        b.add_arc(u[0], u[1], 2 + k);
        b.add_arc(u[1], u[0], 2 + k); // easy: mean found instantly
        b.add_arc(v[0], u[0], 0);
    }
    for w in anchors.windows(2) {
        b.add_arc(w[1], w[0], 0);
    }
    let g = b.build();
    let expected = mcr_core::minimum_cycle_mean(&g).expect("cyclic").lambda;
    for threads in THREADS {
        let opts = SolveOptions {
            threads,
            budget: Budget::default().max_lambda_refinements(1),
            ..SolveOptions::default()
        };
        let sol = Algorithm::LawlerExact
            .solve_with_options(&g, &opts)
            .expect("answers");
        assert_eq!(sol.lambda, expected, "t={threads}");
        certify(&sol, &g).expect("certifies");
    }
}

#[test]
fn benchmark_instances_certify_at_every_thread_count() {
    // The acceptance sweep: every algorithm (or both ratio solvers, for
    // transit-bearing instances) on every benchmark file, at 1/2/8
    // threads — all answers certify and λ is bit-identical across
    // thread counts.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../benchmarks");
    let mut checked = 0;
    for entry in std::fs::read_dir(dir).expect("benchmarks/ present") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("dimacs") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("readable");
        let g = read_dimacs(&mut text.as_bytes()).expect("valid DIMACS");
        if g.has_unit_transits() {
            for alg in Algorithm::ALL {
                let mut lambdas: Vec<Ratio64> = Vec::new();
                for threads in THREADS {
                    let opts = SolveOptions::new().threads(threads);
                    let sol = alg.solve_with_options(&g, &opts).expect("cyclic");
                    certify(&sol, &g)
                        .unwrap_or_else(|e| panic!("{name}/{}/t={threads}: {e}", alg.name()));
                    lambdas.push(sol.lambda);
                }
                assert!(
                    lambdas.windows(2).all(|w| w[0] == w[1]),
                    "{name}/{}: {lambdas:?}",
                    alg.name()
                );
            }
        } else {
            let mut lambdas: Vec<Ratio64> = Vec::new();
            for threads in THREADS {
                let opts = SolveOptions::new().threads(threads);
                let h = mcr_core::ratio::howard_ratio_exact_opts(&g, &opts).expect("cyclic");
                certify(&h, &g).unwrap_or_else(|e| panic!("{name}/howard/t={threads}: {e}"));
                let l = mcr_core::ratio::lawler_ratio_exact_opts(&g, &opts).expect("cyclic");
                certify(&l, &g).unwrap_or_else(|e| panic!("{name}/lawler/t={threads}: {e}"));
                assert_eq!(h.lambda, l.lambda, "{name}/t={threads}");
                lambdas.push(h.lambda);
            }
            assert!(lambdas.windows(2).all(|w| w[0] == w[1]), "{name}: {lambdas:?}");
        }
        checked += 1;
    }
    assert!(checked >= 4, "expected the full benchmark suite, got {checked}");
}

#[test]
fn generous_budget_is_invisible() {
    // A budget no algorithm comes close to must change nothing: same
    // λ, same witness, same attribution as the unbudgeted solve.
    let g = multi_scc(3, 6, 15, 23);
    for alg in Algorithm::ALL {
        let plain = alg.solve(&g).expect("cyclic");
        let opts = SolveOptions {
            budget: Budget::default()
                .max_iterations(1_000_000)
                .max_lambda_refinements(1_000_000)
                .wall_time(std::time::Duration::from_secs(600)),
            ..SolveOptions::default()
        };
        let budgeted = alg.solve_with_options(&g, &opts).expect("cyclic");
        assert_eq!(budgeted.lambda, plain.lambda, "{}", alg.name());
        assert_eq!(budgeted.cycle, plain.cycle, "{}", alg.name());
        assert_eq!(budgeted.solved_by, alg, "{}", alg.name());
    }
}
