//! Property-based model checking of the addressable heaps.
//!
//! Both heap implementations are driven by random operation sequences
//! and compared against a trivial sorted-scan model. A mismatch in any
//! popped key, membership answer, or length is a bug in the heap — the
//! parametric algorithms' correctness rests on these structures.

use mcr_graph::heap::{AddressableHeap, FibonacciHeap, HeapCounters, IndexedBinaryHeap};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Push(usize, i64),
    DecreaseBy(usize, u16),
    PopMin,
    Remove(usize),
    UpdateKey(usize, i64),
}

fn op_strategy(capacity: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..capacity, -1000i64..1000).prop_map(|(i, k)| Op::Push(i, k)),
        (0..capacity, 0u16..200).prop_map(|(i, d)| Op::DecreaseBy(i, d)),
        Just(Op::PopMin),
        (0..capacity).prop_map(Op::Remove),
        (0..capacity, -1000i64..1000).prop_map(|(i, k)| Op::UpdateKey(i, k)),
    ]
}

#[derive(Default)]
struct Model {
    keys: Vec<Option<i64>>,
}

impl Model {
    fn new(capacity: usize) -> Self {
        Model {
            keys: vec![None; capacity],
        }
    }

    fn len(&self) -> usize {
        self.keys.iter().filter(|k| k.is_some()).count()
    }

    fn min(&self) -> Option<(i64, usize)> {
        self.keys
            .iter()
            .enumerate()
            .filter_map(|(i, k)| k.map(|k| (k, i)))
            .min()
    }
}

fn run_sequence<H: AddressableHeap<i64>>(ops: &[Op], capacity: usize) -> HeapCounters {
    let mut heap = H::with_capacity(capacity);
    let mut model = Model::new(capacity);
    for op in ops {
        match *op {
            Op::Push(i, k) => {
                if model.keys[i].is_none() {
                    heap.push(i, k);
                    model.keys[i] = Some(k);
                }
            }
            Op::DecreaseBy(i, d) => {
                if let Some(cur) = model.keys[i] {
                    let k = cur - d as i64;
                    heap.decrease_key(i, k);
                    model.keys[i] = Some(k);
                }
            }
            Op::PopMin => match heap.pop_min() {
                None => assert_eq!(model.len(), 0),
                Some((i, k)) => {
                    let (mk, _) = model.min().expect("model nonempty");
                    assert_eq!(k, mk, "pop_min returned a non-minimal key");
                    assert_eq!(model.keys[i], Some(k));
                    model.keys[i] = None;
                }
            },
            Op::Remove(i) => {
                assert_eq!(heap.remove(i), model.keys[i]);
                model.keys[i] = None;
            }
            Op::UpdateKey(i, k) => {
                heap.update_key(i, k);
                model.keys[i] = Some(k);
            }
        }
        assert_eq!(heap.len(), model.len());
        for i in 0..capacity {
            assert_eq!(heap.contains(i), model.keys[i].is_some(), "item {i}");
            assert_eq!(heap.key(i).copied(), model.keys[i]);
        }
    }
    // Drain and confirm sorted output.
    let mut last = i64::MIN;
    while let Some((_, k)) = heap.pop_min() {
        assert!(k >= last);
        last = k;
    }
    heap.counters()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fibonacci_matches_model(ops in proptest::collection::vec(op_strategy(24), 1..250)) {
        run_sequence::<FibonacciHeap<i64>>(&ops, 24);
    }

    #[test]
    fn binary_matches_model(ops in proptest::collection::vec(op_strategy(24), 1..250)) {
        run_sequence::<IndexedBinaryHeap<i64>>(&ops, 24);
    }

    #[test]
    fn both_heaps_count_the_same_drained_totals(ops in proptest::collection::vec(op_strategy(16), 1..120)) {
        // With key ties the two heaps may pop different (equally
        // minimal) items and the operation streams diverge afterwards,
        // so per-op counters need not match. What must match is the
        // conservation law: items drained = items inserted, for both.
        let fib = run_sequence::<FibonacciHeap<i64>>(&ops, 16);
        let bin = run_sequence::<IndexedBinaryHeap<i64>>(&ops, 16);
        prop_assert_eq!(fib.inserts, fib.delete_mins + fib.removals);
        prop_assert_eq!(bin.inserts, bin.delete_mins + bin.removals);
    }
}
