//! Fuzzing entry points shared by the cargo-fuzz targets (under the
//! workspace-excluded `fuzz/` scaffold) and the offline `fuzz-smoke`
//! binary that CI runs.
//!
//! Both harnesses feed arbitrary bytes into these functions; the
//! contract under test is **no panic, no hang, no unbounded
//! allocation** — errors are fine, that is what typed errors are for.
//! Keeping the bodies here means the libfuzzer targets stay one-line
//! delegations and the smoke harness exercises byte-identical code.

use mcr_core::{Algorithm, Budget, FallbackChain, SolveOptions};
use mcr_graph::graph::{from_arc_list, Graph};
use mcr_graph::io::{read_dimacs, write_dimacs};
use std::time::Duration;

/// Nodes above this are skipped by the harness: `read_dimacs` allocates
/// node storage from the header (the format declares nodes only there),
/// so a legal-but-huge count is an expensive allocation, not a bug.
/// Counts above `u32::MAX` are rejected by the parser itself.
const MAX_FUZZ_NODES: u64 = 100_000;

/// Fuzz the DIMACS parser: arbitrary bytes must either parse or return
/// a typed [`ParseGraphError`](mcr_graph::io::ParseGraphError) — never
/// panic. Inputs that do parse are round-tripped through
/// [`write_dimacs`] and must reparse to an arc-identical graph.
pub fn fuzz_dimacs(data: &[u8]) {
    if declared_nodes(data).is_some_and(|n| n > MAX_FUZZ_NODES) {
        return;
    }
    let Ok(g) = read_dimacs(&mut &data[..]) else {
        return;
    };
    let mut out = Vec::new();
    write_dimacs(&mut out, &g).expect("writing to a Vec cannot fail");
    let h = read_dimacs(&mut out.as_slice())
        .expect("a graph the writer produced must reparse");
    assert_eq!(g.num_nodes(), h.num_nodes(), "round-trip changed the node count");
    assert_eq!(g.num_arcs(), h.num_arcs(), "round-trip changed the arc count");
    for a in g.arc_ids() {
        assert_eq!(g.weight(a), h.weight(a), "round-trip changed a weight");
        assert_eq!(g.transit(a), h.transit(a), "round-trip changed a transit");
    }
}

/// Fuzz the solver front door: decode the bytes into a small graph,
/// solve every algorithm under a tight budget, and certify anything
/// that claims success. Wrong answers and panics are the bugs; budget
/// and numeric-range errors are expected outcomes.
pub fn fuzz_solve(data: &[u8]) {
    let Some(g) = decode_graph(data) else { return };
    let opts = SolveOptions::new()
        .budget(
            Budget::default()
                .max_iterations(2_000)
                .wall_time(Duration::from_millis(200)),
        )
        .fallback(FallbackChain::NONE);
    for alg in Algorithm::ALL {
        if let Ok(sol) = alg.solve_with_options(&g, &opts) {
            mcr_core::certify(&sol, &g).unwrap_or_else(|e| {
                panic!("{} returned an uncertifiable solution: {e}", alg.name())
            });
        }
    }
}

/// Fuzz the wire-frame codec and the request parser behind it:
/// arbitrary bytes are decoded as a stream of length-prefixed frames
/// until clean EOF or a typed error — truncated headers, oversize
/// lengths, and mid-frame EOF must all surface as errors, never as
/// panics or hangs. Every decoded payload must re-encode to the exact
/// bytes it was cut from, and is fed to
/// [`mcr_serve::protocol::parse_request`], whose failures must also
/// stay typed.
pub fn fuzz_frame(data: &[u8]) {
    use mcr_serve::frame::{read_frame, write_frame};
    let mut cursor = data;
    loop {
        let consumed_before = data.len() - cursor.len();
        match read_frame(&mut cursor) {
            Ok(None) | Err(_) => return,
            Ok(Some(payload)) => {
                let mut encoded = Vec::with_capacity(payload.len() + 4);
                write_frame(&mut encoded, &payload)
                    .expect("re-encoding a decoded frame cannot exceed the cap");
                let consumed_after = data.len() - cursor.len();
                assert_eq!(
                    encoded,
                    &data[consumed_before..consumed_after],
                    "decode → encode must reproduce the frame bytes exactly"
                );
                // The daemon parses every decoded payload; junk must
                // come back as a typed protocol error.
                let _ = mcr_serve::protocol::parse_request(&payload);
            }
        }
    }
}

/// Deterministically decode fuzz bytes into a graph small enough that
/// every algorithm terminates quickly: the first byte picks `n` in
/// `2..=17`, then each subsequent 3-byte chunk becomes one arc
/// (endpoints mod `n`, weight centered signed byte).
fn decode_graph(data: &[u8]) -> Option<Graph> {
    let (&first, rest) = data.split_first()?;
    let n = 2 + (first as usize % 16);
    let mut arcs = Vec::with_capacity(rest.len() / 3);
    for chunk in rest.chunks_exact(3) {
        let u = chunk[0] as usize % n;
        let v = chunk[1] as usize % n;
        let w = chunk[2] as i64 - 128;
        arcs.push((u, v, w));
    }
    if arcs.is_empty() {
        return None;
    }
    Some(from_arc_list(n, &arcs))
}

/// Best-effort scan for the header's declared node count, used to skip
/// legal-but-enormous inputs before the parser allocates for them.
fn declared_nodes(data: &[u8]) -> Option<u64> {
    let text = std::str::from_utf8(data).ok()?;
    for line in text.lines() {
        let mut fields = line.split_whitespace();
        if fields.next() == Some("p") {
            let _problem = fields.next();
            return fields.next()?.parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_seeds_run_clean() {
        for entry in std::fs::read_dir(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../graph/tests/data/bad"
        ))
        .expect("corpus dir")
        {
            let bytes = std::fs::read(entry.expect("entry").path()).expect("read");
            fuzz_dimacs(&bytes);
        }
    }

    #[test]
    fn valid_input_round_trips() {
        fuzz_dimacs(b"p mcr 3 3\na 1 2 5\na 2 3 -1 4\na 3 1 2\n");
    }

    #[test]
    fn decoded_graphs_solve_and_certify() {
        fuzz_solve(&[7, 0, 1, 200, 1, 2, 10, 2, 0, 90, 3, 3, 128]);
        fuzz_solve(&[0; 4]);
        fuzz_solve(&[255; 32]);
    }

    #[test]
    fn degenerate_inputs_are_ignored() {
        fuzz_solve(&[]);
        fuzz_solve(&[9]);
        fuzz_dimacs(&[]);
        fuzz_dimacs(b"p mcr 99999999999 1\n");
    }

    #[test]
    fn frame_streams_round_trip_and_junk_stays_typed() {
        // Two well-formed frames back to back.
        let mut stream = Vec::new();
        mcr_serve::frame::write_frame(&mut stream, b"{\"id\":1,\"op\":\"ping\"}")
            .expect("frame");
        mcr_serve::frame::write_frame(&mut stream, b"{not json").expect("frame");
        fuzz_frame(&stream);
        // Truncated header, oversize length, mid-frame EOF, empty.
        fuzz_frame(&[0, 0]);
        fuzz_frame(&[0xFF, 0xFF, 0xFF, 0xFF, b'x']);
        fuzz_frame(&[0, 0, 0, 100, b'p', b'a', b'r', b't']);
        fuzz_frame(&[]);
    }
}
