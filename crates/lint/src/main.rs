//! CLI for the workspace contract checker.
//!
//! ```text
//! cargo run -p mcr-lint                       # human-readable diagnostics
//! cargo run -p mcr-lint -- --format json      # machine-readable, for CI
//! cargo run -p mcr-lint -- --format sarif     # SARIF 2.1.0, for code scanning
//! cargo run -p mcr-lint -- --baseline lint-baseline.txt
//! cargo run -p mcr-lint -- --changed-only HEAD~1
//! cargo run -p mcr-lint -- --root /path/to/workspace
//! ```
//!
//! `--json` is kept as an alias of `--format json`. `--baseline` loads
//! an accepted-debt file (`RULE file:line # reason`, reason mandatory;
//! stale entries are errors). `--changed-only [REF]` restricts the
//! *reported* per-file findings to files `git diff --name-only REF`
//! touched (default `HEAD`) — the whole workspace is still analyzed, so
//! cross-file rules stay sound; findings in unchanged files are simply
//! filtered from the report.
//!
//! Exit codes: 0 = clean (allowlisted findings are reported but do not
//! fail the gate), 1 = at least one non-allowlisted violation,
//! 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut changed_only: Option<String> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!(
                        "error: --format requires text|json|sarif, got {:?}",
                        other.unwrap_or("")
                    );
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --baseline requires a path");
                    return ExitCode::from(2);
                }
            },
            "--changed-only" => {
                // Optional REF operand; default HEAD. A following token
                // starting with `-` is the next flag, not a ref.
                let rev = match args.peek() {
                    Some(next) if !next.starts_with('-') => args.next(),
                    _ => None,
                };
                changed_only = Some(rev.unwrap_or_else(|| "HEAD".to_string()));
            }
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: mcr-lint [--format text|json|sarif] [--json] \
                     [--baseline <file>] [--changed-only [REF]] [--root <workspace>]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(default_root);

    let mut report = match mcr_lint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(rev) = &changed_only {
        let changed = match changed_files(&root, rev) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        report
            .diagnostics
            .retain(|d| changed.iter().any(|c| c == &d.file));
    }

    if let Some(path) = &baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: failed to read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let entries = match mcr_lint::baseline::parse(&text) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("error: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        if let Err(e) = mcr_lint::baseline::apply(&mut report, &entries) {
            eprintln!("error: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    match format {
        Format::Json => println!("{}", mcr_lint::to_json(&report)),
        Format::Sarif => println!("{}", mcr_lint::sarif::to_sarif(&report)),
        Format::Text => {
            let baselined: Vec<_> = report.baselined.clone();
            for d in &report.diagnostics {
                let status = if d.allowed {
                    " (allowed)"
                } else if baselined
                    .iter()
                    .any(|(r, f, l)| r == d.rule && *f == d.file && *l == d.line)
                {
                    " (baselined)"
                } else {
                    ""
                };
                println!("{}:{}: {}{} {}", d.file, d.line, d.rule, status, d.message);
            }
            println!(
                "mcr-lint: {} files scanned, {} violations, {} allowlisted",
                report.files_scanned,
                report.violation_count(),
                report.suppressed_count()
            );
        }
    }

    if report.violation_count() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Workspace-relative paths `git diff --name-only <rev>` reports under
/// `root`, normalized to `/` separators.
fn changed_files(root: &std::path::Path, rev: &str) -> Result<Vec<String>, String> {
    let out = std::process::Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["diff", "--name-only", rev, "--"])
        .output()
        .map_err(|e| format!("failed to run git diff: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "git diff --name-only {rev} failed: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    Ok(String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| l.trim().replace('\\', "/"))
        .filter(|l| !l.is_empty())
        .collect())
}

/// The workspace root: the current directory if it has a `crates/`
/// tree, otherwise two levels above this crate's manifest (so
/// `cargo run -p mcr-lint` works from any subdirectory).
fn default_root() -> PathBuf {
    let cwd = PathBuf::from(".");
    if cwd.join("crates").is_dir() {
        return cwd;
    }
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(ws) = p.ancestors().nth(2) {
            return ws.to_path_buf();
        }
    }
    cwd
}
