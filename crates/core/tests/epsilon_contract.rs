//! The ε-contract of the approximate algorithms: for every epsilon, the
//! returned witness mean is never below the optimum and never more than
//! the promised distance above it, and the reported guarantee reflects
//! the epsilon actually used.

use mcr_core::{Algorithm, Guarantee, Ratio64};
use mcr_gen::sprand::{sprand, SprandConfig};
use mcr_core::reference::brute_force_min_mean;

const APPROX: [Algorithm; 3] = [Algorithm::Lawler, Algorithm::Oa1, Algorithm::Howard];

#[test]
fn approximate_results_bracket_the_optimum() {
    for seed in 0..12 {
        let g = sprand(&SprandConfig::new(11, 30).seed(seed).weight_range(1, 1000));
        let (optimum, _) = brute_force_min_mean(&g).unwrap();
        for alg in APPROX {
            for eps in [1e-1, 1e-3, 1e-6] {
                let sol = alg.solve_with_epsilon(&g, eps).unwrap();
                assert!(
                    sol.lambda >= optimum,
                    "{} seed {seed} eps {eps}: {} < {}",
                    alg.name(),
                    sol.lambda,
                    optimum
                );
                // Conservative contract: within a small constant factor
                // of eps (OA1 promises 2ε, Howard n·ε for its distance
                // test; the witness mean in practice is far tighter).
                let slop = match alg {
                    Algorithm::Howard => eps * g.num_nodes() as f64,
                    _ => 2.0 * eps,
                };
                assert!(
                    sol.lambda.to_f64() - optimum.to_f64() <= slop + 1e-12,
                    "{} seed {seed} eps {eps}: {} vs {}",
                    alg.name(),
                    sol.lambda,
                    optimum
                );
            }
        }
    }
}

#[test]
fn tightening_epsilon_converges_to_the_optimum() {
    for seed in 0..8 {
        let g = sprand(&SprandConfig::new(13, 33).seed(seed).weight_range(1, 500));
        let (optimum, _) = brute_force_min_mean(&g).unwrap();
        for alg in APPROX {
            // Howard's λ is non-increasing in iterations, so a tighter ε
            // can only improve it.
            if alg == Algorithm::Howard {
                let coarse = alg.solve_with_epsilon(&g, 1.0).unwrap().lambda;
                let fine = alg.solve_with_epsilon(&g, 1e-7).unwrap().lambda;
                assert!(fine <= coarse, "Howard seed {seed}");
            }
            // For every approximate method, a tight ε pins the optimum
            // on these small instances (cycle-mean gaps exceed 1e-7).
            let fine = alg.solve_with_epsilon(&g, 1e-7).unwrap().lambda;
            assert_eq!(fine, optimum, "{} seed {seed}", alg.name());
        }
    }
}

#[test]
fn guarantee_reports_epsilon() {
    let g = sprand(&SprandConfig::new(20, 60).seed(3));
    for alg in APPROX {
        match alg.solve_with_epsilon(&g, 0.25).unwrap().guarantee {
            Guarantee::Epsilon(e) => assert!(e >= 0.25, "{}: {e}", alg.name()),
            Guarantee::Exact => panic!("{} must not claim exactness", alg.name()),
        }
    }
}

#[test]
fn exact_variants_ignore_epsilon() {
    let g = sprand(&SprandConfig::new(15, 40).seed(9));
    let reference = Algorithm::Karp.solve(&g).unwrap().lambda;
    for alg in [Algorithm::LawlerExact, Algorithm::HowardExact, Algorithm::BurnsExact] {
        for eps in [10.0, 1e-9] {
            let sol = alg.solve_with_epsilon(&g, eps).unwrap();
            assert_eq!(sol.lambda, reference, "{} eps {eps}", alg.name());
            assert!(matches!(sol.guarantee, Guarantee::Exact));
        }
    }
}

#[test]
fn nonpositive_epsilon_is_a_typed_error_not_a_panic() {
    use mcr_core::{SolveError, SolveOptions};
    let g = sprand(&SprandConfig::new(8, 20).seed(0));
    assert!(Algorithm::Lawler.solve_with_epsilon(&g, 0.0).is_none());
    assert!(Algorithm::Oa1.solve_with_epsilon(&g, -1.0).is_none());
    let opts = SolveOptions {
        epsilon: Some(-1.0),
        ..SolveOptions::default()
    };
    let err = Algorithm::Oa1.solve_with_options(&g, &opts).unwrap_err();
    assert!(matches!(err, SolveError::InvalidEpsilon { epsilon } if epsilon == -1.0));
}

#[test]
fn witness_mean_is_exact_even_when_lambda_is_approximate() {
    // The returned lambda must always be the exact rational mean of the
    // returned cycle, whatever the guarantee says.
    for seed in 0..10 {
        let g = sprand(&SprandConfig::new(25, 70).seed(seed));
        for alg in APPROX {
            let sol = alg.solve_with_epsilon(&g, 0.5).unwrap();
            let w: i64 = sol.cycle.iter().map(|&a| g.weight(a)).sum();
            assert_eq!(
                sol.lambda,
                Ratio64::new(w, sol.cycle.len() as i64),
                "{} seed {seed}",
                alg.name()
            );
        }
    }
}
