//! Synchronous circuit performance analysis (paper §1.1).
//!
//! For a retimed synchronous circuit, the minimum feasible clock period
//! is governed by the *maximum cost-to-time ratio* over all cycles of
//! the circuit graph: arc weight = combinational delay along the
//! connection, arc transit time = number of registers on it. No
//! retiming can beat `max_C w(C)/t(C)` because registers on a cycle can
//! be moved but never created or destroyed (Szymanski, DAC'92; Teich et
//! al.).
//!
//! Run with: `cargo run --example clock_period`

use mcr::apps::retiming::{Block, Netlist};
use mcr::core::critical::critical_subgraph;
use mcr::{maximum_cycle_ratio, GraphBuilder, Ratio64};

fn main() {
    // A small processor-like datapath:
    //
    //   fetch -> decode -> execute -> writeback -> fetch   (pipeline loop)
    //   execute -> execute                                  (bypass loop)
    //   decode -> regfile -> execute                        (operand path)
    //
    // Weights are gate delays (in tenths of ns); transit times are the
    // register counts on each connection.
    let mut b = GraphBuilder::new();
    let names = ["fetch", "decode", "execute", "writeback", "regfile"];
    let v = b.add_nodes(names.len());
    let (fetch, decode, execute, writeback, regfile) = (v[0], v[1], v[2], v[3], v[4]);

    b.add_arc_with_transit(fetch, decode, 18, 1);
    b.add_arc_with_transit(decode, execute, 22, 1);
    b.add_arc_with_transit(execute, writeback, 15, 1);
    b.add_arc_with_transit(writeback, fetch, 9, 1);
    b.add_arc_with_transit(execute, execute, 31, 1); // ALU bypass loop
    b.add_arc_with_transit(decode, regfile, 12, 0); // combinational read
    b.add_arc_with_transit(regfile, execute, 16, 1);
    b.add_arc_with_transit(writeback, regfile, 11, 1);
    b.add_arc_with_transit(regfile, decode, 7, 1);
    let g = b.build();

    let sol = maximum_cycle_ratio(&g).expect("the circuit is cyclic");
    println!(
        "minimum achievable clock period = {} ≈ {:.2} (delay units per register)",
        sol.lambda,
        sol.lambda.to_f64()
    );

    print!("performance-limiting loop:");
    for n in sol.cycle_nodes(&g) {
        print!(" {}", names[n.index()]);
    }
    println!();

    // The critical subgraph of the negated graph identifies every
    // connection that constrains the clock — the targets for retiming
    // or logic optimization.
    let cs = critical_subgraph(&g.negated(), -sol.lambda).expect("lambda is optimal");
    println!("critical connections:");
    for a in cs.arcs {
        println!(
            "  {} -> {} (delay {}, {} regs)",
            names[g.source(a).index()],
            names[g.target(a).index()],
            g.weight(a),
            g.transit(a)
        );
    }

    // The same analysis through the netlist API, plus a legal clock
    // schedule (per-block departure offsets) at 110% of the bound.
    let mut nl = Netlist::new();
    let blocks: Vec<_> = [18, 22, 31, 9, 12]
        .iter()
        .zip(names)
        .map(|(&d, n)| nl.add_block(Block::new(n, d)))
        .collect();
    let wires = [
        (0usize, 1usize, 1i64),
        (1, 2, 1),
        (2, 3, 1),
        (3, 0, 1),
        (2, 2, 1),
        (1, 4, 0),
        (4, 2, 1),
        (3, 4, 1),
        (4, 1, 1),
    ];
    for &(f, t, r) in &wires {
        nl.connect(blocks[f], blocks[t], r);
    }
    let analysis = nl.analyze().expect("no comb loop").expect("cyclic");
    let period = analysis.min_period * Ratio64::new(11, 10);
    let schedule = nl.clock_schedule(period).expect("feasible above the bound");
    println!("\nclock schedule at period {period} (offsets per block):");
    for (i, r) in schedule.iter().enumerate() {
        println!("  {:<10} departs at {}", nl.block(blocks[i]).name, r);
    }
}
