//! Graph serialization: a DIMACS-style arc-list text format and DOT
//! export for visualization.
//!
//! The text format follows the DIMACS shortest-path convention the
//! SPRAND generator family emits, extended with an optional transit-time
//! field:
//!
//! ```text
//! c comment lines
//! p mcr <num_nodes> <num_arcs>
//! a <source> <target> <weight> [transit]
//! ```
//!
//! Nodes are 1-based in the file (DIMACS convention) and 0-based in
//! memory.

// Parsing/validation surfaces must stay panic-free whatever the
// input; CI runs clippy with -D warnings, so these lints are a gate.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

use crate::graph::{Graph, GraphBuilder, GraphError, NodeId};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Machine-readable classification of a [`ParseGraphError`].
///
/// Callers that need to distinguish "the file is garbage" from "one
/// field is wrong" can match on this instead of scraping the display
/// message; the message remains the human-facing diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// The underlying reader failed.
    Io,
    /// A `p` line is present but malformed (wrong field count, wrong
    /// problem tag, or the file ends mid-header).
    TruncatedHeader,
    /// A second `p` line appeared after the graph was already declared.
    DuplicateHeader,
    /// No `p` line precedes the arcs (or the file has none at all).
    MissingHeader,
    /// An `a` line has the wrong number of fields.
    MalformedArc,
    /// A numeric field (count, endpoint, weight, or transit) failed to
    /// parse as an integer.
    NonNumericField,
    /// An arc endpoint falls outside `1..=num_nodes`.
    OutOfRangeEndpoint,
    /// The header declares more nodes or arcs than ids (`u32`) can
    /// address; rejected before any allocation is sized from it.
    HeaderCountOverflow,
    /// An arc declared a negative transit time.
    NegativeTransit,
    /// A line starts with an unrecognized type character.
    UnknownLineType,
}

/// Error produced when parsing the DIMACS-style text format.
///
/// Carries the 1-based line number of the offending line (0 for
/// whole-file errors such as a missing header), a [`ParseErrorKind`]
/// for programmatic matching, and a human-readable message.
#[derive(Debug)]
pub struct ParseGraphError {
    line: usize,
    kind: ParseErrorKind,
    message: String,
}

impl ParseGraphError {
    fn new(line: usize, kind: ParseErrorKind, message: impl Into<String>) -> Self {
        ParseGraphError {
            line,
            kind,
            message: message.into(),
        }
    }

    /// The 1-based line number the error was detected on (0 when the
    /// error concerns the file as a whole, e.g. a missing header).
    pub fn line(&self) -> usize {
        self.line
    }

    /// The machine-readable classification of the error.
    pub fn kind(&self) -> ParseErrorKind {
        self.kind
    }

    /// The human-readable diagnostic, without the line prefix.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseGraphError {}

/// Reads a graph in the DIMACS-style format described in the
/// [module documentation](self).
///
/// A mutable reference to any `BufRead` may be passed.
///
/// # Errors
///
/// Returns [`ParseGraphError`] on malformed or duplicated headers, arc
/// lines with the wrong field count, out-of-range endpoints, negative
/// transit times, or unparsable integers. The error's
/// [`kind`](ParseGraphError::kind) distinguishes the cases and
/// [`line`](ParseGraphError::line) locates the offending line; parsing
/// never panics, whatever the input.
///
/// ```
/// use mcr_graph::io::read_dimacs;
/// let text = "c tiny\np mcr 2 2\na 1 2 5\na 2 1 3 7\n";
/// let g = read_dimacs(&mut text.as_bytes())?;
/// assert_eq!(g.num_nodes(), 2);
/// assert_eq!(g.transit(mcr_graph::ArcId::new(1)), 7);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn read_dimacs<R: BufRead>(reader: &mut R) -> Result<Graph, ParseGraphError> {
    let mut builder: Option<GraphBuilder> = None;
    let mut num_nodes = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.map_err(|e| {
            ParseGraphError::new(lineno, ParseErrorKind::Io, format!("io error: {e}"))
        })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        // Slice patterns keep the parser free of `fields[i]` indexing:
        // every shape mismatch lands in a typed-error arm instead of a
        // potential bounds panic (lint rule MCRL005).
        let fields: Vec<&str> = line.split_whitespace().collect();
        let Some((&kind, rest)) = fields.split_first() else {
            continue; // whitespace-only line
        };
        match kind {
            "p" => {
                if builder.is_some() {
                    return Err(ParseGraphError::new(
                        lineno,
                        ParseErrorKind::DuplicateHeader,
                        "duplicate problem line: the graph was already declared",
                    ));
                }
                let ["mcr", nodes_field, arcs_field] = rest else {
                    return Err(ParseGraphError::new(
                        lineno,
                        ParseErrorKind::TruncatedHeader,
                        "expected problem line `p mcr <nodes> <arcs>`",
                    ));
                };
                num_nodes = nodes_field.parse().map_err(|_| {
                    ParseGraphError::new(lineno, ParseErrorKind::NonNumericField, "invalid node count")
                })?;
                let declared_arcs: usize = arcs_field.parse().map_err(|_| {
                    ParseGraphError::new(lineno, ParseErrorKind::NonNumericField, "invalid arc count")
                })?;
                // Node and arc ids are u32 internally, so larger
                // declared counts can never produce a valid graph —
                // reject them *before* allocating, or a one-line header
                // could demand hundreds of gigabytes (found by fuzzing).
                if num_nodes > u32::MAX as usize || declared_arcs > u32::MAX as usize {
                    return Err(ParseGraphError::new(
                        lineno,
                        ParseErrorKind::HeaderCountOverflow,
                        "declared node/arc count exceeds the supported maximum (2^32 - 1)",
                    ));
                }
                // The declared arc count is only a capacity *hint* —
                // arcs are stored as their lines arrive — so clamp it:
                // a header claiming 4 billion arcs must not reserve
                // gigabytes the file never delivers.
                const MAX_ARC_PREALLOC: usize = 1 << 20;
                let mut b =
                    GraphBuilder::with_capacity(num_nodes, declared_arcs.min(MAX_ARC_PREALLOC));
                b.add_nodes(num_nodes);
                builder = Some(b);
            }
            "a" => {
                if crate::chaos::fail_hit("graph.io.read_dimacs.arc") {
                    return Err(ParseGraphError::new(
                        lineno,
                        ParseErrorKind::Io,
                        "injected chaos fault while reading arc line",
                    ));
                }
                let b = builder.as_mut().ok_or_else(|| {
                    ParseGraphError::new(
                        lineno,
                        ParseErrorKind::MissingHeader,
                        "arc before problem line",
                    )
                })?;
                let (src_field, dst_field, weight_field, transit_field) = match rest {
                    [s, d, w] => (s, d, w, None),
                    [s, d, w, t] => (s, d, w, Some(t)),
                    _ => {
                        return Err(ParseGraphError::new(
                            lineno,
                            ParseErrorKind::MalformedArc,
                            "expected `a <src> <dst> <weight> [transit]`",
                        ));
                    }
                };
                let src: usize = src_field.parse().map_err(|_| {
                    ParseGraphError::new(lineno, ParseErrorKind::NonNumericField, "invalid source")
                })?;
                let dst: usize = dst_field.parse().map_err(|_| {
                    ParseGraphError::new(lineno, ParseErrorKind::NonNumericField, "invalid target")
                })?;
                let weight: i64 = weight_field.parse().map_err(|_| {
                    ParseGraphError::new(lineno, ParseErrorKind::NonNumericField, "invalid weight")
                })?;
                let transit: i64 = match transit_field {
                    Some(t) => t.parse().map_err(|_| {
                        ParseGraphError::new(
                            lineno,
                            ParseErrorKind::NonNumericField,
                            "invalid transit",
                        )
                    })?,
                    None => 1,
                };
                if src == 0 || src > num_nodes || dst == 0 || dst > num_nodes {
                    return Err(ParseGraphError::new(
                        lineno,
                        ParseErrorKind::OutOfRangeEndpoint,
                        format!("endpoint out of range 1..={num_nodes}"),
                    ));
                }
                b.try_add_arc_with_transit(
                    NodeId::new(src - 1),
                    NodeId::new(dst - 1),
                    weight,
                    transit,
                )
                .map_err(|e| {
                    let kind = match e {
                        GraphError::NegativeTransit { .. } => ParseErrorKind::NegativeTransit,
                        _ => ParseErrorKind::OutOfRangeEndpoint,
                    };
                    ParseGraphError::new(
                        lineno,
                        kind,
                        match e {
                            GraphError::NegativeTransit { .. } => "negative transit time".into(),
                            other => other.to_string(),
                        },
                    )
                })?;
            }
            other => {
                return Err(ParseGraphError::new(
                    lineno,
                    ParseErrorKind::UnknownLineType,
                    format!("unknown line type `{other}`"),
                ));
            }
        }
    }
    let builder = builder.ok_or_else(|| {
        ParseGraphError::new(
            0,
            ParseErrorKind::MissingHeader,
            "missing problem line `p mcr ...`",
        )
    })?;
    Ok(builder.build())
}

/// Writes `g` in the DIMACS-style format accepted by [`read_dimacs`].
///
/// Transit times are emitted only when some arc has a non-unit transit
/// time. A mutable reference to any `Write` may be passed.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_dimacs<W: Write>(writer: &mut W, g: &Graph) -> std::io::Result<()> {
    writeln!(writer, "p mcr {} {}", g.num_nodes(), g.num_arcs())?;
    let with_transit = !g.has_unit_transits();
    for a in g.arc_ids() {
        if with_transit {
            writeln!(
                writer,
                "a {} {} {} {}",
                g.source(a).index() + 1,
                g.target(a).index() + 1,
                g.weight(a),
                g.transit(a)
            )?;
        } else {
            writeln!(
                writer,
                "a {} {} {}",
                g.source(a).index() + 1,
                g.target(a).index() + 1,
                g.weight(a)
            )?;
        }
    }
    Ok(())
}

/// Renders `g` in Graphviz DOT syntax, labeling arcs with `weight` or
/// `weight/transit`.
///
/// ```
/// use mcr_graph::{graph::from_arc_list, io::to_dot};
/// let g = from_arc_list(2, &[(0, 1, 4)]);
/// let dot = to_dot(&g, "tiny");
/// assert!(dot.contains("digraph tiny"));
/// assert!(dot.contains("0 -> 1"));
/// ```
pub fn to_dot(g: &Graph, name: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let with_transit = !g.has_unit_transits();
    for a in g.arc_ids() {
        if with_transit {
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{}/{}\"];",
                g.source(a).index(),
                g.target(a).index(),
                g.weight(a),
                g.transit(a)
            );
        } else {
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{}\"];",
                g.source(a).index(),
                g.target(a).index(),
                g.weight(a)
            );
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_arc_list;

    #[test]
    fn roundtrip_unit_transit() {
        let g = from_arc_list(3, &[(0, 1, 5), (1, 2, -3), (2, 0, 7)]);
        let mut buf = Vec::new();
        write_dimacs(&mut buf, &g).expect("write");
        let h = read_dimacs(&mut buf.as_slice()).expect("parse");
        assert_eq!(h.num_nodes(), 3);
        assert_eq!(h.num_arcs(), 3);
        for a in g.arc_ids() {
            assert_eq!(g.source(a), h.source(a));
            assert_eq!(g.target(a), h.target(a));
            assert_eq!(g.weight(a), h.weight(a));
            assert_eq!(h.transit(a), 1);
        }
    }

    #[test]
    fn roundtrip_with_transits() {
        let mut b = GraphBuilder::new();
        let v = b.add_nodes(2);
        b.add_arc_with_transit(v[0], v[1], 10, 3);
        b.add_arc_with_transit(v[1], v[0], -2, 0);
        let g = b.build();
        let mut buf = Vec::new();
        write_dimacs(&mut buf, &g).expect("write");
        let h = read_dimacs(&mut buf.as_slice()).expect("parse");
        for a in g.arc_ids() {
            assert_eq!(g.transit(a), h.transit(a));
            assert_eq!(g.weight(a), h.weight(a));
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "c header\n\nc more\np mcr 1 1\nc inline\na 1 1 -4\n";
        let g = read_dimacs(&mut text.as_bytes()).expect("parse");
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.weight(crate::graph::ArcId::new(0)), -4);
    }

    #[test]
    fn errors_are_reported_with_line_numbers_and_kinds() {
        use ParseErrorKind as K;
        let cases = [
            ("a 1 2 3\n", "problem line", K::MissingHeader, 1),
            ("p mcr x 1\n", "node count", K::NonNumericField, 1),
            ("p mcr 2 1\na 1 3 1\n", "out of range", K::OutOfRangeEndpoint, 2),
            ("p mcr 2 1\na 1 2\n", "expected", K::MalformedArc, 2),
            ("p mcr 2 1\nq 1 2\n", "unknown line type", K::UnknownLineType, 2),
            ("p mcr 2 1\na 1 2 1 -1\n", "negative transit", K::NegativeTransit, 2),
            ("", "missing problem line", K::MissingHeader, 0),
            ("p mcr\n", "expected problem line", K::TruncatedHeader, 1),
            ("p mcr 2 2\np mcr 2 2\n", "duplicate", K::DuplicateHeader, 2),
        ];
        for (text, needle, kind, line) in cases {
            let err = read_dimacs(&mut text.as_bytes()).expect_err(text);
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "error for {text:?} was {msg:?}, expected to contain {needle:?}"
            );
            assert_eq!(err.kind(), kind, "kind for {text:?}");
            assert_eq!(err.line(), line, "line for {text:?}");
        }
    }

    #[test]
    fn absurd_header_counts_are_rejected_before_allocation() {
        // A mutated header declaring ~10^11 nodes must fail fast with a
        // typed error instead of attempting a multi-hundred-gigabyte
        // `with_capacity` (found by fuzzing the parser).
        for text in [
            "p mcr 99999999999 5\n",
            "p mcr 5 99999999999\n",
            "p mcr 4294967296 4294967296\n",
        ] {
            let err = read_dimacs(&mut text.as_bytes()).expect_err(text);
            assert_eq!(err.kind(), ParseErrorKind::HeaderCountOverflow, "{text:?}");
            assert_eq!(err.line(), 1, "{text:?}");
        }
        // The boundary itself (u32::MAX) is legal as a *declared* count;
        // the file just doesn't have to deliver that many arcs.
        let text = "p mcr 2 4294967295\na 1 2 1\n";
        assert!(read_dimacs(&mut text.as_bytes()).is_ok());
    }

    #[test]
    fn second_header_is_rejected_not_silently_replaced() {
        // Before the duplicate-header check, a second `p` line would
        // silently discard every arc parsed so far.
        let text = "p mcr 2 2\na 1 2 5\np mcr 9 9\na 2 1 3\n";
        let err = read_dimacs(&mut text.as_bytes()).expect_err("duplicate header");
        assert_eq!(err.kind(), ParseErrorKind::DuplicateHeader);
        assert_eq!(err.line(), 3);
    }

    #[test]
    fn dot_contains_all_arcs() {
        let g = from_arc_list(3, &[(0, 1, 1), (1, 2, 2), (2, 0, 3)]);
        let dot = to_dot(&g, "g");
        assert_eq!(dot.matches("->").count(), 3);
    }

    use crate::graph::GraphBuilder;
}
