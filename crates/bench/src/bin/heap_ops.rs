//! EXP-4.2 — KO versus YTO: heap operation counts.
//!
//! §4.2: "both algorithms perform almost the same number of iterations
//! on each test case; however, the YTO algorithm provides savings in
//! the number of heap operations, especially in the number of
//! insertions. The savings … get better as the density increases."
//!
//! `cargo run -p mcr-bench --release --bin heap_ops [--full]`

use mcr_bench::{print_table, HarnessConfig};
use mcr_core::{Algorithm, Counters};

fn accumulate(cfg: &HarnessConfig, alg: Algorithm, n: usize, m: usize) -> Counters {
    let mut total = Counters::new();
    for seed in 0..cfg.seeds {
        let g = cfg.instance(n, m, seed);
        total += alg.solve(&g).expect("cyclic").counters;
    }
    total
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let header: Vec<String> = [
        "n", "m", "KO iters", "YTO iters", "KO ins", "YTO ins", "KO dec", "YTO dec", "KO del",
        "YTO del", "ins ratio",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for &(n, m) in &cfg.grid {
        let ko = accumulate(&cfg, Algorithm::Ko, n, m);
        let yto = accumulate(&cfg, Algorithm::Yto, n, m);
        let s = cfg.seeds;
        rows.push(vec![
            n.to_string(),
            m.to_string(),
            (ko.iterations / s).to_string(),
            (yto.iterations / s).to_string(),
            (ko.heap.inserts / s).to_string(),
            (yto.heap.inserts / s).to_string(),
            (ko.heap.decrease_keys / s).to_string(),
            (yto.heap.decrease_keys / s).to_string(),
            (ko.heap.delete_mins / s).to_string(),
            (yto.heap.delete_mins / s).to_string(),
            format!(
                "{:.1}x",
                ko.heap.inserts as f64 / yto.heap.inserts.max(1) as f64
            ),
        ]);
        eprintln!("done n={n} m={m}");
    }
    println!(
        "EXP-4.2: KO vs YTO heap operations (totals per graph, {} seeds averaged)",
        cfg.seeds
    );
    print_table(&header, &rows);
    println!("\nExpected shape (§4.2): iteration counts match; YTO needs far fewer");
    println!("insertions, with the gap widening as density m/n grows.");
}
