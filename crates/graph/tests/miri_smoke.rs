//! Curated Miri subset for `mcr-graph`: small, allocation- and
//! index-heavy exercises of the pointer-dense structures (builder, SCC
//! decomposition, both addressable heaps, the DIMACS codec on in-memory
//! buffers). The full property suites are far too slow under the Miri
//! interpreter; this file is the tier that CI runs as
//! `cargo miri test -p mcr-graph --test miri_smoke`, and it also runs
//! as a plain (fast) integration test under `cargo test`.
//!
//! Everything here is in-memory — no file IO — so it works under Miri's
//! default isolation.

use mcr_graph::graph::from_arc_list;
use mcr_graph::heap::{AddressableHeap, FibonacciHeap, IndexedBinaryHeap};
use mcr_graph::io::{read_dimacs, write_dimacs};
use mcr_graph::{condensation, NodeId, SccDecomposition, SubgraphExtractor};

/// Two 3-cycles bridged by a one-way arc, plus an isolated self-loop.
fn two_scc_graph() -> mcr_graph::Graph {
    from_arc_list(
        7,
        &[
            (0, 1, 2),
            (1, 2, 3),
            (2, 0, 1),
            (2, 3, 5),
            (3, 4, 1),
            (4, 5, 2),
            (5, 3, 4),
            (6, 6, 9),
        ],
    )
}

#[test]
fn builder_and_accessors_round_trip() {
    let g = two_scc_graph();
    assert_eq!(g.num_nodes(), 7);
    assert_eq!(g.num_arcs(), 8);
    let mut total = 0i64;
    for a in g.arc_ids() {
        total += g.weight(a);
    }
    assert_eq!(total, 27);
}

#[test]
fn scc_decomposition_and_condensation() {
    let g = two_scc_graph();
    let scc = SccDecomposition::new(&g);
    assert_eq!(scc.num_components(), 3);
    assert_eq!(
        scc.component_of(NodeId::new(0)),
        scc.component_of(NodeId::new(2))
    );
    assert_ne!(
        scc.component_of(NodeId::new(0)),
        scc.component_of(NodeId::new(3))
    );
    let cond = condensation(&g, &scc);
    assert_eq!(cond.num_nodes(), 3);
    let mut ex = SubgraphExtractor::new(g.num_nodes());
    for c in 0..scc.num_components() {
        let (sub, arc_map) = ex.extract(&g, scc.component(c));
        assert!(sub.num_nodes() >= 1);
        assert_eq!(sub.num_arcs(), arc_map.len());
    }
}

fn heap_exercise<H: AddressableHeap<i64>>() {
    let mut h = H::with_capacity(8);
    for (item, key) in [(0usize, 9i64), (3, 4), (5, 7), (7, 1), (2, 6)] {
        h.push(item, key);
    }
    h.decrease_key(0, 2);
    h.decrease_key(5, 3);
    assert_eq!(h.remove(2), Some(6));
    let mut drained = Vec::new();
    while let Some((item, key)) = h.pop_min() {
        drained.push((item, key));
    }
    assert_eq!(drained, vec![(7, 1), (0, 2), (5, 3), (3, 4)]);
    assert!(h.is_empty());
}

#[test]
fn binary_heap_under_miri() {
    heap_exercise::<IndexedBinaryHeap<i64>>();
}

#[test]
fn fibonacci_heap_under_miri() {
    heap_exercise::<FibonacciHeap<i64>>();
}

#[test]
fn dimacs_codec_round_trips_in_memory() {
    let g = two_scc_graph();
    let mut buf = Vec::new();
    write_dimacs(&mut buf, &g).expect("write to Vec");
    let parsed = read_dimacs(&mut buf.as_slice()).expect("parse own output");
    assert_eq!(parsed.num_nodes(), g.num_nodes());
    assert_eq!(parsed.num_arcs(), g.num_arcs());
    for (a, b) in g.arc_ids().zip(parsed.arc_ids()) {
        assert_eq!(g.weight(a), parsed.weight(b));
        assert_eq!(g.transit(a), parsed.transit(b));
    }
}

#[test]
fn malformed_input_is_a_typed_error() {
    let bad = b"p mcr 2 1\na 1 9 5\n";
    let err = read_dimacs(&mut &bad[..]).expect_err("node out of range");
    assert!(err.line() >= 1);
}
