//! Replayable `mcr-req v1` request logs for the `mcrd` daemon.
//!
//! [`request_log`] emits a deterministic JSONL batch — one request per
//! line — that `mcr client --replay` feeds to a live daemon and the
//! serve test-suite uses as golden input. The mix is deliberately
//! adversarial for a *service* rather than a solver:
//!
//! * a small pool of instances, each referenced by several requests,
//!   so the daemon's graph cache has hits to prove;
//! * both objectives, both orientations, several algorithms, explicit
//!   epsilons — exercising the whole [`mcr-req v1`] surface;
//! * one `deadline_ms: 0` request per batch (deterministically
//!   `cancelled`, exit taxonomy 4) and one single-refinement budget
//!   with fallbacks disabled (deterministically `budget-exhausted`,
//!   exit taxonomy 2) — so a replay asserts the failure statuses too,
//!   not just the happy path.
//!
//! The emitter hand-rolls its JSON (string escaping included) instead
//! of depending on `mcr-serve`: the generator crate sits below the
//! service in the dependency order, and the service's tests depend on
//! it in turn.

use crate::sprand::{sprand, SprandConfig};
use crate::transit::with_random_transits;
use mcr_graph::io::write_dimacs;
use mcr_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`request_log`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestLogConfig {
    /// Number of requests to emit.
    pub count: usize,
    /// RNG seed; equal configs produce byte-identical logs.
    pub rng_seed: u64,
}

impl RequestLogConfig {
    /// A `count`-request log with seed 0.
    pub fn new(count: usize) -> Self {
        RequestLogConfig { count, rng_seed: 0 }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }
}

/// Escapes `s` as the *contents* of a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn dimacs(g: &Graph) -> String {
    let mut buf = Vec::new();
    // An in-memory write cannot fail; fall back to an empty instance
    // rather than panicking in a generator.
    if write_dimacs(&mut buf, g).is_err() {
        return String::new();
    }
    String::from_utf8(buf).unwrap_or_default()
}

/// The algorithm rotation: exact and approximate, mean-capable and
/// ratio-capable, including the checkpointable ones (`howard-exact`,
/// `lawler-exact`) the daemon's sliced-solve path cares about.
const ALGORITHMS: [&str; 5] = ["howard-exact", "karp", "lawler-exact", "burns-exact", "yto"];

/// Renders a deterministic `mcr-req v1` JSONL request log.
///
/// Line `i` (0-based) gets request id `i + 1`. The final two requests
/// of every batch of at least four are the deterministic failures: the
/// second-to-last carries `deadline_ms: 0`, the last a
/// `refine=1` budget with `fallback: "none"` on `lawler-exact`.
pub fn request_log(cfg: &RequestLogConfig) -> String {
    let mut rng = StdRng::seed_from_u64(cfg.rng_seed);
    // Instance pool: 3 mean instances + 1 ratio instance, small enough
    // that a full replay stays fast, rich enough to have real cycles.
    let pool: Vec<String> = (0..3)
        .map(|i| {
            let n = 8 + 4 * i;
            let g = sprand(
                &SprandConfig::new(n, 2 * n)
                    .seed(cfg.rng_seed.wrapping_add(i as u64))
                    .weight_range(1, 100),
            );
            dimacs(&g)
        })
        .collect();
    let ratio_instance = {
        let g = sprand(
            &SprandConfig::new(10, 20)
                .seed(cfg.rng_seed.wrapping_add(7))
                .weight_range(1, 50),
        );
        dimacs(&with_random_transits(&g, 1, 5, cfg.rng_seed.wrapping_add(7)))
    };
    let mut out = String::new();
    for i in 0..cfg.count {
        let id = (i + 1) as u64;
        let tail = cfg.count >= 4 && i + 2 >= cfg.count;
        let line = if tail && i + 2 == cfg.count {
            // Deterministic `cancelled` (code 4): expired on arrival.
            format!(
                "{{\"schema\":\"mcr-req v1\",\"id\":{id},\"op\":\"solve\",\
                 \"graph\":\"{}\",\"algorithm\":\"howard-exact\",\"deadline_ms\":0}}",
                escape(&pool[0])
            )
        } else if tail {
            // Deterministic `budget-exhausted` (code 2): one λ
            // refinement cannot converge, and fallbacks are off.
            format!(
                "{{\"schema\":\"mcr-req v1\",\"id\":{id},\"op\":\"solve\",\
                 \"graph\":\"{}\",\"algorithm\":\"lawler-exact\",\
                 \"budget\":\"refine=1\",\"fallback\":\"none\"}}",
                escape(&pool[1])
            )
        } else if i % 5 == 4 {
            // Ratio objective on the transit-decorated instance.
            format!(
                "{{\"schema\":\"mcr-req v1\",\"id\":{id},\"op\":\"solve\",\
                 \"graph\":\"{}\",\"algorithm\":\"{}\",\"objective\":\"ratio\"}}",
                escape(&ratio_instance),
                ["howard-exact", "burns-exact", "yto"][i % 3]
            )
        } else {
            // Mean requests over the shared pool: repeated graph text
            // (cache hits), rotating algorithms, occasional maximize
            // and explicit epsilon.
            let graph = &pool[rng.gen_range(0..pool.len())];
            let algorithm = ALGORITHMS[rng.gen_range(0..ALGORITHMS.len())];
            let maximize = rng.gen_range(0..4) == 0;
            let epsilon = rng.gen_range(0..3) == 0;
            let mut line = format!(
                "{{\"schema\":\"mcr-req v1\",\"id\":{id},\"op\":\"solve\",\
                 \"graph\":\"{}\",\"algorithm\":\"{algorithm}\"",
                escape(graph)
            );
            if maximize {
                line.push_str(",\"maximize\":true");
            }
            if epsilon {
                line.push_str(",\"epsilon\":1e-9");
            }
            line.push('}');
            line
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logs_are_deterministic_per_seed() {
        let a = request_log(&RequestLogConfig::new(12).seed(3));
        let b = request_log(&RequestLogConfig::new(12).seed(3));
        let c = request_log(&RequestLogConfig::new(12).seed(4));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.lines().count(), 12);
    }

    #[test]
    fn every_batch_has_the_deterministic_failures() {
        let log = request_log(&RequestLogConfig::new(8));
        let lines: Vec<&str> = log.lines().collect();
        assert!(lines[6].contains("\"deadline_ms\":0"));
        assert!(lines[7].contains("\"budget\":\"refine=1\""));
        assert!(lines[7].contains("\"fallback\":\"none\""));
    }

    #[test]
    fn ids_are_sequential_from_one() {
        let log = request_log(&RequestLogConfig::new(5));
        for (i, line) in log.lines().enumerate() {
            assert!(line.contains(&format!("\"id\":{}", i + 1)), "{line}");
        }
    }
}
