//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network and no registry cache, so the
//! workspace vendors a minimal clean-room implementation of the narrow
//! `rand 0.8` surface it actually uses:
//!
//! * [`rngs::StdRng`] — a deterministic 64-bit generator,
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen_range`] over integer `Range` / `RangeInclusive` bounds.
//!
//! The byte stream is NOT the upstream `StdRng` (ChaCha12) stream — it
//! is a SplitMix64-seeded xoshiro256**. Nothing in this workspace
//! depends on the exact stream, only on determinism: every generator
//! config is a pure function of its seed, which this crate guarantees.

/// Seeding interface: everything this workspace seeds comes from a
/// `u64` experiment seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling interface over integer ranges.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (`a..b` or `a..=b`). Panics on an
    /// empty range, like upstream.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

/// A primitive type that supports uniform sampling between two bounds.
///
/// Mirrors upstream's structure: `SampleRange` has blanket impls over
/// any `SampleUniform` element so integer-literal ranges unify with the
/// surrounding expression type instead of falling back to `i32`.
pub trait SampleUniform: Sized {
    fn sample_between<G: Rng + ?Sized>(rng: &mut G, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// A range type that can produce a uniform sample (`a..b`, `a..=b`).
pub trait SampleRange<T> {
    fn sample_single<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<G: Rng + ?Sized>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<G: Rng + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// Debiased bounded sample in `[0, span)` via Lemire-style widening
/// multiply with rejection.
fn bounded(rng: &mut (impl Rng + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    // Zone rejection keeps the distribution exactly uniform.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) <= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between<G: Rng + ?Sized>(
                rng: &mut G,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let width = (hi as $u).wrapping_sub(lo as $u);
                let span = if inclusive { width.wrapping_add(1) } else { width };
                if span == 0 {
                    // Inclusive range covering the full domain.
                    return rng.next_u64() as $t;
                }
                let off = bounded(rng, span as u64) as $u;
                (lo as $u).wrapping_add(off) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic standard generator: xoshiro256** seeded through
    /// SplitMix64 (the reference seeding procedure for the xoshiro
    /// family).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: i64 = rng.gen_range(-50..50);
            assert!((-50..50).contains(&x));
            let y: usize = rng.gen_range(0..17);
            assert!(y < 17);
            let z: i64 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn singleton_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            assert_eq!(rng.gen_range(5i64..=5), 5);
        }
    }
}
