//! The algorithm suite of the study, behind one uniform interface.
//!
//! Each algorithm is exposed as a variant of [`Algorithm`]; calling
//! [`Algorithm::solve`] runs it under the common per-SCC driver. The
//! modules also expose configurable entry points for the approximate
//! algorithms (`epsilon` precision).

pub(crate) mod burns;
pub(crate) mod dg;
pub(crate) mod ho;
pub(crate) mod howard;
pub(crate) mod karp;
pub(crate) mod karp2;
pub(crate) mod lawler;
pub(crate) mod megiddo;
pub(crate) mod oa1;
pub(crate) mod parametric;

use crate::driver::{solve_per_scc, solve_per_scc_opts, solve_value_per_scc_opts};
use crate::instrument::Counters;
use crate::options::SolveOptions;
use crate::rational::Ratio64;
use crate::solution::Solution;
use mcr_graph::Graph;
use parametric::HeapGranularity;

/// A minimum mean cycle algorithm from the study.
///
/// ```
/// use mcr_core::Algorithm;
/// use mcr_graph::graph::from_arc_list;
/// let g = from_arc_list(2, &[(0, 1, 1), (1, 0, 3)]);
/// for alg in Algorithm::ALL {
///     let sol = alg.solve(&g).expect("cyclic");
///     assert_eq!(sol.lambda, mcr_core::Ratio64::from(2), "{}", alg.name());
/// }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Burns' primal-dual algorithm (`f64` duals, as in the original
    /// study's implementation; the reported λ is the exact mean of the
    /// critical cycle found).
    Burns,
    /// Burns' primal-dual algorithm with exact rational duals
    /// (arithmetic-cost ablation of [`Algorithm::Burns`]).
    BurnsExact,
    /// Karp–Orlin parametric shortest paths, arc-keyed heap (exact).
    Ko,
    /// Young–Tarjan–Orlin parametric shortest paths, node-keyed heap
    /// (exact).
    Yto,
    /// Howard's policy iteration, the paper's Figure 1 (`f64`,
    /// ε-terminated; returns the exact mean of its final policy cycle).
    Howard,
    /// Howard's policy iteration with exact value determination.
    HowardExact,
    /// Hartmann–Orlin early termination over Karp's recurrence (exact).
    Ho,
    /// Karp's Θ(nm) dynamic program (exact).
    Karp,
    /// Space-efficient two-pass Karp (exact, Θ(n) space).
    Karp2,
    /// Dasdan–Gupta breadth-first unfolding (exact).
    Dg,
    /// Lawler's binary search (ε-approximate).
    Lawler,
    /// Lawler sharpened with an exact rational snap (exact).
    LawlerExact,
    /// Megiddo's parametric search: symbolic Bellman–Ford whose
    /// comparisons are resolved by negative-cycle oracle calls (exact).
    Megiddo,
    /// Orlin–Ahuja-style scaling / approximate binary search
    /// (ε-approximate).
    Oa1,
}

impl Algorithm {
    /// Every variant.
    pub const ALL: [Algorithm; 14] = [
        Algorithm::Burns,
        Algorithm::BurnsExact,
        Algorithm::Ko,
        Algorithm::Yto,
        Algorithm::Howard,
        Algorithm::HowardExact,
        Algorithm::Ho,
        Algorithm::Karp,
        Algorithm::Karp2,
        Algorithm::Dg,
        Algorithm::Lawler,
        Algorithm::LawlerExact,
        Algorithm::Megiddo,
        Algorithm::Oa1,
    ];

    /// The ten algorithms of Table 2, in the paper's column order.
    pub const TABLE2: [Algorithm; 10] = [
        Algorithm::Burns,
        Algorithm::Ko,
        Algorithm::Yto,
        Algorithm::Howard,
        Algorithm::Ho,
        Algorithm::Karp,
        Algorithm::Dg,
        Algorithm::Lawler,
        Algorithm::Karp2,
        Algorithm::Oa1,
    ];

    /// The paper's name for the algorithm.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Burns => "Burns",
            Algorithm::BurnsExact => "Burns-exact",
            Algorithm::Ko => "KO",
            Algorithm::Yto => "YTO",
            Algorithm::Howard => "Howard",
            Algorithm::HowardExact => "Howard-exact",
            Algorithm::Ho => "HO",
            Algorithm::Karp => "Karp",
            Algorithm::Karp2 => "Karp2",
            Algorithm::Dg => "DG",
            Algorithm::Lawler => "Lawler",
            Algorithm::LawlerExact => "Lawler-exact",
            Algorithm::Megiddo => "Megiddo",
            Algorithm::Oa1 => "OA1",
        }
    }

    /// Whether the variant only guarantees an ε-approximate optimum.
    pub fn is_approximate(self) -> bool {
        matches!(
            self,
            Algorithm::Howard | Algorithm::Lawler | Algorithm::Oa1
        )
    }

    /// Whether the variant needs `Θ(n²)` memory (the Karp table), the
    /// reason the paper reports `N/A` on its largest inputs.
    pub fn is_quadratic_space(self) -> bool {
        matches!(self, Algorithm::Karp | Algorithm::Dg | Algorithm::Ho)
    }

    /// Default precision for the approximate variants, scaled to the
    /// weight range of `g`.
    pub fn default_epsilon(g: &Graph) -> f64 {
        let hi = g.max_weight().unwrap_or(1) as f64;
        let lo = g.min_weight().unwrap_or(0) as f64;
        ((hi - lo).abs().max(1.0)) * 1e-6
    }

    /// Computes the minimum cycle mean of `g` with this algorithm, or
    /// `None` if `g` is acyclic. Approximate variants use
    /// [`Algorithm::default_epsilon`].
    pub fn solve(self, g: &Graph) -> Option<Solution> {
        self.solve_with_epsilon(g, Self::default_epsilon(g))
    }

    /// Like [`Algorithm::solve`] with an explicit precision for the
    /// approximate variants (exact variants ignore it).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon <= 0` for an approximate variant.
    pub fn solve_with_epsilon(self, g: &Graph, epsilon: f64) -> Option<Solution> {
        let opts = SolveOptions {
            threads: 1,
            epsilon: Some(epsilon),
        };
        self.solve_with_options(g, &opts)
    }

    /// Like [`Algorithm::solve`] with explicit [`SolveOptions`]: thread
    /// count for the per-SCC driver and precision for the approximate
    /// variants. Results are bit-identical for every thread count (see
    /// [`SolveOptions::threads`]).
    ///
    /// # Panics
    ///
    /// Panics if `opts.epsilon` is `Some(e)` with `e <= 0` for an
    /// approximate variant.
    pub fn solve_with_options(self, g: &Graph, opts: &SolveOptions) -> Option<Solution> {
        let epsilon = opts.epsilon.unwrap_or_else(|| Self::default_epsilon(g));
        match self {
            Algorithm::Burns => solve_per_scc_opts(g, opts, |s, c, _ws| burns::solve_scc_f64(s, c)),
            Algorithm::BurnsExact => {
                solve_per_scc_opts(g, opts, |s, c, _ws| burns::solve_scc(s, c))
            }
            Algorithm::Ko => solve_per_scc_opts(g, opts, |s, c, _ws| {
                parametric::solve_scc(s, c, HeapGranularity::PerArc)
            }),
            Algorithm::Yto => solve_per_scc_opts(g, opts, |s, c, _ws| {
                parametric::solve_scc(s, c, HeapGranularity::PerNode)
            }),
            Algorithm::Howard => {
                solve_per_scc_opts(g, opts, |s, c, ws| howard::solve_scc_fig1(s, c, epsilon, ws))
            }
            Algorithm::HowardExact => solve_per_scc_opts(g, opts, howard::solve_scc_exact),
            Algorithm::Ho => solve_per_scc_opts(g, opts, ho::solve_scc),
            Algorithm::Karp => solve_per_scc_opts(g, opts, karp::solve_scc),
            Algorithm::Karp2 => solve_per_scc_opts(g, opts, karp2::solve_scc),
            Algorithm::Dg => solve_per_scc_opts(g, opts, dg::solve_scc),
            Algorithm::Lawler => {
                solve_per_scc_opts(g, opts, |s, c, ws| lawler::solve_scc_eps(s, c, epsilon, ws))
            }
            Algorithm::LawlerExact => solve_per_scc_opts(g, opts, lawler::solve_scc_exact),
            Algorithm::Megiddo => solve_per_scc_opts(g, opts, |s, c, _ws| megiddo::solve_scc(s, c)),
            Algorithm::Oa1 => {
                solve_per_scc_opts(g, opts, |s, c, ws| oa1::solve_scc(s, c, epsilon, ws))
            }
        }
    }
}

impl Algorithm {
    /// Computes λ* without extracting a witness cycle — the exact
    /// measurement protocol of the original study, which timed "each
    /// algorithm in the context of computing λ* only". For the Karp
    /// family this skips the Bellman–Ford witness extraction; every
    /// other algorithm produces its witness as a byproduct, so this is
    /// equivalent to [`Algorithm::solve`] for them.
    pub fn solve_lambda_only(self, g: &Graph) -> Option<(Ratio64, Counters)> {
        self.solve_lambda_only_opts(g, &SolveOptions::default())
    }

    /// [`Algorithm::solve_lambda_only`] with explicit [`SolveOptions`].
    pub fn solve_lambda_only_opts(
        self,
        g: &Graph,
        opts: &SolveOptions,
    ) -> Option<(Ratio64, Counters)> {
        match self {
            Algorithm::Karp => solve_value_per_scc_opts(g, opts, |s, c, _ws| karp::lambda_scc(s, c)),
            Algorithm::Karp2 => {
                solve_value_per_scc_opts(g, opts, |s, c, _ws| karp2::lambda_scc(s, c))
            }
            Algorithm::Dg => solve_value_per_scc_opts(g, opts, |s, c, _ws| dg::lambda_scc(s, c)),
            Algorithm::Ho => solve_value_per_scc_opts(g, opts, |s, c, _ws| ho::lambda_scc(s, c)),
            other => other
                .solve_with_options(g, opts)
                .map(|s| (s.lambda, s.counters)),
        }
    }
}

/// Ablation entry point: the parametric algorithms (KO / YTO) with a
/// configurable priority queue. The study inherited LEDA's Fibonacci
/// heap for both; this lets benches quantify that choice against a
/// plain indexed binary heap.
pub fn parametric_with_heap(g: &Graph, node_keyed: bool, fibonacci: bool) -> Option<Solution> {
    use mcr_graph::heap::{FibonacciHeap, IndexedBinaryHeap};
    let granularity = if node_keyed {
        HeapGranularity::PerNode
    } else {
        HeapGranularity::PerArc
    };
    if fibonacci {
        solve_per_scc(g, move |s, c, _ws| {
            parametric::solve_scc_with::<FibonacciHeap<Ratio64>>(s, c, granularity)
        })
    } else {
        solve_per_scc(g, move |s, c, _ws| {
            parametric::solve_scc_with::<IndexedBinaryHeap<Ratio64>>(s, c, granularity)
        })
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::Ratio64;
    use mcr_graph::graph::from_arc_list;

    #[test]
    fn all_algorithms_agree_on_multi_scc_graph() {
        let g = from_arc_list(
            5,
            &[(0, 1, 5), (1, 0, 5), (1, 2, 1), (2, 3, 1), (3, 4, 2), (4, 2, 3)],
        );
        for alg in Algorithm::ALL {
            let sol = alg.solve(&g).expect("cyclic");
            assert_eq!(sol.lambda, Ratio64::from(2), "{}", alg.name());
            assert!(crate::solution::check_cycle(&g, &sol.cycle).is_ok());
        }
    }

    #[test]
    fn acyclic_is_none_for_all() {
        let g = from_arc_list(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 1)]);
        for alg in Algorithm::ALL {
            assert!(alg.solve(&g).is_none(), "{}", alg.name());
        }
    }

    #[test]
    fn empty_graph_is_none() {
        let g = from_arc_list(0, &[]);
        for alg in Algorithm::ALL {
            assert!(alg.solve(&g).is_none(), "{}", alg.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Algorithm::ALL.len());
    }

    #[test]
    fn table2_selection_matches_paper_columns() {
        let names: Vec<&str> = Algorithm::TABLE2.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            ["Burns", "KO", "YTO", "Howard", "HO", "Karp", "DG", "Lawler", "Karp2", "OA1"]
        );
    }

    #[test]
    fn threads_do_not_change_any_algorithm() {
        let g = from_arc_list(
            7,
            &[
                (0, 1, 5),
                (1, 0, 5),
                (1, 2, 1),
                (2, 3, 1),
                (3, 4, 2),
                (4, 2, 3),
                (5, 6, 7),
                (6, 5, 1),
            ],
        );
        for alg in Algorithm::ALL {
            let seq = alg.solve(&g).expect("cyclic");
            let par = alg
                .solve_with_options(&g, &SolveOptions::new().threads(4))
                .expect("cyclic");
            assert_eq!(par.lambda, seq.lambda, "{}", alg.name());
            assert_eq!(par.cycle, seq.cycle, "{}", alg.name());
            assert_eq!(par.guarantee, seq.guarantee, "{}", alg.name());
            assert_eq!(par.counters, seq.counters, "{}", alg.name());
        }
    }

    #[test]
    fn exactness_flags() {
        assert!(Algorithm::Howard.is_approximate());
        assert!(!Algorithm::HowardExact.is_approximate());
        assert!(Algorithm::Karp.is_quadratic_space());
        assert!(!Algorithm::Karp2.is_quadratic_space());
    }
}
