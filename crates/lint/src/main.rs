//! CLI for the workspace contract checker.
//!
//! ```text
//! cargo run -p mcr-lint            # human-readable diagnostics
//! cargo run -p mcr-lint -- --json  # machine-readable, for CI
//! cargo run -p mcr-lint -- --root /path/to/workspace
//! ```
//!
//! Exit codes: 0 = clean (allowlisted findings are reported but do not
//! fail the gate), 1 = at least one non-allowlisted violation,
//! 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: mcr-lint [--json] [--root <workspace>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(default_root);

    let report = match mcr_lint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", mcr_lint::to_json(&report));
    } else {
        for d in &report.diagnostics {
            let status = if d.allowed { " (allowed)" } else { "" };
            println!("{}:{}: {}{} {}", d.file, d.line, d.rule, status, d.message);
        }
        println!(
            "mcr-lint: {} files scanned, {} violations, {} allowlisted",
            report.files_scanned,
            report.violation_count(),
            report.suppressed_count()
        );
    }

    if report.violation_count() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// The workspace root: the current directory if it has a `crates/`
/// tree, otherwise two levels above this crate's manifest (so
/// `cargo run -p mcr-lint` works from any subdirectory).
fn default_root() -> PathBuf {
    let cwd = PathBuf::from(".");
    if cwd.join("crates").is_dir() {
        return cwd;
    }
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(ws) = p.ancestors().nth(2) {
            return ws.to_path_buf();
        }
    }
    cwd
}
