//! The symbol-graph rules MCRL010–014, built on the engine layers
//! (lexer → scan → brace tree → symbol index).
//!
//! These rules protect the repo's two load-bearing contracts
//! structurally, before any golden test runs:
//!
//! * **MCRL010 `nondet`** — no order-unstable containers, wall-clock
//!   reads, or thread-id reads in ordering-sensitive scopes. The
//!   determinism guarantee (bit-identical results at any thread count)
//!   dies quietly when a `HashMap` iteration order reaches an output.
//! * **MCRL011 `wire-schema`** — every JSON field-name literal written
//!   or parsed for a versioned wire format must be declared in its
//!   committed `schemas/<format>.txt` manifest, and every manifest
//!   entry must still be produced or parsed somewhere. Adding a field
//!   without touching the manifest (and so the version review) is a
//!   lint error.
//! * **MCRL012 `phase-purity`** — phase-A closures handed to
//!   `fill_candidates` must not mutate captured non-local state; all
//!   commits go through the output slice, all observables fold at the
//!   chunk-ordered commit point.
//! * **MCRL013 `status-map`** — every `SolveStatus` variant appears in
//!   the exit-code map, the wire-name table, `from_code`,
//!   `is_retryable`, and `ALL`; a new variant cannot ship half-mapped.
//! * **MCRL014 `lock-order`** — nested `Mutex` acquisitions in
//!   `crates/serve` follow the single declared order, checked through
//!   one level of interprocedural closure over the crate's call graph.

use crate::index::{self, Workspace};
use crate::rules::Diagnostic;
use crate::scan::{Scanned, TokKind, Token};
use crate::tree::{matching, FnItem};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;

fn diag(
    out: &mut Vec<Diagnostic>,
    s: &Scanned,
    rule: &'static str,
    tag: &str,
    file: &str,
    line: u32,
    message: String,
) {
    out.push(Diagnostic {
        rule,
        file: file.to_string(),
        line,
        message,
        allowed: s.is_allowed(tag, line),
    });
}

// ---------------------------------------------------------------------
// MCRL010: determinism scopes.
// ---------------------------------------------------------------------

/// Ordering-sensitive scope for order-unstable containers and thread-id
/// reads: everything whose iteration or identity could reach a wire
/// frame, a journal line, a trace event, or a solver output.
/// `cache.rs` is excluded deliberately — the graph cache is keyed
/// lookup only, with eviction ordered by its own `VecDeque`.
fn in_nondet_scope(rel: &str) -> bool {
    (rel.starts_with("crates/serve/src/") && rel != "crates/serve/src/cache.rs")
        || rel.starts_with("crates/obs/src/")
        || rel == "crates/core/src/driver.rs"
        || rel == "crates/core/src/solution.rs"
}

/// The narrower wall-clock scope: emitters and formats that must be
/// reproducible byte-for-byte. The daemon/client files are *not* here:
/// deadlines and backoff legitimately read `Instant::now`.
const WALL_SCOPE: [&str; 5] = [
    "crates/core/src/driver.rs",
    "crates/core/src/solution.rs",
    "crates/serve/src/protocol.rs",
    "crates/serve/src/metrics.rs",
    "crates/serve/src/journal.rs",
];

fn in_wall_scope(rel: &str) -> bool {
    rel.starts_with("crates/obs/src/") || WALL_SCOPE.contains(&rel)
}

/// MCRL010: no `HashMap`/`HashSet`, `Instant::now`/`SystemTime::now`,
/// or thread-id reads in ordering-sensitive scopes.
pub fn check_nondet(file: &str, s: &Scanned, out: &mut Vec<Diagnostic>) {
    let toks = &s.tokens;
    let container = in_nondet_scope(file);
    let wall = in_wall_scope(file);
    let mut seen_lines: BTreeSet<(u32, &str)> = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || s.is_test_line(t.line) {
            continue;
        }
        let follows = |k: usize, text: &str| toks.get(i + k).is_some_and(|n| n.text == text);
        match t.text.as_str() {
            name @ ("HashMap" | "HashSet") if container => {
                if seen_lines.insert((t.line, "container")) {
                    diag(
                        out,
                        s,
                        "MCRL010",
                        "nondet",
                        file,
                        t.line,
                        format!(
                            "order-unstable `{name}` in an ordering-sensitive scope; \
                             use BTreeMap/BTreeSet or sort at the commit point"
                        ),
                    );
                }
            }
            name @ ("Instant" | "SystemTime")
                if wall && follows(1, "::") && follows(2, "now") =>
            {
                if seen_lines.insert((t.line, "wall")) {
                    diag(
                        out,
                        s,
                        "MCRL010",
                        "nondet",
                        file,
                        t.line,
                        format!(
                            "`{name}::now()` in a reproducible-output scope; \
                             thread timestamps through the caller or normalize them"
                        ),
                    );
                }
            }
            "thread" if container && follows(1, "::") && follows(2, "current") => {
                if seen_lines.insert((t.line, "thread")) {
                    diag(
                        out,
                        s,
                        "MCRL010",
                        "nondet",
                        file,
                        t.line,
                        "`thread::current()` identity read in an ordering-sensitive scope"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// MCRL011: wire-format schema manifests.
// ---------------------------------------------------------------------

/// The six versioned wire formats. A manifest file in `schemas/` that
/// names anything else is itself a violation.
pub const KNOWN_FORMATS: [&str; 6] = [
    "mcr-req-v1",
    "mcr-resp-v1",
    "mcr-trace-v1",
    "mcr-metrics-v1",
    "mcr-checkpoint-v1",
    "mcr-edits-v1",
];

/// Which formats a file writes/parses: every JSON field-name literal in
/// the file must belong to one of its formats' manifests.
const WIRE_FIELD_SCOPE: &[(&str, &[&str])] = &[
    (
        "crates/serve/src/protocol.rs",
        &["mcr-req-v1", "mcr-resp-v1", "mcr-edits-v1"],
    ),
    (
        "crates/serve/src/client.rs",
        &["mcr-req-v1", "mcr-resp-v1", "mcr-metrics-v1"],
    ),
    ("crates/serve/src/metrics.rs", &["mcr-metrics-v1"]),
    ("crates/obs/src/lib.rs", &["mcr-trace-v1", "mcr-metrics-v1"]),
];

/// Where each manifest entry must still be visible as a string literal
/// (whole value or quoted/word occurrence) — the liveness direction,
/// catching stale manifest entries and renamed fields. The checkpoint
/// format is text, not JSON, so only this direction applies to it.
const WIRE_PRESENCE: &[(&str, &[&str])] = &[
    ("mcr-req-v1", &["crates/serve/src/protocol.rs"]),
    ("mcr-resp-v1", &["crates/serve/src/protocol.rs"]),
    (
        "mcr-trace-v1",
        &["crates/obs/src/lib.rs", "crates/core/src/obs.rs"],
    ),
    (
        "mcr-metrics-v1",
        &["crates/serve/src/metrics.rs", "crates/obs/src/lib.rs"],
    ),
    ("mcr-checkpoint-v1", &["crates/core/src/checkpoint.rs"]),
    (
        "mcr-edits-v1",
        &[
            "crates/core/src/edits.rs",
            "crates/gen/src/edits.rs",
            "crates/serve/src/protocol.rs",
        ],
    ),
];

/// The writer/parser methods whose first string-literal argument is a
/// JSON field name (the hand-rolled `ObjWriter` and `json::Value`
/// surfaces).
const FIELD_METHODS: [&str; 6] = ["str", "u64", "f64", "bool", "raw", "get"];

/// One parsed manifest: `schemas/<format>.txt`, one field per line.
pub struct WireManifest {
    pub format: String,
    /// Workspace-relative manifest path.
    pub file: String,
    /// (field, 1-based manifest line).
    pub entries: Vec<(String, u32)>,
}

/// Loads every `schemas/*.txt` manifest under `root`.
pub fn load_manifests(root: &Path) -> Result<Vec<WireManifest>, String> {
    let dir = root.join("schemas");
    let mut names: Vec<String> = fs::read_dir(&dir)
        .map_err(|e| format!("failed to list {}: {e}", dir.display()))?
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".txt"))
        .collect();
    names.sort();
    let mut manifests = Vec::new();
    for name in names {
        let path = dir.join(&name);
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("failed to read {}: {e}", path.display()))?;
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            entries.push((line.to_string(), idx as u32 + 1));
        }
        manifests.push(WireManifest {
            format: name.trim_end_matches(".txt").to_string(),
            file: format!("schemas/{name}"),
            entries,
        });
    }
    Ok(manifests)
}

/// Whether a source literal "mentions" a manifest entry: the whole
/// value, or a word inside a larger literal (covers `"job {} ..."`
/// format strings and `,"dedup":true` splices).
fn literal_mentions(value: &str, entry: &str) -> bool {
    value == entry
        || value
            .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '-'))
            .any(|w| w == entry)
}

/// MCRL011, per-file direction: every field-name literal handed to a
/// writer/parser method must be declared in one of the file's format
/// manifests.
pub fn check_wire_fields(
    file: &str,
    s: &Scanned,
    manifests: &[WireManifest],
    out: &mut Vec<Diagnostic>,
) {
    let Some((_, formats)) = WIRE_FIELD_SCOPE.iter().find(|(f, _)| *f == file) else {
        return;
    };
    let declared: BTreeSet<&str> = manifests
        .iter()
        .filter(|m| formats.contains(&m.format.as_str()))
        .flat_map(|m| m.entries.iter().map(|(e, _)| e.as_str()))
        .collect();
    let toks = &s.tokens;
    let mut str_idx = 0usize;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Str {
            continue;
        }
        let idx = str_idx;
        str_idx += 1;
        // `.method("field", ...)` — the literal directly after the
        // opening paren of a field-taking method call.
        let is_field = i >= 3
            && toks[i - 1].text == "("
            && toks[i - 2].kind == TokKind::Ident
            && FIELD_METHODS.contains(&toks[i - 2].text.as_str())
            && toks[i - 3].text == ".";
        if !is_field || s.is_test_line(t.line) {
            continue;
        }
        let Some(lit) = s.strings.get(idx) else {
            continue;
        };
        if !declared.contains(lit.value.as_str()) {
            diag(
                out,
                s,
                "MCRL011",
                "wire-schema",
                file,
                t.line,
                format!(
                    "JSON field `{}` is not declared in the {} manifest(s) under schemas/; \
                     declare it (and review the format version) or fix the name",
                    lit.value,
                    formats.join("/")
                ),
            );
        }
    }
}

/// MCRL011, manifest direction: unknown manifest files, and entries no
/// longer visible in their format's producer/parser files.
pub fn check_wire_manifests(
    ws: &Workspace,
    manifests: &[WireManifest],
    out: &mut Vec<Diagnostic>,
) {
    for m in manifests {
        if !KNOWN_FORMATS.contains(&m.format.as_str()) {
            out.push(Diagnostic {
                rule: "MCRL011",
                file: m.file.clone(),
                line: 1,
                message: format!(
                    "`{}` does not name a known wire format (known: {})",
                    m.file,
                    KNOWN_FORMATS.join(", ")
                ),
                allowed: false,
            });
            continue;
        }
        let Some((_, files)) = WIRE_PRESENCE.iter().find(|(f, _)| *f == m.format) else {
            continue;
        };
        // Only check presence against files that exist in this
        // workspace (the fixture workspace carries a subset).
        let sources: Vec<&index::FileModel> =
            files.iter().filter_map(|f| ws.file(f)).collect();
        if sources.is_empty() {
            continue;
        }
        for (entry, line) in &m.entries {
            let alive = sources.iter().any(|f| {
                f.scanned
                    .strings
                    .iter()
                    .any(|lit| literal_mentions(&lit.value, entry))
            });
            if !alive {
                out.push(Diagnostic {
                    rule: "MCRL011",
                    file: m.file.clone(),
                    line: *line,
                    message: format!(
                        "manifest field `{entry}` of `{}` is no longer produced or parsed by {}; \
                         remove the stale entry or restore the field",
                        m.format,
                        files.join(", ")
                    ),
                    allowed: false,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// MCRL012: phase-purity of chunk-parallel kernels.
// ---------------------------------------------------------------------

/// MCRL012: the closure argument of every `fill_candidates` call must
/// only assign through its own locals (parameters, `let`s, `for`
/// patterns). Scope: `crates/core/src/` minus the sweep engine itself.
pub fn check_phase_purity(file: &str, s: &Scanned, out: &mut Vec<Diagnostic>) {
    let toks = &s.tokens;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if !(t.kind == TokKind::Ident && t.text == "fill_candidates")
            || !toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            i += 1;
            continue;
        }
        let Some(close) = matching(toks, i + 1, "(", ")") else {
            break;
        };
        check_kernel_closure(file, s, i + 2, close - 1, out);
        i = close + 1;
    }
}

/// Finds the closure inside a `fill_candidates` argument range and
/// checks its assignments.
fn check_kernel_closure(
    file: &str,
    s: &Scanned,
    args_start: usize,
    args_end: usize,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &s.tokens;
    let Some(popen) = (args_start..=args_end).find(|&k| toks[k].text == "|") else {
        return;
    };
    let Some(pclose) = (popen + 1..=args_end).find(|&k| toks[k].text == "|") else {
        return;
    };
    // Body: `{ ... }` or a bare expression running to the call's `)`.
    let (body_start, body_end) = match (pclose + 1..=args_end).find(|&k| toks[k].text != "") {
        Some(k) if toks[k].text == "{" => match matching(toks, k, "{", "}") {
            Some(c) => (k + 1, c.saturating_sub(1)),
            None => return,
        },
        Some(k) => (k, args_end),
        None => return,
    };
    if body_start > body_end {
        return;
    }
    let mut locals: BTreeSet<String> = BTreeSet::new();
    if pclose > popen + 1 {
        locals.extend(index::param_names(toks, popen + 1, pclose - 1));
    }
    locals.extend(index::local_bindings(toks, body_start, body_end));
    for k in body_start..=body_end {
        let op = toks[k].text.as_str();
        if !matches!(op, "=" | "+=" | "-=" | "*=" | "/=") || toks[k].kind != TokKind::Punct {
            continue;
        }
        if s.is_test_line(toks[k].line) {
            continue;
        }
        if op == "=" && stmt_is_let_binding(toks, body_start, k) {
            continue;
        }
        let Some(root) = assignment_root(toks, body_start, k) else {
            continue;
        };
        if !locals.contains(&toks[root].text) {
            diag(
                out,
                s,
                "MCRL012",
                "phase-purity",
                file,
                toks[k].line,
                format!(
                    "phase-A kernel closure mutates captured `{}`; write only through the \
                     output slice and fold observables at the chunk commit point",
                    toks[root].text
                ),
            );
        }
    }
}

/// Whether the statement containing the `=` at `op` starts with `let`
/// (i.e. the `=` is a binding initializer, not a mutation).
fn stmt_is_let_binding(toks: &[Token], lo: usize, op: usize) -> bool {
    let mut j = op;
    while j > lo {
        j -= 1;
        match toks[j].text.as_str() {
            ";" | "{" | "}" => return false,
            "let" if toks[j].kind == TokKind::Ident => return true,
            _ => {}
        }
    }
    false
}

/// The root identifier of the assignment target ending just before
/// `op`: walks the LHS expression backwards over field/index chains
/// (`counters.relax`, `out[j - start]`, `*c`) to its leftmost ident.
fn assignment_root(toks: &[Token], lo: usize, op: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut root: Option<usize> = None;
    let mut j = op;
    while j > lo {
        j -= 1;
        let t = &toks[j];
        match t.text.as_str() {
            "]" | ")" => depth += 1,
            "[" | "(" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            "." => {}
            _ if depth > 0 => {}
            _ if t.kind == TokKind::Ident => root = Some(j),
            _ if t.kind == TokKind::Int => {}
            _ => break,
        }
    }
    root
}

// ---------------------------------------------------------------------
// MCRL013: total SolveStatus maps.
// ---------------------------------------------------------------------

/// The file owning the status taxonomy, and the maps that must stay
/// total over its variants.
const STATUS_FILE: &str = "crates/core/src/status.rs";
const STATUS_MAPS: [(&str, &str); 4] = [
    ("code", "the CLI exit-code map"),
    ("from_code", "the exit-code decoder"),
    ("wire_name", "the wire status-string table"),
    ("is_retryable", "the retry classification"),
];

/// MCRL013: every `SolveStatus` variant appears in `ALL` and in each of
/// the four total maps. An `_` arm can still hide a variant from a
/// value table, so the rule demands the variant *name*, which is what
/// makes a half-mapped new variant impossible to commit.
pub fn check_status_map(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let Some(model) = ws.file(STATUS_FILE) else {
        return;
    };
    let s = &model.scanned;
    let toks = &s.tokens;
    let Some(en) = model.tree.enums.iter().find(|e| e.name == "SolveStatus") else {
        return;
    };
    let mut regions: Vec<(&str, &str, u32, usize, usize)> = Vec::new();
    for (name, what) in STATUS_MAPS {
        match model
            .tree
            .fns
            .iter()
            .find(|f| f.name == name && !f.is_test && f.body.is_some())
        {
            Some(f) => {
                let (bo, bc) = f.body.expect("checked above");
                regions.push((name, what, f.line, bo, bc));
            }
            None => diag(
                out,
                s,
                "MCRL013",
                "status-map",
                STATUS_FILE,
                en.line,
                format!("status.rs must define `{name}` ({what}) over SolveStatus"),
            ),
        }
    }
    // The `ALL` table: `const ALL: ... = [ ... ];`
    if let Some(k) = toks
        .iter()
        .position(|t| t.kind == TokKind::Ident && t.text == "ALL")
    {
        if let Some(open) = (k..toks.len()).find(|&j| toks[j].text == "[") {
            if let Some(close) = matching(toks, open, "[", "]") {
                // Skip the type position `[SolveStatus; n]`: take the
                // bracket group after the `=` if this one precedes it.
                let (open, close) = match (open..close).any(|j| toks[j].text == ";") {
                    true => {
                        let eq = (close..toks.len())
                            .find(|&j| toks[j].text == "=")
                            .unwrap_or(close);
                        let o2 = (eq..toks.len())
                            .find(|&j| toks[j].text == "[")
                            .unwrap_or(open);
                        (o2, matching(toks, o2, "[", "]").unwrap_or(close))
                    }
                    false => (open, close),
                };
                regions.push(("ALL", "the ALL listing", toks[k].line, open, close));
            }
        }
    }
    for (name, what, line, lo, hi) in regions {
        // A body that derives its answer from `ALL` (e.g. `from_code`
        // scanning `ALL` for a code match) is total by delegation: the
        // `ALL` listing itself is variant-checked above.
        if name != "ALL"
            && toks[lo..=hi]
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text == "ALL")
        {
            continue;
        }
        for variant in &en.variants {
            let present = toks[lo..=hi]
                .iter()
                .any(|t| t.kind == TokKind::Ident && &t.text == variant);
            if !present {
                diag(
                    out,
                    s,
                    "MCRL013",
                    "status-map",
                    STATUS_FILE,
                    line,
                    format!(
                        "SolveStatus variant `{variant}` is missing from `{name}` ({what}); \
                         every variant must be mapped explicitly"
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// MCRL014: declared lock order in crates/serve.
// ---------------------------------------------------------------------

/// The single declared acquisition order for the serve daemon's locks
/// (by field/binding name). A nested acquisition must move strictly
/// rightward in this list; acquiring the *same* name nested is a
/// self-deadlock and equally flagged.
///
/// * `queue`   — admission/dispatch queue (`Shared.queue`)
/// * `file`    — the journal's fsynced append handle (`Journal.file`)
/// * `settled` — the dedup log (`Shared.settled`)
/// * `inflight`— admitted-but-unsettled ids (`Shared.inflight`)
/// * `cache`   — the graph LRU (`Shared.cache`)
/// * `reply`   — a connection's write half (`ReplyHandle`)
pub const LOCK_ORDER: [&str; 6] = ["queue", "file", "settled", "inflight", "cache", "reply"];

fn lock_rank(name: &str) -> Option<usize> {
    LOCK_ORDER.iter().position(|&n| n == name)
}

/// A lock acquisition site inside a token range.
struct Acquire {
    /// Lock name: the last ident of `lock(&shared.X)` / the receiver of
    /// `X.lock()`.
    name: String,
    /// Token index of the acquisition.
    at: usize,
}

/// All acquisition sites in `[lo, hi]`. Both forms the crate uses:
/// the poison-tolerant helper `lock(&...)` and the raw `.lock()`.
fn acquisitions(toks: &[Token], lo: usize, hi: usize) -> Vec<Acquire> {
    let mut found = Vec::new();
    for i in lo..=hi {
        let t = &toks[i];
        if t.kind != TokKind::Ident || t.text != "lock" {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.text == "(") {
            continue;
        }
        let is_method = i > 0 && toks[i - 1].text == ".";
        let is_def = i > 0 && toks[i - 1].text == "fn";
        if is_def {
            continue;
        }
        let name = if is_method {
            // `X.lock()` — receiver ident just before the dot.
            (i >= 2 && toks[i - 2].kind == TokKind::Ident).then(|| toks[i - 2].text.clone())
        } else {
            // `lock(&shared.X)` — last ident of the argument.
            matching(toks, i + 1, "(", ")").and_then(|close| {
                toks[i + 2..close]
                    .iter()
                    .rev()
                    .find(|a| a.kind == TokKind::Ident)
                    .map(|a| a.text.clone())
            })
        };
        if let Some(name) = name {
            found.push(Acquire { name, at: i });
        }
    }
    found
}

/// The serve crate's lock-relevant call graph: which fn may acquire
/// which locks, transitively.
///
/// Functions are keyed by a qualified name (`Journal::append` for
/// methods, `send` for free fns), and call sites are resolved
/// *conservatively by shape*, never by bare name alone — a bare-name
/// scheme confuses `OpenOptions::append` with `Journal::append` and
/// `TcpStream::shutdown` with `ServerHandle::shutdown`, producing
/// unreviewable false inversions:
///
/// * `f(...)` resolves to the crate's free fn `f`, if one exists;
/// * `Type::m(...)` resolves to `Type::m` if that impl method exists;
/// * `self.m(...)` resolves within the calling method's own impl;
/// * `recv.m(...)` resolves to `Type::m` only when the receiver ident
///   is the snake_case of an impl type defining `m` (`journal.accept`
///   → `Journal::accept`; `listener.accept` resolves to nothing).
struct ServeGraph {
    /// Qualified fn name → every lock it may acquire, transitively.
    closure: BTreeMap<String, BTreeSet<String>>,
    /// Method name → impl owners defining it.
    methods: BTreeMap<String, BTreeSet<String>>,
    /// Free fn names.
    free: BTreeSet<String>,
}

fn qualify(owner: Option<&str>, name: &str) -> String {
    match owner {
        Some(o) => format!("{o}::{name}"),
        None => name.to_string(),
    }
}

/// `SettledLog` → `settled_log`, the receiver-name convention the
/// method resolution above keys on.
fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

impl ServeGraph {
    fn build(ws: &Workspace) -> ServeGraph {
        let mut graph = ServeGraph {
            closure: BTreeMap::new(),
            methods: BTreeMap::new(),
            free: BTreeSet::new(),
        };
        // Pass A: definitions, so call resolution knows every name.
        for f in ws.files.iter().filter(|f| f.rel.starts_with("crates/serve/src/")) {
            for item in &f.tree.fns {
                if item.is_test || item.name == "lock" {
                    continue;
                }
                match &item.owner {
                    Some(o) => {
                        graph
                            .methods
                            .entry(item.name.clone())
                            .or_default()
                            .insert(o.clone());
                    }
                    None => {
                        graph.free.insert(item.name.clone());
                    }
                }
            }
        }
        // Pass B: direct lock sets and resolved call edges.
        let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for f in ws.files.iter().filter(|f| f.rel.starts_with("crates/serve/src/")) {
            let toks = &f.scanned.tokens;
            for item in &f.tree.fns {
                if item.is_test || item.name == "lock" {
                    continue;
                }
                let Some((bo, bc)) = item.body else {
                    continue;
                };
                let key = qualify(item.owner.as_deref(), &item.name);
                let locks = graph.closure.entry(key.clone()).or_default();
                for a in acquisitions(toks, bo, bc) {
                    locks.insert(a.name);
                }
                let callees = calls.entry(key).or_default();
                for k in bo..=bc {
                    if let Some(callee) = graph.resolve_call(toks, k, item.owner.as_deref()) {
                        callees.insert(callee);
                    }
                }
            }
        }
        // Fixpoint over the call edges (the graph is tiny).
        loop {
            let mut changed = false;
            let snapshot = graph.closure.clone();
            for (name, callees) in &calls {
                for callee in callees {
                    if callee == name {
                        continue;
                    }
                    if let Some(extra) = snapshot.get(callee) {
                        let set = graph.closure.entry(name.clone()).or_default();
                        for l in extra {
                            changed |= set.insert(l.clone());
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        graph
    }

    /// Resolves the call site at token `k` (if it is one) to a
    /// qualified fn key, per the scheme documented on [`ServeGraph`].
    fn resolve_call(&self, toks: &[Token], k: usize, caller_owner: Option<&str>) -> Option<String> {
        let t = &toks[k];
        if t.kind != TokKind::Ident
            || t.text == "lock"
            || !toks.get(k + 1).is_some_and(|n| n.text == "(")
        {
            return None;
        }
        let name = t.text.as_str();
        let prev = k.checked_sub(1).map(|p| toks[p].text.as_str());
        match prev {
            Some(".") => {
                let recv = toks.get(k.wrapping_sub(2)).filter(|r| r.kind == TokKind::Ident)?;
                if recv.text == "self" {
                    let owner = caller_owner?;
                    self.methods
                        .get(name)
                        .is_some_and(|o| o.contains(owner))
                        .then(|| qualify(Some(owner), name))
                } else {
                    let owners = self.methods.get(name)?;
                    owners
                        .iter()
                        .find(|o| snake_case(o) == recv.text)
                        .map(|o| qualify(Some(o), name))
                }
            }
            Some("::") => {
                let qual = toks.get(k.wrapping_sub(2)).filter(|q| q.kind == TokKind::Ident)?;
                self.methods
                    .get(name)
                    .is_some_and(|o| o.contains(&qual.text))
                    .then(|| qualify(Some(&qual.text), name))
            }
            Some("fn") => None,
            _ => self.free.contains(name).then(|| name.to_string()),
        }
    }
}

/// A lock guard modeled as live during the nesting walk.
struct LiveGuard {
    name: String,
    /// `let` binding name, for `drop(x)` tracking; `None` = statement
    /// temporary.
    binding: Option<String>,
    /// Brace depth at acquisition.
    depth: usize,
}

/// MCRL014: walks every serve `fn` body, modeling guard lifetimes
/// (`let` guards to `drop`/block end, temporaries to statement end with
/// `if let` scrutinee extension) and flags nested acquisitions — direct
/// or one call level deep — that do not move strictly rightward in
/// [`LOCK_ORDER`].
pub fn check_lock_order(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let graph = ServeGraph::build(ws);
    for f in ws.files.iter().filter(|f| f.rel.starts_with("crates/serve/src/")) {
        let s = &f.scanned;
        let toks = &s.tokens;
        for item in &f.tree.fns {
            if item.is_test || item.name == "lock" {
                continue;
            }
            let Some((bo, bc)) = item.body else {
                continue;
            };
            walk_fn_locks(&f.rel, s, toks, item, bo, bc, &graph, out);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn walk_fn_locks(
    file: &str,
    s: &Scanned,
    toks: &[Token],
    item: &FnItem,
    bo: usize,
    bc: usize,
    graph: &ServeGraph,
    out: &mut Vec<Diagnostic>,
) {
    let acquires = acquisitions(toks, bo, bc);
    let mut acq_at: BTreeMap<usize, &Acquire> = BTreeMap::new();
    for a in &acquires {
        acq_at.insert(a.at, a);
    }
    let mut live: Vec<LiveGuard> = Vec::new();
    let mut depth = 0usize;
    let mut pending_let: Option<String> = None;
    let mut flagged_lines: BTreeSet<u32> = BTreeSet::new();
    // Nested fns are walked by their own iteration; skip their bodies
    // here so a parent's guards aren't blamed for a child's locks.
    let mut skip_until = 0usize;
    let mut k = bo;
    while k <= bc {
        if k < skip_until {
            k += 1;
            continue;
        }
        let t = &toks[k];
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                live.retain(|g| {
                    if g.binding.is_some() {
                        g.depth <= depth
                    } else {
                        g.depth < depth
                    }
                });
            }
            ";" => {
                live.retain(|g| g.binding.is_some() || g.depth != depth);
                pending_let = None;
            }
            "let" if t.kind == TokKind::Ident => {
                // An `if let`/`while let` scrutinee is a *temporary*
                // (extended to the block's end by the `}` rule below),
                // not a named guard binding.
                let scrutinee = k > bo
                    && toks[k - 1].kind == TokKind::Ident
                    && matches!(toks[k - 1].text.as_str(), "if" | "while");
                pending_let = (!scrutinee)
                    .then(|| {
                        toks[k + 1..=bc.min(k + 6)]
                            .iter()
                            .find(|n| n.kind == TokKind::Ident && n.text != "mut")
                            .map(|n| n.text.clone())
                    })
                    .flatten();
            }
            "fn" if t.kind == TokKind::Ident && k > bo => {
                // A nested fn item: skip to past its body.
                if let Some(nested) = (k..bc).find(|&j| toks[j].text == "{") {
                    if let Some(close) = matching(toks, nested, "{", "}") {
                        skip_until = close + 1;
                    }
                }
            }
            "drop" if t.kind == TokKind::Ident => {
                if toks.get(k + 1).is_some_and(|n| n.text == "(") {
                    if let Some(arg) = toks.get(k + 2).filter(|a| a.kind == TokKind::Ident) {
                        live.retain(|g| g.binding.as_deref() != Some(arg.text.as_str()));
                    }
                }
            }
            _ => {}
        }
        if let Some(a) = acq_at.get(&k) {
            for g in &live {
                report_nesting(
                    file, s, item, &g.name, &a.name, None, toks[k].line, &mut flagged_lines, out,
                );
            }
            live.push(LiveGuard {
                name: a.name.clone(),
                binding: pending_let.clone(),
                depth,
            });
        } else if !live.is_empty() && t.text != "drop" {
            // A call while holding locks: fold in the callee's
            // transitive lock set.
            if let Some(callee) =
                graph.resolve_call(toks, k, item.owner.as_deref())
            {
                if let Some(callee_locks) = graph.closure.get(&callee) {
                    for lock_name in callee_locks {
                        for g in &live {
                            report_nesting(
                                file,
                                s,
                                item,
                                &g.name,
                                lock_name,
                                Some(&callee),
                                t.line,
                                &mut flagged_lines,
                                out,
                            );
                        }
                    }
                }
            }
        }
        k += 1;
    }
}

#[allow(clippy::too_many_arguments)]
fn report_nesting(
    file: &str,
    s: &Scanned,
    item: &FnItem,
    held: &str,
    taken: &str,
    via: Option<&str>,
    line: u32,
    flagged_lines: &mut BTreeSet<u32>,
    out: &mut Vec<Diagnostic>,
) {
    let violation = match (lock_rank(held), lock_rank(taken)) {
        (Some(h), Some(t)) => t <= h,
        // A nesting involving a lock outside the declared order is
        // unreviewable — declare it or restructure.
        _ => true,
    };
    if !violation || !flagged_lines.insert(line) {
        return;
    }
    let via = via.map(|c| format!(" via `{c}()`")).unwrap_or_default();
    diag(
        out,
        s,
        "MCRL014",
        "lock-order",
        file,
        line,
        format!(
            "`{}` acquires `{taken}`{via} while holding `{held}`, violating the declared \
             lock order ({})",
            item.name,
            LOCK_ORDER.join(" → ")
        ),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::FileModel;

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: files
                .iter()
                .map(|(rel, src)| FileModel::new(rel.to_string(), src))
                .collect(),
        }
    }

    fn run_nondet(rel: &str, src: &str) -> Vec<(u32, bool)> {
        let m = FileModel::new(rel.to_string(), src);
        let mut out = Vec::new();
        check_nondet(&m.rel, &m.scanned, &mut out);
        out.iter().map(|d| (d.line, d.allowed)).collect()
    }

    #[test]
    fn nondet_flags_containers_in_scope_only() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u64, u64> = HashMap::new(); }\n";
        assert_eq!(run_nondet("crates/serve/src/server.rs", src), [(1, false), (2, false)]);
        // cache.rs is the documented exclusion; out-of-scope crates too.
        assert!(run_nondet("crates/serve/src/cache.rs", src).is_empty());
        assert!(run_nondet("crates/graph/src/lib.rs", src).is_empty());
    }

    #[test]
    fn nondet_wall_clock_scope_is_narrower() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(run_nondet("crates/obs/src/lib.rs", src), [(1, false)]);
        // The daemon legitimately reads the clock for deadlines.
        assert!(run_nondet("crates/serve/src/server.rs", src).is_empty());
    }

    #[test]
    fn nondet_honors_allows_and_test_code() {
        let src = "// lint: allow(nondet) reason=wall anchor normalized on render\n\
                   fn f() { let t = Instant::now(); }\n\
                   #[cfg(test)]\nmod t { fn g() { let t = Instant::now(); } }\n";
        assert_eq!(run_nondet("crates/obs/src/lib.rs", src), [(2, true)]);
    }

    #[test]
    fn phase_purity_flags_captured_mutation_only() {
        let src = "fn kernel(cand: &mut [usize], counters: &mut C) {\n\
                   let mut local_total = 0;\n\
                   fill_candidates(cand, 8, 2, &|start, out: &mut [usize]| {\n\
                   let mut best = 0;\n\
                   for (j, c) in out.iter_mut().enumerate() {\n\
                   best += j;\n\
                   *c = start + best;\n\
                   counters.relaxations += 1;\n\
                   local_total += 1;\n\
                   }\n\
                   });\n\
                   }\n";
        let m = FileModel::new("crates/core/src/kernel.rs".to_string(), src);
        let mut out = Vec::new();
        check_phase_purity(&m.rel, &m.scanned, &mut out);
        let lines: Vec<u32> = out.iter().map(|d| d.line).collect();
        // `counters` (line 8) and `local_total` (line 9) are captured;
        // `best`, `c` are closure-local.
        assert_eq!(lines, [8, 9]);
    }

    #[test]
    fn status_map_requires_every_variant_in_every_table() {
        let src = "pub enum SolveStatus { Ok, Failed }\n\
                   impl SolveStatus {\n\
                   pub const ALL: [SolveStatus; 2] = [SolveStatus::Ok, SolveStatus::Failed];\n\
                   pub fn code(self) -> u8 { match self { SolveStatus::Ok => 0, SolveStatus::Failed => 1 } }\n\
                   pub fn from_code(c: u8) -> Option<SolveStatus> { match c { 0 => Some(SolveStatus::Ok), 1 => Some(SolveStatus::Failed), _ => None } }\n\
                   pub fn wire_name(self) -> &'static str { match self { SolveStatus::Ok => \"ok\", _ => \"failed\" } }\n\
                   pub fn is_retryable(self) -> bool { match self { SolveStatus::Ok => false, SolveStatus::Failed => true } }\n\
                   }\n";
        let ws = ws_of(&[("crates/core/src/status.rs", src)]);
        let mut out = Vec::new();
        check_status_map(&ws, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 6); // wire_name hides Failed behind `_`
        assert!(out[0].message.contains("`Failed`"));
        assert!(out[0].message.contains("wire_name"));
    }

    const LOCK_PRELUDE: &str = "fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {\n\
        m.lock().unwrap_or_else(PoisonError::into_inner)\n}\n";

    #[test]
    fn lock_order_flags_inversion_and_accepts_declared_order() {
        let src = format!(
            "{LOCK_PRELUDE}\
             fn good(shared: &Shared) {{\n\
             let mut q = lock(&shared.queue);\n\
             lock(&shared.inflight).insert(1);\n\
             drop(q);\n\
             lock(&shared.settled).insert(2);\n\
             }}\n\
             fn bad(shared: &Shared) {{\n\
             let mut inflight = lock(&shared.inflight);\n\
             lock(&shared.queue).push_back(1);\n\
             }}\n"
        );
        let ws = ws_of(&[("crates/serve/src/server.rs", &src)]);
        let mut out = Vec::new();
        check_lock_order(&ws, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 12);
        assert!(out[0].message.contains("`bad` acquires `queue`"));
    }

    #[test]
    fn lock_order_sees_through_one_call_level() {
        let src = format!(
            "{LOCK_PRELUDE}\
             fn append(j: &Journal) {{\n\
             let mut file = j.file.lock();\n\
             }}\n\
             fn admit(shared: &Shared) {{\n\
             let mut settled = lock(&shared.settled);\n\
             append(&shared.journal);\n\
             }}\n"
        );
        let ws = ws_of(&[("crates/serve/src/server.rs", &src)]);
        let mut out = Vec::new();
        check_lock_order(&ws, &mut out);
        // settled (rank 2) → file (rank 1) via append() is an inversion.
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 9);
        assert!(out[0].message.contains("via `append()`"));
    }

    #[test]
    fn lock_order_temporaries_die_at_statement_end() {
        let src = format!(
            "{LOCK_PRELUDE}\
             fn sequential(shared: &Shared) {{\n\
             lock(&shared.inflight).insert(1);\n\
             lock(&shared.queue).push_back(2);\n\
             }}\n"
        );
        let ws = ws_of(&[("crates/serve/src/server.rs", &src)]);
        let mut out = Vec::new();
        check_lock_order(&ws, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lock_order_if_let_scrutinee_guard_spans_the_block() {
        // The scrutinee temporary lives through the if-let block
        // (Rust's temporary extension), so a nested acquisition inside
        // the block is checked — and conforms here (settled → reply).
        let src = format!(
            "{LOCK_PRELUDE}\
             fn send(reply: &ReplyHandle) {{\n\
             let mut w = lock(reply);\n\
             }}\n\
             fn dedup(shared: &Shared, reply: &ReplyHandle) {{\n\
             if let Some(hit) = lock(&shared.settled).get(7) {{\n\
             send(reply);\n\
             }}\n\
             lock(&shared.queue).push_back(7);\n\
             }}\n"
        );
        let ws = ws_of(&[("crates/serve/src/server.rs", &src)]);
        let mut out = Vec::new();
        check_lock_order(&ws, &mut out);
        // send-while-settled conforms; the queue acquisition afterwards
        // must NOT be blamed on the dead scrutinee guard.
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn wire_fields_must_be_declared() {
        let m = FileModel::new(
            "crates/serve/src/metrics.rs".to_string(),
            "fn render(o: &mut ObjWriter) { o.str(\"kind\", \"m\"); o.u64(\"bogus\", 1); }",
        );
        let manifests = vec![WireManifest {
            format: "mcr-metrics-v1".to_string(),
            file: "schemas/mcr-metrics-v1.txt".to_string(),
            entries: vec![("kind".to_string(), 1)],
        }];
        let mut out = Vec::new();
        check_wire_fields(&m.rel, &m.scanned, &manifests, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`bogus`"));
    }

    #[test]
    fn stale_manifest_entries_are_flagged() {
        let ws = ws_of(&[(
            "crates/serve/src/protocol.rs",
            "fn f(o: &mut ObjWriter) { o.str(\"status\", \"ok\"); }",
        )]);
        let manifests = vec![WireManifest {
            format: "mcr-resp-v1".to_string(),
            file: "schemas/mcr-resp-v1.txt".to_string(),
            entries: vec![("status".to_string(), 1), ("ghost".to_string(), 2)],
        }];
        let mut out = Vec::new();
        check_wire_manifests(&ws, &manifests, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!((out[0].file.as_str(), out[0].line), ("schemas/mcr-resp-v1.txt", 2));
        assert!(out[0].message.contains("`ghost`"));
    }

    #[test]
    fn unknown_manifest_files_are_flagged() {
        let ws = ws_of(&[]);
        let manifests = vec![WireManifest {
            format: "mcr-mystery-v9".to_string(),
            file: "schemas/mcr-mystery-v9.txt".to_string(),
            entries: vec![],
        }];
        let mut out = Vec::new();
        check_wire_manifests(&ws, &manifests, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("known wire format"));
    }
}
