//! SARIF output guard: the fixture workspace's report must serialize to
//! syntactically valid JSON carrying the SARIF 2.1.0 envelope fields
//! that code-scanning upload endpoints require. The checker below is a
//! minimal JSON syntax validator (no dependencies), enough to catch an
//! unescaped quote or trailing comma in the hand-rolled writer.

use std::path::PathBuf;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

/// Validates JSON syntax; returns the rest of the input after one value.
fn json_value(s: &[u8]) -> Result<&[u8], String> {
    let s = skip_ws(s);
    match s.first() {
        Some(b'{') => json_seq(&s[1..], b'}', |s| {
            let s = json_string(skip_ws(s))?;
            let s = skip_ws(s);
            match s.first() {
                Some(b':') => json_value(&s[1..]),
                other => Err(format!("expected ':', got {other:?}")),
            }
        }),
        Some(b'[') => json_seq(&s[1..], b']', json_value),
        Some(b'"') => json_string(s),
        Some(b't') => expect(s, b"true"),
        Some(b'f') => expect(s, b"false"),
        Some(b'n') => expect(s, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let end = s[1..]
                .iter()
                .position(|c| !matches!(c, b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-'))
                .map(|i| i + 1)
                .unwrap_or(s.len());
            Ok(&s[end..])
        }
        other => Err(format!("unexpected {other:?}")),
    }
}

fn json_seq<'a>(
    mut s: &'a [u8],
    close: u8,
    item: impl Fn(&'a [u8]) -> Result<&'a [u8], String>,
) -> Result<&'a [u8], String> {
    s = skip_ws(s);
    if s.first() == Some(&close) {
        return Ok(&s[1..]);
    }
    loop {
        s = skip_ws(item(s)?);
        match s.first() {
            Some(b',') => s = skip_ws(&s[1..]),
            Some(c) if *c == close => return Ok(&s[1..]),
            other => return Err(format!("expected ',' or close, got {other:?}")),
        }
    }
}

fn json_string(s: &[u8]) -> Result<&[u8], String> {
    if s.first() != Some(&b'"') {
        return Err("expected string".into());
    }
    let mut i = 1;
    while i < s.len() {
        match s[i] {
            b'\\' => i += 2,
            b'"' => return Ok(&s[i + 1..]),
            _ => i += 1,
        }
    }
    Err("unterminated string".into())
}

fn expect<'a>(s: &'a [u8], word: &[u8]) -> Result<&'a [u8], String> {
    s.strip_prefix(word)
        .ok_or_else(|| format!("expected {}", String::from_utf8_lossy(word)))
}

fn skip_ws(s: &[u8]) -> &[u8] {
    let n = s
        .iter()
        .position(|c| !c.is_ascii_whitespace())
        .unwrap_or(s.len());
    &s[n..]
}

fn assert_valid_json(text: &str) {
    let rest = json_value(text.as_bytes()).unwrap_or_else(|e| panic!("invalid JSON: {e}"));
    assert!(
        skip_ws(rest).is_empty(),
        "trailing garbage after JSON value: {:?}",
        String::from_utf8_lossy(&rest[..rest.len().min(40)])
    );
}

#[test]
fn sarif_output_is_valid_json_with_the_required_envelope() {
    let report = mcr_lint::run_workspace(&fixture_root()).expect("fixture run");
    let sarif = mcr_lint::sarif::to_sarif(&report);
    assert_valid_json(&sarif);
    for needle in [
        "\"version\":\"2.1.0\"",
        "sarif-2.1.0.json",
        "\"name\":\"mcr-lint\"",
        "\"ruleIndex\":",
        "%SRCROOT%",
    ] {
        assert!(sarif.contains(needle), "missing {needle} in SARIF:\n{sarif}");
    }
    // Every fixture diagnostic surfaces as a result with its rule id,
    // and allowlisted ones carry an inSource suppression.
    assert!(sarif.contains("\"ruleId\":\"MCRL014\""));
    assert!(sarif.contains("\"kind\":\"inSource\""));
    // All fifteen rules are declared in the driver's rule table.
    for i in 0..15 {
        assert!(
            sarif.contains(&format!("\"id\":\"MCRL{i:03}\"")),
            "rule MCRL{i:03} missing from the SARIF rules table"
        );
    }
}

#[test]
fn json_report_is_valid_json_and_names_suppressions() {
    let report = mcr_lint::run_workspace(&fixture_root()).expect("fixture run");
    let json = mcr_lint::to_json(&report);
    assert_valid_json(&json);
    // The suppression inventory names each allowlisted finding's rule
    // and site — not just a count (the count-only shape was a bug).
    assert!(json.contains(
        "{\"rule\":\"MCRL014\",\"file\":\"crates/serve/src/locks_bad.rs\",\"line\":9,\"source\":\"allow\"}"
    ));
}
