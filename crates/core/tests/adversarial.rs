//! Adversarial and structured instances chosen to stress specific
//! algorithms: parity-constrained walks (Karp's ±∞ handling), pivot
//! cascades (KO/YTO), near-degenerate cycle means (Lawler's snap),
//! policy oscillation bait (Howard), and weight extremes.

use mcr_core::reference::brute_force_min_mean;
use mcr_core::solution::check_cycle;
use mcr_core::{Algorithm, Ratio64};
use mcr_gen::structured;
use mcr_graph::graph::from_arc_list;
use mcr_graph::{Graph, GraphBuilder, NodeId};

fn assert_exact_algorithms(g: &Graph, expected: Ratio64, label: &str) {
    for alg in Algorithm::ALL {
        if alg.is_approximate() {
            continue;
        }
        let sol = alg.solve(g).expect("cyclic");
        assert_eq!(sol.lambda, expected, "{label}: {}", alg.name());
        let (w, len, _) = check_cycle(g, &sol.cycle).expect("valid witness");
        assert_eq!(Ratio64::new(w, len as i64), expected, "{label}: {} witness", alg.name());
    }
}

#[test]
fn parity_trap_even_cycles_only() {
    // Bipartite-style graph: every cycle has even length, so D_n(v) is
    // infinite for half the (k, v) pairs — stresses Karp's ±∞ handling.
    let g = from_arc_list(
        6,
        &[
            (0, 1, 3),
            (1, 0, 5), // mean 4
            (1, 2, 1),
            (2, 3, 1),
            (3, 4, 1),
            (4, 5, 1),
            (5, 2, 1), // 4-cycle 2-3-4-5 mean 1
            (5, 0, 9),
        ],
    );
    let (expected, _) = brute_force_min_mean(&g).unwrap();
    assert_eq!(expected, Ratio64::from(1));
    assert_exact_algorithms(&g, expected, "parity");
}

#[test]
fn pivot_cascade_ladder() {
    // The shortcut ladder forces long chains of parametric pivots with
    // large moved subtrees. The ladder has ~Fib(n) simple cycles, so
    // brute force is only usable for small n; larger sizes are checked
    // against Karp.
    for n in [8usize, 17, 40, 81] {
        let g = structured::shortcut_ladder(n);
        let expected = if n <= 20 {
            brute_force_min_mean(&g).unwrap().0
        } else {
            Algorithm::Karp.solve(&g).unwrap().lambda
        };
        for alg in [Algorithm::Ko, Algorithm::Yto, Algorithm::HowardExact, Algorithm::Burns] {
            assert_eq!(
                alg.solve(&g).unwrap().lambda,
                expected,
                "ladder {n}: {}",
                alg.name()
            );
        }
    }
}

#[test]
fn nearly_equal_cycle_means() {
    // Two long cycles whose means differ by 1/(n(n-1)) — the resolution
    // limit that Lawler's exact snap must still separate.
    let n = 24usize;
    let mut b = GraphBuilder::new();
    let v = b.add_nodes(2 * n);
    // Cycle A: n arcs of weight 7 -> mean 7.
    for i in 0..n {
        b.add_arc(v[i], v[(i + 1) % n], 7);
    }
    // Cycle B: n arcs summing to 7n - 1 -> mean 7 - 1/n.
    for i in 0..n {
        let w = if i == 0 { 6 } else { 7 };
        b.add_arc(v[n + i], v[n + (i + 1) % n], w);
    }
    // One-way bridge keeps it a single graph.
    b.add_arc(v[0], v[n], 100);
    let g = b.build();
    let expected = Ratio64::new(7 * n as i64 - 1, n as i64);
    assert_exact_algorithms(&g, expected, "near-equal");
    // Approximate algorithms with a tight epsilon must separate them too.
    for alg in [Algorithm::Lawler, Algorithm::Howard] {
        let sol = alg.solve_with_epsilon(&g, 1e-9).unwrap();
        assert_eq!(sol.lambda, expected, "{}", alg.name());
    }
}

#[test]
fn howard_policy_bait() {
    // Many equal-mean policy cycles plus one slightly better cycle
    // hidden behind larger per-arc weights — policy iteration must not
    // stop at a local pattern.
    let mut b = GraphBuilder::new();
    let hub = b.add_node();
    let mut arcs = 0;
    for _ in 0..10 {
        let x = b.add_node();
        let y = b.add_node();
        b.add_arc(hub, x, 5);
        b.add_arc(x, y, 5);
        b.add_arc(y, hub, 5);
        arcs += 3;
    }
    // The better cycle: 10-10-10-...-(-21): mean slightly below 5.
    let chain: Vec<NodeId> = (0..4).map(|_| b.add_node()).collect();
    b.add_arc(hub, chain[0], 10);
    for i in 0..3 {
        b.add_arc(chain[i], chain[i + 1], 10);
    }
    b.add_arc(chain[3], hub, -21);
    arcs += 5;
    let g = b.build();
    assert_eq!(g.num_arcs(), arcs);
    let (expected, _) = brute_force_min_mean(&g).unwrap();
    assert_eq!(expected, Ratio64::new(19, 5));
    assert_exact_algorithms(&g, expected, "howard-bait");
}

#[test]
fn weights_at_scale_boundaries() {
    // Mixed huge positive/negative weights near the i64-scaled comfort
    // zone; exactness must survive the i128 intermediates.
    let big = 4_000_000_000i64;
    let g = from_arc_list(
        4,
        &[
            (0, 1, big),
            (1, 0, -big + 3),
            (1, 2, big - 1),
            (2, 3, -big),
            (3, 1, 2),
        ],
    );
    let (expected, _) = brute_force_min_mean(&g).unwrap();
    assert_exact_algorithms(&g, expected, "big-weights");
}

#[test]
fn dense_tournament() {
    // Complete digraph with asymmetric weights — maximal cycle count,
    // the worst case for policy enumeration and HO's cycle scans.
    let n = 14;
    let g = structured::complete(n, |u, v| {
        ((u as i64 * 37 + v as i64 * 101) % 19) - 9
    });
    let karp = Algorithm::Karp.solve(&g).unwrap().lambda;
    assert_exact_algorithms(&g, karp, "tournament");
}

#[test]
fn single_arc_cycles_dominate() {
    // Self-loops everywhere; the best cycle is a self-loop, which every
    // algorithm must find without tripping on length-1 cycles.
    let mut arcs: Vec<(usize, usize, i64)> = (0..10).map(|i| (i, (i + 1) % 10, 50)).collect();
    for i in 0..10 {
        arcs.push((i, i, 20 + i as i64));
    }
    let g = from_arc_list(10, &arcs);
    assert_exact_algorithms(&g, Ratio64::from(20), "self-loops");
}

#[test]
fn zero_mean_cycles() {
    // λ* = 0 exactly: tests sign handling around the origin.
    let g = from_arc_list(3, &[(0, 1, 4), (1, 2, -3), (2, 0, -1), (0, 2, 2), (2, 1, 5)]);
    let (expected, _) = brute_force_min_mean(&g).unwrap();
    assert_eq!(expected, Ratio64::ZERO);
    assert_exact_algorithms(&g, expected, "zero-mean");
}

#[test]
fn long_thin_ring_with_distant_shortcut() {
    // Exercises deep subtree moves in KO/YTO and long reverse-BFS
    // chains in Howard.
    let n = 400usize;
    let mut arcs: Vec<(usize, usize, i64)> = (0..n).map(|i| (i, (i + 1) % n, 10)).collect();
    arcs.push((n - 1, n / 2, 10));
    arcs.push((n / 2, 0, 9)); // shortcut creating the slightly better cycle
    let g = from_arc_list(n, &arcs);
    let yto = Algorithm::Yto.solve(&g).unwrap().lambda;
    let howard = Algorithm::HowardExact.solve(&g).unwrap().lambda;
    let lawler = Algorithm::LawlerExact.solve(&g).unwrap().lambda;
    assert_eq!(yto, howard);
    assert_eq!(yto, lawler);
    assert!(yto < Ratio64::from(10));
}
