//! The register-graph reduction for cost-to-time ratio problems
//! (Ito & Parhi, Table 1 row 15: `O(Tm + T³)`).
//!
//! In a circuit-flavored MCR instance, transit times count *registers*
//! on arcs and zero-transit arcs are combinational logic. Instead of
//! expanding arcs into unit chains (which keeps all `n` logic nodes),
//! the Ito–Parhi route collapses the combinational logic away: build a
//! graph whose nodes are the `T` registers themselves, with an arc
//! between two registers weighted by the best (minimum, for MCRP)
//! combinational path between them. Cycle ratios are preserved — a
//! register cycle's weight is the real cycle's weight and its length is
//! the real cycle's register count — so any minimum *mean* cycle
//! algorithm on the register graph solves the original ratio problem.
//! When `T ≪ n` (heavily combinational circuits) this is dramatically
//! smaller than the instance itself: with Karp as the inner solver the
//! total cost is `O(Tm)` for the reduction plus `O(T³)` for the solve —
//! exactly the bound the paper lists.

use crate::algorithms::Algorithm;
use crate::instrument::Counters;
use crate::solution::Solution;
use mcr_graph::{ArcId, Graph, GraphBuilder, NodeId};

const INF: i64 = i64::MAX / 4;

/// A register slot: the `slot`-th register on arc `arc`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Slot {
    arc: ArcId,
    slot: i64,
}

/// The register graph of `g`, plus the bookkeeping needed to map
/// results back.
struct RegisterGraph {
    graph: Graph,
    /// Per register-graph node, the original slot.
    slots: Vec<Slot>,
    /// Per register-graph arc: the original register-bearing arc it
    /// *enters* (`None` for intra-arc slot chains) — used to rebuild
    /// witness cycles.
    enters: Vec<Option<ArcId>>,
}

/// Shortest combinational distances (over zero-transit arcs only) from
/// `start` to every node, with parent arcs for path recovery.
///
/// The zero-transit subgraph is acyclic (otherwise ratios are
/// undefined), so a Bellman–Ford over it converges in at most `n`
/// rounds; we keep it simple rather than topologically sorting.
fn comb_shortest(g: &Graph, start: NodeId, counters: &mut Counters) -> (Vec<i64>, Vec<Option<ArcId>>) {
    let n = g.num_nodes();
    let mut dist = vec![INF; n];
    let mut parent = vec![None; n];
    dist[start.index()] = 0;
    for _ in 0..=n {
        let mut changed = false;
        for e in g.arc_ids() {
            if g.transit(e) != 0 {
                continue;
            }
            counters.relaxations += 1;
            let u = g.source(e).index();
            if dist[u] >= INF {
                continue;
            }
            let cand = dist[u] + g.weight(e);
            let v = g.target(e).index();
            if cand < dist[v] {
                dist[v] = cand;
                parent[v] = Some(e);
                changed = true;
            }
        }
        if !changed {
            return (dist, parent);
        }
    }
    panic!("zero-transit cycle: the cycle ratio is undefined");
}

fn build(g: &Graph, counters: &mut Counters) -> Option<RegisterGraph> {
    // Enumerate register slots.
    let mut slots = Vec::new();
    let mut first_slot_of_arc = vec![usize::MAX; g.num_arcs()];
    for e in g.arc_ids() {
        for s in 0..g.transit(e) {
            if s == 0 {
                first_slot_of_arc[e.index()] = slots.len();
            }
            slots.push(Slot { arc: e, slot: s });
        }
    }
    if slots.is_empty() {
        return None; // no registers at all: acyclic or invalid
    }
    let t_total = slots.len();
    let mut b = GraphBuilder::with_capacity(t_total, t_total * 2);
    b.add_nodes(t_total);
    let mut enters = Vec::new();

    // Intra-arc chains: consecutive slots on the same arc, zero weight.
    for (i, s) in slots.iter().enumerate() {
        if s.slot + 1 < g.transit(s.arc) {
            b.add_arc(NodeId::new(i), NodeId::new(i + 1), 0);
            enters.push(None);
        }
    }

    // Exits: from each arc's last slot, through the combinational
    // subgraph, into the first slot of the next register-bearing arc.
    // Weight convention: w(f) is incurred when entering f's first slot,
    // so a register cycle's weight equals the real cycle's weight.
    for (i, s) in slots.iter().enumerate() {
        if s.slot + 1 != g.transit(s.arc) {
            continue; // not the last slot of its arc
        }
        let exit_node = g.target(s.arc);
        let (dist, _) = comb_shortest(g, exit_node, counters);
        for f in g.arc_ids() {
            if g.transit(f) == 0 {
                continue;
            }
            let du = dist[g.source(f).index()];
            if du >= INF {
                continue;
            }
            b.add_arc(
                NodeId::new(i),
                NodeId::new(first_slot_of_arc[f.index()]),
                du + g.weight(f),
            );
            enters.push(Some(f));
        }
    }

    Some(RegisterGraph {
        graph: b.build(),
        slots,
        enters,
    })
}

/// Minimum cycle ratio via the register graph, solved with `algorithm`
/// (Karp gives the paper's `O(Tm + T³)`).
///
/// Returns `None` for an acyclic input and for inputs with a
/// zero-transit cycle (where the cycle ratio is undefined).
pub fn minimum_ratio_via_registers(g: &Graph, algorithm: Algorithm) -> Option<Solution> {
    if crate::ratio::has_zero_transit_cycle(g) {
        return None;
    }
    let mut counters = Counters::new();
    let rg = build(g, &mut counters)?;
    let inner = algorithm.solve(&rg.graph)?;
    counters += inner.counters;

    // Map the witness back: each register-graph arc entering arc `f`
    // contributes the combinational path to `f` plus `f` itself;
    // intra-arc chain arcs contribute nothing new.
    let mut cycle: Vec<ArcId> = Vec::new();
    for &ra in &inner.cycle {
        let f = match rg.enters[ra.index()] {
            None => continue,
            Some(f) => f,
        };
        let from_slot = rg.slots[rg.graph.source(ra).index()];
        let exit_node = g.target(from_slot.arc);
        // Recover the combinational path exit_node ⇝ source(f).
        let (dist, parent) = comb_shortest(g, exit_node, &mut counters);
        debug_assert!(dist[g.source(f).index()] < INF);
        let mut path = Vec::new();
        let mut v = g.source(f);
        while v != exit_node {
            let e = parent[v.index()].expect("path recovered");
            path.push(e);
            v = g.source(e);
        }
        path.reverse();
        cycle.extend(path);
        cycle.push(f);
    }
    // Rotate so consecutive arcs connect (the register cycle may start
    // mid-pattern).
    if cycle.len() > 1 {
        let misfit = (0..cycle.len())
            .find(|&i| {
                let prev = cycle[(i + cycle.len() - 1) % cycle.len()];
                g.target(prev) != g.source(cycle[i])
            })
            .unwrap_or(0);
        cycle.rotate_left(misfit);
    }
    debug_assert!(crate::solution::check_cycle(g, &cycle).is_ok());
    Some(Solution {
        lambda: inner.lambda,
        cycle,
        guarantee: inner.guarantee,
        solved_by: inner.solved_by,
        counters,
    })
}

/// The number of register slots `T` of an instance — the parameter in
/// the pseudo-polynomial bounds of the paper's Table 1.
pub fn register_count(g: &Graph) -> i64 {
    g.arc_ids().map(|a| g.transit(a)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::Ratio64;
    use crate::reference::brute_force_min_ratio;
    use crate::solution::check_cycle;

    /// A circuit-ish instance: mostly combinational arcs, few
    /// registers. Zero-transit arcs only ever point from a lower to a
    /// higher node index, so they cannot form a zero-transit cycle.
    fn circuitish(seed: u64) -> Graph {
        use mcr_gen::sprand::{sprand, SprandConfig};
        let g = sprand(&SprandConfig::new(10, 26).seed(seed).weight_range(-15, 15));
        let mut b = GraphBuilder::with_capacity(g.num_nodes(), g.num_arcs());
        b.add_nodes(g.num_nodes());
        for a in g.arc_ids() {
            let t = if a.index() < 10 {
                1 + (a.index() as i64 % 2) // ring arcs carry registers
            } else if g.source(a) < g.target(a) {
                0 // forward logic arc
            } else {
                1
            };
            b.add_arc_with_transit(g.source(a), g.target(a), g.weight(a), t);
        }
        b.build()
    }

    #[test]
    fn matches_brute_force_on_circuitish_instances() {
        for seed in 0..25 {
            let g = circuitish(seed);
            let (expected, _) = brute_force_min_ratio(&g).expect("cyclic");
            let sol =
                minimum_ratio_via_registers(&g, Algorithm::Karp).expect("cyclic");
            assert_eq!(sol.lambda, expected, "seed {seed}");
            let (w, _, t) = check_cycle(&g, &sol.cycle).expect("valid witness");
            assert_eq!(Ratio64::new(w, t), expected, "witness seed {seed}");
        }
    }

    #[test]
    fn agrees_with_expansion_and_howard() {
        for seed in 0..10 {
            let g = circuitish(seed + 100);
            let via_registers = minimum_ratio_via_registers(&g, Algorithm::Karp2)
                .expect("cyclic")
                .lambda;
            let howard = crate::ratio::howard_ratio_exact(&g).expect("cyclic").lambda;
            assert_eq!(via_registers, howard, "seed {seed}");
        }
    }

    #[test]
    fn register_graph_is_smaller_than_expansion() {
        let g = circuitish(7);
        let t = register_count(&g);
        assert!(t < g.num_arcs() as i64 * 2);
        let mut c = Counters::new();
        let rg = build(&g, &mut c).expect("has registers");
        assert_eq!(rg.graph.num_nodes(), t as usize);
    }

    #[test]
    fn pure_register_ring() {
        // All arcs carry registers; the register graph is the line
        // graph of the ring.
        let mut b = GraphBuilder::new();
        let v = b.add_nodes(3);
        b.add_arc_with_transit(v[0], v[1], 4, 1);
        b.add_arc_with_transit(v[1], v[2], 5, 2);
        b.add_arc_with_transit(v[2], v[0], 6, 1);
        let g = b.build();
        let sol = minimum_ratio_via_registers(&g, Algorithm::HowardExact).expect("cyclic");
        assert_eq!(sol.lambda, Ratio64::new(15, 4));
        let (w, _, t) = check_cycle(&g, &sol.cycle).expect("valid");
        assert_eq!(Ratio64::new(w, t), Ratio64::new(15, 4));
    }

    #[test]
    fn no_registers_returns_none() {
        let mut b = GraphBuilder::new();
        let v = b.add_nodes(2);
        b.add_arc_with_transit(v[0], v[1], 1, 0);
        let g = b.build();
        assert!(minimum_ratio_via_registers(&g, Algorithm::Karp).is_none());
    }

    #[test]
    fn zero_transit_cycle_is_rejected_without_panicking() {
        let mut b = GraphBuilder::new();
        let v = b.add_nodes(2);
        b.add_arc_with_transit(v[0], v[1], 1, 0);
        b.add_arc_with_transit(v[1], v[0], 1, 0);
        b.add_arc_with_transit(v[0], v[0], 5, 1);
        let g = b.build();
        assert!(minimum_ratio_via_registers(&g, Algorithm::Karp).is_none());
    }

    use mcr_graph::GraphBuilder;
}
