//! Indexed binary min-heap with decrease-key by item index.

use super::{AddressableHeap, HeapCounters};
use crate::compact::idx32;

const ABSENT: u32 = u32::MAX;

/// A classic array-based binary min-heap over items `0..capacity`, with
/// an item→position index enabling `decrease_key` and `remove` in
/// `O(log n)`.
///
/// ```
/// use mcr_graph::heap::{AddressableHeap, IndexedBinaryHeap};
/// let mut h = IndexedBinaryHeap::with_capacity(4);
/// h.push(0, 7i64);
/// h.push(2, 3);
/// h.decrease_key(0, 1);
/// assert_eq!(h.pop_min(), Some((0, 1)));
/// ```
#[derive(Clone, Debug)]
pub struct IndexedBinaryHeap<K> {
    // heap[i] = (item, key); pos[item] = index into heap or ABSENT.
    heap: Vec<(u32, K)>,
    pos: Vec<u32>,
    counters: HeapCounters,
}

impl<K: PartialOrd + Clone> IndexedBinaryHeap<K> {
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].1 < self.heap[parent].1 {
                self.swap_entries(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < self.heap.len() && self.heap[l].1 < self.heap[smallest].1 {
                smallest = l;
            }
            if r < self.heap.len() && self.heap[r].1 < self.heap[smallest].1 {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.swap_entries(i, smallest);
            i = smallest;
        }
    }

    fn swap_entries(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i].0 as usize] = idx32(i);
        self.pos[self.heap[j].0 as usize] = idx32(j);
    }

    fn remove_at(&mut self, i: usize) -> (u32, K) {
        let last = self.heap.len() - 1;
        self.swap_entries(i, last);
        let (item, key) = self.heap.pop().expect("nonempty");
        self.pos[item as usize] = ABSENT;
        if i < self.heap.len() {
            self.sift_up(i);
            self.sift_down(i);
        }
        (item, key)
    }
}

impl<K: PartialOrd + Clone> AddressableHeap<K> for IndexedBinaryHeap<K> {
    fn with_capacity(capacity: usize) -> Self {
        IndexedBinaryHeap {
            heap: Vec::with_capacity(capacity),
            pos: vec![ABSENT; capacity],
            counters: HeapCounters::default(),
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn contains(&self, item: usize) -> bool {
        item < self.pos.len() && self.pos[item] != ABSENT
    }

    fn key(&self, item: usize) -> Option<&K> {
        if self.contains(item) {
            Some(&self.heap[self.pos[item] as usize].1)
        } else {
            None
        }
    }

    fn push(&mut self, item: usize, key: K) {
        assert!(item < self.pos.len(), "item out of capacity");
        assert!(!self.contains(item), "item already in heap");
        self.counters.inserts += 1;
        self.pos[item] = idx32(self.heap.len());
        self.heap.push((idx32(item), key));
        self.sift_up(self.heap.len() - 1);
    }

    fn decrease_key(&mut self, item: usize, key: K) {
        assert!(self.contains(item), "decrease_key on absent item");
        let i = self.pos[item] as usize;
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // keys are never NaN here
        let not_increasing = !(self.heap[i].1 < key);
        assert!(not_increasing, "decrease_key must not increase the key");
        self.counters.decrease_keys += 1;
        self.heap[i].1 = key;
        self.sift_up(i);
    }

    fn pop_min(&mut self) -> Option<(usize, K)> {
        if self.heap.is_empty() {
            return None;
        }
        crate::chaos::pulse("graph.heap.binary.pop");
        self.counters.delete_mins += 1;
        let (item, key) = self.remove_at(0);
        Some((item as usize, key))
    }

    fn remove(&mut self, item: usize) -> Option<K> {
        if !self.contains(item) {
            return None;
        }
        self.counters.removals += 1;
        let i = self.pos[item] as usize;
        let (_, key) = self.remove_at(i);
        Some(key)
    }

    fn counters(&self) -> HeapCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_property_holds_after_mixed_ops() {
        let mut h = IndexedBinaryHeap::with_capacity(32);
        for i in 0..32 {
            h.push(i, (31 - i) as i64);
        }
        for i in (0..32).step_by(2) {
            h.decrease_key(i, -(i as i64));
        }
        // Internal invariant: parent <= child.
        for i in 1..h.heap.len() {
            let parent = (i - 1) / 2;
            assert!(h.heap[parent].1 <= h.heap[i].1);
        }
        let mut last = i64::MIN;
        while let Some((_, k)) = h.pop_min() {
            assert!(k >= last);
            last = k;
        }
    }

    #[test]
    #[should_panic(expected = "already in heap")]
    fn double_push_panics() {
        let mut h = IndexedBinaryHeap::with_capacity(2);
        h.push(0, 1i64);
        h.push(0, 2);
    }

    #[test]
    #[should_panic(expected = "must not increase")]
    fn increasing_decrease_key_panics() {
        let mut h = IndexedBinaryHeap::with_capacity(2);
        h.push(0, 1i64);
        h.decrease_key(0, 5);
    }
}
