//! Shared Bellman–Ford oracle on the λ-shifted graph `G_λ`.
//!
//! Several algorithms in the study (Lawler, OA1, and the critical
//! subgraph extraction every Karp-family algorithm uses for witness
//! cycles) need the primitive "does `G_λ` contain a negative cycle, and
//! if not, give me shortest-path potentials". To keep everything exact,
//! arc costs are scaled integers: for `λ = p/q` and transit times `t`,
//! the scaled cost of arc `e` is `w(e)·q − p·t(e)` (an `i128`), which is
//! `q` times the real cost `w(e) − λ·t(e)`. With unit transit times this
//! is the cycle *mean* shift; with general transit times it is the cycle
//! *ratio* shift.

use crate::budget::BudgetScope;
use crate::error::SolveError;
use crate::instrument::Counters;
use crate::rational::Ratio64;
use crate::sweep::SweepConfig;
use crate::workspace::Workspace;
use mcr_graph::idx32;
use mcr_graph::{ArcId, Graph};

/// Outcome of a negative-cycle test on `G_λ`.
#[derive(Clone, Debug)]
pub enum CycleCheck {
    /// No (strictly) negative cycle: `G_λ` admits the returned
    /// shortest-path potentials `d`, satisfying
    /// `d[v] ≤ d[u] + cost(u→v)` for every arc (costs scaled by
    /// `lambda.denom()`).
    Feasible(Vec<i128>),
    /// A witness cycle with negative (or, in non-strict mode,
    /// non-positive) total scaled cost, in traversal order.
    NegativeCycle(Vec<ArcId>),
}

/// Scaled arc costs of `G_λ`: `w(e)·q − p·t(e)` for `λ = p/q`.
pub fn scaled_costs(g: &Graph, lambda: Ratio64) -> Vec<i128> {
    let mut out = Vec::new();
    scaled_costs_into(g, lambda, &mut out);
    out
}

/// [`scaled_costs`] into a reusable buffer.
pub(crate) fn scaled_costs_into(g: &Graph, lambda: Ratio64, out: &mut Vec<i128>) {
    let p = lambda.numer() as i128;
    let q = lambda.denom() as i128;
    out.clear();
    out.extend(
        g.arc_ids()
            .map(|a| g.weight(a) as i128 * q - p * g.transit(a) as i128),
    );
}

/// Runs Bellman–Ford over integer costs `cost` (indexed by arc), from an
/// implicit super-source connected to every node with cost 0.
///
/// In strict mode a cycle is reported only if its total cost is
/// negative; in non-strict mode cycles with total cost zero are also
/// reported (used to extract a witness cycle at `λ = λ*`, where minimum
/// mean cycles have scaled cost exactly zero).
///
/// # Panics
///
/// Panics if `cost.len() != g.num_arcs()`.
pub fn bellman_ford(g: &Graph, cost: &[i128], strict: bool, counters: &mut Counters) -> CycleCheck {
    assert_eq!(cost.len(), g.num_arcs());
    counters.oracle_calls += 1;
    if !strict {
        // Shift costs so that zero-cost cycles become negative:
        // c'(e) = c(e)·(n+1) − 1. For a cycle C of length |C| ≤ n:
        // c(C) ≤ 0  ⟺  c'(C) = c(C)(n+1) − |C| < 0.
        let scale = g.num_nodes() as i128 + 1;
        let shifted: Vec<i128> = cost.iter().map(|&c| c * scale - 1).collect();
        return bellman_ford(g, &shifted, true, counters);
    }

    let mut dist = Vec::new();
    let mut parent = Vec::new();
    let mut cycle = Vec::new();
    let mut cand = Vec::new();
    let scope = BudgetScope::unlimited(crate::algorithms::Algorithm::HowardExact);
    let found = bellman_core(
        g,
        cost,
        counters,
        &mut dist,
        &mut parent,
        &mut cycle,
        &mut cand,
        SweepConfig::default(),
        &scope,
    );
    match found {
        Ok(true) => CycleCheck::NegativeCycle(cycle),
        Ok(false) => CycleCheck::Feasible(dist),
        Err(_) => unreachable!("an unlimited scope never trips"),
    }
}

/// The strict-mode Bellman–Ford loop over caller-provided buffers.
/// Returns `true` if a strictly negative cycle exists (left in `cycle`,
/// traversal order); `false` if feasible (potentials left in `dist`).
/// The wall-clock deadline of `scope` is checked once per relaxation
/// round, so a budgeted oracle call is abandoned within one `O(m)` pass
/// of its deadline.
///
/// # Sweep modes
///
/// In the default sequential mode each round is a Gauss–Seidel pass:
/// later arcs in the round see updates committed by earlier arcs. In
/// [`SweepMode::Chunked`](crate::sweep::SweepMode) each round is a
/// Jacobi pass — phase A computes every arc's candidate
/// `dist[src] + cost` against the distances *frozen at round start*
/// (chunks may run on worker threads; each writes a disjoint slice of
/// `cand`), then phase B commits improvements sequentially in arc
/// order. Phase B is where all counter ticks and state writes happen,
/// so chunked results are byte-identical at any sweep-thread count.
/// The two modes reach the same fixed point (and the same round-`n`
/// negative-cycle certificate) but may take different per-round
/// trajectories, which is why chunked mode is opt-in.
#[allow(clippy::too_many_arguments)] // internal hot loop over flat scratch buffers
fn bellman_core(
    g: &Graph,
    cost: &[i128],
    counters: &mut Counters,
    dist: &mut Vec<i128>,
    parent: &mut Vec<u32>,
    cycle: &mut Vec<ArcId>,
    cand: &mut Vec<i128>,
    sweep: SweepConfig,
    scope: &BudgetScope,
) -> Result<bool, SolveError> {
    let n = g.num_nodes();
    let m = g.num_arcs();
    const NO_PARENT: u32 = u32::MAX;
    let srcs = g.sources();
    let tgts = g.targets();
    dist.clear();
    dist.resize(n, 0);
    parent.clear();
    parent.resize(n, NO_PARENT);
    cycle.clear();
    let chunked = sweep.is_chunked();
    let chunks = sweep.num_chunks(m) as u64;
    if chunked {
        cand.clear();
        cand.resize(m, 0);
    }
    let _lm = if chunked {
        Some(scope.nested_loop_metrics("core.bellman.round"))
    } else {
        None
    };
    let mut updated_node = None;
    for _round in 0..n {
        scope.check_time()?;
        scope.chaos_check("core.bellman.round")?;
        counters.relaxations += m as u64;
        let mut any = false;
        if chunked {
            crate::obs::sweep_span("core.bellman.round", chunks, || {
                // Phase A: pure candidate computation against frozen
                // distances; disjoint output slices, no shared writes.
                {
                    let dist_now: &[i128] = dist;
                    crate::sweep::fill_candidates(cand, sweep.chunk, sweep.threads, &|start,
                                                                                      out: &mut [i128]| {
                        for (k, c) in out.iter_mut().enumerate() {
                            let u = srcs[start + k].index();
                            *c = dist_now[u] + cost[start + k];
                        }
                    });
                }
                // Phase B: sequential commit in arc order — the only
                // place state and counters change.
                for (ai, &c) in cand.iter().enumerate() {
                    let v = tgts[ai].index();
                    if c < dist[v] {
                        dist[v] = c;
                        parent[v] = idx32(ai);
                        counters.distance_updates += 1;
                        any = true;
                        updated_node = Some(v);
                    }
                }
            });
        } else {
            #[allow(clippy::needless_range_loop)] // hot loop indexes flat arrays in step
            for ai in 0..m {
                let u = srcs[ai].index();
                let v = tgts[ai].index();
                let c = dist[u] + cost[ai];
                if c < dist[v] {
                    dist[v] = c;
                    parent[v] = idx32(ai);
                    counters.distance_updates += 1;
                    any = true;
                    updated_node = Some(v);
                }
            }
        }
        if !any {
            return Ok(false);
        }
    }
    // An update in round n certifies a negative cycle reachable through
    // the parent pointers: walk n steps to land on the cycle, then
    // collect it.
    let mut v = updated_node.expect("update recorded in final round");
    for _ in 0..n {
        let a = ArcId::new(parent[v] as usize);
        v = g.source(a).index();
    }
    let start = v;
    loop {
        let a = ArcId::new(parent[v] as usize);
        cycle.push(a);
        v = g.source(a).index();
        if v == start {
            break;
        }
    }
    cycle.reverse();
    counters.cycles_examined += 1;
    debug_assert!(
        cycle.iter().map(|&a| cost[a.index()]).sum::<i128>() < 0,
        "extracted cycle is not negative"
    );
    Ok(true)
}

/// Runs the oracle on the costs already staged in `ws.bf.cost`, entirely
/// within workspace buffers. Returns `true` if a negative (strict mode)
/// or non-positive (non-strict) cycle was found — left in `ws.bf.cycle`;
/// on `false` the potentials are left in `ws.bf.dist`. Counter semantics
/// match [`bellman_ford`] exactly (non-strict counts two oracle calls,
/// mirroring its internal recursion).
pub(crate) fn check_staged_costs_ws(
    g: &Graph,
    strict: bool,
    counters: &mut Counters,
    ws: &mut Workspace,
    scope: &BudgetScope,
) -> Result<bool, SolveError> {
    debug_assert_eq!(ws.bf.cost.len(), g.num_arcs());
    counters.oracle_calls += 1;
    let sweep = ws.sweep;
    let Workspace { bf, sw, .. } = ws;
    if !strict {
        counters.oracle_calls += 1;
        let scale = g.num_nodes() as i128 + 1;
        bf.cost_shifted.clear();
        bf.cost_shifted
            .extend(bf.cost.iter().map(|&c| c * scale - 1));
        return bellman_core(
            g,
            &bf.cost_shifted,
            counters,
            &mut bf.dist,
            &mut bf.parent,
            &mut bf.cycle,
            &mut sw.cand_i128,
            sweep,
            scope,
        );
    }
    bellman_core(
        g,
        &bf.cost,
        counters,
        &mut bf.dist,
        &mut bf.parent,
        &mut bf.cycle,
        &mut sw.cand_i128,
        sweep,
        scope,
    )
}

/// Workspace-buffered cycle test on `G_λ`. See [`check_staged_costs_ws`]
/// for where the results land.
pub(crate) fn cycle_check_ws(
    g: &Graph,
    lambda: Ratio64,
    strict: bool,
    counters: &mut Counters,
    ws: &mut Workspace,
    scope: &BudgetScope,
) -> Result<bool, SolveError> {
    scaled_costs_into(g, lambda, &mut ws.bf.cost);
    check_staged_costs_ws(g, strict, counters, ws, scope)
}

/// Workspace-buffered [`has_cycle_below`]: `true` iff some cycle has
/// ratio strictly below `lambda` (the witness is left in `ws.bf.cycle`).
pub(crate) fn has_cycle_below_ws(
    g: &Graph,
    lambda: Ratio64,
    counters: &mut Counters,
    ws: &mut Workspace,
    scope: &BudgetScope,
) -> Result<bool, SolveError> {
    cycle_check_ws(g, lambda, true, counters, ws, scope)
}

/// Workspace-buffered [`cycle_at_or_below`]: `true` iff some cycle has
/// ratio at most `lambda` (the witness is left in `ws.bf.cycle`).
pub(crate) fn cycle_at_or_below_ws(
    g: &Graph,
    lambda: Ratio64,
    counters: &mut Counters,
    ws: &mut Workspace,
    scope: &BudgetScope,
) -> Result<bool, SolveError> {
    cycle_check_ws(g, lambda, false, counters, ws, scope)
}

/// Tests whether `G_λ` (costs `w − λ·t`) has a strictly negative cycle,
/// i.e. whether some cycle of `g` has ratio (mean, for unit transits)
/// strictly below `lambda`.
pub fn has_cycle_below(g: &Graph, lambda: Ratio64, counters: &mut Counters) -> Option<Vec<ArcId>> {
    let cost = scaled_costs(g, lambda);
    match bellman_ford(g, &cost, true, counters) {
        CycleCheck::Feasible(_) => None,
        CycleCheck::NegativeCycle(c) => Some(c),
    }
}

/// Finds a cycle with ratio (mean) at most `lambda`, if any.
pub fn cycle_at_or_below(
    g: &Graph,
    lambda: Ratio64,
    counters: &mut Counters,
) -> Option<Vec<ArcId>> {
    let cost = scaled_costs(g, lambda);
    match bellman_ford(g, &cost, false, counters) {
        CycleCheck::Feasible(_) => None,
        CycleCheck::NegativeCycle(c) => Some(c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_graph::graph::from_arc_list;

    fn counters() -> Counters {
        Counters::new()
    }

    #[test]
    fn feasible_on_positive_shift() {
        // Ring with mean 2; at λ = 1 no negative cycle.
        let g = from_arc_list(3, &[(0, 1, 2), (1, 2, 2), (2, 0, 2)]);
        let mut c = counters();
        assert!(has_cycle_below(&g, Ratio64::from(1), &mut c).is_none());
        assert_eq!(c.oracle_calls, 1);
    }

    #[test]
    fn negative_cycle_found_and_valid() {
        let g = from_arc_list(3, &[(0, 1, 2), (1, 2, 2), (2, 0, 2)]);
        let mut c = counters();
        let cyc = has_cycle_below(&g, Ratio64::from(3), &mut c).expect("mean 2 < 3");
        let (w, len, _) = crate::solution::check_cycle(&g, &cyc).expect("well-formed");
        assert_eq!(Ratio64::new(w, len as i64), Ratio64::from(2));
    }

    #[test]
    fn strict_vs_nonstrict_at_exact_lambda() {
        // Ring with mean exactly 5/2.
        let g = from_arc_list(2, &[(0, 1, 2), (1, 0, 3)]);
        let lam = Ratio64::new(5, 2);
        let mut c = counters();
        assert!(has_cycle_below(&g, lam, &mut c).is_none());
        let cyc = cycle_at_or_below(&g, lam, &mut c).expect("zero-cost cycle");
        let (w, len, _) = crate::solution::check_cycle(&g, &cyc).expect("well-formed");
        assert_eq!(Ratio64::new(w, len as i64), lam);
    }

    #[test]
    fn respects_transit_times_for_ratio() {
        // One cycle: weight 10, transit 4 → ratio 5/2.
        let mut b = mcr_graph::GraphBuilder::new();
        let v = b.add_nodes(2);
        b.add_arc_with_transit(v[0], v[1], 4, 1);
        b.add_arc_with_transit(v[1], v[0], 6, 3);
        let g = b.build();
        let mut c = counters();
        assert!(has_cycle_below(&g, Ratio64::new(5, 2), &mut c).is_none());
        assert!(has_cycle_below(&g, Ratio64::new(26, 10), &mut c).is_some());
    }

    #[test]
    fn picks_up_self_loop() {
        let g = from_arc_list(2, &[(0, 1, 10), (1, 0, 10), (1, 1, 3)]);
        let mut c = counters();
        let cyc = has_cycle_below(&g, Ratio64::from(4), &mut c).expect("self loop mean 3");
        assert_eq!(cyc.len(), 1);
    }

    #[test]
    fn workspace_variant_matches_allocating_variant() {
        let g = from_arc_list(4, &[(0, 1, 3), (1, 2, 1), (2, 0, 5), (2, 3, 1), (3, 1, 4)]);
        let mut ws = Workspace::new();
        let scope = BudgetScope::unlimited(crate::algorithms::Algorithm::HowardExact);
        for num in -10..10 {
            let lam = Ratio64::new(num, 3);
            let mut c1 = counters();
            let plain = has_cycle_below(&g, lam, &mut c1);
            let mut c2 = counters();
            let found = has_cycle_below_ws(&g, lam, &mut c2, &mut ws, &scope).expect("unlimited");
            assert_eq!(plain.is_some(), found, "lambda {lam}");
            if let Some(cycle) = plain {
                assert_eq!(cycle, ws.bf.cycle, "lambda {lam}");
            }
            assert_eq!(c1, c2, "counters must match for lambda {lam}");

            let mut c3 = counters();
            let plain = cycle_at_or_below(&g, lam, &mut c3);
            let mut c4 = counters();
            let found =
                cycle_at_or_below_ws(&g, lam, &mut c4, &mut ws, &scope).expect("unlimited");
            assert_eq!(plain.is_some(), found, "lambda {lam} (non-strict)");
            if let Some(cycle) = plain {
                assert_eq!(cycle, ws.bf.cycle, "lambda {lam} (non-strict)");
            }
            assert_eq!(c3, c4, "counters must match for lambda {lam} (non-strict)");
        }
    }

    #[test]
    fn chunked_sweep_is_thread_invariant_and_agrees_with_sequential() {
        use crate::sweep::{SweepConfig, SweepMode};
        let g = from_arc_list(4, &[(0, 1, 3), (1, 2, 1), (2, 0, 5), (2, 3, 1), (3, 1, 4)]);
        let scope = BudgetScope::unlimited(crate::algorithms::Algorithm::HowardExact);
        for num in -10..10 {
            let lam = Ratio64::new(num, 3);
            let mut ws_seq = Workspace::new();
            let mut c_seq = counters();
            let seq =
                has_cycle_below_ws(&g, lam, &mut c_seq, &mut ws_seq, &scope).expect("unlimited");
            let mut base: Option<(Vec<i128>, Vec<ArcId>, Counters)> = None;
            for threads in [1, 2, 8] {
                let mut ws = Workspace::new();
                ws.sweep = SweepConfig {
                    mode: SweepMode::Chunked,
                    chunk: 2,
                    threads,
                };
                let mut c = counters();
                let found = has_cycle_below_ws(&g, lam, &mut c, &mut ws, &scope).expect("unlimited");
                assert_eq!(found, seq, "verdict differs from sequential at lambda {lam}");
                let sig = (ws.bf.dist.clone(), ws.bf.cycle.clone(), c);
                match &base {
                    None => base = Some(sig),
                    Some(b) => assert_eq!(*b, sig, "lambda {lam} threads {threads}"),
                }
            }
        }
    }

    #[test]
    fn expired_deadline_aborts_the_oracle() {
        let g = from_arc_list(3, &[(0, 1, 2), (1, 2, 2), (2, 0, 2)]);
        let budget = crate::Budget::default().wall_time(std::time::Duration::ZERO);
        let deadline = budget.deadline().map(crate::budget::Deadline::budget);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let scope = BudgetScope::new(&budget, deadline, crate::algorithms::Algorithm::Megiddo);
        let mut ws = Workspace::new();
        let mut c = counters();
        let err = has_cycle_below_ws(&g, Ratio64::from(3), &mut c, &mut ws, &scope)
            .expect_err("deadline already passed");
        assert!(matches!(
            err,
            SolveError::BudgetExhausted {
                resource: crate::BudgetResource::WallTime,
                ..
            }
        ));
    }

    #[test]
    fn feasible_potentials_satisfy_constraints() {
        let g = from_arc_list(4, &[(0, 1, 3), (1, 2, 1), (2, 0, 5), (2, 3, 1), (3, 1, 4)]);
        let lam = Ratio64::new(2, 1);
        let cost = scaled_costs(&g, lam);
        let mut c = counters();
        match bellman_ford(&g, &cost, true, &mut c) {
            CycleCheck::Feasible(d) => {
                for a in g.arc_ids() {
                    let u = g.source(a).index();
                    let v = g.target(a).index();
                    assert!(d[v] <= d[u] + cost[a.index()]);
                }
            }
            CycleCheck::NegativeCycle(_) => panic!("min mean is 7/3 > 2"),
        }
    }
}
