//! The algorithm suite of the study, behind one uniform interface.
//!
//! Each algorithm is exposed as a variant of [`Algorithm`]; calling
//! [`Algorithm::solve`] runs it under the common per-SCC driver. The
//! modules also expose configurable entry points for the approximate
//! algorithms (`epsilon` precision).

pub(crate) mod burns;
pub(crate) mod dg;
pub(crate) mod ho;
pub(crate) mod howard;
pub(crate) mod karp;
pub(crate) mod karp2;
pub(crate) mod lawler;
pub(crate) mod megiddo;
pub(crate) mod oa1;
pub(crate) mod parametric;

use crate::budget::{BudgetScope, Deadline};
use crate::checkpoint::JobProgress;
use crate::driver::{solve_per_scc, solve_per_scc_opts, solve_value_per_scc_opts, SccOutcome};
use crate::error::SolveError;
use crate::instrument::Counters;
use crate::options::SolveOptions;
use crate::rational::Ratio64;
use crate::solution::Solution;
use crate::workspace::Workspace;
use mcr_graph::Graph;
use parametric::HeapGranularity;

/// Runs one algorithm on one strongly connected, cyclic component
/// under a budget scope. This is the single dispatch point shared by
/// the primary attempt and every fallback attempt.
fn solve_scc_budgeted(
    alg: Algorithm,
    sub: &Graph,
    counters: &mut Counters,
    epsilon: f64,
    ws: &mut Workspace,
    scope: &mut BudgetScope,
) -> Result<SccOutcome, SolveError> {
    match alg {
        Algorithm::Burns => burns::solve_scc_f64(sub, counters, scope),
        Algorithm::BurnsExact => burns::solve_scc(sub, counters, scope),
        Algorithm::Ko => parametric::solve_scc(sub, counters, HeapGranularity::PerArc, scope),
        Algorithm::Yto => parametric::solve_scc(sub, counters, HeapGranularity::PerNode, scope),
        Algorithm::Howard => howard::solve_scc_fig1(sub, counters, epsilon, ws, scope),
        Algorithm::HowardExact => howard::solve_scc_exact(sub, counters, ws, scope),
        Algorithm::Ho => ho::solve_scc(sub, counters, ws, scope),
        Algorithm::Karp => karp::solve_scc(sub, counters, ws, scope),
        Algorithm::Karp2 => karp2::solve_scc(sub, counters, ws, scope),
        Algorithm::Dg => dg::solve_scc(sub, counters, ws, scope),
        Algorithm::Lawler => lawler::solve_scc_eps(sub, counters, epsilon, ws, scope),
        Algorithm::LawlerExact => lawler::solve_scc_exact(sub, counters, ws, scope),
        Algorithm::Megiddo => megiddo::solve_scc(sub, counters, ws, scope),
        Algorithm::Oa1 => oa1::solve_scc(sub, counters, epsilon, ws, scope),
    }
}

/// [`solve_scc_budgeted`] routed through the checkpoint-aware variants
/// for the algorithms that support interrupt/resume (the Howard and
/// Lawler families). `resume` is consulted before the first iteration;
/// `saved` receives a progress snapshot when the attempt is interrupted
/// at a budget / cancellation poll point.
#[allow(clippy::too_many_arguments)]
fn solve_scc_resumable(
    alg: Algorithm,
    sub: &Graph,
    counters: &mut Counters,
    epsilon: f64,
    ws: &mut Workspace,
    scope: &mut BudgetScope,
    resume: Option<&JobProgress>,
    saved: &mut Option<JobProgress>,
) -> Result<SccOutcome, SolveError> {
    match alg {
        Algorithm::Howard => {
            howard::solve_scc_fig1_ckpt(sub, counters, epsilon, ws, scope, resume, saved)
        }
        Algorithm::HowardExact => {
            howard::solve_scc_exact_ckpt(sub, counters, ws, scope, resume, saved)
        }
        Algorithm::Lawler => {
            lawler::solve_scc_eps_ckpt(sub, counters, epsilon, ws, scope, resume, saved)
        }
        Algorithm::LawlerExact => {
            lawler::solve_scc_exact_ckpt(sub, counters, ws, scope, resume, saved)
        }
        other => solve_scc_budgeted(other, sub, counters, epsilon, ws, scope),
    }
}

/// Runs the full fallback chain for one SCC job. Every attempt gets a
/// fresh budget scope (sharing the solve-wide deadline and cancellation
/// token); a recoverable failure advances to the next alternate, a
/// non-recoverable one (including [`SolveError::Cancelled`]) fails the
/// whole solve closed. When a checkpoint store is attached, interrupted
/// attempts save their progress keyed by `(job, algorithm)` and a
/// successful job clears its entry.
///
/// If every attempt fails, the error of the **last** attempt is
/// returned and the workspace is left freshly reset — never poisoned —
/// so no half-updated scratch state can leak into a later job.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_fallback_chain(
    job: usize,
    chain: &[Algorithm],
    sub: &Graph,
    counters: &mut Counters,
    epsilon: f64,
    ws: &mut Workspace,
    opts: &SolveOptions,
    deadline: Option<Deadline>,
) -> Result<SccOutcome, SolveError> {
    let mut last_err = None;
    let mut hop_from: Option<Algorithm> = None;
    for &alg in chain {
        if let Some(from) = hop_from.take() {
            crate::obs::fallback_hop(job, from.name(), alg.name());
        }
        let mut scope =
            BudgetScope::new(&opts.budget, deadline, alg).with_cancel(opts.cancel.clone());
        ws.begin_use();
        let resume = opts
            .checkpoints
            .as_ref()
            .and_then(|store| store.get(job as u64, alg));
        if resume.is_some() {
            crate::obs::checkpoint_resumed(job, alg.name());
        }
        crate::obs::attempt_start(job, alg.name());
        let mut saved = None;
        let attempt = scope.chaos_check("core.fallback.attempt").and_then(|()| {
            solve_scc_resumable(alg, sub, counters, epsilon, ws, &mut scope, resume.as_ref(), &mut saved)
        });
        // Flush any pending loop-site metrics before the attempt events.
        drop(scope);
        match attempt {
            Ok(outcome) => {
                crate::obs::attempt_end(job, alg.name(), "ok");
                ws.end_use();
                if let Some(store) = &opts.checkpoints {
                    store.clear(job as u64);
                }
                return Ok(outcome);
            }
            // A failed attempt leaves the workspace poisoned; the next
            // begin_use resets it before reuse.
            Err(err) => {
                crate::obs::attempt_end(job, alg.name(), err.kind());
                if let (Some(store), Some(progress)) = (&opts.checkpoints, saved) {
                    crate::obs::checkpoint_saved(job, alg.name());
                    store.save(job as u64, alg, progress);
                }
                if err.is_recoverable() {
                    hop_from = Some(alg);
                    last_err = Some(err);
                } else {
                    return Err(err);
                }
            }
        }
    }
    ws.reset();
    Err(last_err.unwrap_or(SolveError::NumericRange {
        context: "fallback chain was empty",
    }))
}

/// A minimum mean cycle algorithm from the study.
///
/// ```
/// use mcr_core::Algorithm;
/// use mcr_graph::graph::from_arc_list;
/// let g = from_arc_list(2, &[(0, 1, 1), (1, 0, 3)]);
/// for alg in Algorithm::ALL {
///     let sol = alg.solve(&g).expect("cyclic");
///     assert_eq!(sol.lambda, mcr_core::Ratio64::from(2), "{}", alg.name());
/// }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Algorithm {
    /// Burns' primal-dual algorithm (`f64` duals, as in the original
    /// study's implementation; the reported λ is the exact mean of the
    /// critical cycle found).
    Burns,
    /// Burns' primal-dual algorithm with exact rational duals
    /// (arithmetic-cost ablation of [`Algorithm::Burns`]).
    BurnsExact,
    /// Karp–Orlin parametric shortest paths, arc-keyed heap (exact).
    Ko,
    /// Young–Tarjan–Orlin parametric shortest paths, node-keyed heap
    /// (exact).
    Yto,
    /// Howard's policy iteration, the paper's Figure 1 (`f64`,
    /// ε-terminated; returns the exact mean of its final policy cycle).
    Howard,
    /// Howard's policy iteration with exact value determination.
    HowardExact,
    /// Hartmann–Orlin early termination over Karp's recurrence (exact).
    Ho,
    /// Karp's Θ(nm) dynamic program (exact).
    Karp,
    /// Space-efficient two-pass Karp (exact, Θ(n) space).
    Karp2,
    /// Dasdan–Gupta breadth-first unfolding (exact).
    Dg,
    /// Lawler's binary search (ε-approximate).
    Lawler,
    /// Lawler sharpened with an exact rational snap (exact).
    LawlerExact,
    /// Megiddo's parametric search: symbolic Bellman–Ford whose
    /// comparisons are resolved by negative-cycle oracle calls (exact).
    Megiddo,
    /// Orlin–Ahuja-style scaling / approximate binary search
    /// (ε-approximate).
    Oa1,
}

impl Algorithm {
    /// Every variant.
    pub const ALL: [Algorithm; 14] = [
        Algorithm::Burns,
        Algorithm::BurnsExact,
        Algorithm::Ko,
        Algorithm::Yto,
        Algorithm::Howard,
        Algorithm::HowardExact,
        Algorithm::Ho,
        Algorithm::Karp,
        Algorithm::Karp2,
        Algorithm::Dg,
        Algorithm::Lawler,
        Algorithm::LawlerExact,
        Algorithm::Megiddo,
        Algorithm::Oa1,
    ];

    /// The ten algorithms of Table 2, in the paper's column order.
    pub const TABLE2: [Algorithm; 10] = [
        Algorithm::Burns,
        Algorithm::Ko,
        Algorithm::Yto,
        Algorithm::Howard,
        Algorithm::Ho,
        Algorithm::Karp,
        Algorithm::Dg,
        Algorithm::Lawler,
        Algorithm::Karp2,
        Algorithm::Oa1,
    ];

    /// The paper's name for the algorithm.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Burns => "Burns",
            Algorithm::BurnsExact => "Burns-exact",
            Algorithm::Ko => "KO",
            Algorithm::Yto => "YTO",
            Algorithm::Howard => "Howard",
            Algorithm::HowardExact => "Howard-exact",
            Algorithm::Ho => "HO",
            Algorithm::Karp => "Karp",
            Algorithm::Karp2 => "Karp2",
            Algorithm::Dg => "DG",
            Algorithm::Lawler => "Lawler",
            Algorithm::LawlerExact => "Lawler-exact",
            Algorithm::Megiddo => "Megiddo",
            Algorithm::Oa1 => "OA1",
        }
    }

    /// Inverse of [`Algorithm::name`], case-insensitive — the lookup
    /// both the CLI (`--algorithm`) and the `mcrd` request protocol
    /// (`"algorithm"` field) resolve names through.
    pub fn by_name(name: &str) -> Option<Algorithm> {
        Algorithm::ALL
            .into_iter()
            .find(|a| a.name().eq_ignore_ascii_case(name))
    }

    /// Whether the variant only guarantees an ε-approximate optimum.
    pub fn is_approximate(self) -> bool {
        matches!(
            self,
            Algorithm::Howard | Algorithm::Lawler | Algorithm::Oa1
        )
    }

    /// Whether the variant needs `Θ(n²)` memory (the Karp table), the
    /// reason the paper reports `N/A` on its largest inputs.
    pub fn is_quadratic_space(self) -> bool {
        matches!(self, Algorithm::Karp | Algorithm::Dg | Algorithm::Ho)
    }

    /// Default precision for the approximate variants, scaled to the
    /// weight range of `g`.
    pub fn default_epsilon(g: &Graph) -> f64 {
        let hi = g.max_weight().unwrap_or(1) as f64;
        let lo = g.min_weight().unwrap_or(0) as f64;
        ((hi - lo).abs().max(1.0)) * 1e-6
    }

    /// Computes the minimum cycle mean of `g` with this algorithm, or
    /// `None` if `g` is acyclic. Approximate variants use
    /// [`Algorithm::default_epsilon`].
    pub fn solve(self, g: &Graph) -> Option<Solution> {
        self.solve_with_epsilon(g, Self::default_epsilon(g))
    }

    /// Like [`Algorithm::solve`] with an explicit precision for the
    /// approximate variants (exact variants ignore it). Returns `None`
    /// for acyclic graphs and for non-positive or non-finite `epsilon`;
    /// use [`Algorithm::solve_with_options`] to distinguish those cases.
    pub fn solve_with_epsilon(self, g: &Graph, epsilon: f64) -> Option<Solution> {
        let opts = SolveOptions {
            epsilon: Some(epsilon),
            ..SolveOptions::default()
        };
        self.solve_with_options(g, &opts).ok()
    }

    /// Like [`Algorithm::solve`] with explicit [`SolveOptions`]: thread
    /// count for the per-SCC driver, precision for the approximate
    /// variants, work [`Budget`](crate::Budget), and
    /// [`FallbackChain`](crate::FallbackChain). Results are
    /// bit-identical for every thread count (see
    /// [`SolveOptions::threads`]).
    ///
    /// # Errors
    ///
    /// * [`SolveError::Acyclic`] when `g` has no cycle.
    /// * [`SolveError::InvalidEpsilon`] when `opts.epsilon` is
    ///   non-positive or non-finite.
    /// * [`SolveError::BudgetExhausted`] when a budget limit trips and
    ///   no fallback alternate finishes either.
    /// * [`SolveError::Overflow`] / [`SolveError::ZeroTransitCycle`] /
    ///   [`SolveError::NumericRange`] on inputs outside the solver's
    ///   numeric range (also retried along the fallback chain where
    ///   recoverable).
    ///
    /// When the primary algorithm fails recoverably on a component, the
    /// alternates of `opts.fallback` are tried in order; the variant
    /// that produced each component's answer is recorded in
    /// [`Solution::solved_by`]. Each attempt gets a fresh iteration /
    /// λ-refinement allowance, but all attempts share the solve-wide
    /// wall-clock deadline.
    pub fn solve_with_options(self, g: &Graph, opts: &SolveOptions) -> Result<Solution, SolveError> {
        crate::obs::solve_start(self.name(), g, opts.effective_threads());
        let result = self.solve_with_options_inner(g, opts);
        match &result {
            Ok(sol) => crate::obs::solve_end_ok(&sol.lambda, sol.solved_by.name(), &sol.counters),
            Err(err) => crate::obs::solve_end_err(err.kind()),
        }
        result
    }

    fn solve_with_options_inner(
        self,
        g: &Graph,
        opts: &SolveOptions,
    ) -> Result<Solution, SolveError> {
        let epsilon = match opts.epsilon {
            Some(e) if e > 0.0 && e.is_finite() => e,
            Some(e) => return Err(SolveError::InvalidEpsilon { epsilon: e }),
            None => Self::default_epsilon(g),
        };
        let deadline = opts.effective_deadline();
        let chain = opts.fallback.chain_for(self);
        solve_per_scc_opts(g, opts, |job, sub, counters, ws| {
            run_fallback_chain(job, &chain, sub, counters, epsilon, ws, opts, deadline)
        })
    }
}

impl Algorithm {
    /// Computes λ* without extracting a witness cycle — the exact
    /// measurement protocol of the original study, which timed "each
    /// algorithm in the context of computing λ* only". For the Karp
    /// family this skips the Bellman–Ford witness extraction; every
    /// other algorithm produces its witness as a byproduct, so this is
    /// equivalent to [`Algorithm::solve`] for them.
    pub fn solve_lambda_only(self, g: &Graph) -> Option<(Ratio64, Counters)> {
        self.solve_lambda_only_opts(g, &SolveOptions::default()).ok()
    }

    /// [`Algorithm::solve_lambda_only`] with explicit [`SolveOptions`].
    /// The budget applies per component (fresh allowance each), but the
    /// fallback chain does not: the λ-only path measures one algorithm.
    pub fn solve_lambda_only_opts(
        self,
        g: &Graph,
        opts: &SolveOptions,
    ) -> Result<(Ratio64, Counters), SolveError> {
        crate::obs::solve_start(self.name(), g, opts.effective_threads());
        let result = self.solve_lambda_only_opts_inner(g, opts);
        match &result {
            Ok((lambda, counters)) => crate::obs::solve_end_ok(lambda, self.name(), counters),
            Err(err) => crate::obs::solve_end_err(err.kind()),
        }
        result
    }

    fn solve_lambda_only_opts_inner(
        self,
        g: &Graph,
        opts: &SolveOptions,
    ) -> Result<(Ratio64, Counters), SolveError> {
        let deadline = opts.effective_deadline();
        let scoped =
            |f: fn(&Graph, &mut Counters, &mut BudgetScope) -> Result<Ratio64, SolveError>| {
                move |_job: usize, s: &Graph, c: &mut Counters, _ws: &mut Workspace| {
                    let mut scope = BudgetScope::new(&opts.budget, deadline, self)
                        .with_cancel(opts.cancel.clone());
                    f(s, c, &mut scope)
                }
            };
        // Karp and DG read the workspace sweep config, so they get the
        // real workspace instead of the `scoped` fn-pointer shim.
        let ws_scoped = |f: fn(
            &Graph,
            &mut Counters,
            &mut Workspace,
            &mut BudgetScope,
        ) -> Result<Ratio64, SolveError>| {
            move |_job: usize, s: &Graph, c: &mut Counters, ws: &mut Workspace| {
                let mut scope = BudgetScope::new(&opts.budget, deadline, self)
                    .with_cancel(opts.cancel.clone());
                f(s, c, ws, &mut scope)
            }
        };
        match self {
            Algorithm::Karp => solve_value_per_scc_opts(g, opts, ws_scoped(karp::lambda_scc)),
            Algorithm::Karp2 => solve_value_per_scc_opts(g, opts, scoped(karp2::lambda_scc)),
            Algorithm::Dg => solve_value_per_scc_opts(g, opts, ws_scoped(dg::lambda_scc)),
            Algorithm::Ho => solve_value_per_scc_opts(g, opts, scoped(ho::lambda_scc)),
            // The inner variant, so the solve span opened above is not
            // doubled by the delegation.
            other => other
                .solve_with_options_inner(g, opts)
                .map(|s| (s.lambda, s.counters)),
        }
    }
}

/// Ablation entry point: the parametric algorithms (KO / YTO) with a
/// configurable priority queue. The study inherited LEDA's Fibonacci
/// heap for both; this lets benches quantify that choice against a
/// plain indexed binary heap.
pub fn parametric_with_heap(g: &Graph, node_keyed: bool, fibonacci: bool) -> Option<Solution> {
    use mcr_graph::heap::{FibonacciHeap, IndexedBinaryHeap};
    let (granularity, alg) = if node_keyed {
        (HeapGranularity::PerNode, Algorithm::Yto)
    } else {
        (HeapGranularity::PerArc, Algorithm::Ko)
    };
    if fibonacci {
        solve_per_scc(g, move |_job, s, c, _ws| {
            let mut scope = BudgetScope::unlimited(alg);
            parametric::solve_scc_with::<FibonacciHeap<Ratio64>>(s, c, granularity, &mut scope)
        })
        .ok()
    } else {
        solve_per_scc(g, move |_job, s, c, _ws| {
            let mut scope = BudgetScope::unlimited(alg);
            parametric::solve_scc_with::<IndexedBinaryHeap<Ratio64>>(s, c, granularity, &mut scope)
        })
        .ok()
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::Ratio64;
    use mcr_graph::graph::from_arc_list;

    #[test]
    fn all_algorithms_agree_on_multi_scc_graph() {
        let g = from_arc_list(
            5,
            &[(0, 1, 5), (1, 0, 5), (1, 2, 1), (2, 3, 1), (3, 4, 2), (4, 2, 3)],
        );
        for alg in Algorithm::ALL {
            let sol = alg.solve(&g).expect("cyclic");
            assert_eq!(sol.lambda, Ratio64::from(2), "{}", alg.name());
            assert!(crate::solution::check_cycle(&g, &sol.cycle).is_ok());
        }
    }

    #[test]
    fn acyclic_is_none_for_all() {
        let g = from_arc_list(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 1)]);
        for alg in Algorithm::ALL {
            assert!(alg.solve(&g).is_none(), "{}", alg.name());
        }
    }

    #[test]
    fn empty_graph_is_none() {
        let g = from_arc_list(0, &[]);
        for alg in Algorithm::ALL {
            assert!(alg.solve(&g).is_none(), "{}", alg.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Algorithm::ALL.len());
    }

    #[test]
    fn table2_selection_matches_paper_columns() {
        let names: Vec<&str> = Algorithm::TABLE2.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            ["Burns", "KO", "YTO", "Howard", "HO", "Karp", "DG", "Lawler", "Karp2", "OA1"]
        );
    }

    #[test]
    fn threads_do_not_change_any_algorithm() {
        let g = from_arc_list(
            7,
            &[
                (0, 1, 5),
                (1, 0, 5),
                (1, 2, 1),
                (2, 3, 1),
                (3, 4, 2),
                (4, 2, 3),
                (5, 6, 7),
                (6, 5, 1),
            ],
        );
        for alg in Algorithm::ALL {
            let seq = alg.solve(&g).expect("cyclic");
            let par = alg
                .solve_with_options(&g, &SolveOptions::new().threads(4))
                .expect("cyclic");
            assert_eq!(par.lambda, seq.lambda, "{}", alg.name());
            assert_eq!(par.cycle, seq.cycle, "{}", alg.name());
            assert_eq!(par.guarantee, seq.guarantee, "{}", alg.name());
            assert_eq!(par.counters, seq.counters, "{}", alg.name());
        }
    }

    #[test]
    fn exactness_flags() {
        assert!(Algorithm::Howard.is_approximate());
        assert!(!Algorithm::HowardExact.is_approximate());
        assert!(Algorithm::Karp.is_quadratic_space());
        assert!(!Algorithm::Karp2.is_quadratic_space());
    }

    #[test]
    fn invalid_epsilon_is_a_typed_error() {
        let g = from_arc_list(2, &[(0, 1, 1), (1, 0, 3)]);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let opts = SolveOptions {
                epsilon: Some(bad),
                ..SolveOptions::default()
            };
            let err = Algorithm::Lawler
                .solve_with_options(&g, &opts)
                .expect_err("invalid epsilon");
            assert!(
                matches!(err, crate::SolveError::InvalidEpsilon { .. }),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn acyclic_is_a_typed_error_with_options() {
        let g = from_arc_list(3, &[(0, 1, 1), (1, 2, 1)]);
        let err = Algorithm::Karp
            .solve_with_options(&g, &SolveOptions::default())
            .expect_err("acyclic");
        assert!(matches!(err, crate::SolveError::Acyclic));
    }

    #[test]
    fn exhausted_budget_without_fallback_surfaces_the_error() {
        use crate::{Budget, FallbackChain};
        let g = from_arc_list(2, &[(0, 1, 1), (1, 0, 100)]);
        let opts = SolveOptions::new()
            .budget(Budget::default().max_lambda_refinements(1))
            .fallback(FallbackChain::NONE);
        let err = Algorithm::LawlerExact
            .solve_with_options(&g, &opts)
            .expect_err("one refinement cannot bisect this interval");
        match err {
            crate::SolveError::BudgetExhausted { algorithm, .. } => {
                assert_eq!(algorithm, Algorithm::LawlerExact);
            }
            other => panic!("expected BudgetExhausted, got {other}"),
        }
    }

    #[test]
    fn fallback_answers_and_is_attributed() {
        use crate::Budget;
        let g = from_arc_list(2, &[(0, 1, 1), (1, 0, 100)]);
        // LawlerExact needs many λ-refinements; the default chain's
        // first alternate (HowardExact) never charges any.
        let opts =
            SolveOptions::new().budget(Budget::default().max_lambda_refinements(1));
        let sol = Algorithm::LawlerExact
            .solve_with_options(&g, &opts)
            .expect("fallback chain finishes");
        assert_eq!(sol.lambda, Ratio64::new(101, 2));
        assert_eq!(sol.solved_by, Algorithm::HowardExact);
        assert!(crate::solution::check_cycle(&g, &sol.cycle).is_ok());
    }

    #[test]
    fn fallback_result_matches_the_unbudgeted_answer() {
        use crate::Budget;
        use mcr_gen::sprand::{sprand, SprandConfig};
        for seed in 0..10 {
            let g = sprand(&SprandConfig::new(12, 36).seed(seed).weight_range(-50, 50));
            let reference = Algorithm::HowardExact.solve(&g).expect("cyclic");
            let opts =
                SolveOptions::new().budget(Budget::default().max_lambda_refinements(1));
            let sol = Algorithm::LawlerExact
                .solve_with_options(&g, &opts)
                .expect("fallback chain finishes");
            assert_eq!(sol.lambda, reference.lambda, "seed {seed}");
        }
    }

    #[test]
    fn one_iteration_budget_never_hangs_for_any_algorithm() {
        use crate::{Budget, FallbackChain};
        let g = from_arc_list(
            5,
            &[(0, 1, 5), (1, 0, 5), (1, 2, 1), (2, 3, 1), (3, 4, 2), (4, 2, 3)],
        );
        let opts = SolveOptions::new()
            .budget(Budget::default().max_iterations(1))
            .fallback(FallbackChain::NONE);
        for alg in Algorithm::ALL {
            match alg.solve_with_options(&g, &opts) {
                // A lucky instance can finish within one outer iteration.
                Ok(sol) => assert_eq!(sol.lambda, Ratio64::from(2), "{}", alg.name()),
                Err(err) => assert!(
                    matches!(err, crate::SolveError::BudgetExhausted { .. }),
                    "{}: {err}",
                    alg.name()
                ),
            }
        }
    }

    #[test]
    fn solved_by_is_the_primary_when_no_fallback_is_needed() {
        let g = from_arc_list(2, &[(0, 1, 1), (1, 0, 3)]);
        for alg in Algorithm::ALL {
            let sol = alg.solve(&g).expect("cyclic");
            assert_eq!(sol.solved_by, alg, "{}", alg.name());
        }
    }

    #[test]
    fn exhausted_chain_attributes_the_last_attempt() {
        use crate::Budget;
        // A zero-iteration budget fails every member of the default
        // chain on a non-uniform-weight graph; the surfaced error must
        // name the LAST attempt (LawlerExact), not the primary.
        let g = from_arc_list(2, &[(0, 1, 1), (1, 0, 100)]);
        let opts = SolveOptions::new().budget(Budget::default().max_iterations(0));
        let err = Algorithm::HowardExact
            .solve_with_options(&g, &opts)
            .expect_err("no chain member can run zero iterations");
        match err {
            crate::SolveError::BudgetExhausted { algorithm, .. } => {
                assert_eq!(algorithm, Algorithm::LawlerExact);
            }
            other => panic!("expected BudgetExhausted, got {other}"),
        }
    }

    #[test]
    fn exhausted_chain_leaves_the_workspace_reset_not_poisoned() {
        use crate::Budget;
        let g = from_arc_list(2, &[(0, 1, 1), (1, 0, 100)]);
        let opts = SolveOptions::new().budget(Budget::default().max_iterations(0));
        let chain = opts.fallback.chain_for(Algorithm::HowardExact);
        let mut ws = Workspace::new();
        let mut counters = Counters::new();
        let err = run_fallback_chain(0, &chain, &g, &mut counters, 1e-6, &mut ws, &opts, None)
            .expect_err("every attempt exhausts");
        assert!(matches!(err, crate::SolveError::BudgetExhausted { .. }));
        assert!(
            !ws.is_poisoned(),
            "an exhausted chain must hand back a reset workspace"
        );
        assert!(
            ws.policy.is_empty() && ws.bf.dist.is_empty(),
            "reset must discard all scratch state"
        );
        // The same workspace must serve a clean follow-up solve.
        let mut scope = BudgetScope::unlimited(Algorithm::HowardExact);
        ws.begin_use();
        let outcome = howard::solve_scc_exact(&g, &mut counters, &mut ws, &mut scope)
            .expect("clean solve after exhaustion");
        ws.end_use();
        assert_eq!(outcome.lambda, Ratio64::new(101, 2));
    }

    #[test]
    fn a_non_recoverable_error_stops_the_chain_immediately() {
        let g = from_arc_list(2, &[(0, 1, 1), (1, 0, 100)]);
        let token = crate::CancelToken::new();
        token.cancel();
        let err = Algorithm::HowardExact
            .solve_with_options(&g, &SolveOptions::new().cancel(token))
            .expect_err("cancelled before it started");
        assert_eq!(err, crate::SolveError::Cancelled);
    }
}
