//! Criterion bench: sequential vs parallel per-SCC driver on SPRAND
//! unions with many strongly connected components.
//!
//! `cargo bench -p mcr-bench --bench parallel_driver`
//!
//! The instance is a disjoint union of K SPRAND blocks joined by one-way
//! bridge arcs, so the driver sees K independent jobs. `threads = 1` is
//! the sequential legacy path; higher counts fan the jobs out over a
//! scoped work queue. Results are bit-identical at every thread count
//! (asserted here on every instance before timing), so the bench
//! measures pure driver overhead/speedup.
//!
//! Note: speedup requires actual hardware parallelism. On a single-core
//! machine the parallel rows measure only the thread-pool overhead; see
//! `results/BENCH_parallel_driver.json` for recorded numbers and the
//! machine caveat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcr_core::{Algorithm, SolveOptions};
use mcr_gen::sprand::{sprand, SprandConfig};
use mcr_graph::{Graph, GraphBuilder};
use std::hint::black_box;

/// Disjoint union of `blocks` SPRAND graphs (`n` nodes, `m` arcs each)
/// plus one-way bridges between consecutive blocks: every block remains
/// its own strongly connected component.
fn multi_scc_sprand(blocks: usize, n: usize, m: usize, seed: u64) -> Graph {
    let mut b = GraphBuilder::new();
    let mut first_node = Vec::new();
    for k in 0..blocks {
        let part = sprand(
            &SprandConfig::new(n, m)
                .seed(seed * 101 + k as u64)
                .weight_range(1, 10_000),
        );
        let ids = b.add_nodes(part.num_nodes());
        first_node.push(ids[0]);
        for a in part.arc_ids() {
            b.add_arc(
                ids[part.source(a).index()],
                ids[part.target(a).index()],
                part.weight(a),
            );
        }
    }
    for w in first_node.windows(2) {
        b.add_arc(w[0], w[1], 1);
    }
    b.build()
}

fn bench_driver(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_driver");
    group.sample_size(10);
    // 8 components of 512 nodes / 1536 arcs each: enough independent
    // work per job for the fan-out to matter on multi-core hardware.
    let g = multi_scc_sprand(8, 512, 1536, 7);
    for alg in [Algorithm::HowardExact, Algorithm::Karp2] {
        let seq = alg.solve(&g).expect("cyclic");
        for threads in [1usize, 2, 4] {
            let opts = SolveOptions::new().threads(threads);
            // Determinism check before timing: parallel == sequential.
            let par = alg.solve_with_options(&g, &opts).expect("cyclic");
            assert_eq!(par.lambda, seq.lambda);
            assert_eq!(par.cycle, seq.cycle);
            assert_eq!(par.counters, seq.counters);
            group.bench_with_input(
                BenchmarkId::new(alg.name(), format!("threads_{threads}")),
                &opts,
                |b, opts| b.iter(|| black_box(alg.solve_with_options(black_box(&g), opts))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_driver);
criterion_main!(benches);
