//! CAD applications of optimum cycle mean / cycle ratio analysis.
//!
//! The DAC 1999 study motivates its algorithms with performance analysis
//! of cyclic digital systems (§1.1). This crate turns those motivating
//! applications into first-class APIs on top of [`mcr_core`]:
//!
//! * [`retiming`] — minimum feasible clock period of a retimed
//!   synchronous circuit (Szymanski, DAC'92), with the critical loops
//!   and connections reported for optimization;
//! * [`dataflow`] — the iteration bound of a recursive dataflow graph
//!   (Ito & Parhi) and per-loop slack analysis;
//! * [`max_plus`] — max-plus algebra spectral theory (Cochet-Terrasson
//!   et al., the source of Howard's algorithm): eigenvalue and
//!   eigenvector of an irreducible max-plus matrix, and the cycle time
//!   of a max-plus linear system;
//! * [`asynchronous`] — steady-state cycle period of self-timed
//!   circuits modeled as timed event-rule systems (Burns' original
//!   application).
//!
//! ```
//! use mcr_apps::dataflow::{Actor, DataflowGraph};
//!
//! let mut dfg = DataflowGraph::new();
//! let a = dfg.add_actor(Actor::new("mul", 2));
//! let b = dfg.add_actor(Actor::new("add", 1));
//! dfg.connect(a, b, 0);
//! dfg.connect(b, a, 1); // one delay on the feedback
//! let bound = dfg.iteration_bound().expect("no deadlock").expect("recursive graph");
//! assert_eq!(bound.periods_per_iteration, mcr_core::Ratio64::from(3));
//! ```

pub mod asynchronous;
pub mod dataflow;
pub mod max_plus;
pub mod retiming;
