//! Per-request containment: every handler installs a [`RequestGuard`]
//! before doing any work on a request.
//!
//! The guard is the service's uniform enforcement point for the two
//! resources a hostile or unlucky request could otherwise abuse:
//!
//! * **time** — it owns a [`BudgetScope`] built from the request's
//!   budget and admission-anchored deadline, so "has this request
//!   already expired?" is answered by the same monotonic clock the
//!   solver itself polls (no second wall-clock to disagree with, the
//!   bug the CLI's old `--timeout` watchdog had);
//! * **memory** — it re-asserts the [`MAX_FRAME_LEN`] payload cap at
//!   the handler boundary, even though the framing layer already
//!   enforced it on read, so the cap holds for payloads that reach a
//!   handler by any other path (journal replay of a hand-edited log).
//!
//! Lint rule MCRL008 checks the convention mechanically: every
//! `fn handle_*` in this crate must mention `RequestGuard`, and this
//! module must be the one place tying `BudgetScope` to the frame cap.

use crate::frame::MAX_FRAME_LEN;
use mcr_core::{Algorithm, Budget, BudgetScope, Deadline};
use std::time::{Duration, Instant};

/// The containment scope of one in-flight request. Construction is the
/// admission check; [`RequestGuard::expired`] is re-polled at dequeue
/// so time spent waiting in the queue counts against the deadline.
pub struct RequestGuard {
    scope: BudgetScope,
}

impl RequestGuard {
    /// Installs the guard: asserts the frame cap and anchors the
    /// request's deadline at its admission instant.
    pub fn install(
        budget: &Budget,
        deadline_ms: Option<u64>,
        accepted_at: Instant,
        algorithm: Algorithm,
        frame_len: usize,
    ) -> Result<RequestGuard, String> {
        if frame_len > MAX_FRAME_LEN {
            return Err(format!(
                "request frame of {frame_len} bytes exceeds cap {MAX_FRAME_LEN}"
            ));
        }
        let deadline =
            deadline_ms.map(|ms| Deadline::cancel(accepted_at + Duration::from_millis(ms)));
        Ok(RequestGuard {
            scope: BudgetScope::new(budget, deadline, algorithm),
        })
    }

    /// Whether the request's deadline (or budget wall-clock) has
    /// already passed — polled at dequeue so a request that waited out
    /// its deadline in the queue is answered `cancelled` without
    /// burning a solve on it.
    pub fn expired(&self) -> bool {
        self.scope.check_time().is_err()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversized_frames_are_rejected_at_install() {
        let r = RequestGuard::install(
            &Budget::UNLIMITED,
            None,
            Instant::now(),
            Algorithm::HowardExact,
            MAX_FRAME_LEN + 1,
        );
        match r {
            Err(e) => assert!(e.contains("exceeds cap")),
            Ok(_) => panic!("cap not enforced"),
        }
    }

    #[test]
    fn deadline_zero_is_expired_immediately_and_absence_never_expires() {
        let now = Instant::now();
        let g = RequestGuard::install(&Budget::UNLIMITED, Some(0), now, Algorithm::Karp, 10)
            .expect("install");
        assert!(g.expired(), "0ms deadline is already past");
        let g = RequestGuard::install(&Budget::UNLIMITED, None, now, Algorithm::Karp, 10)
            .expect("install");
        assert!(!g.expired());
    }
}
